"""Sample pruning (paper Algorithm 1): vectorized twin vs virtual-GPU kernel."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.pruning import prune_samples, prune_samples_kernel, select_centroids
from repro.errors import ConfigError


def test_duplicates_are_pruned():
    f = np.array([[1.0, 1.0, 5.0], [2.0, 2.0, 6.0]])  # cols 0 and 1 identical
    col_idx = prune_samples(f, eta=0.1, eps=0.5)
    assert list(col_idx) == [0, -1, 2]


def test_distinct_columns_survive():
    f = np.array([[0.0, 10.0, 20.0]])
    col_idx = prune_samples(f, eta=0.1, eps=0.5)
    assert list(col_idx) == [0, 1, 2]


def test_greedy_order_matters_first_base_wins():
    # col1 is close to col0; col2 close to col1 but not to col0.
    f = np.array([[0.0, 1.0, 2.0]])
    # eta=1.5: |0-1|=1 < eta (similar), |0-2|=2 >= eta (dissimilar)
    col_idx = prune_samples(f, eta=1.5, eps=0.5)
    # col1 pruned by col0; col2 survives and becomes its own base
    assert list(col_idx) == [0, -1, 2]


def test_figure_3b_example():
    """The paper's Fig. 3b walkthrough: cols 1,3 merge into 0; 4,5 into 2."""
    base = np.array([0.0, 0.0, 0.0, 0.0])
    far = np.array([10.0, 10.0, 10.0, 10.0])
    f = np.stack([base, base + 0.01, far, base - 0.01, far + 0.01, far - 0.01], axis=1)
    col_idx = prune_samples(f, eta=0.05, eps=0.5)
    assert list(col_idx) == [0, -1, 2, -1, -1, -1]
    assert list(select_centroids(col_idx)) == [0, 2]


def test_eps_scales_merge_tolerance():
    # two columns differing in 1 of 4 elements
    f = np.array([[0.0, 0.0], [0.0, 0.0], [0.0, 0.0], [0.0, 9.0]])
    # diff = 1 dissimilar element; prune iff 1 < 4 * eps
    assert list(prune_samples(f, eta=0.5, eps=0.5)) == [0, -1]
    assert list(prune_samples(f, eta=0.5, eps=0.2)) == [0, 1]


def test_survivors_are_pairwise_distinct(rng):
    """Invariant: any later survivor is dissimilar from every earlier one."""
    f = rng.random((8, 20)) * 2
    eta, eps = 0.3, 0.25
    col_idx = prune_samples(f, eta, eps)
    survivors = select_centroids(col_idx)
    n = f.shape[0]
    for a_pos, a in enumerate(survivors):
        for b in survivors[a_pos + 1 :]:
            diff = int((np.abs(f[:, b] - f[:, a]) >= eta).sum())
            assert diff >= n * eps


def test_kernel_matches_vectorized(device, rng):
    for seed in range(5):
        r = np.random.default_rng(seed)
        f = np.round(r.random((6, 12)) * 3, 1)
        expected = prune_samples(f, eta=0.4, eps=0.3)
        got = prune_samples_kernel(device, f, eta=0.4, eps=0.3)
        assert np.array_equal(got, expected), f"seed {seed}"


def test_kernel_single_block_limit(device):
    with pytest.raises(ConfigError, match="block"):
        prune_samples_kernel(device, np.zeros((64, 64)), 0.1, 0.1)


def test_kernel_charges_device(device):
    before = device.snapshot()
    prune_samples_kernel(device, np.ones((4, 6)), 0.1, 0.1)
    after = device.snapshot()
    assert after.launches == before.launches + 1
    assert after.barriers > before.barriers


def test_validation():
    with pytest.raises(ConfigError):
        prune_samples(np.zeros((2, 2)), eta=-1, eps=0.1)
    from repro.errors import ShapeError

    with pytest.raises(ShapeError):
        prune_samples(np.zeros(4), 0.1, 0.1)


def test_select_centroids_sorted():
    assert list(select_centroids(np.array([5, -1, 2, -1, 0]))) == [0, 2, 5]


# ------------------------------------------------------- edge cases (Alg. 1)
def test_single_sample_column(device):
    """s=1: the lone column is its own base and must survive."""
    f = np.array([[3.0], [1.0]])
    assert list(prune_samples(f, eta=0.1, eps=0.5)) == [0]
    assert list(select_centroids(prune_samples(f, eta=0.1, eps=0.5))) == [0]
    assert list(prune_samples_kernel(device, f, eta=0.1, eps=0.5)) == [0]


def test_all_duplicate_columns_single_survivor(device):
    """Every column identical: exactly one survivor (the first), rest merged."""
    f = np.tile(np.array([[1.0], [2.0], [3.0]]), (1, 7))
    col_idx = prune_samples(f, eta=0.01, eps=0.5)
    assert list(col_idx) == [0] + [-1] * 6
    assert list(select_centroids(col_idx)) == [0]
    assert np.array_equal(prune_samples_kernel(device, f, eta=0.01, eps=0.5), col_idx)


def test_huge_eta_merges_everything(device):
    """eta above the data range: no element ever counts as dissimilar, so
    the first base absorbs every column (prune-all-to-one)."""
    rng = np.random.default_rng(0)
    f = rng.random((5, 8))
    col_idx = prune_samples(f, eta=1e9, eps=0.2)
    assert list(col_idx) == [0] + [-1] * 7
    assert np.array_equal(prune_samples_kernel(device, f, eta=1e9, eps=0.2), col_idx)


def test_zero_eps_keeps_all(device):
    """eps=0: the prune condition diff < n*eps can never hold — even exact
    duplicates survive (keep-all)."""
    f = np.tile(np.array([[1.0], [2.0]]), (1, 5))
    col_idx = prune_samples(f, eta=0.5, eps=0.0)
    assert list(col_idx) == [0, 1, 2, 3, 4]
    assert np.array_equal(prune_samples_kernel(device, f, eta=0.5, eps=0.0), col_idx)


def test_centroid_mapper_consistent_with_pruning(rng):
    """End-to-end Alg. 1 -> Alg. 2 invariants on the centroid mapper M:
    centroids map to -1 exactly at their own columns, every non-centroid
    maps to a surviving centroid, and centroid + residue reconstructs Y."""
    from repro.core.conversion import convert

    y = np.round(rng.random((12, 10)) * 2, 1).astype(np.float32)
    col_idx = prune_samples(y, eta=0.4, eps=0.3)
    cent_cols = select_centroids(col_idx)
    yhat, m, ne_rec = convert(y, cent_cols, prune_threshold=0.0)
    assert set(np.flatnonzero(m == -1)) == set(cent_cols.tolist())
    non_cent = m != -1
    assert np.isin(m[non_cent], cent_cols).all()
    recon = np.where(non_cent[None, :], yhat + y[:, np.where(m == -1, 0, m)], yhat)
    assert np.array_equal(recon[:, non_cent], y[:, non_cent])
    assert np.array_equal(yhat[:, ~non_cent], y[:, ~non_cent])


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 5000), s=st.integers(1, 10), n=st.integers(1, 6))
def test_kernel_vectorized_equivalence_property(seed, s, n):
    rng = np.random.default_rng(seed)
    f = np.round(rng.random((n, s)), 1)
    from repro.gpu.device import VirtualDevice

    device = VirtualDevice()
    expected = prune_samples(f, eta=0.25, eps=0.4)
    got = prune_samples_kernel(device, f, eta=0.25, eps=0.4)
    assert np.array_equal(got, expected)
