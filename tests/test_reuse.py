"""Cross-block centroid reuse: cache policy, assign kernel, pipeline paths."""

import numpy as np
import pytest

from repro.core import CentroidCache, SNICIT
from repro.core.postconv import update_residues_external
from repro.core.reuse import CachedConversion
from repro.errors import ConfigError, ShapeError
from repro.harness.experiments.common import sdgc_config
from repro.harness.workloads import get_benchmark, get_input
from repro.kernels import assign_cached_centroids
from repro.obs import MetricsRegistry


@pytest.fixture(scope="module")
def workload():
    net = get_benchmark("144-24")
    cfg = sdgc_config(net.num_layers)
    y0 = np.asarray(get_input("144-24", 64, seed=1))
    return net, cfg, y0


def fresh_block(width=64, seed=2):
    return np.asarray(get_input("144-24", width, seed=seed))


# ----------------------------------------------------------- CentroidCache
def test_cache_validates_config():
    with pytest.raises(ConfigError):
        CentroidCache(tolerance=-0.1)
    with pytest.raises(ConfigError):
        CentroidCache(max_centroids=0)


def entry_kwargs(n=4, c=2):
    """fill() keyword arguments for a toy (n, c) conversion."""
    return dict(
        cent_y=np.ones((n, c), dtype=np.float32),
        z_cent=[np.ones((n, c), dtype=np.float32)],
        cent_final=np.ones((n, c), dtype=np.float32),
        baseline_distance=0.1,
        baseline_density=0.1,
    )


def test_cache_fill_lookup_roundtrip():
    cache = CentroidCache()
    assert cache.lookup(3, 4) is None  # cold: counts a miss
    assert cache.fill(3, **entry_kwargs())
    entry = cache.lookup(3, 4)
    assert isinstance(entry, CachedConversion)
    assert entry.n_centroids == 2
    stats = cache.stats()
    assert stats == {
        "entries": 1, "nbytes": entry.nbytes, "hits": 0, "misses": 1,
        "fills": 1, "skipped_fills": 0,
        "invalidations": {}, "tolerance": 0.5,
        "last_distance": None, "last_density": None,
    }
    # 3 float32 (4, 2) arrays: centroids, one trajectory layer, final state
    assert entry.nbytes == 3 * 4 * 2 * 4


def test_cache_rejects_oversized_conversions():
    cache = CentroidCache(max_centroids=1)
    assert not cache.fill(3, **entry_kwargs(c=2))
    assert cache.stats()["skipped_fills"] == 1
    assert len(cache) == 0


def test_cache_shape_mismatch_invalidates():
    cache = CentroidCache()
    cache.fill(3, **entry_kwargs(n=4))
    assert cache.lookup(3, n_rows=5) is None  # width changed underneath
    assert cache.stats()["invalidations"] == {"shape": 1}


def test_admit_policy_tolerance_budget():
    cache = CentroidCache(tolerance=0.5)
    kw = entry_kwargs()
    cache.fill(3, **kw)
    entry = cache.lookup(3, 4)
    assert cache.admit(entry, distance=0.14, density=0.1)  # within 0.1 * 1.5
    assert entry.served_blocks == 1
    assert not cache.admit(entry, distance=0.16, density=0.1)  # distance drift
    assert cache.stats()["invalidations"] == {"distance": 1}
    cache.fill(3, **kw)
    entry = cache.lookup(3, 4)
    assert not cache.admit(entry, distance=0.1, density=0.2)  # density drift
    assert cache.stats()["invalidations"] == {"distance": 1, "density": 1}
    assert cache.stats()["last_density"] == 0.2


def test_admit_zero_tolerance_accepts_baseline_exactly():
    cache = CentroidCache(tolerance=0.0)
    cache.fill(3, **entry_kwargs())
    entry = cache.lookup(3, 4)
    assert cache.admit(entry, distance=0.1, density=0.1)  # == baseline: admitted


def test_cache_scopes_entries_by_network_identity():
    """Two tenants sharing a cache and a threshold layer must not collide.

    Before network scoping, ``_entries`` was keyed by ``threshold_layer``
    alone: tenant B's fill at layer 3 silently replaced tenant A's entry,
    and A's next lookup happily served B's centroids — foreign structure
    that the Eq. 4-6 residue algebra would then be computed against.
    """
    cache = CentroidCache()
    cache.fill(3, **entry_kwargs(c=2), network="net-a")
    cache.fill(3, **entry_kwargs(c=1), network="net-b")  # same layer, other net
    assert len(cache) == 2  # no clobber
    a = cache.lookup(3, 4, network="net-a")
    b = cache.lookup(3, 4, network="net-b")
    assert a.n_centroids == 2 and a.network_key == "net-a"
    assert b.n_centroids == 1 and b.network_key == "net-b"
    # a scope never sees another scope's entry, even at the same layer
    assert cache.lookup(3, 4, network="net-c") is None
    assert cache.lookup(3, 4) is None  # legacy unscoped key is its own scope
    # per-entry invalidation drops only the owning scope's entry
    assert not cache.admit(a, distance=9.0, density=0.1)
    assert cache.lookup(3, 4, network="net-a") is None
    assert cache.lookup(3, 4, network="net-b") is not None
    # layer-wide invalidation sweeps the layer across every scope
    cache.fill(3, **entry_kwargs(), network="net-a")
    assert cache.invalidate(3, reason="manual") == 2
    assert len(cache) == 0


def test_cache_scope_uses_network_fingerprint(workload):
    net, _, _ = workload
    cache = CentroidCache()
    cache.fill(3, **entry_kwargs(), network=net)
    assert cache.lookup(3, 4, network=net).network_key == net.fingerprint
    assert cache.lookup(3, 4, network="somewhere-else") is None


def test_cache_metrics_binding():
    registry = MetricsRegistry()
    cache = CentroidCache().bind_metrics(registry)
    cache.lookup(3, 4)
    cache.fill(3, **entry_kwargs())
    cache.admit(cache.lookup(3, 4), 0.1, 0.1)
    cache.invalidate(3, reason="manual")
    snap = registry.snapshot()
    assert snap["centroid_cache_hits_total"] == 1
    assert snap["centroid_cache_misses_total"] == 1
    assert snap["centroid_cache_fills_total"] == 1
    assert snap['centroid_cache_invalidations_total{reason="manual"}'] == 1
    assert snap["centroid_cache_entries"] == 0  # scraped after the invalidation
    assert snap["centroid_reuse_assignment_distance"] == 0.1
    assert snap["centroid_reuse_residue_density"] == 0.1


# -------------------------------------------------- assign_cached_centroids
def test_assign_matches_bruteforce(rng):
    y = np.round(rng.random((20, 17)) * 2, 1).astype(np.float32)
    cents = np.round(rng.random((20, 5)) * 2, 1).astype(np.float32)
    assign, dist = assign_cached_centroids(y, cents, chunk=4)
    for j in range(y.shape[1]):
        d = (y[:, j, None] != cents).sum(axis=0)
        assert dist[j] == d.min()
        assert assign[j] == d.argmin()  # argmin ties -> lowest index


def test_assign_ties_resolve_to_lowest_index():
    y = np.zeros((4, 3), dtype=np.float32)
    cents = np.zeros((4, 2), dtype=np.float32)  # both centroids equidistant
    assign, dist = assign_cached_centroids(y, cents)
    assert list(assign) == [0, 0, 0]
    assert list(dist) == [0, 0, 0]


def test_assign_validates_shapes():
    with pytest.raises(ShapeError):
        assign_cached_centroids(np.zeros(4), np.zeros((4, 1)))
    with pytest.raises(ShapeError):
        assign_cached_centroids(np.zeros((4, 2)), np.zeros((5, 1)))
    with pytest.raises(ConfigError):
        assign_cached_centroids(np.zeros((4, 2)), np.zeros((4, 0)))


# ------------------------------------------------ update_residues_external
def test_update_residues_external_matches_algebra(rng):
    n, b = 6, 5
    z_sub = rng.standard_normal((n, b)).astype(np.float32)
    z_cent = rng.standard_normal((n, b)).astype(np.float32)
    bias = rng.standard_normal(n).astype(np.float32)
    ymax = 0.9
    out, ne = update_residues_external(z_sub, z_cent, bias, ymax)
    zc = z_cent + bias[:, None]
    expected = np.clip(zc + z_sub, 0, ymax) - np.clip(zc, 0, ymax)
    assert np.allclose(out, expected)
    assert np.array_equal(ne, (out != 0).any(axis=0))


def test_update_residues_external_does_not_mutate_cached_trajectory(rng):
    z_sub = rng.standard_normal((4, 3)).astype(np.float32)
    z_cent = rng.standard_normal((4, 3)).astype(np.float32)
    before = z_cent.copy()
    update_residues_external(z_sub, z_cent, 0.5, 1.0, prune_threshold=0.1)
    assert np.array_equal(z_cent, before)


def test_update_residues_external_validates_shapes():
    with pytest.raises(ShapeError):
        update_residues_external(np.zeros((3, 2)), np.zeros((4, 2)), 0.0, 1.0)


# ------------------------------------------------------- pipeline-level reuse
def test_repeated_block_hits_and_is_bitwise_identical(workload):
    net, cfg, y0 = workload
    cache = CentroidCache(tolerance=0.0)
    engine = SNICIT(net, cfg, reuse=cache)
    reference = SNICIT(net, cfg).infer(y0)
    first = engine.infer(y0)   # fill
    second = engine.infer(y0)  # assign-only hit
    assert first.stats["centroid_reuse"] == {"enabled": True, "hit": False, "reason": "cold"}
    assert second.stats["centroid_reuse"]["hit"] is True
    assert np.array_equal(first.y, reference.y)
    assert np.array_equal(second.y, reference.y)
    assert cache.stats()["hits"] == 1 and cache.stats()["fills"] == 1
    # hit blocks carry no in-block centroids: they all live in the cache
    assert second.stats["n_centroids"] == cache.lookup(
        cfg.for_network(net.num_layers).threshold_layer, net.input_dim, network=net
    ).n_centroids
    assert second.stats["centroid_cols"].size == 0


def test_same_mix_block_hits_with_matching_categories(workload):
    from repro.inference import sdgc_categories

    net, cfg, y0 = workload
    other = fresh_block(seed=2)
    engine = SNICIT(net, cfg, reuse=CentroidCache(tolerance=0.5))
    engine.infer(y0)
    hit = engine.infer(other)
    assert hit.stats["centroid_reuse"]["hit"] is True
    reference = SNICIT(net, cfg).infer(other)
    assert np.array_equal(sdgc_categories(hit.y), sdgc_categories(reference.y))


def test_reuse_is_lossless_without_pruning(workload):
    net, _, y0 = workload
    cfg = sdgc_config(net.num_layers, prune_threshold=0.0)
    other = fresh_block(seed=3)
    engine = SNICIT(net, cfg, reuse=CentroidCache(tolerance=1e9))
    engine.infer(y0)
    hit = engine.infer(other)
    assert hit.stats["centroid_reuse"]["hit"] is True
    reference = SNICIT(net, cfg).infer(other)
    np.testing.assert_allclose(hit.y, reference.y, rtol=0, atol=1e-4)


def test_drift_invalidates_and_falls_back(workload):
    net, cfg, y0 = workload
    drifted = (y0 * 2.0).astype(np.float32)  # amplitude shift
    cache = CentroidCache(tolerance=0.5)
    engine = SNICIT(net, cfg, reuse=cache)
    engine.infer(y0)
    result = engine.infer(drifted)
    info = result.stats["centroid_reuse"]
    assert info["hit"] is False and info["reason"] == "stale"
    assert cache.stats()["invalidations"] == {"distance": 1}
    # the fall-back full conversion is exactly the reuse-off path
    reference = SNICIT(net, cfg).infer(drifted)
    assert np.array_equal(result.y, reference.y)
    # and it refilled the cache with the drifted mix
    assert cache.stats()["fills"] == 2
    assert engine.infer(drifted).stats["centroid_reuse"]["hit"] is True


def test_oversized_conversion_not_captured(workload):
    net, cfg, y0 = workload
    cache = CentroidCache(max_centroids=1)
    engine = SNICIT(net, cfg, reuse=cache)
    engine.infer(y0)
    assert len(cache) == 0  # conversion had more centroids than the cap
    assert engine.infer(y0).stats["centroid_reuse"] == {
        "enabled": True, "hit": False, "reason": "cold"
    }
