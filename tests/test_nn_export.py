"""Exporting trained models into the inference SparseNetwork format."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.nn import BoundedReLU, Dense, Flatten, Sequential, SparseLinear, export_sparse_stack


def small_model(rng, n=12, l_sparse=3):
    layers = [Flatten(), Dense(16, n, rng), BoundedReLU(1.0)]
    for _ in range(l_sparse):
        layers += [SparseLinear(n, n, 0.5, rng), BoundedReLU(1.0)]
    layers += [Dense(n, 4, rng)]
    return Sequential(layers)


def test_export_structure(rng):
    model = small_model(rng)
    stack = export_sparse_stack(model)
    assert stack.network.num_layers == 3
    assert stack.network.ymax == 1.0
    assert len(stack.head_layers) == 3
    assert len(stack.tail_layers) == 1
    for spec in stack.network.layers:
        assert isinstance(spec.bias, np.ndarray)
        assert spec.weight.shape == (12, 12)


def test_export_weights_are_transposed_and_masked(rng):
    model = small_model(rng, l_sparse=1)
    sparse_layer = model.layers[3]
    stack = export_sparse_stack(model)
    w = stack.network.layers[0].weight.to_dense()
    assert np.allclose(w, (sparse_layer.weight.value * sparse_layer.mask).T, atol=1e-7)


def test_head_stack_tail_equals_model(rng):
    model = small_model(rng)
    images = rng.random((9, 4, 4)).astype(np.float32)
    expected = model.forward(images)
    stack = export_sparse_stack(model)
    got = stack.reference_logits(images)
    assert np.allclose(got, expected, atol=1e-4)


def test_head_produces_column_layout(rng):
    model = small_model(rng)
    stack = export_sparse_stack(model)
    images = rng.random((5, 4, 4)).astype(np.float32)
    y0 = stack.head(images)
    assert y0.shape == (12, 5)


def test_export_requires_sparse_layers(rng):
    model = Sequential([Flatten(), Dense(4, 2, rng)])
    with pytest.raises(ConfigError, match="no SparseLinear"):
        export_sparse_stack(model)


def test_export_requires_activation_after_sparse(rng):
    model = Sequential([Flatten(), SparseLinear(4, 4, 0.5, rng), Dense(4, 2, rng)])
    with pytest.raises(ConfigError, match="BoundedReLU"):
        export_sparse_stack(model)


def test_export_requires_consistent_ymax(rng):
    model = Sequential([
        Flatten(),
        SparseLinear(4, 4, 0.5, rng), BoundedReLU(1.0),
        SparseLinear(4, 4, 0.5, rng), BoundedReLU(2.0),
        Dense(4, 2, rng),
    ])
    with pytest.raises(ConfigError, match="ymax"):
        export_sparse_stack(model)


def test_export_requires_contiguous_sparse_run(rng):
    model = Sequential([
        SparseLinear(4, 4, 0.5, rng), BoundedReLU(1.0),
        Dense(4, 4, rng), BoundedReLU(1.0),
        SparseLinear(4, 4, 0.5, rng), BoundedReLU(1.0),
    ])
    with pytest.raises(ConfigError, match="alternate"):
        export_sparse_stack(model)


def test_snicit_on_exported_stack_is_lossless_without_pruning(rng):
    from repro.core import SNICIT, SNICITConfig

    model = small_model(rng, n=16, l_sparse=4)
    stack = export_sparse_stack(model)
    images = rng.random((40, 4, 4)).astype(np.float32)
    y0 = stack.head(images)
    cfg = SNICITConfig(
        threshold_layer=2, sample_size=16, downsample_dim=None, prune_threshold=0.0
    )
    res = SNICIT(stack.network, cfg).infer(y0)
    expected = model.forward(images)
    got = stack.tail(res.y)
    assert np.allclose(got, expected, atol=1e-3)
