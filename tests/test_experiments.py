"""Integration smoke tests: every experiment module runs end to end at tiny
scale and produces a well-formed report with the paper's qualitative shape.

The full-scale versions (with shape assertions at real batch sizes) live in
benchmarks/; these keep the experiment plumbing under unit-test coverage.
"""

import pytest

from repro.harness.experiments import (
    ExperimentReport,
    sdgc_config,
    sdgc_threshold,
)
from repro.harness.experiments import (
    fig1,
    fig6,
    fig7,
    fig8,
    fig9,
    fig10,
    fig11,
    fig12,
    table1,
    table3,
    table4,
)


def check_report(report: ExperimentReport) -> str:
    rendered = report.render()
    assert report.experiment in rendered
    assert rendered.count("\n") >= 2
    return rendered


def test_common_sdgc_threshold():
    assert sdgc_threshold(120) == 30  # the paper's t
    assert sdgc_threshold(24) == 12
    cfg = sdgc_config(120)
    assert cfg.sample_size == 32 and cfg.downsample_dim == 16
    assert cfg.eta == cfg.eps == 0.03


def test_table1_report():
    report = table1.run()
    check_report(report)
    assert len(report.data) == 12


def test_table3_tiny():
    report = table3.run(scale=0.05, benchmarks=["144-24"])
    check_report(report)
    row = report.data["144-24"]
    assert row["snicit_ms"] > 0 and row["x_xy"] > 0


def test_table4_single_row():
    from repro.harness.experiments.table4 import run_one

    row = run_one("C", batch=128)
    assert row["x_snig"] > 0 and abs(row["acc_loss"]) < 5


def test_fig1_tiny():
    report = fig1.run(scale=0.1, tsne_samples=30)
    check_report(report)
    seps = report.data["separations"]
    assert len(seps) >= 2
    assert report.data["intensity_snicit"][-1] <= report.data["intensity_dense"][-1]


def test_fig6_tiny():
    report = fig6.run(scale=0.05, benchmarks=["256-24"])
    check_report(report)
    assert "256-24" in report.data


def test_fig7_tiny():
    report = fig7.run(scale=0.05, benchmarks=("144-24",))
    check_report(report)
    shares = report.data["144-24"]
    total = sum(shares[s] for s in
                ("pre_convergence", "conversion", "post_convergence", "recovery"))
    assert total == pytest.approx(100.0)


def test_fig8_tiny():
    report = fig8.run(scale=0.05, benchmarks=("144-24",), step=12)
    check_report(report)
    assert len(report.data["144-24"]["t"]) == 2


def test_fig9_tiny():
    report = fig9.run(scale=1.0, benchmarks=("144-24",), batches=(40, 80))
    check_report(report)
    assert len(report.data["144-24"]["snicit_ms"]) == 2


def test_fig10_tiny():
    report = fig10.run(scale=0.1, dnn_ids=("C",))
    check_report(report)
    assert report.data["C"]["recovery"] < 50


def test_fig11_tiny():
    report = fig11.run(scale=0.1)
    check_report(report)
    assert set("ABCD") <= set(report.data)


def test_fig12_tiny():
    report = fig12.run(scale=1.0, dnn_ids=("C",), batches=(64,), t_step=6)
    check_report(report)
    assert "mean_speedup_by_batch" in report.data["C"]
