"""Gustavson spGEMM correctness."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.sparse import CSRMatrix
from repro.sparse.spgemm import spgemm


def rand(rng, shape, density=0.3):
    d = rng.random(shape)
    d[d > density] = 0.0
    return d


def test_spgemm_matches_dense(rng):
    a = rand(rng, (8, 6))
    b = rand(rng, (6, 9))
    out = spgemm(CSRMatrix.from_dense(a), CSRMatrix.from_dense(b))
    assert np.allclose(out.to_dense(), a @ b, atol=1e-12)


def test_spgemm_result_is_canonical(rng):
    a = rand(rng, (5, 5))
    b = rand(rng, (5, 5))
    out = spgemm(CSRMatrix.from_dense(a), CSRMatrix.from_dense(b))
    out.validate()
    # indices sorted within each row
    for i in range(out.shape[0]):
        cols, _ = out.row(i)
        assert (np.diff(cols) > 0).all() if len(cols) > 1 else True


def test_spgemm_empty_operand(rng):
    a = CSRMatrix.from_dense(np.zeros((3, 4)))
    b = CSRMatrix.from_dense(rand(rng, (4, 2)))
    out = spgemm(a, b)
    assert out.nnz == 0
    assert out.shape == (3, 2)


def test_spgemm_shape_mismatch(rng):
    a = CSRMatrix.from_dense(rand(rng, (3, 4)))
    with pytest.raises(ShapeError):
        spgemm(a, a)


def test_spgemm_identity(rng):
    d = rand(rng, (6, 6))
    eye = CSRMatrix.from_dense(np.eye(6))
    out = spgemm(eye, CSRMatrix.from_dense(d))
    assert np.allclose(out.to_dense(), d)


def test_spgemm_numeric_cancellation_dropped():
    # +1 * 1 + (-1) * 1 cancels to exact zero -> entry must be dropped
    a = CSRMatrix.from_dense(np.array([[1.0, -1.0]]))
    b = CSRMatrix.from_dense(np.array([[1.0], [1.0]]))
    out = spgemm(a, b)
    assert out.nnz == 0
