"""Per-thread kernel executor semantics (barriers, shared memory, atomics)."""

import numpy as np
import pytest

from repro.errors import KernelError
from repro.gpu.kernel import SYNC, BlockDim, GridDim, SyncCount, launch_kernel


def test_thread_indices_cover_grid(device):
    seen = np.zeros((2, 3, 4), dtype=np.int64)  # (grid.x, block.y, block.x)

    def body(ctx, out):
        out[ctx.bx, ctx.ty, ctx.tx] += 1
        return
        yield  # pragma: no cover - makes this a generator

    launch_kernel(device, body, grid=GridDim(2, 1), block=BlockDim(4, 3), args=(seen,))
    assert (seen == 1).all()


def test_shared_memory_is_per_block(device):
    # every block's threads increment a block-shared counter; totals per block
    totals = np.zeros(3, dtype=np.int64)

    def body(ctx, totals):
        acc = ctx.shared("acc", 1, dtype=np.int64)
        ctx.atomic_add(acc, 0, 1)
        yield SYNC
        if ctx.tx == 0:
            totals[ctx.bx] = acc[0]

    launch_kernel(device, body, grid=3, block=8, args=(totals,))
    assert (totals == 8).all()


def test_barrier_orders_writes_before_reads(device):
    # thread 0 writes, all threads read after the barrier; without barrier
    # semantics this would be racy (interleaved threads read stale zeros)
    out = np.zeros(16)

    def body(ctx, out):
        sh = ctx.shared("x", 1)
        if ctx.tx == 0:
            sh[0] = 42.0
        yield SYNC
        out[ctx.tx] = sh[0]

    launch_kernel(device, body, grid=1, block=16, args=(out,))
    assert (out == 42.0).all()


def test_sync_count_returns_block_wide_count(device):
    counts = np.zeros(8, dtype=np.int64)

    def body(ctx, counts):
        got = yield SyncCount(ctx.tx % 3 == 0)
        counts[ctx.tx] = got

    launch_kernel(device, body, grid=1, block=8, args=(counts,))
    # tx in {0, 3, 6} -> 3 threads true, every thread receives 3
    assert (counts == 3).all()


def test_sync_count_zero_is_delivered(device):
    counts = np.full(4, -1, dtype=np.int64)

    def body(ctx, counts):
        got = yield SyncCount(False)
        counts[ctx.tx] = got

    launch_kernel(device, body, grid=1, block=4, args=(counts,))
    assert (counts == 0).all()


def test_early_return_threads_skip_barriers(device):
    # guard pattern: threads beyond n return before the barrier
    out = np.zeros(4)

    def body(ctx, out):
        if ctx.tx >= 2:
            return
        yield SYNC
        out[ctx.tx] = 1.0

    launch_kernel(device, body, grid=1, block=4, args=(out,))
    assert list(out) == [1.0, 1.0, 0.0, 0.0]


def test_divergent_barrier_kinds_raise(device):
    def body(ctx):
        if ctx.tx == 0:
            yield SYNC
        else:
            yield SyncCount(True)

    with pytest.raises(KernelError, match="divergent"):
        launch_kernel(device, body, grid=1, block=2)


def test_atomics_are_counted_in_charge(device):
    arr = np.zeros(1)

    def body(ctx, arr):
        ctx.atomic_add(arr, 0, 1.0)
        return
        yield  # pragma: no cover

    charge = launch_kernel(device, body, grid=2, block=5, args=(arr,))
    assert arr[0] == 10.0
    assert charge.atomics == 10


def test_atomic_add_returns_old_value(device):
    old_values = np.zeros(4)

    def body(ctx, out):
        sh = ctx.shared("a", 1)
        # threads run sequentially within a segment, so olds are 0..3 in some order
        out[ctx.tx] = ctx.atomic_add(sh, 0, 1.0)
        return
        yield  # pragma: no cover

    launch_kernel(device, body, grid=1, block=4, args=(old_values,))
    assert sorted(old_values) == [0.0, 1.0, 2.0, 3.0]


def test_atomic_max(device):
    arr = np.zeros(1)

    def body(ctx, arr):
        ctx.atomic_max(arr, 0, float(ctx.tx))
        return
        yield  # pragma: no cover

    launch_kernel(device, body, grid=1, block=7, args=(arr,))
    assert arr[0] == 6.0


def test_block_size_limit_enforced(device):
    def body(ctx):
        return
        yield  # pragma: no cover

    with pytest.raises(KernelError, match="exceeds"):
        launch_kernel(device, body, grid=1, block=BlockDim(2048, 1))


def test_empty_geometry_rejected(device):
    def body(ctx):
        return
        yield  # pragma: no cover

    with pytest.raises(KernelError, match="empty"):
        launch_kernel(device, body, grid=0, block=4)


def test_charge_merges_explicit_and_measured(device):
    from repro.gpu.costmodel import KernelCharge

    def body(ctx, arr):
        ctx.atomic_add(arr, 0, 1)
        yield SYNC

    arr = np.zeros(1)
    charge = launch_kernel(
        device, body, grid=1, block=2, args=(arr,),
        charge=KernelCharge(name="k", flops=123.0),
    )
    assert charge.flops == 123.0
    assert charge.atomics == 2
    assert charge.barriers >= 1
    assert device.snapshot().flops == 123.0


def test_tree_reduction_kernel(device):
    """A classic shared-memory tree reduction: exercises repeated barriers
    with data-dependent shared-memory reads between them."""
    import numpy as np

    data = np.arange(64, dtype=np.float64)
    out = np.zeros(2)

    def body(ctx, data, out):
        n = 32  # elements per block
        sh = ctx.shared("buf", n)
        base = ctx.bx * n
        sh[ctx.tx] = data[base + ctx.tx]
        yield SYNC
        stride = n // 2
        while stride > 0:
            if ctx.tx < stride:
                sh[ctx.tx] += sh[ctx.tx + stride]
            yield SYNC
            stride //= 2
        if ctx.tx == 0:
            out[ctx.bx] = sh[0]

    launch_kernel(device, body, grid=2, block=32, args=(data, out))
    assert out[0] == data[:32].sum()
    assert out[1] == data[32:].sum()


def test_grid_stride_loop_with_sync_count(device):
    """Counting nonzeros of a vector with __syncthreads_count over a
    grid-stride loop (the Algorithm-3 access pattern at awkward sizes)."""
    import numpy as np

    vec = np.zeros(37)
    vec[[0, 5, 9, 20, 36]] = 1.0
    result = np.zeros(1, dtype=np.int64)

    def body(ctx, vec, result):
        n = len(vec)
        bd = ctx.block_dim.x
        total = 0
        for it in range((n + bd - 1) // bd):
            j = ctx.tx + it * bd
            pred = bool(j < n and vec[j] != 0)
            got = yield SyncCount(pred)
            total += got
        if ctx.tx == 0:
            result[0] = total

    launch_kernel(device, body, grid=1, block=8, args=(vec, result))
    assert result[0] == 5
