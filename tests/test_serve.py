"""Warm-session serving layer: EngineSession, MicroBatcher, InferenceServer."""

import json

import numpy as np
import pytest

from repro.errors import ConfigError, ServeOverflowError, ShapeError
from repro.harness.experiments.common import sdgc_config
from repro.radixnet import benchmark_input, build_benchmark
from repro.serve import (
    EngineSession,
    InferenceServer,
    MicroBatcher,
    bench_serve,
    load_bench_records,
)


@pytest.fixture(scope="module")
def bench():
    net = build_benchmark("144-24", seed=0)
    cfg = sdgc_config(net.num_layers)
    y0 = benchmark_input(net, 64, seed=1)
    return net, cfg, y0


class FakeClock:
    """Deterministic clock for max-wait tests."""

    def __init__(self):
        self.now = 0.0

    def advance(self, dt: float) -> None:
        self.now += dt

    def __call__(self) -> float:
        return self.now


def make_session(bench) -> EngineSession:
    net, cfg, _ = bench
    return EngineSession(net, cfg)


# -------------------------------------------------------------- EngineSession
def test_session_runs_and_counts(bench):
    net, cfg, y0 = bench
    session = make_session(bench)
    assert session.warmup_seconds > 0  # views were pre-built
    r1 = session.run(y0)
    r2 = session.run(y0)
    assert np.array_equal(r1.y, r2.y)  # warm reruns are deterministic
    stats = session.stats()
    assert stats["calls"] == 2
    assert stats["columns"] == 2 * y0.shape[1]
    assert stats["columns_per_second"] > 0
    assert set(r1.stage_seconds) <= set(stats["stage_seconds"])
    assert stats["scratch"]["hits"] > 0  # pooled buffers actually recycled


def test_session_matches_cold_engine(bench):
    from repro.harness.runner import run_engine

    net, cfg, y0 = bench
    warm = make_session(bench).run(y0)
    cold = run_engine("snicit", net, y0, snicit_config=cfg)
    assert np.array_equal(warm.y, cold.result.y)


def test_session_plan_preempts_per_block_redecision(bench):
    """Regression: warm blocks used to re-derive each layer's strategy via
    memo lookups per call (and before that, bypassed the memo entirely).
    Warmup now bakes a per-layer plan; every warm spMM must dispatch through
    it, leaving the memo untouched."""
    net, cfg, y0 = bench
    session = make_session(bench)
    assert session.plan is not None
    assert session.plan.stats()["layers"] == net.num_layers
    session.run(y0)
    first = session.plan.stats()["calls"]
    assert first > 0
    session.run(y0)
    assert session.plan.stats()["calls"] > first
    # the plan preempts the memo: no per-block strategy re-decision at all
    stats = session.memo.stats()
    assert (stats["entries"], stats["hits"], stats["misses"]) == (0, 0, 0)
    # strategy counters keep flowing through the pre-resolved plan handles
    snap = session.metrics.snapshot()
    assert any(k.startswith("spmm_strategy_total") and v > 0 for k, v in snap.items())


def test_session_demote_drops_plan_and_rewarm_restores(bench):
    net, cfg, y0 = bench
    session = make_session(bench)
    reference = session.run(y0)
    session.demote()
    assert session.plan is None and session.engine.plan is None
    # a demoted session keeps serving (champion path) bitwise identically
    assert np.array_equal(session.run(y0).y, reference.y)
    session.warmup()
    assert session.plan is not None
    assert np.array_equal(session.run(y0).y, reference.y)


def test_session_centroid_reuse_lifecycle(bench):
    net, cfg, y0 = bench
    session = EngineSession(net, cfg, centroid_reuse=True, reuse_tolerance=0.0)
    off = make_session(bench)
    r1, r2 = session.run(y0), session.run(y0)
    reference = off.run(y0)
    assert np.array_equal(r1.y, reference.y)
    assert np.array_equal(r2.y, reference.y)  # assign-only hit, bitwise equal
    stats = session.stats()
    assert stats["centroid_cache"]["hits"] == 1
    assert stats["centroid_cache"]["fills"] == 1
    snap = session.metrics.snapshot()
    assert snap["centroid_cache_hits_total"] == 1
    assert snap["centroid_cache_entries"] == 1
    # reuse-off sessions advertise no cache at all
    assert "centroid_cache" not in off.stats()


def test_session_reuse_ignored_for_baseline_engines(bench):
    net, _, _ = bench
    session = EngineSession(net, kind="xy2021", centroid_reuse=True)
    assert session.reuse is None


def test_batcher_counts_reuse_outcomes(bench):
    net, cfg, y0 = bench
    session = EngineSession(net, cfg, centroid_reuse=True, reuse_tolerance=0.0)
    batcher = MicroBatcher(session, max_batch=32, max_wait_s=60.0)
    for _ in range(2):
        batcher.submit(y0[:, :32])
    stats = batcher.stats()
    assert stats["reuse_blocks"] == {"cold": 1, "hit": 1}
    assert session.metrics.snapshot()['serve_reuse_blocks_total{outcome="hit"}'] == 1


def test_session_requires_config_for_snicit(bench):
    net, _, _ = bench
    with pytest.raises(ConfigError):
        EngineSession(net, None)


def test_session_baseline_engine(bench):
    net, _, y0 = bench
    session = EngineSession(net, kind="xy2021")
    res = session.run(y0)
    assert res.y.shape == (net.output_dim, y0.shape[1])
    assert session.stats()["engine"] == "xy2021"


# --------------------------------------------------------------- MicroBatcher
def test_batcher_uneven_requests_match_single_block(bench):
    """Requests of uneven widths packed into one block must slice back to
    exactly the block run's columns, request by request."""
    net, cfg, y0 = bench
    widths = [1, 3, 5, 2, 4]
    requests, lo = [], 0
    for k in widths:
        requests.append(y0[:, lo : lo + k])
        lo += k

    batcher = MicroBatcher(make_session(bench), max_batch=64, max_wait_s=60.0)
    tickets = [batcher.submit(r) for r in requests]
    assert not tickets[0].ready  # 15 columns < max_batch: still queued
    assert batcher.drain() == 1  # everything fit one block

    reference = make_session(bench).run(y0[:, :lo])
    col = 0
    for ticket, k in zip(tickets, widths):
        assert ticket.ready
        assert ticket.y.shape == (net.output_dim, k)
        assert np.array_equal(ticket.y, reference.y[:, col : col + k])
        assert ticket.batch_columns == lo
        col += k


def test_batcher_flushes_at_max_batch(bench):
    batcher = MicroBatcher(make_session(bench), max_batch=8, max_wait_s=60.0)
    tickets = [batcher.submit(np.ones((144, 4), dtype=np.float32)) for _ in range(3)]
    # third submit crossed 8 columns -> first two rode out together
    assert tickets[0].ready and tickets[1].ready
    assert not tickets[2].ready
    assert tickets[0].batch_columns == 8
    stats = batcher.stats()
    assert stats["batches"] == 1 and stats["pending_requests"] == 1


def test_batcher_oversized_request_runs_alone(bench):
    net, cfg, y0 = bench
    batcher = MicroBatcher(make_session(bench), max_batch=4, max_wait_s=60.0)
    ticket = batcher.submit(y0[:, :10])  # wider than max_batch
    assert ticket.ready and ticket.batch_columns == 10


def test_batcher_max_wait_flush(bench):
    clock = FakeClock()
    batcher = MicroBatcher(
        make_session(bench), max_batch=64, max_wait_s=0.5, clock=clock
    )
    ticket = batcher.submit(np.ones((144, 2), dtype=np.float32))
    assert batcher.poll() == 0  # just arrived: not due yet
    clock.advance(0.4)
    assert batcher.poll() == 0  # still under max_wait
    clock.advance(0.2)
    assert batcher.poll() == 1  # oldest aged past max_wait -> flushed
    assert ticket.ready
    assert ticket.latency_seconds == pytest.approx(0.6)
    assert batcher.stats()["wait_flushes"] == 1


def test_batcher_queue_overflow_rejects(bench):
    batcher = MicroBatcher(
        make_session(bench), max_batch=64, max_wait_s=60.0, max_pending=2
    )
    req = np.ones((144, 1), dtype=np.float32)
    batcher.submit(req)
    batcher.submit(req)
    with pytest.raises(ServeOverflowError):
        batcher.submit(req)
    assert batcher.stats()["rejected"] == 1
    assert batcher.stats()["pending_requests"] == 2  # nothing dropped
    assert batcher.drain() == 1


def test_batcher_rejects_bad_requests(bench):
    batcher = MicroBatcher(make_session(bench), max_batch=8)
    with pytest.raises(ShapeError):
        batcher.submit(np.ones((7, 2), dtype=np.float32))  # wrong input dim
    with pytest.raises(ShapeError):
        batcher.submit(np.ones((144, 0), dtype=np.float32))  # empty request
    with pytest.raises(ShapeError):
        MicroBatcher(make_session(bench), max_batch=0)


def test_ticket_access_before_resolution_raises(bench):
    batcher = MicroBatcher(make_session(bench), max_batch=64, max_wait_s=60.0)
    ticket = batcher.submit(np.ones((144, 1), dtype=np.float32))
    with pytest.raises(ServeOverflowError):
        _ = ticket.y
    with pytest.raises(ServeOverflowError):
        _ = ticket.latency_seconds


# ------------------------------------------------------------ InferenceServer
def test_server_serves_stream_and_reports(bench):
    net, cfg, y0 = bench
    requests = [y0[:, lo : lo + 2] for lo in range(0, 32, 2)]
    server = InferenceServer(make_session(bench), max_batch=8, max_wait_s=60.0)
    report = server.serve(iter(requests))
    assert report.requests == len(requests)
    assert len(report.served) == len(requests) and not report.rejected
    assert report.columns == 32
    assert report.requests_per_second > 0
    quantiles = report.latency_quantiles()
    assert quantiles["p50"] <= quantiles["p95"] <= quantiles["p100"]
    summary = report.summary()
    assert summary["served"] == len(requests)
    assert server.stats()["batcher"]["batches"] >= 4


def test_server_overflow_is_recorded_not_silent(bench):
    net, cfg, y0 = bench
    requests = [y0[:, lo : lo + 1] for lo in range(12)]
    # queue of 2 and a batch the stream can never fill synchronously
    server = InferenceServer(
        make_session(bench), max_batch=64, max_wait_s=60.0, queue_limit=2
    )
    report = server.serve(iter(requests))
    assert len(report.rejected) == 10
    assert all(msg for _, msg in report.rejected)
    assert len(report.served) == 2
    assert all(t.ready for t in report.served)  # drained at end of stream


def test_serve_report_status_distinguishes_idle_from_shed(bench):
    from repro.serve import ServeReport

    # no traffic: nothing arrived, so there is no latency distribution at all
    idle = ServeReport(wall_seconds=1.0)
    assert idle.status == "no_traffic"
    assert idle.requests_per_second == 0.0
    assert idle.latency_quantiles() is None
    assert idle.summary()["status"] == "no_traffic"
    assert idle.summary()["latency_seconds"] is None

    # all rejected: traffic arrived but backpressure shed every request —
    # same 0.0 rps, but the status must say why
    shed = ServeReport(rejected=[(0, "full"), (1, "full")], wall_seconds=1.0)
    assert shed.status == "all_rejected"
    assert shed.requests == 2
    assert shed.requests_per_second == 0.0
    assert shed.latency_quantiles() is None
    assert shed.summary()["status"] == "all_rejected"


def test_serve_report_status_ok_when_anything_served(bench):
    net, cfg, y0 = bench
    server = InferenceServer(make_session(bench), max_batch=8, max_wait_s=60.0)
    report = server.serve(iter([y0[:, :2]]))
    assert report.status == "ok"
    assert report.summary()["status"] == "ok"
    assert report.latency_quantiles() is not None


def test_server_all_rejected_stream_reports_status(bench):
    net, cfg, y0 = bench
    server = InferenceServer(
        make_session(bench), max_batch=64, max_wait_s=60.0, queue_limit=1
    )
    # saturate the queue before the stream: every arrival then overflows
    parked = server.submit(y0[:, :1])
    report = server.serve(iter(y0[:, :1] for _ in range(3)))
    assert parked.ready  # end-of-stream drain still resolves the old ticket
    assert report.status == "all_rejected"
    assert len(report.rejected) == 3 and not report.served
    assert report.requests_per_second == 0.0
    assert report.latency_quantiles() is None


# ------------------------------------------------------------------ bench JSON
def test_bench_serve_writes_machine_readable_json(tmp_path):
    out = tmp_path / "BENCH_serve.json"
    result = bench_serve(
        benchmark="144-24", requests=6, request_cols=2, max_batch=6, out=out
    )
    on_disk = json.loads(out.read_text())
    assert on_disk["schema"] == 6
    records = load_bench_records(on_disk)
    assert len(records) == 1
    rec = records[0]
    assert rec["tier"] == rec["benchmark"] == "144-24"
    assert rec["requests"] == 6
    assert rec["cold"]["requests_per_second"] > 0
    assert rec["warm"]["requests_per_second"] > 0
    assert rec["speedup"] == pytest.approx(result["tiers"][0]["speedup"])
    assert rec["categories_match"] is True
    assert rec["warm"]["batcher"]["rejected"] == 0
    # warm blocks dispatch through the warmup-baked strategy plan (no
    # per-block re-decision), and the record reports it
    plan = rec["warm"]["session"]["plan"]
    assert plan["layers"] > 0
    assert plan["calls"] > 0
    memo = rec["warm"]["session"]["memo"]
    assert (memo["entries"], memo["hits"], memo["misses"]) == (0, 0, 0)
    # warm-vs-cold bitwise agreement is recorded per tier (SDGC tiers may
    # legitimately differ — conversion grouping depends on the batch shape)
    assert isinstance(rec["outputs_identical"], bool)
    assert rec["warm_over_cold"] > 0
    # steady-state view: warmup and the first (plan-priming) block are
    # reported separately from the hot-path throughput
    steady = rec["warm"]["steady_state"]
    assert steady["blocks"] == rec["warm"]["batcher"]["batches"] - 1
    assert rec["warm"]["first_block"]["busy_seconds"] > 0
    assert rec["warm"]["session"]["warmup_seconds"] > 0


def test_load_bench_records_accepts_legacy_shape():
    legacy = {"benchmark": "144-24", "cold": {}, "warm": {}, "speedup": 1.0}
    records = load_bench_records(legacy)
    assert records[0]["tier"] == "144-24"
    from repro.errors import ConfigError

    with pytest.raises(ConfigError):
        load_bench_records({"something": "else"})
    with pytest.raises(ConfigError):
        load_bench_records([])


def test_bench_serve_reuse_ab_pass_on_repeat_stream(tmp_path):
    result = bench_serve(
        benchmark="144-24", requests=8, request_cols=2, max_batch=8,
        out=None, stream="repeat", centroid_reuse=True, reuse_tolerance=0.0,
    )
    rec = load_bench_records(result)[0]
    reuse = rec["reuse"]
    # identical repeated blocks must hit assign-only and stay bitwise equal
    assert reuse["cache"]["hits"] > 0
    assert reuse["cache"]["fills"] == 1
    assert reuse["outputs_identical"] is True
    assert reuse["categories_match"] is True
    assert reuse["reuse_blocks"]["hit"] > 0
    assert result["stream"] == "repeat"


def test_bench_serve_drift_stream_invalidates(tmp_path):
    result = bench_serve(
        benchmark="144-24", requests=8, request_cols=4, max_batch=16,
        out=None, stream="drift", centroid_reuse=True, reuse_tolerance=0.5,
    )
    reuse = load_bench_records(result)[0]["reuse"]
    assert sum(reuse["cache"]["invalidations"].values()) > 0
    assert reuse["reuse_blocks"].get("stale", 0) > 0
    # stale blocks fall back to full conversion: categories stay correct
    assert reuse["categories_match"] is True
    assert load_bench_records(result)[0]["categories_match"] is True


# ------------------------------------------------------- latency attribution
def test_ticket_breakdown_attributes_latency(bench):
    net, cfg, y0 = bench
    batcher = MicroBatcher(make_session(bench), max_batch=8, max_wait_s=60.0)
    t1 = batcher.submit(y0[:, :2])
    t2 = batcher.submit(y0[:, 2:4])
    batcher.drain()
    for ticket in (t1, t2):
        b = ticket.breakdown()
        assert b["queue_wait_seconds"] == 0.0  # no intake queue in sync mode
        assert b["batch_wait_seconds"] >= 0.0
        assert b["execute_seconds"] > 0.0
        assert b["block_id"] == 1
        assert b["batch_columns"] == 4
        assert b["stage_seconds"]  # the block's per-stage split rides along
    # both tickets rode one block: they share its execute/stage accounting
    assert t1.execute_seconds == t2.execute_seconds
    assert t1.stage_seconds == t2.stage_seconds


def test_ticket_breakdown_before_packing_has_no_block_fields(bench):
    net, cfg, y0 = bench
    batcher = MicroBatcher(make_session(bench), max_batch=64, max_wait_s=60.0)
    ticket = batcher.submit(y0[:, :1])  # pending, nothing flushed yet
    b = ticket.breakdown()
    assert b["batch_wait_seconds"] is None
    assert b["execute_seconds"] is None and b["block_id"] is None
    batcher.drain()


def test_block_ids_are_sequential_across_flushes(bench):
    net, cfg, y0 = bench
    batcher = MicroBatcher(make_session(bench), max_batch=2, max_wait_s=60.0)
    t1 = batcher.submit(y0[:, :2])   # fills block 1
    t2 = batcher.submit(y0[:, 2:4])  # fills block 2
    assert (t1.block_id, t2.block_id) == (1, 2)


# ------------------------------------------------------------ resolve hook
def test_on_resolve_sees_every_resolved_ticket(bench):
    net, cfg, y0 = bench
    batcher = MicroBatcher(make_session(bench), max_batch=4, max_wait_s=60.0)
    seen = []
    batcher.on_resolve = seen.append
    tickets = [batcher.submit(y0[:, i : i + 1]) for i in range(3)]
    batcher.drain()
    assert seen == tickets
    assert all(t.ready for t in seen)


def test_on_resolve_failure_cannot_break_serving(bench):
    net, cfg, y0 = bench
    batcher = MicroBatcher(make_session(bench), max_batch=4, max_wait_s=60.0)

    def explode(ticket):
        raise RuntimeError("subscriber wedged")

    batcher.on_resolve = explode
    ticket = batcher.submit(y0[:, :2])
    batcher.drain()
    assert ticket.ready  # the guarded hook swallowed the subscriber's crash


class _DoomedSession:
    """Session stand-in whose every block dies mid-execution."""

    def __init__(self):
        from types import SimpleNamespace

        from repro.obs import MetricsRegistry, as_tracer

        self.tracer = as_tracer(None)
        self.metrics = MetricsRegistry()
        self.network = SimpleNamespace(
            validate_input=lambda y0: np.asarray(y0, dtype=np.float64)
        )

    def run(self, block):
        raise RuntimeError("engine died")


def test_on_resolve_sees_failed_tickets_too():
    batcher = MicroBatcher(_DoomedSession(), max_batch=4, max_wait_s=60.0)
    seen = []
    batcher.on_resolve = seen.append
    ticket = batcher.enqueue(np.ones((4, 2)))
    with pytest.raises(RuntimeError):
        batcher.drain()
    # the failure was routed to the ticket AND to the subscriber, with the
    # execute time stamped so a failed request is still attributable
    assert seen == [ticket]
    assert ticket.failed and ticket.execute_seconds is not None
    assert ticket.breakdown()["execute_seconds"] is not None


# -------------------------------------------------------------- JSON export
def test_serve_report_to_json_is_json_dumpable(bench):
    net, cfg, y0 = bench
    server = InferenceServer(make_session(bench), max_batch=8, max_wait_s=60.0)
    report = server.serve(iter([y0[:, :2], y0[:, 2:4]]))
    assert report.status == "ok"
    # consumers go through to_json: everything (numpy scalars included)
    # must be plain JSON by the time json.dumps sees it
    parsed = json.loads(json.dumps(report.to_json()))
    assert parsed["status"] == "ok"
    assert parsed["served"] == 2
    assert isinstance(parsed["latency_seconds"]["p99"], float)
