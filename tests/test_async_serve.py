"""Concurrency suite for the async serving transport (AsyncInferenceServer).

Deterministic control comes from a fake session whose ``run`` can be gated
on an event (to hold the worker mid-block) or told to fail on a given call;
the differential tests run the real SNICIT engine.  Every test is written
to pass under repetition (CI runs this module 20 times in a loop): nothing
asserts on wall-clock ordering between threads, only on resolution
outcomes, and every wait has a generous timeout.
"""

import random
import threading
import time
from types import SimpleNamespace

import numpy as np
import pytest

from repro.errors import ConfigError, ServeClosedError, ServeOverflowError, ShapeError
from repro.harness.experiments.common import sdgc_config
from repro.obs import MetricsRegistry, as_tracer
from repro.radixnet import benchmark_input, build_benchmark
from repro.serve import AsyncInferenceServer, EngineSession, InferenceServer

WAIT = 20.0  # generous resolution timeout; tests fail long before CI's guard


# ------------------------------------------------------------------ fixtures
@pytest.fixture(scope="module")
def bench():
    net = build_benchmark("144-24", seed=0)
    cfg = sdgc_config(net.num_layers)
    y0 = benchmark_input(net, 64, seed=1)
    return net, cfg, y0


class FakeNetwork:
    input_dim = 4

    def validate_input(self, y0):
        y0 = np.asarray(y0, dtype=np.float64)
        if y0.ndim != 2 or y0.shape[0] != self.input_dim:
            raise ShapeError(f"input must be ({self.input_dim}, B), got {y0.shape}")
        return y0


class FakeSession:
    """Engine-session stand-in with controllable blocking and failure.

    ``gate``: block executions park on it until it is set — requests then
    pile up in the intake queue deterministically.  ``fail_on_call``: the
    N-th ``run`` call raises, exercising mid-block exception routing.
    """

    def __init__(self, gate: threading.Event | None = None, fail_on_call: int | None = None):
        self.network = FakeNetwork()
        self.tracer = as_tracer(None)
        self.metrics = MetricsRegistry()
        self.gate = gate
        self.fail_on_call = fail_on_call
        self.calls = 0

    def run(self, y0):
        self.calls += 1
        if self.gate is not None:
            assert self.gate.wait(WAIT), "test gate never opened"
        if self.fail_on_call == self.calls:
            raise RuntimeError(f"injected failure on block {self.calls}")
        return SimpleNamespace(y=y0 * 2.0, stats={}, stage_seconds={})

    def stats(self):
        return {"calls": self.calls}


def req(k: int = 1, fill: float = 1.0) -> np.ndarray:
    return np.full((FakeNetwork.input_dim, k), fill)


# ------------------------------------------------------- differential (real)
def test_multithreaded_submit_matches_sync_server(bench):
    """N producers submitting concurrently must yield exactly the full set of
    outputs, with per-request categories identical to the synchronous server
    on the same stream (packing may differ; predictions may not)."""
    net, cfg, y0 = bench
    stream = [y0[:, lo : lo + 2] for lo in range(0, 64, 2)]

    sync = InferenceServer(
        EngineSession(net, cfg), max_batch=16, max_wait_s=60.0, queue_limit=len(stream)
    )
    sync_report = sync.serve(iter(stream))
    assert len(sync_report.served) == len(stream)
    sync_cats = [t.categories for t in sync_report.served]

    server = AsyncInferenceServer(
        EngineSession(net, cfg), max_batch=16, max_wait_s=0.005,
        queue_limit=len(stream),
    )
    results: dict[int, object] = {}
    lock = threading.Lock()

    def producer(worker: int):
        for index in range(worker, len(stream), 3):
            ticket = server.submit(stream[index])
            with lock:
                results[index] = ticket

    threads = [threading.Thread(target=producer, args=(w,)) for w in range(3)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(WAIT)
        assert not t.is_alive()
    assert server.close(drain=True, timeout=WAIT)

    assert sorted(results) == list(range(len(stream)))  # exactly the stream
    for index, ticket in results.items():
        assert ticket.ready, f"request {index} unresolved"
        assert ticket.y.shape == (net.output_dim, 2)
        assert np.array_equal(ticket.categories, sync_cats[index])


def test_single_producer_order_preserving_packing_is_bitwise_identical(bench):
    """With one producer and no max-wait pressure, async packing equals the
    synchronous server's, so outputs match bitwise, not just by category."""
    net, cfg, y0 = bench
    stream = [y0[:, lo : lo + 2] for lo in range(0, 32, 2)]
    sync = InferenceServer(
        EngineSession(net, cfg), max_batch=8, max_wait_s=60.0, queue_limit=len(stream)
    )
    sync_y = np.hstack([t.y for t in sync.serve(iter(stream)).served])

    server = AsyncInferenceServer(
        EngineSession(net, cfg), max_batch=8, max_wait_s=60.0, queue_limit=len(stream)
    )
    report = server.serve(iter(stream))
    assert report.status == "ok" and not report.rejected and not report.failed
    async_y = np.hstack(
        [t.y for t in sorted(report.served, key=lambda t: t.index)]
    )
    assert np.array_equal(async_y, sync_y)


# ------------------------------------------------------------ max-wait flush
def test_stalled_arrival_flushes_partial_block_via_max_wait():
    """A partial block with no further arrivals must flush once its oldest
    request ages past max_wait_s — not wait forever for a full block."""
    session = FakeSession()
    server = AsyncInferenceServer(session, max_batch=1024, max_wait_s=0.02)
    ticket = server.submit(req(2))
    assert ticket.wait(WAIT), "stalled arrival never flushed"
    assert ticket.ready
    assert np.array_equal(ticket.y, req(2) * 2.0)
    assert server.batcher.counters["wait_flushes"] >= 1
    assert ticket.latency_seconds >= ticket.queue_wait_seconds
    server.close()


# -------------------------------------------------------------- backpressure
def test_full_queue_rejects_under_reject_policy():
    gate = threading.Event()
    session = FakeSession(gate=gate)
    # max_batch=1: the first request flushes immediately and parks the worker
    # on the gate; everything after fills the bounded intake queue
    server = AsyncInferenceServer(
        session, max_batch=1, max_wait_s=60.0, queue_limit=3, on_full="reject"
    )
    first = server.submit(req())
    deadline = time.monotonic() + WAIT
    while session.calls == 0 and time.monotonic() < deadline:
        time.sleep(0.001)  # worker has picked up the first request
    assert session.calls == 1
    accepted = [server.submit(req()) for _ in range(3)]
    with pytest.raises(ServeOverflowError):
        server.submit(req())
    assert server.metrics.snapshot()["async_rejected_total"] == 1
    gate.set()
    assert server.close(drain=True, timeout=WAIT)
    for ticket in [first, *accepted]:
        assert ticket.ready  # accepted requests all served, rejection lost none


def test_full_queue_blocks_producer_under_block_policy():
    gate = threading.Event()
    session = FakeSession(gate=gate)
    server = AsyncInferenceServer(
        session, max_batch=1, max_wait_s=60.0, queue_limit=2, on_full="block"
    )
    first = server.submit(req())
    deadline = time.monotonic() + WAIT
    while session.calls == 0 and time.monotonic() < deadline:
        time.sleep(0.001)
    tickets = [server.submit(req()) for _ in range(2)]  # fills the queue

    blocked_ticket = []
    entered = threading.Event()

    def blocked_producer():
        entered.set()
        blocked_ticket.append(server.submit(req()))  # must park, not raise

    producer = threading.Thread(target=blocked_producer)
    producer.start()
    assert entered.wait(WAIT)
    time.sleep(0.05)
    assert producer.is_alive(), "block policy should have parked the producer"
    gate.set()  # worker drains -> space frees -> producer completes
    producer.join(WAIT)
    assert not producer.is_alive()
    assert server.close(drain=True, timeout=WAIT)
    for ticket in [first, *tickets, *blocked_ticket]:
        assert ticket.ready


# ------------------------------------------------------------------ shutdown
def test_shutdown_mid_stream_drains_accepted_tickets():
    gate = threading.Event()
    session = FakeSession(gate=gate)
    server = AsyncInferenceServer(session, max_batch=4, max_wait_s=60.0, queue_limit=64)
    tickets = [server.submit(req()) for _ in range(11)]
    # open the gate from a timer so close() observes a mid-stream shutdown
    threading.Timer(0.02, gate.set).start()
    assert server.close(drain=True, timeout=WAIT)
    assert all(t.ready for t in tickets)  # every accepted ticket served
    with pytest.raises(ServeClosedError):
        server.submit(req())


def test_abort_fails_unexecuted_tickets_with_closed_error():
    gate = threading.Event()
    session = FakeSession(gate=gate)
    server = AsyncInferenceServer(
        session, max_batch=1, max_wait_s=60.0, queue_limit=64
    )
    tickets = [server.submit(req())]
    deadline = time.monotonic() + WAIT
    while session.calls == 0 and time.monotonic() < deadline:
        time.sleep(0.001)  # worker parked inside block 1; intake empty
    tickets += [server.submit(req()) for _ in range(7)]  # queue behind it
    closer = threading.Thread(target=server.close, kwargs={"drain": False})
    closer.start()
    while not server._closed and time.monotonic() < deadline:
        time.sleep(0.001)  # abort flag definitely set before the gate opens
    gate.set()
    closer.join(WAIT)
    assert not closer.is_alive()
    assert all(t.done for t in tickets)  # nothing hangs
    served = [t for t in tickets if t.ready]
    aborted = [t for t in tickets if t.failed]
    assert aborted, "abort should have cancelled the un-run remainder"
    for ticket in aborted:
        assert isinstance(ticket.exception, ServeClosedError)
        with pytest.raises(ServeClosedError):
            ticket.result(timeout=1)
    for ticket in served:  # whatever did execute still resolved normally
        assert np.array_equal(ticket.y, req() * 2.0)


def test_blocked_producer_woken_by_close_raises():
    gate = threading.Event()
    session = FakeSession(gate=gate)
    server = AsyncInferenceServer(
        session, max_batch=1, max_wait_s=60.0, queue_limit=1, on_full="block"
    )
    server.submit(req())
    deadline = time.monotonic() + WAIT
    while session.calls == 0 and time.monotonic() < deadline:
        time.sleep(0.001)
    server.submit(req())  # fills the intake queue
    outcome = []

    def blocked_producer():
        try:
            outcome.append(server.submit(req()))
        except ServeClosedError as exc:
            outcome.append(exc)

    producer = threading.Thread(target=blocked_producer)
    producer.start()
    time.sleep(0.05)
    gate.set()
    server.close(drain=True, timeout=WAIT)
    producer.join(WAIT)
    assert not producer.is_alive()
    # the producer either squeezed in before close (a served ticket) or was
    # woken by shutdown with the closed error — never a hang, never silence
    assert len(outcome) == 1
    if isinstance(outcome[0], ServeClosedError):
        assert "closed" in str(outcome[0])
    else:
        assert outcome[0].ready


# ---------------------------------------------------------------- exceptions
def test_midblock_exception_reaches_exactly_that_block():
    session = FakeSession(fail_on_call=2)
    server = AsyncInferenceServer(session, max_batch=4, max_wait_s=0.005, queue_limit=64)
    # 4-column requests: each is its own block under max_batch=4
    t1 = server.submit(req(4, fill=1.0))
    assert t1.wait(WAIT) and t1.ready
    t2 = server.submit(req(4, fill=2.0))
    assert t2.wait(WAIT) and t2.failed  # rode the failing block
    assert isinstance(t2.exception, RuntimeError)
    with pytest.raises(RuntimeError, match="injected failure"):
        t2.result(timeout=1)
    # the server remains serviceable after the failure
    t3 = server.submit(req(4, fill=3.0))
    assert t3.wait(WAIT) and t3.ready
    assert np.array_equal(t3.y, req(4, fill=3.0) * 2.0)
    report_counters = server.batcher.counters
    assert report_counters["failed"] == 1
    assert server.metrics.snapshot()["async_failed_total"] == 1
    server.close()


def test_midblock_exception_shared_block_fails_all_riders():
    session = FakeSession(fail_on_call=1)
    server = AsyncInferenceServer(session, max_batch=4, max_wait_s=60.0, queue_limit=64)
    riders = [server.submit(req(2)) for _ in range(2)]  # pack into one block
    for ticket in riders:
        assert ticket.wait(WAIT)
    assert all(t.failed for t in riders)  # both rode the failing block
    assert {type(t.exception) for t in riders} == {RuntimeError}
    # only call 1 fails; the next block must ride through untouched
    survivors = [server.submit(req(2)) for _ in range(2)]
    assert server.close(drain=True, timeout=WAIT)
    assert all(t.ready for t in survivors)


# ------------------------------------------------------------- observability
def test_overlap_and_queue_metrics_are_recorded(bench):
    net, cfg, y0 = bench
    stream = [y0[:, lo : lo + 2] for lo in range(0, 32, 2)]
    server = AsyncInferenceServer(
        EngineSession(net, cfg), max_batch=8, max_wait_s=0.002, queue_limit=64
    )
    report = server.serve(iter(stream), interarrivals=[0.001] * len(stream))
    assert report.status == "ok"
    assert report.exec_seconds > 0
    assert 0.0 < report.overlap_fraction <= 1.0
    assert report.arrival_seconds > 0
    summary = report.summary()
    assert summary["overlap_fraction"] == pytest.approx(report.overlap_fraction)
    snap = server.metrics.snapshot()
    assert snap["async_submitted_total"] == len(stream)
    assert snap["async_resolved_total"] == len(stream)
    assert snap["async_overlap_fraction"] > 0
    assert "async_intake_depth" in snap


def test_async_server_rejects_unknown_policy_and_bad_requests():
    session = FakeSession()
    with pytest.raises(ConfigError):
        AsyncInferenceServer(session, on_full="drop")
    server = AsyncInferenceServer(session)
    with pytest.raises(ShapeError):
        server.submit(np.ones((7, 2)))  # wrong input dim, rejected in-producer
    with pytest.raises(ShapeError):
        server.submit(np.ones((4, 0)))  # empty request
    server.close()


# ----------------------------------------------------------- property-based
def _run_property_stream(seed: int) -> None:
    """Random interleavings of submit/pause/shutdown against a queue model.

    The model is simple: every submission either raises (rejected — by
    overflow or closed transport) or returns a ticket (accepted).  After a
    drain close the invariants must hold: served ∪ rejected partitions the
    stream, no ticket resolves twice, every latency covers its queue wait,
    and every served output is the block function of its input.
    """
    rng = random.Random(seed)
    fail_call = rng.choice([None, 2, 3])
    session = FakeSession(fail_on_call=fail_call)
    server = AsyncInferenceServer(
        session,
        max_batch=rng.choice([1, 2, 4]),
        max_wait_s=rng.choice([0.0, 0.001, 0.005]),
        queue_limit=rng.choice([2, 4, 8]),
        on_full="reject",
    )
    total = rng.randrange(12, 28)
    close_at = rng.randrange(total + 1) if rng.random() < 0.3 else None
    accepted: dict[int, object] = {}
    overflowed: set[int] = set()
    shed_closed: set[int] = set()
    for index in range(total):
        if close_at == index:
            server.close(drain=True, timeout=WAIT)
        if rng.random() < 0.25:
            time.sleep(rng.choice([0.0, 0.0005, 0.002]))
        width = rng.choice([1, 2, 3])
        try:
            accepted[index] = (width, server.submit(req(width, fill=float(index + 1))))
        except ServeOverflowError:
            overflowed.add(index)
        except ServeClosedError:
            shed_closed.add(index)
    assert server.close(drain=True, timeout=WAIT)

    # partition: every stream index is exactly one of accepted / rejected
    rejected = overflowed | shed_closed
    assert set(accepted) | rejected == set(range(total))
    assert set(accepted) & rejected == set()
    if close_at is not None:
        assert shed_closed == {i for i in range(close_at, total)} - set(accepted)
    for index, (width, ticket) in accepted.items():
        assert ticket.done, f"accepted request {index} never resolved (seed {seed})"
        assert ticket._resolutions == 1, f"double resolution (seed {seed})"
        assert ticket.latency_seconds >= ticket.queue_wait_seconds - 1e-9
        if ticket.ready:
            assert np.array_equal(ticket.y, req(width, fill=float(index + 1)) * 2.0)
        else:
            assert isinstance(ticket.exception, (RuntimeError, ServeClosedError))
    snap = server.metrics.snapshot()
    assert snap["async_resolved_total"] == len(accepted)
    assert snap["async_rejected_total"] == len(overflowed)


@pytest.mark.parametrize("seed", range(8))
def test_property_random_interleavings_hold_invariants(seed):
    _run_property_stream(seed)
