"""Unit tests for the sliding-window quantile estimator (repro.obs.window)."""

import threading

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.obs.window import (
    DEFAULT_QUANTILES,
    WINDOW_BUCKET_RATIO,
    SlidingWindow,
    geometric_buckets,
)


class FakeClock:
    """Settable monotonic clock for deterministic rotation tests."""

    def __init__(self, t=0.0):
        self.t = float(t)

    def __call__(self):
        return self.t

    def advance(self, dt):
        self.t += dt


def make_window(**kwargs):
    clock = FakeClock(100.0)
    kwargs.setdefault("window_s", 60.0)
    kwargs.setdefault("slots", 12)
    return SlidingWindow(clock=clock, **kwargs), clock


# --------------------------------------------------------------- validation
def test_geometric_buckets_cover_range_and_grow_geometrically():
    edges = geometric_buckets(lo=1e-3, hi=1.0, ratio=2.0)
    assert edges[0] == 1e-3
    assert edges[-1] >= 1.0
    ratios = [b / a for a, b in zip(edges, edges[1:])]
    assert all(r == pytest.approx(2.0) for r in ratios)


@pytest.mark.parametrize(
    "kwargs",
    [
        {"lo": 0.0},
        {"lo": -1.0},
        {"lo": 2.0, "hi": 1.0},
        {"ratio": 1.0},
        {"ratio": 0.5},
    ],
)
def test_geometric_buckets_reject_bad_geometry(kwargs):
    with pytest.raises(ConfigError):
        geometric_buckets(**kwargs)


@pytest.mark.parametrize(
    "kwargs",
    [
        {"window_s": 0.0},
        {"window_s": -1.0},
        {"slots": 0},
        {"buckets": ()},
    ],
)
def test_sliding_window_rejects_bad_config(kwargs):
    with pytest.raises(ConfigError):
        SlidingWindow(**kwargs)


# ----------------------------------------------------------------- rotation
def test_empty_window_snapshot_shape():
    win, _ = make_window(target=0.05)
    snap = win.snapshot()
    assert snap["count"] == 0
    assert snap["quantiles"] == {}
    assert snap["min"] is None and snap["max"] is None
    assert snap["exemplar"] is None
    assert snap["over_target"] == 0
    assert win.quantile(0.99) is None


def test_observations_expire_after_the_window():
    win, clock = make_window(window_s=60.0, slots=12)
    for _ in range(10):
        win.observe(0.01)
    assert win.count == 10
    clock.advance(59.0)
    # within the window: still live (possibly minus the oldest slot)
    assert win.count > 0
    clock.advance(61.0)
    assert win.count == 0
    assert win.quantile(0.5) is None


def test_forgetting_happens_in_whole_slot_steps():
    win, clock = make_window(window_s=10.0, slots=5)  # 2 s per slot
    win.observe(1.0)  # lands in the slot owning t=100
    clock.advance(2.0)
    win.observe(2.0)
    clock.advance(2.0)
    win.observe(3.0)
    assert win.count == 3
    # advance until the first slot falls off the ring's live range
    clock.advance(6.5)
    assert win.count == 2
    assert win.snapshot()["min"] == 2.0
    clock.advance(2.0)
    assert win.count == 1
    assert win.snapshot()["min"] == 3.0


def test_slot_reuse_resets_stale_history():
    win, clock = make_window(window_s=10.0, slots=2)
    win.observe(5.0)
    # come back a full ring later: the same slot object is reused and must
    # not leak the old observation into the new sub-window
    clock.advance(10.0)
    win.observe(1.0)
    snap = win.snapshot()
    assert snap["count"] == 1
    assert snap["max"] == 1.0


# ---------------------------------------------------------------- estimator
def test_windowed_quantiles_match_numpy_within_bucket_error():
    rng = np.random.default_rng(7)
    win, _ = make_window(window_s=60.0, slots=12)
    # lognormal latencies: heavy tail spanning several bucket decades
    samples = rng.lognormal(mean=-5.0, sigma=1.2, size=4000)
    for s in samples:
        win.observe(float(s))
    snap = win.snapshot()
    # an estimate lands in the same geometric bucket as the exact quantile,
    # so it is within ~ratio^2 of it (one bucket each side of the edge)
    tol = WINDOW_BUCKET_RATIO**2
    for q in DEFAULT_QUANTILES:
        exact = float(np.quantile(samples, q))
        est = snap["quantiles"][f"p{q * 100:g}"]
        assert exact / tol <= est <= exact * tol, (
            f"p{q}: estimate {est} vs exact {exact}"
        )
    # estimates never leave the observed value range
    assert snap["min"] <= snap["quantiles"]["p50"] <= snap["max"]
    assert snap["max"] == pytest.approx(float(samples.max()))
    assert snap["sum"] == pytest.approx(float(samples.sum()))


def test_quantile_method_agrees_with_snapshot():
    win, _ = make_window()
    for v in (0.001, 0.002, 0.004, 0.008, 0.5):
        win.observe(v)
    snap = win.snapshot()
    assert win.quantile(0.5) == pytest.approx(snap["quantiles"]["p50"])
    # the max quantile clamps to the window max
    assert win.quantile(1.0) == pytest.approx(0.5)


def test_single_observation_quantiles_are_exact():
    win, _ = make_window()
    win.observe(0.0123)
    snap = win.snapshot()
    for key in ("p50", "p95", "p99"):
        assert snap["quantiles"][key] == pytest.approx(0.0123)


# ------------------------------------------------------- breaches / exemplar
def test_over_target_counts_breaches_exactly():
    win, clock = make_window(window_s=10.0, slots=5, target=0.1)
    for v in (0.05, 0.09, 0.10, 0.11, 0.5, 2.0):
        win.observe(v)
    # strictly-above semantics: 0.10 is not a breach
    assert win.snapshot()["over_target"] == 3
    clock.advance(11.0)
    assert win.snapshot()["over_target"] == 0


def test_no_target_means_no_breach_accounting():
    win, _ = make_window()
    win.observe(10.0)
    assert win.snapshot()["over_target"] is None


def test_exemplar_tracks_the_window_maximum():
    win, clock = make_window(window_s=10.0, slots=5)
    win.observe(0.01, exemplar={"aid": 1})
    win.observe(0.50, exemplar={"aid": 2})
    win.observe(0.02, exemplar={"aid": 3})
    assert win.snapshot()["exemplar"] == {"aid": 2}
    # spread across slots: the exemplar follows the global max
    clock.advance(2.0)
    win.observe(0.90, exemplar={"aid": 4})
    assert win.snapshot()["exemplar"] == {"aid": 4}
    # ...and is forgotten with its slot
    clock.advance(10.5)
    win.observe(0.001, exemplar={"aid": 5})
    assert win.snapshot()["exemplar"] == {"aid": 5}


def test_columns_accumulate_and_expire():
    win, clock = make_window(window_s=10.0, slots=5)
    win.observe(0.01, columns=4)
    win.observe(0.01, columns=8)
    assert win.snapshot()["columns"] == pytest.approx(12.0)
    clock.advance(11.0)
    assert win.snapshot()["columns"] == 0.0


# ------------------------------------------------------------- thread safety
def test_concurrent_observers_lose_no_updates():
    win = SlidingWindow(window_s=3600.0, slots=4)
    per_thread, n_threads = 500, 8

    def worker(seed):
        rng = np.random.default_rng(seed)
        for _ in range(per_thread):
            win.observe(float(rng.uniform(0.001, 0.1)), columns=1)

    threads = [threading.Thread(target=worker, args=(i,)) for i in range(n_threads)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    snap = win.snapshot()
    assert snap["count"] == per_thread * n_threads
    assert snap["columns"] == pytest.approx(per_thread * n_threads)
