"""QoS scheduling suite: policies, DWRR, admission, and the property tests.

Four layers of coverage over :mod:`repro.serve.qos` and its router wiring:

* unit — :class:`~repro.serve.qos.QosPolicy` spec parsing and validation,
  :class:`~repro.serve.qos.TokenBucket` refill/hard-quota arithmetic,
  :class:`~repro.serve.qos.DeficitScheduler` strict priority + weighted
  service on a fake clock, :class:`~repro.serve.qos.AdmissionController`
  shed triggers and idempotent registration;
* integration — the sync and async routers servicing an interactive lane
  ahead of a bulk backlog (and *not* doing so under the ``'fifo'`` control
  arm), rate-limit and burn-triggered shedding through ``submit``, and
  batch-before-interactive demotion order in the registry's budget
  enforcement;
* regression — ``@`` in model/stream names is refused everywhere it would
  alias a lane label (``model@stream``) or a fleet SLO key
  (``model@worker``);
* property (hypothesis) — for arbitrary interleavings of two-priority
  traffic: every stream's outputs are bitwise identical to its solo run
  under both policies, a batch lane is never picked while an interactive
  lane is runnable, and pressure shedding only ever hits the lowest class
  present.
"""

import threading
import time
from types import SimpleNamespace

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError, ServeOverflowError, ServeShedError, ShapeError
from repro.obs import MetricsRegistry
from repro.serve import (
    PRIORITY_CLASSES,
    AdmissionController,
    AsyncRouter,
    DeficitScheduler,
    MicroBatcher,
    ModelRegistry,
    QosPolicy,
    Router,
    TokenBucket,
)
from repro.serve.fleet import FleetDispatcher, TenantSpec

WAIT = 20.0


# ------------------------------------------------------------------ fixtures
class FakeClock:
    def __init__(self, t: float = 0.0):
        self.t = t

    def __call__(self) -> float:
        return self.t

    def advance(self, dt: float) -> None:
        self.t += dt


class FakeNetwork:
    input_dim = 4

    def validate_input(self, y0):
        y0 = np.asarray(y0, dtype=np.float64)
        if y0.ndim != 2 or y0.shape[0] != self.input_dim:
            raise ShapeError(f"input must be ({self.input_dim}, B), got {y0.shape}")
        return y0


class FakeQosSession:
    """Session stand-in whose output depends on the whole packed block.

    ``run`` returns ``y0 * 2 + sum(block)`` — every request's output is a
    function of its blockmates' contents, so bitwise output identity holds
    *iff* block packing is identical.  That is what lets the property test
    conclude "the scheduler did not perturb packing" from array equality
    alone.  ``log`` (shared across sessions) records block service order;
    ``gate`` parks executions for the async preemption test.
    """

    def __init__(
        self,
        name: str = "s",
        log: list | None = None,
        gate: threading.Event | None = None,
        warm_bytes: int = 100,
        metrics: MetricsRegistry | None = None,
    ):
        from repro.obs import as_tracer

        self.network = FakeNetwork()
        self.tracer = as_tracer(None)
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.name = name
        self.log = log
        self.gate = gate
        self.warm_bytes = warm_bytes
        self._retained = warm_bytes
        self.calls = 0
        self.demote_calls = 0

    def run(self, y0):
        self.calls += 1
        if self.log is not None:
            self.log.append(self.name)
        if self.gate is not None:
            assert self.gate.wait(WAIT), "test gate never opened"
        self._retained = self.warm_bytes
        return SimpleNamespace(
            y=y0 * 2.0 + float(np.sum(y0)), stats={}, stage_seconds={}
        )

    def retained_nbytes(self) -> int:
        return self._retained

    def demote(self) -> int:
        freed, self._retained = self._retained, 0
        self.demote_calls += 1
        return freed

    def stats(self) -> dict:
        return {"calls": self.calls}


def req(k: int = 1, fill: float = 1.0) -> np.ndarray:
    return np.full((FakeNetwork.input_dim, k), fill)


# ------------------------------------------------------------- policy parsing
def test_policy_parse_full_spec_and_passthrough():
    policy = QosPolicy.parse("batch:w=2,rate=256,burst=64")
    assert policy.priority == "batch" and policy.rank == 1
    assert policy.weight == 2.0
    assert policy.rate_cols_per_s == 256.0
    assert policy.burst_cols == 64.0 and policy.effective_burst == 64.0
    assert QosPolicy.parse(policy) is policy  # instances pass through


def test_policy_parse_defaults_reproduce_pre_qos_service():
    # None (an unconfigured tenant) must parse to interactive weight 1 with
    # no rate limit — the configuration under which the DWRR scheduler
    # degenerates to the legacy service order
    policy = QosPolicy.parse(None)
    assert policy.priority == "interactive" and policy.rank == 0
    assert policy.weight == 1.0
    assert policy.rate_cols_per_s is None and policy.effective_burst is None
    assert QosPolicy.parse("interactive") == policy


def test_policy_burst_defaults_to_one_second_of_rate():
    policy = QosPolicy.parse("batch:rate=128")
    assert policy.burst_cols is None
    assert policy.effective_burst == 128.0
    assert "rate=128" in policy.describe()
    assert policy.to_json()["burst_cols"] == 128.0


@pytest.mark.parametrize(
    "spec",
    [
        "gold",                      # unknown class
        "batch:w=",                  # empty value
        "batch:w=fast",              # non-numeric value
        "batch:speed=2",             # unknown key
        "batch:w=0",                 # weight must be > 0
        "batch:w=-1",
        "batch:rate=-5",             # rate must be >= 0
        "batch:burst=64",            # burst requires a rate
        "batch:rate=0",              # a hard quota needs an explicit burst
    ],
)
def test_policy_parse_rejects_bad_specs(spec):
    with pytest.raises(ConfigError):
        QosPolicy.parse(spec)


def test_priority_classes_order_is_the_rank_order():
    assert PRIORITY_CLASSES == ("interactive", "batch")
    assert QosPolicy.parse("interactive").rank < QosPolicy.parse("batch").rank


# --------------------------------------------------------------- token bucket
def test_token_bucket_refills_at_rate():
    clock = FakeClock()
    bucket = TokenBucket(rate=10.0, burst=10.0, clock=clock)
    assert bucket.try_take(10.0)
    assert not bucket.try_take(1.0)  # empty, no debt taken
    clock.advance(0.5)
    assert bucket.try_take(5.0)  # refilled 0.5 s * 10 cols/s
    assert not bucket.try_take(1.0)
    clock.advance(100.0)
    assert bucket.try_take(10.0)  # refill clamps at burst
    assert not bucket.try_take(1.0)


def test_token_bucket_zero_rate_is_a_hard_quota():
    clock = FakeClock()
    bucket = TokenBucket(rate=0.0, burst=4.0, clock=clock)
    assert bucket.try_take(2.0) and bucket.try_take(2.0)
    clock.advance(1e6)  # no amount of waiting refills a hard quota
    assert not bucket.try_take(1.0)


def test_token_bucket_validation():
    with pytest.raises(ConfigError):
        TokenBucket(rate=-1.0, burst=1.0)
    with pytest.raises(ConfigError):
        TokenBucket(rate=1.0, burst=0.0)


# ---------------------------------------------------------- deficit scheduler
def test_scheduler_strict_priority_between_classes():
    sched = DeficitScheduler(quantum=4.0)
    sched.register("i", rank=0, weight=1.0)
    sched.register("b", rank=1, weight=1.0)
    # while the interactive lane is runnable, batch is never picked
    for _ in range(5):
        assert sched.pick({"i": 4, "b": 4}) == "i"
    assert sched.pick({"b": 4}) == "b"  # batch runs only when alone


def test_scheduler_weights_split_service_proportionally():
    sched = DeficitScheduler(quantum=4.0)
    sched.register("a", rank=1, weight=1.0)
    sched.register("b", rank=1, weight=3.0)
    for _ in range(8):
        assert sched.pick({"a": 4, "b": 4}) in ("a", "b")
    lanes = sched.stats()["lanes"]
    # with both lanes always runnable, service follows the 1:3 weights
    assert lanes["a"]["served_blocks"] == 2
    assert lanes["b"]["served_blocks"] == 6


def test_scheduler_reset_drops_banked_deficit():
    sched = DeficitScheduler(quantum=4.0)
    sched.register("a", rank=0, weight=1.0)
    sched.register("b", rank=0, weight=1.0)
    assert sched.pick({"a": 4, "b": 4}) == "a"
    assert sched.stats()["lanes"]["b"]["deficit"] > 0  # b banked a grant
    sched.reset("b")  # lane went idle: it must not burst ahead later
    assert sched.stats()["lanes"]["b"]["deficit"] == 0.0
    sched.reset("missing")  # unknown lanes are a no-op


def test_scheduler_grants_unlock_oversized_blocks():
    # a block costing many quanta must still be served (grants are computed
    # arithmetically, not one round at a time)
    sched = DeficitScheduler(quantum=1.0)
    sched.register("a", rank=0, weight=1.0)
    assert sched.pick({"a": 1000.0}) == "a"
    assert sched.stats()["lanes"]["a"]["grants"] == 1000


def test_scheduler_validation_and_unknown_candidates():
    with pytest.raises(ConfigError):
        DeficitScheduler(quantum=0.0)
    sched = DeficitScheduler(quantum=4.0)
    assert sched.pick({}) is None
    assert sched.pick({"unregistered": 4}) is None


# --------------------------------------------------------- admission control
def test_admission_rate_limit_sheds_and_register_is_idempotent():
    metrics = MetricsRegistry()
    adm = AdmissionController(metrics=metrics, clock=FakeClock())
    policy = QosPolicy.parse("interactive:rate=0,burst=4")
    adm.register("a", policy)
    adm.admit("a", 2)
    adm.admit("a", 2)
    with pytest.raises(ServeShedError) as exc_info:
        adm.admit("a", 1)
    assert exc_info.value.reason == "rate_limit"
    # a shed IS an overflow error, so existing reject handlers count it
    assert isinstance(exc_info.value, ServeOverflowError)
    # re-registering (a lane rebuilt after eviction) must not refill the
    # hard-quota bucket: first registration wins
    adm.register("a", QosPolicy.parse("interactive:rate=0,burst=4"))
    with pytest.raises(ServeShedError):
        adm.admit("a", 1)
    assert adm.shed == {"a": {"rate_limit": 2}}
    assert adm.shed_total() == 2 and adm.shed_total("a") == 2
    snap = metrics.snapshot()
    assert snap['qos_shed_total{model="a",reason="rate_limit"}'] == 2


def test_admission_pressure_sheds_batch_class_only():
    adm = AdmissionController(
        queue_pressure_requests=3, burn_threshold=1.0, clock=FakeClock()
    )
    adm.register("i", QosPolicy.parse("interactive"))
    adm.register("b", QosPolicy.parse("batch"))
    # interactive is never pressure-shed, whatever the signals say
    adm.admit("i", 1, pending_requests=100, interactive_burn=5.0, over_budget=True)
    with pytest.raises(ServeShedError) as exc_info:
        adm.admit("b", 1, over_budget=True)
    assert exc_info.value.reason == "memory_pressure"
    with pytest.raises(ServeShedError) as exc_info:
        adm.admit("b", 1, interactive_burn=2.0)
    assert exc_info.value.reason == "slo_burn"
    with pytest.raises(ServeShedError) as exc_info:
        adm.admit("b", 1, pending_requests=3)
    assert exc_info.value.reason == "queue_pressure"
    adm.admit("b", 1)  # no pressure: admitted
    stats = adm.stats()
    assert stats["shed"]["b"] == {
        "memory_pressure": 1, "slo_burn": 1, "queue_pressure": 1,
    }
    assert stats["shed_total"] == 3


def test_admission_thresholds_default_off():
    # unset thresholds (the router's defaults) never pressure-shed, so
    # all-default tenants reproduce pre-QoS behaviour exactly
    adm = AdmissionController(
        queue_pressure_requests=None, burn_threshold=None, clock=FakeClock()
    )
    adm.register("b", QosPolicy.parse("batch"))
    adm.admit("b", 1, pending_requests=10**6, interactive_burn=10.0)


# ------------------------------------------------------- router integration
def test_router_rejects_unknown_policy():
    registry = ModelRegistry()
    with pytest.raises(ConfigError, match="unknown scheduler policy"):
        Router(registry, policy="nope")
    with pytest.raises(ConfigError, match="unknown scheduler policy"):
        AsyncRouter(registry, policy="nope")


def test_registry_register_parses_qos_and_publishes_rank():
    metrics = MetricsRegistry()
    registry = ModelRegistry(metrics=metrics)
    registry.register("a", session=FakeQosSession(metrics=metrics), qos="batch:w=2")
    policy = registry.qos_policy("a")
    assert policy.priority == "batch" and policy.weight == 2.0
    assert registry.qos_policy("unset") == QosPolicy()  # default interactive
    snap = metrics.snapshot()
    assert snap['qos_priority_rank{model="a"}'] == 1.0
    assert snap['qos_weight{model="a"}'] == 2.0
    assert registry.stats()["qos_policies"]["a"]["priority"] == "batch"
    with pytest.raises(ConfigError):
        registry.register("b", session=FakeQosSession(), qos="gold")


def test_sync_drain_services_interactive_before_bulk_backlog():
    log: list[str] = []
    registry = ModelRegistry()
    registry.register("bulk", session=FakeQosSession("bulk", log), qos="batch")
    registry.register("inter", session=FakeQosSession("inter", log))
    router = Router(registry, max_batch=8, max_wait_s=60.0, queue_limit=64)
    for _ in range(3):
        router.submit("bulk", req(2))  # 6 columns pending: no full flush yet
    router.submit("inter", req(2))
    router.drain()
    # the bulk lane was created first and holds more work, but the
    # interactive block flushes first — strict priority between classes
    assert log == ["inter", "bulk"]


def test_sync_fifo_policy_is_the_registration_order_control_arm():
    log: list[str] = []
    registry = ModelRegistry()
    registry.register("bulk", session=FakeQosSession("bulk", log), qos="batch")
    registry.register("inter", session=FakeQosSession("inter", log))
    router = Router(
        registry, max_batch=8, max_wait_s=60.0, queue_limit=64, policy="fifo"
    )
    assert router.admission is None  # the control arm sheds nothing
    for _ in range(3):
        router.submit("bulk", req(2))
    router.submit("inter", req(2))
    router.drain()
    assert log == ["bulk", "inter"]  # registration order, priority ignored
    assert router.stats()["qos"]["policy"] == "fifo"
    assert router.stats()["qos"]["admission"] is None


def test_async_interactive_preempts_bulk_backlog_between_blocks():
    log: list[str] = []
    gate = threading.Event()
    bulk = FakeQosSession("bulk", log, gate=gate)
    inter = FakeQosSession("inter", log)
    registry = ModelRegistry()
    registry.register("bulk", session=bulk, qos="batch")
    registry.register("inter", session=inter)
    router = AsyncRouter(registry, max_batch=1, max_wait_s=60.0, queue_limit=16)
    tickets = [router.submit("bulk", req()) for _ in range(3)]
    deadline = time.monotonic() + WAIT
    while bulk.calls == 0 and time.monotonic() < deadline:
        time.sleep(0.001)  # worker parked inside the first bulk block
    assert bulk.calls == 1
    tickets.append(router.submit("inter", req()))
    gate.set()
    assert router.close(drain=True, timeout=WAIT)
    for ticket in tickets:
        assert ticket.ready
    # the interactive arrival jumped the two queued bulk blocks: arrivals
    # are re-ingested between blocks, so preemption is at block granularity
    assert log == ["bulk", "inter", "bulk", "bulk"]


def test_async_fifo_control_arm_finishes_the_backlog_first():
    log: list[str] = []
    gate = threading.Event()
    bulk = FakeQosSession("bulk", log, gate=gate)
    registry = ModelRegistry()
    registry.register("bulk", session=bulk, qos="batch")
    registry.register("inter", session=FakeQosSession("inter", log))
    router = AsyncRouter(
        registry, max_batch=1, max_wait_s=60.0, queue_limit=16, policy="fifo"
    )
    for _ in range(3):
        router.submit("bulk", req())
    deadline = time.monotonic() + WAIT
    while bulk.calls == 0 and time.monotonic() < deadline:
        time.sleep(0.001)
    router.submit("inter", req())
    gate.set()
    assert router.close(drain=True, timeout=WAIT)
    assert log == ["bulk", "bulk", "bulk", "inter"]


def test_router_hard_quota_sheds_a_deterministic_prefix():
    registry = ModelRegistry()
    registry.register(
        "a", session=FakeQosSession(), qos="interactive:rate=0,burst=4"
    )
    router = Router(registry, max_batch=8, max_wait_s=60.0)
    admitted = [router.submit("a", req(2)) for _ in range(2)]  # 4 of 4 columns
    with pytest.raises(ServeShedError, match="admission control"):
        router.submit("a", req(2))
    with pytest.raises(ServeOverflowError):  # sheds are overflow errors
        router.submit("a", req(2))
    router.drain()
    assert all(t.ready for t in admitted)
    shed = router.stats()["qos"]["admission"]["shed"]
    assert shed == {"a": {"rate_limit": 2}}


def test_router_sheds_bulk_on_interactive_burn():
    registry = ModelRegistry()
    registry.register(
        "inter", session=FakeQosSession(), slo="p99<10ms@60s/99%"
    )
    registry.register("bulk", session=FakeQosSession(), qos="batch")
    router = Router(registry, max_batch=8, max_wait_s=60.0, burn_threshold=1.0)
    assert registry.max_interactive_burn() == 0.0  # idle tracker: no burn
    router.submit("bulk", req())  # no burn yet: bulk admitted
    registry.slo_tracker("inter").record(1.0)  # one breach torches the budget
    assert registry.max_interactive_burn() > 1.0
    with pytest.raises(ServeShedError) as exc_info:
        router.submit("bulk", req())
    assert exc_info.value.reason == "slo_burn"
    router.submit("inter", req())  # the interactive tenant itself still lands
    router.drain()


def test_max_interactive_burn_ignores_batch_tenants():
    registry = ModelRegistry()
    registry.register("bulk", session=FakeQosSession(), qos="batch",
                      slo="p99<10ms@60s/99%")
    assert registry.max_interactive_burn() is None  # no interactive SLO
    registry.slo_tracker("bulk").record(1.0)
    # a burning *batch* tenant is not an admission signal
    assert registry.max_interactive_burn() is None


def test_enforce_demotes_batch_class_before_older_interactive():
    clock = FakeClock()
    registry = ModelRegistry(memory_budget_bytes=250, clock=clock)
    inter = FakeQosSession(warm_bytes=100)
    registry.register("inter", session=inter)
    clock.advance(1.0)
    registry.register("b1", session=FakeQosSession(warm_bytes=100), qos="batch")
    clock.advance(1.0)
    registry.register("b2", session=FakeQosSession(warm_bytes=100), qos="batch")
    # registering b2 pushed the ledger to 300 > 250.  Pure LRU would demote
    # "inter" (the oldest); the QoS-aware order sheds batch warm state first
    assert registry.demotions == ["b1"]
    assert inter.demote_calls == 0


# --------------------------------------------------- '@' collision regression
def test_model_and_stream_names_reject_at_sign():
    # lane labels are "model@stream" and fleet SLO keys "model@worker" by
    # plain concatenation: a tenant literally named "a@b" would alias lane
    # ("a", "b")'s stats and SLO block.  Both inputs are refused up front.
    registry = ModelRegistry()
    with pytest.raises(ConfigError, match="must not contain '@'"):
        registry.register("a@b", session=FakeQosSession())
    registry.register("a", session=FakeQosSession())
    router = Router(registry, max_batch=4, max_wait_s=60.0)
    with pytest.raises(ConfigError, match="must not contain '@'"):
        router.submit("a", req(), stream="s@1")
    router.submit("a", req(), stream="s1")  # '@'-free streams still work
    router.drain()
    with AsyncRouter(registry, max_batch=4, max_wait_s=60.0) as arouter:
        with pytest.raises(ConfigError, match="must not contain '@'"):
            arouter.submit("a", req(), stream="s@1")
        ticket = arouter.submit("a", req(), stream="s1")
    assert ticket.ready


def test_fleet_rejects_at_names_and_bad_qos_before_spawn():
    # the dispatcher validates specs before paying any process spawn, so a
    # bad name or policy fails in milliseconds, not after fleet warmup
    with pytest.raises(ConfigError, match="must not contain '@'"):
        FleetDispatcher([TenantSpec(name="a@b", source="144-24")], workers=1)
    with pytest.raises(ConfigError):
        FleetDispatcher(
            [TenantSpec(name="a", source="144-24", qos="gold")], workers=1
        )


# ------------------------------------------- batcher underfill counters (bug)
def test_timer_underfill_is_not_a_hol_stall():
    # regression: a latency-deadline flush of an under-filled block with an
    # empty queue used to count as a head-of-line stall.  Nothing was
    # refused — the head simply arrived late — so it must land in the
    # timer_underfill counters instead.
    clock = FakeClock()
    session = FakeQosSession()
    batcher = MicroBatcher(session, max_batch=4, max_wait_s=1.0, clock=clock)
    batcher.submit(req(2))
    clock.advance(1.5)
    assert batcher.poll() == 1
    assert batcher.counters["hol_stalls"] == 0
    assert batcher.counters["hol_underfill_columns"] == 0
    assert batcher.counters["timer_underfills"] == 1
    assert batcher.counters["timer_underfill_columns"] == 2
    snap = session.metrics.snapshot()
    assert snap["serve_timer_underfill_columns_total"] == 2
    assert snap.get("serve_hol_stalls_total", 0) == 0


def test_wait_flush_with_refusing_head_still_counts_hol():
    # a deadline flush where the FIFO head genuinely refused to fit is a
    # real stall; the trailing under-filled block (queue empty) is not
    clock = FakeClock()
    session = FakeQosSession()
    batcher = MicroBatcher(session, max_batch=4, max_wait_s=1.0, clock=clock)
    batcher.enqueue(req(3))
    batcher.enqueue(req(2))  # 5 cols queued: the 2-col head refuses the gap
    clock.advance(1.5)
    assert batcher.poll() == 2
    assert batcher.counters["hol_stalls"] == 1
    assert batcher.counters["hol_underfill_columns"] == 1
    assert batcher.counters["timer_underfills"] == 1  # the trailing 2-col block
    assert batcher.counters["timer_underfill_columns"] == 2


def test_flush_one_returns_columns_and_labels_wait_flushes():
    clock = FakeClock()
    batcher = MicroBatcher(
        FakeQosSession(), max_batch=4, max_wait_s=60.0, clock=clock
    )
    assert batcher.flush_one() == 0  # idle: nothing to run
    t1 = batcher.enqueue(req(2))
    t2 = batcher.enqueue(req(1))
    assert batcher.flush_one(reason="wait") == 3  # one block, both tickets
    assert t1.ready and t2.ready
    assert batcher.counters["batches"] == 1
    assert batcher.counters["wait_flushes"] == 1


# -------------------------------------------------- property tests (hypothesis)
TENANT_QOS = {"i1": "interactive", "i2": "interactive:w=2", "bulk": "batch:w=2"}


class RecordingRouter(Router):
    """Router that records every scheduler decision for invariant checks."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.picks: list[tuple[dict, tuple]] = []

    def _pick(self, candidates):
        key = super()._pick(candidates)
        self.picks.append((dict(candidates), key))
        return key


def _build_router(names, policy="qos", cls=Router, max_batch=4, **kwargs):
    registry = ModelRegistry()
    for name in names:
        registry.register(name, session=FakeQosSession(), qos=TENANT_QOS[name])
    return cls(
        registry, max_batch=max_batch, max_wait_s=60.0, queue_limit=1024,
        policy=policy, **kwargs,
    )


def _solo_outputs(name, widths):
    router = _build_router([name])
    tickets = [
        router.submit(name, req(k, fill=float(fill))) for fill, k in widths
    ]
    router.drain()
    return [t.y for t in tickets]


moves_strategy = st.lists(
    st.tuples(st.sampled_from(sorted(TENANT_QOS)), st.integers(1, 3)),
    min_size=1,
    max_size=24,
)


@settings(max_examples=25, deadline=None)
@given(moves=moves_strategy)
def test_property_outputs_bitwise_match_solo_under_any_interleaving(moves):
    """Satellite property (a) + (b): for ANY interleaving of two-priority
    traffic, each stream's outputs are bitwise identical to its solo run
    (the scheduler reorders between lanes, never within), and a batch lane
    is never picked while an interactive lane is runnable."""
    # distinct fill per request makes block contents (and therefore the
    # block-mixing session outputs) injective in the packing
    per_tenant: dict[str, list] = {name: [] for name in TENANT_QOS}
    plan = []
    for index, (name, k) in enumerate(moves):
        per_tenant[name].append((index + 1, k))
        plan.append((name, index + 1, k))
    refs = {
        name: _solo_outputs(name, widths)
        for name, widths in per_tenant.items()
        if widths
    }
    for policy in ("qos", "fifo"):
        router = _build_router(sorted(TENANT_QOS), policy=policy,
                               cls=RecordingRouter)
        tickets: dict[str, list] = {name: [] for name in TENANT_QOS}
        for name, fill, k in plan:
            tickets[name].append(router.submit(name, req(k, fill=float(fill))))
        router.drain()
        for name, ref in refs.items():
            got = [t.y for t in tickets[name]]
            assert len(got) == len(ref)
            for mine, solo in zip(got, ref):
                assert np.array_equal(mine, solo), (
                    f"policy={policy} tenant={name}: packing diverged from solo"
                )
        if policy == "qos":
            ranks = {
                name: router.registry.qos_policy(name).rank
                for name in TENANT_QOS
            }
            for candidates, picked in router.picks:
                if ranks[picked[0]] > 0:
                    # a batch pick is only legal when no interactive lane
                    # was runnable at that instant
                    assert all(
                        ranks[model] > 0 for (model, _stream) in candidates
                    ), f"batch lane picked over runnable interactive: {candidates}"


@settings(max_examples=25, deadline=None)
@given(moves=moves_strategy)
def test_property_pressure_shed_hits_only_the_lowest_class(moves):
    """Satellite property (c): under queue pressure, every shed request is
    batch-class — the lowest class present — and interactive traffic is
    never pressure-shed regardless of interleaving."""
    router = _build_router(
        sorted(TENANT_QOS), queue_pressure_requests=3, max_batch=10**6,
    )
    ranks = {n: router.registry.qos_policy(n).rank for n in TENANT_QOS}
    admitted, shed = [], []
    for index, (name, k) in enumerate(moves):
        try:
            admitted.append(router.submit(name, req(k, fill=float(index + 1))))
        except ServeShedError as exc:
            assert exc.reason == "queue_pressure"
            assert ranks[name] > 0, f"interactive tenant {name} was pressure-shed"
            shed.append(name)
    router.drain()
    assert all(t.ready for t in admitted)
    reasons = router.stats()["qos"]["admission"]["shed"]
    assert sum(sum(r.values()) for r in reasons.values()) == len(shed)
    assert all(set(r) == {"queue_pressure"} for r in reasons.values())
