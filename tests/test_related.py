"""Related-work engines (paper §2.2.2): WTA, thresholding, cache early-exit."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.harness.medium import get_trained
from repro.related import CacheEarlyExit, ThresholdEngine, WTAEngine
from repro.related.wta import winners_take_all


# ------------------------------------------------------------------- WTA
def test_winners_take_all_keeps_exact_count(rng):
    y = rng.random((20, 5)).astype(np.float32)
    winners_take_all(y, 0.25)
    assert ((y != 0).sum(axis=0) <= 5).all()
    assert ((y != 0).sum(axis=0) == 5).all()  # dense input -> exactly ceil(.25*20)


def test_winners_take_all_keeps_largest(rng):
    y = np.array([[0.1], [0.9], [0.5], [0.3]], dtype=np.float32)
    winners_take_all(y, 0.5)
    assert y[1, 0] == pytest.approx(0.9) and y[2, 0] == pytest.approx(0.5)
    assert y[0, 0] == 0 and y[3, 0] == 0


def test_winners_take_all_full_keep_is_noop(rng):
    y = rng.random((8, 3)).astype(np.float32)
    expected = y.copy()
    winners_take_all(y, 1.0)
    assert np.array_equal(y, expected)


def test_wta_engine_runs_and_degrades_gracefully():
    tm = get_trained("C")
    stack = tm.stack
    y0 = stack.head(tm.test.images[:200])
    labels = tm.test.labels[:200]
    from repro.nn.model import accuracy

    res_mild = WTAEngine(stack.network, keep_fraction=0.9).infer(y0)
    res_harsh = WTAEngine(stack.network, keep_fraction=0.05).infer(y0)
    acc_mild = accuracy(stack.tail(res_mild.y), labels)
    acc_harsh = accuracy(stack.tail(res_harsh.y), labels)
    assert acc_mild >= acc_harsh  # harsher dropout can only hurt
    assert acc_mild > 0.8


def test_wta_validation():
    tm = get_trained("C")
    with pytest.raises(ConfigError):
        WTAEngine(tm.stack.network, keep_fraction=0.0)


# -------------------------------------------------------------- threshold
def test_threshold_engine_increases_sparsity():
    tm = get_trained("C")
    stack = tm.stack
    y0 = stack.head(tm.test.images[:200])
    plain = ThresholdEngine(stack.network, threshold=0.0).infer(y0)
    thresh = ThresholdEngine(stack.network, threshold=0.1).infer(y0)
    assert thresh.stats["sparsity_trace"].mean() > plain.stats["sparsity_trace"].mean()
    # zero threshold is exact: matches the baseline engines
    from repro.baselines import DenseReference

    ref = DenseReference(stack.network).infer(y0)
    assert np.allclose(plain.y, ref.y, atol=1e-3)


def test_threshold_validation():
    tm = get_trained("C")
    with pytest.raises(ConfigError):
        ThresholdEngine(tm.stack.network, threshold=-0.1)


# -------------------------------------------------------------- cache exit
def test_cache_early_exit_flow():
    tm = get_trained("C")
    cache = CacheEarlyExit(tm.stack, tolerance=0.2)
    cache.build_cache(tm.train.images[:300])
    assert cache.cache_entries > 0
    result = cache.predict(tm.test.images[:150])
    labels = tm.test.labels[:150]
    acc = float((result.labels == labels).mean())
    assert acc > 0.7, "cache-assisted accuracy collapsed"
    assert 0.0 <= result.hit_rate <= 1.0
    assert (result.labels >= 0).all()
    # exits happen strictly before the end for hits
    hits = result.exit_layer < tm.stack.network.num_layers
    assert hits.mean() == pytest.approx(result.hit_rate)


def test_cache_exit_requires_built_cache():
    tm = get_trained("C")
    cache = CacheEarlyExit(tm.stack)
    with pytest.raises(ConfigError, match="build_cache"):
        cache.predict(tm.test.images[:10])


def test_cache_exit_zero_tolerance_never_hits():
    tm = get_trained("C")
    cache = CacheEarlyExit(tm.stack, tolerance=0.0)
    cache.build_cache(tm.train.images[:100])
    result = cache.predict(tm.test.images[:50])
    # distinct queries essentially never match a cached sketch exactly
    assert result.hit_rate <= 0.1
    # and then labels equal the plain model's predictions
    expected = tm.model.predict(tm.test.images[:50]).argmax(axis=1)
    no_hit = result.exit_layer == tm.stack.network.num_layers
    assert np.array_equal(result.labels[no_hit], expected[no_hit])


def test_cache_exit_validation():
    tm = get_trained("C")
    with pytest.raises(ConfigError):
        CacheEarlyExit(tm.stack, sketch_dim=0)
    with pytest.raises(ConfigError):
        CacheEarlyExit(tm.stack, tolerance=-1)
    with pytest.raises(ConfigError):
        CacheEarlyExit(tm.stack, check_every=0)


# ------------------------------------------------------------ experiment
def test_related_experiment_report():
    from repro.harness.experiments import related

    report = related.run(scale=0.2)
    rendered = report.render()
    assert "SNICIT" in rendered and "Cache-EarlyExit" in rendered
    assert "hit rate" in rendered
