"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.gpu.device import DeviceSpec, VirtualDevice


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)


@pytest.fixture
def device() -> VirtualDevice:
    return VirtualDevice()


@pytest.fixture
def tiny_device() -> VirtualDevice:
    """A device with tiny memory and generous block limits for error tests."""
    return VirtualDevice(
        DeviceSpec(
            name="tiny",
            sm_count=2,
            peak_flops=1e9,
            mem_bandwidth=1e9,
            memory_bytes=1 << 16,
            max_threads_per_block=4096,
        )
    )
