"""Column sampling and sum downsampling (paper §3.2.1)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.sampling import sample_columns, sum_downsample
from repro.errors import ConfigError, ShapeError


def test_sample_takes_first_columns(rng):
    y = rng.random((6, 10))
    f = sample_columns(y, 4)
    assert np.array_equal(f, y[:, :4])


def test_sample_clamps_to_batch(rng):
    y = rng.random((6, 3))
    assert sample_columns(y, 100).shape == (6, 3)


def test_sample_validation(rng):
    with pytest.raises(ShapeError):
        sample_columns(np.zeros(5), 2)
    with pytest.raises(ConfigError):
        sample_columns(np.zeros((2, 2)), 0)


def test_downsample_exact_division():
    f0 = np.arange(12, dtype=float).reshape(12, 1)
    f = sum_downsample(f0, 3)
    # segments of 4: 0+1+2+3, 4+..7, 8+..11
    assert list(f[:, 0]) == [6.0, 22.0, 38.0]


def test_downsample_uneven_segments():
    f0 = np.ones((10, 2))
    f = sum_downsample(f0, 3)
    # sizes 4, 3, 3
    assert list(f[:, 0]) == [4.0, 3.0, 3.0]


def test_downsample_preserves_total_sum(rng):
    f0 = rng.random((37, 5))
    f = sum_downsample(f0, 8)
    assert np.allclose(f.sum(axis=0), f0.sum(axis=0))


def test_downsample_noop_when_n_ge_rows(rng):
    f0 = rng.random((4, 3))
    out = sum_downsample(f0, 10)
    assert np.array_equal(out, f0)
    out[0, 0] = 99  # must be a copy
    assert f0[0, 0] != 99


def test_downsample_validation():
    with pytest.raises(ConfigError):
        sum_downsample(np.zeros((4, 2)), 0)
    with pytest.raises(ShapeError):
        sum_downsample(np.zeros(4), 2)


@settings(max_examples=30, deadline=None)
@given(rows=st.integers(1, 40), n=st.integers(1, 40), seed=st.integers(0, 999))
def test_downsample_sum_preservation_property(rows, n, seed):
    f0 = np.random.default_rng(seed).random((rows, 3))
    f = sum_downsample(f0, n)
    assert f.shape[0] == min(n, rows) or f.shape == f0.shape
    assert np.allclose(f.sum(axis=0), f0.sum(axis=0))
