"""Examples stay runnable: compile all, execute the fast one end to end."""

import py_compile
import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted((Path(__file__).parents[1] / "examples").glob("*.py"))


def test_examples_exist():
    names = {p.name for p in EXAMPLES}
    assert "quickstart.py" in names
    assert len(names) >= 3  # deliverable: at least three runnable examples


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
def test_example_compiles(path):
    py_compile.compile(str(path), doraise=True)


def test_virtual_gpu_example_runs():
    path = Path(__file__).parents[1] / "examples" / "virtual_gpu_kernels.py"
    proc = subprocess.run(
        [sys.executable, str(path)], capture_output=True, text=True, timeout=300
    )
    assert proc.returncode == 0, proc.stderr
    assert "kernel == vectorized: True" in proc.stdout
    assert "modeled latency" in proc.stdout
