"""Fleet serving suite: sharding, determinism, supervision, merged telemetry.

Three layers of coverage:

* unit — :func:`~repro.serve.fleet.stream_shard` stability and spread,
  :class:`~repro.serve.fleet.TenantSpec` pickling + deterministic rebuild,
  and the :mod:`repro.obs.merge` relabeling functions on synthetic payloads
  (no processes involved);
* differential — a real 2-worker fleet on the ``144-24`` benchmark must
  produce per-stream outputs bitwise identical to an in-process
  :class:`~repro.serve.router.AsyncRouter` serving the same submission
  order, and its merged ``/metrics`` + ``/slo`` scrape must keep workers
  separable by label;
* supervision — SIGKILL one worker mid-stream and assert the other
  worker's streams are untouched (still bitwise-identical), the restarted
  worker re-serves its shard correctly after re-warmup, and the restart /
  replay counters surface in the fleet report.

Spawned workers rebuild their tenants from :class:`TenantSpec` recipes, so
everything here runs on the small scaled-SDGC benchmark to keep per-worker
warmup cheap.  ``max_wait_s`` is large everywhere: blocks must flush on
size or drain (deterministic schedule), never on a wall-clock deadline
racing arrival jitter — see the fleet module docstring.
"""

import json
import pickle
import time
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.errors import ConfigError, ServeClosedError
from repro.harness.experiments.common import sdgc_config
from repro.obs.merge import inject_label, merge_prometheus, merge_snapshots
from repro.radixnet import benchmark_input, build_benchmark
from repro.serve import AsyncRouter, EngineSession, ModelRegistry
from repro.serve.fleet import (
    FleetDispatcher,
    TenantSpec,
    stream_shard,
)

BENCH = "144-24"
WAIT = 60.0


# ------------------------------------------------------------------ helpers
def _workload(streams, per_stream, cols=2):
    """``(model, stream, y0)`` items, round-robin over streams per round."""
    net = build_benchmark(BENCH, seed=0)
    items = []
    for j in range(per_stream):
        for i, stream in enumerate(streams):
            y0 = benchmark_input(net, cols, seed=1 + 7 * i + j)
            items.append(("m", stream, y0))
    return items


def _reference_outputs(items, max_batch):
    """Per-stream hstacked outputs from a single-process AsyncRouter."""
    net = build_benchmark(BENCH, seed=0)
    registry = ModelRegistry()
    registry.register("m", net, config=sdgc_config(net.num_layers), warm=True)
    router = AsyncRouter(registry, max_batch=max_batch, max_wait_s=WAIT)
    tickets = [
        (stream, router.submit(model, y0, stream=stream))
        for model, stream, y0 in items
    ]
    router.close(drain=True)
    outputs = {}
    for stream, ticket in tickets:
        outputs.setdefault(stream, []).append(ticket.y)
    return {s: np.hstack(parts) for s, parts in outputs.items()}


def _streams_for_slots(workers, per_slot):
    """Stream names guaranteed to cover every worker slot ``per_slot`` times."""
    picked = {i: [] for i in range(workers)}
    n = 0
    while any(len(v) < per_slot for v in picked.values()):
        name = f"s{n}"
        slot = stream_shard(name, workers)
        if len(picked[slot]) < per_slot:
            picked[slot].append(name)
        n += 1
    return picked


# --------------------------------------------------------------------- unit
def test_stream_shard_stable_and_spread():
    for stream in ("a", "tenant-7", "s0", ""):
        slot = stream_shard(stream, 4)
        assert 0 <= slot < 4
        assert stream_shard(stream, 4) == slot  # stable across calls
    # enough streams cover every slot (balanced-ish hash, not a constant)
    slots = {stream_shard(f"s{i}", 4) for i in range(64)}
    assert slots == {0, 1, 2, 3}
    # non-string ids shard via their str form
    assert stream_shard(7, 4) == stream_shard("7", 4)
    with pytest.raises(ConfigError):
        stream_shard("x", 0)


def test_tenant_spec_picklable_and_deterministic():
    spec = TenantSpec("m", BENCH, threshold=5, slo="p99<250ms@30s/95%")
    clone = pickle.loads(pickle.dumps(spec))
    assert clone == spec
    net_a, cfg_a = spec.build()
    net_b, cfg_b = spec.build()
    assert cfg_a.threshold_layer == 5 == cfg_b.threshold_layer
    w_a, w_b = net_a.layers[0].weight, net_b.layers[0].weight
    assert w_a.nnz == w_b.nnz
    assert np.array_equal(w_a.data, w_b.data)


def test_inject_label_forms():
    assert inject_label("up", "worker", "0") == 'up{worker="0"}'
    assert (
        inject_label('lat{model="a",q="p99"}', "worker", "1")
        == 'lat{worker="1",model="a",q="p99"}'
    )


def test_merge_snapshots_unions_under_worker_label():
    merged = merge_snapshots(
        {"0": {"up": 1.0, 'c{model="a"}': 2.0}, "1": {"up": 3.0}}
    )
    assert merged == {
        'c{worker="0",model="a"}': 2.0,
        'up{worker="0"}': 1.0,
        'up{worker="1"}': 3.0,
    }


def test_merge_prometheus_groups_and_relabels():
    exp0 = (
        "# HELP req_total requests\n# TYPE req_total counter\n"
        'req_total{model="a"} 4\n'
        "# TYPE lat histogram\nlat_bucket{le=\"0.1\"} 2\nlat_sum 0.3\nlat_count 2\n"
    )
    exp1 = (
        "# HELP req_total requests\n# TYPE req_total counter\nreq_total 9\n"
    )
    merged = merge_prometheus({"0": exp0, "1": exp1})
    lines = merged.splitlines()
    # headers survive exactly once, before their series
    assert lines.count("# TYPE req_total counter") == 1
    assert 'req_total{worker="0",model="a"} 4' in lines
    assert 'req_total{worker="1"} 9' in lines
    # histogram suffix series stay grouped under the base-name header
    assert lines.index("# TYPE lat histogram") < lines.index(
        'lat_bucket{worker="0",le="0.1"} 2'
    )
    assert 'lat_count{worker="0"} 2' in lines
    # one worker's series never bleed past another metric's header block
    assert lines.index('req_total{worker="1"} 9') < lines.index(
        "# TYPE lat histogram"
    )


# ------------------------------------------------------------- differential
@pytest.fixture(scope="module")
def fleet_run():
    """One 2-worker fleet serve shared by the differential assertions."""
    streams = [s for v in _streams_for_slots(2, 2).values() for s in v]
    items = _workload(streams, per_stream=3)
    specs = [TenantSpec("m", BENCH, slo="p99<250ms@30s/95%")]
    fleet = FleetDispatcher(
        specs, workers=2, max_batch=4, max_wait_s=WAIT, start_timeout=180.0
    )
    try:
        placement = {s: fleet.worker_for(s) for s in streams}
        live = fleet.stats()
        report = fleet.serve(items)
        endpoint = fleet.obs_endpoint()
        try:
            with urllib.request.urlopen(endpoint.url + "/metrics", timeout=5.0) as r:
                metrics_text = r.read().decode()
            with urllib.request.urlopen(endpoint.url + "/slo", timeout=5.0) as r:
                slo_payload = json.loads(r.read().decode())
        finally:
            endpoint.close()
    finally:
        fleet.close()
    return {
        "fleet": fleet,
        "items": items,
        "streams": streams,
        "placement": placement,
        "live": live,
        "report": report,
        "metrics_text": metrics_text,
        "slo": slo_payload,
        "reference": _reference_outputs(items, max_batch=4),
    }


def test_fleet_outputs_bitwise_match_single_process(fleet_run):
    report = fleet_run["report"]
    assert report.status == "ok"
    assert not report.rejected and not report.failed
    assert len(report.served) == len(fleet_run["items"])
    for stream in fleet_run["streams"]:
        got = report.stream_output(stream)
        want = fleet_run["reference"][stream]
        assert got.shape == want.shape
        assert np.array_equal(got, want), f"stream {stream} diverged"
    # both slots actually took traffic (the shard covers both by design)
    assert set(fleet_run["placement"].values()) == {0, 1}


def test_fleet_report_merges_worker_views(fleet_run):
    report = fleet_run["report"]
    assert report.workers == 2
    assert report.restarts == [0, 0]
    assert all(rep is not None for rep in report.worker_reports)
    assert sum(rep["requests"] for rep in report.worker_reports) == len(
        fleet_run["items"]
    )
    # per-worker streams agree with the dispatcher's placement map
    for i, rep in enumerate(report.worker_reports):
        expected = sorted(
            s for s, slot in fleet_run["placement"].items() if slot == i
        )
        assert rep["streams"] == expected
        assert rep["cpu_seconds"] > 0
    assert report.columns == sum(y0.shape[1] for _, _, y0 in fleet_run["items"])
    assert report.capacity_columns_per_second > 0
    summary = report.summary()
    assert summary["served"] == len(fleet_run["items"])
    json.dumps(report.to_json())  # JSON-safe end to end
    # tickets carry worker-side telemetry across the process boundary
    ticket = report.served[0]
    assert ticket.worker in (0, 1)
    assert ticket.info["batch_columns"] <= 4 * 2  # max_batch blocks only
    assert "breakdown" in ticket.info


def test_fleet_merged_scrape_keeps_workers_separable(fleet_run):
    text = fleet_run["metrics_text"]
    assert 'worker="0"' in text and 'worker="1"' in text
    # the dispatcher endpoint serves the merged exposition, not one worker's
    snapshot = fleet_run["report"].merged_metrics()
    assert any('worker="0"' in k for k in snapshot)
    assert any('worker="1"' in k for k in snapshot)
    # per-tenant-per-worker SLO blocks under model@worker keys
    assert set(fleet_run["slo"]) == {"m@0", "m@1"}
    live = fleet_run["live"]
    assert [s["alive"] for s in live["slots"]] == [True, True]
    assert [s["incarnation"] for s in live["slots"]] == [1, 1]


def test_fleet_rejects_bad_submits(fleet_run):
    fleet = fleet_run["fleet"]
    with pytest.raises(ConfigError):
        fleet.submit("nope", np.zeros((4, 1)))
    with pytest.raises(ServeClosedError):
        fleet.submit("m", np.zeros((4, 1)))  # fleet already drained
    # join after the fact returns the same report object, idempotently
    assert fleet.join() is fleet_run["report"]


# -------------------------------------------------------------- supervision
def test_fleet_crash_recovery_isolates_streams():
    by_slot = _streams_for_slots(2, 2)
    streams = [s for v in by_slot.values() for s in v]
    items = _workload(streams, per_stream=4)
    victim = 0
    specs = [TenantSpec("m", BENCH)]
    fleet = FleetDispatcher(
        specs, workers=2, max_batch=4, max_wait_s=WAIT, start_timeout=180.0
    )
    try:
        for model, stream, y0 in items:
            fleet.submit(model, y0, stream=stream)
        fleet.kill_worker(victim)  # SIGKILL mid-stream, queues non-empty
        report = fleet.join()
    finally:
        fleet.close()

    # supervision surfaced: exactly the victim restarted, with replay
    assert report.restarts[victim] == 1
    assert report.restarts[1 - victim] == 0
    assert report.restart_total == 1
    assert report.replayed[victim] > 0
    assert report.replayed[1 - victim] == 0

    # nothing was lost or failed anywhere in the fleet
    assert not report.failed and not report.rejected
    assert len(report.served) == len(items)
    assert report.status == "ok"

    reference = _reference_outputs(items, max_batch=4)
    # (a) the surviving worker's streams are bitwise-undisturbed
    for stream in by_slot[1 - victim]:
        assert np.array_equal(report.stream_output(stream), reference[stream])
    # (b) the restarted worker re-warmed and re-served its shard identically
    for stream in by_slot[victim]:
        assert np.array_equal(report.stream_output(stream), reference[stream])
    # the replacement incarnation filed the victim slot's final report
    assert report.worker_reports[victim] is not None
    assert report.worker_reports[victim]["incarnation"] == 2


def test_fleet_crash_restart_boots_from_artifact(tmp_path):
    """A SIGKILLed worker's replacement boots from the shared warm artifact.

    With ``TenantSpec.warm_state`` set, every incarnation — the crash
    victim's replacement included — must report booting from the artifact
    (nobody silently re-bakes), pay less for registry warmup than for the
    unavoidable network build, and replay its shard bitwise identically.
    """
    net = build_benchmark(BENCH, seed=0)
    net.drop_views()
    artifact = str(tmp_path / "warm.npz")
    EngineSession(net, sdgc_config(net.num_layers)).save_warm_state(artifact)
    net.drop_views()

    by_slot = _streams_for_slots(2, 2)
    streams = [s for v in by_slot.values() for s in v]
    items = _workload(streams, per_stream=4)
    victim = 0
    specs = [TenantSpec("m", BENCH, warm_state=artifact)]
    fleet = FleetDispatcher(
        specs, workers=2, max_batch=4, max_wait_s=WAIT, start_timeout=180.0
    )
    try:
        for model, stream, y0 in items:
            fleet.submit(model, y0, stream=stream)
        fleet.kill_worker(victim)  # SIGKILL mid-stream, queues non-empty
        report = fleet.join()
    finally:
        fleet.close()

    assert report.restarts[victim] == 1
    assert report.restart_total == 1
    assert not report.failed and not report.rejected
    assert report.status == "ok"
    reference = _reference_outputs(items, max_batch=4)
    for stream in streams:
        assert np.array_equal(report.stream_output(stream), reference[stream])
    # every incarnation booted from the artifact, the replacement included
    for rep in report.worker_reports:
        assert rep is not None
        assert rep["warm_sources"] == {"m": "artifact"}
    victim_rep = report.worker_reports[victim]
    assert victim_rep["incarnation"] == 2
    # artifact boot skips warmup work: loading the file is structurally
    # cheaper than the network build the replacement also had to pay,
    # where a cold boot pays build *plus* a full bake on top
    assert victim_rep["warmup_seconds"] < victim_rep["build_seconds"]


def test_fleet_healthz_degrades_past_restart_budget():
    """A slot dead past ``max_restarts`` flips the fleet ``/healthz`` to 503.

    Process liveness alone must not report a fleet that fails every stream
    hashed to a dead slot as healthy — the endpoint is a readiness probe
    wired to :meth:`FleetDispatcher.health`.
    """
    specs = [TenantSpec("m", BENCH)]
    fleet = FleetDispatcher(
        specs, workers=2, max_batch=4, max_wait_s=WAIT,
        start_timeout=180.0, max_restarts=0,
    )
    endpoint = None
    try:
        assert fleet.health()["healthy"] is True
        endpoint = fleet.obs_endpoint()
        with urllib.request.urlopen(endpoint.url + "/healthz", timeout=5.0) as r:
            assert r.status == 200
            assert json.loads(r.read().decode())["healthy"] is True
        fleet.kill_worker(0)  # restart budget is 0: the slot goes dead
        deadline = time.monotonic() + 60.0
        while fleet.health()["healthy"] and time.monotonic() < deadline:
            time.sleep(0.05)
        health = fleet.health()
        assert health["healthy"] is False
        assert health["dead_workers"] == [0]
        with pytest.raises(urllib.error.HTTPError) as exc_info:
            urllib.request.urlopen(endpoint.url + "/healthz", timeout=5.0)
        assert exc_info.value.code == 503
        payload = json.loads(exc_info.value.read().decode())
        assert payload["healthy"] is False and payload["dead_workers"] == [0]
    finally:
        if endpoint is not None:
            endpoint.close()
        fleet.close()
