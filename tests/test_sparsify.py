"""Magnitude pruning and iterative sparsification."""

import numpy as np
import pytest

from repro.data.loader import Dataset
from repro.errors import ConfigError
from repro.nn import BoundedReLU, Dense, Flatten, Sequential, SparseLinear
from repro.nn.sparsify import iterative_prune, magnitude_mask, prune_model


def test_magnitude_mask_exact_count(rng):
    w = rng.standard_normal((10, 10))
    mask = magnitude_mask(w, 0.3)
    assert mask.sum() == 30


def test_magnitude_mask_keeps_largest():
    w = np.array([[1.0, -5.0], [0.1, 3.0]])
    mask = magnitude_mask(w, 0.5)
    assert mask[0, 1] and mask[1, 1]
    assert not mask[0, 0] and not mask[1, 0]


def test_magnitude_mask_handles_ties():
    w = np.ones((4, 4))
    mask = magnitude_mask(w, 0.25)
    assert mask.sum() == 4


def test_magnitude_mask_full_density(rng):
    w = rng.standard_normal((3, 3))
    assert magnitude_mask(w, 1.0).all()
    with pytest.raises(ConfigError):
        magnitude_mask(w, 0.0)


def make_model(rng, density=1.0, n=16):
    return Sequential([
        Flatten(),
        Dense(8, n, rng),
        BoundedReLU(1.0),
        SparseLinear(n, n, density, rng),
        BoundedReLU(1.0),
        SparseLinear(n, n, density, rng),
        BoundedReLU(1.0),
        Dense(n, 2, rng),
    ])


def test_prune_model_hits_density(rng):
    model = make_model(rng)
    touched = prune_model(model, 0.4)
    assert touched == 2
    for layer in model.layers:
        if isinstance(layer, SparseLinear):
            assert layer.density == pytest.approx(0.4, abs=0.05)
            off = layer.mask == 0
            assert (layer.weight.value[off] == 0).all()


def test_prune_is_monotone(rng):
    model = make_model(rng, density=0.6)
    layer = next(l for l in model.layers if isinstance(l, SparseLinear))
    before = layer.mask.copy()
    prune_model(model, 0.3)
    # no previously-masked connection came back
    assert not ((layer.mask > 0) & (before == 0)).any()


def test_prune_keeps_outputs_connected(rng):
    model = make_model(rng)
    prune_model(model, 0.05)
    for layer in model.layers:
        if isinstance(layer, SparseLinear):
            assert (layer.mask.sum(axis=0) >= 1).all()


def _toy_dataset(rng, n=300):
    x = rng.standard_normal((n, 2, 4)).astype(np.float32)
    labels = (x.reshape(n, -1).sum(axis=1) > 0).astype(np.int64)
    return Dataset(x, labels)


def test_iterative_prune_end_to_end(rng):
    model = make_model(rng)
    train = _toy_dataset(rng)
    test = _toy_dataset(rng, 100)
    model.fit(train, epochs=6, rng=rng, lr=3e-3)
    dense_acc = model.evaluate(test)
    report = iterative_prune(
        model, train, test, final_density=0.5, rng=rng, steps=2, epochs_per_step=3
    )
    assert report.final_density == pytest.approx(0.5, abs=0.05)
    assert len(report.accuracies) == 2
    assert report.accuracies[-1] > dense_acc - 0.15  # fine-tuning recovers


def test_iterative_prune_validation(rng):
    model = make_model(rng, density=0.4)
    ds = _toy_dataset(rng, 50)
    with pytest.raises(ConfigError, match="below current"):
        iterative_prune(model, ds, ds, final_density=0.9, rng=rng)
    with pytest.raises(ConfigError):
        iterative_prune(model, ds, ds, final_density=0.2, rng=rng, steps=0)
    no_sparse = Sequential([Flatten(), Dense(8, 2, rng)])
    with pytest.raises(ConfigError, match="no SparseLinear"):
        iterative_prune(no_sparse, ds, ds, final_density=0.5, rng=rng)
