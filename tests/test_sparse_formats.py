"""COO/CSR/CSC/ELL containers: construction, round trips, validation."""

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings, strategies as st

from repro.errors import FormatError, ShapeError
from repro.sparse import COOMatrix, CSRMatrix, CSCMatrix, ELLMatrix
from repro.sparse.convert import csc_to_csr, csr_to_csc, random_sparse, to_csc, to_csr


def random_dense(rng, shape=(7, 5), density=0.4):
    d = rng.random(shape)
    d[d > density] = 0.0
    return d


# ---------------------------------------------------------------- COO
def test_coo_from_to_dense_roundtrip(rng):
    d = random_dense(rng)
    assert np.array_equal(COOMatrix.from_dense(d).to_dense(), d)


def test_coo_duplicate_entries_sum():
    coo = COOMatrix(
        np.array([0, 0, 1]), np.array([1, 1, 0]), np.array([2.0, 3.0, 4.0]), (2, 2)
    )
    dense = coo.to_dense()
    assert dense[0, 1] == 5.0
    summed = coo.sum_duplicates()
    assert summed.nnz == 2
    assert np.array_equal(summed.to_dense(), dense)


def test_coo_sorted_orders_by_row_then_col():
    coo = COOMatrix(np.array([1, 0, 1]), np.array([0, 2, 1]), np.array([1.0, 2.0, 3.0]), (2, 3))
    s = coo.sorted()
    assert list(s.row) == [0, 1, 1]
    assert list(s.col) == [2, 0, 1]


def test_coo_transpose(rng):
    d = random_dense(rng)
    assert np.array_equal(COOMatrix.from_dense(d).transpose().to_dense(), d.T)


def test_coo_validation_errors():
    with pytest.raises(FormatError, match="length"):
        COOMatrix(np.array([0]), np.array([0, 1]), np.array([1.0]), (2, 2))
    with pytest.raises(FormatError, match="out of range"):
        COOMatrix(np.array([5]), np.array([0]), np.array([1.0]), (2, 2))
    with pytest.raises(FormatError, match="one-dimensional"):
        COOMatrix(np.zeros((2, 2)), np.array([0]), np.array([1.0]), (2, 2))


def test_coo_density():
    coo = COOMatrix(np.array([0]), np.array([0]), np.array([1.0]), (2, 2))
    assert coo.density == 0.25


# ---------------------------------------------------------------- CSR
def test_csr_matches_scipy(rng):
    d = random_dense(rng, (20, 13))
    ours = CSRMatrix.from_dense(d)
    ref = sp.csr_matrix(d)
    assert np.array_equal(ours.indptr, ref.indptr)
    assert np.array_equal(ours.indices, ref.indices)
    assert np.allclose(ours.data, ref.data)


def test_csr_handles_empty_rows(rng):
    d = np.zeros((5, 4))
    d[1, 2] = 3.0
    d[4, 0] = 1.0
    csr = CSRMatrix.from_dense(d)
    assert list(csr.row_nnz) == [0, 1, 0, 0, 1]
    assert np.array_equal(csr.to_dense(), d)


def test_csr_matvec_matches_numpy(rng):
    d = random_dense(rng, (9, 6))
    x = rng.random(6)
    assert np.allclose(CSRMatrix.from_dense(d).matvec(x), d @ x)


def test_csr_matvec_shape_error(rng):
    csr = CSRMatrix.from_dense(random_dense(rng))
    with pytest.raises(ShapeError):
        csr.matvec(np.ones(99))


def test_csr_row_view(rng):
    d = random_dense(rng)
    csr = CSRMatrix.from_dense(d)
    cols, vals = csr.row(2)
    assert np.allclose(d[2, cols], vals)
    with pytest.raises(ShapeError):
        csr.row(99)


def test_csr_take_rows(rng):
    d = random_dense(rng, (8, 5))
    sub = CSRMatrix.from_dense(d).take_rows(np.array([3, 0, 7]))
    assert np.array_equal(sub.to_dense(), d[[3, 0, 7]])


def test_csr_scale_rows(rng):
    d = random_dense(rng, (4, 5))
    s = rng.random(4)
    scaled = CSRMatrix.from_dense(d).scale_rows(s)
    assert np.allclose(scaled.to_dense(), d * s[:, None])


def test_csr_transpose(rng):
    d = random_dense(rng, (6, 9))
    assert np.array_equal(CSRMatrix.from_dense(d).transpose().to_dense(), d.T)


def test_csr_validation_errors():
    with pytest.raises(FormatError, match="indptr"):
        CSRMatrix(np.array([0, 1]), np.array([0]), np.array([1.0]), (2, 2))
    with pytest.raises(FormatError, match="non-decreasing"):
        CSRMatrix(np.array([0, 2, 1]), np.array([0, 0]), np.array([1.0, 1.0]), (2, 2))
    with pytest.raises(FormatError, match="out of range"):
        CSRMatrix(np.array([0, 1]), np.array([9]), np.array([1.0]), (1, 2))
    with pytest.raises(FormatError, match="indptr\\[0\\]"):
        CSRMatrix(np.array([1, 1]), np.array([]), np.array([]), (1, 2))


# ---------------------------------------------------------------- CSC
def test_csc_matches_scipy(rng):
    d = random_dense(rng, (11, 7))
    ours = CSCMatrix.from_dense(d)
    ref = sp.csc_matrix(d)
    assert np.array_equal(ours.indptr, ref.indptr)
    assert np.array_equal(ours.indices, ref.indices)
    assert np.allclose(ours.data, ref.data)


def test_csc_take_columns(rng):
    d = random_dense(rng, (6, 8))
    sub = CSCMatrix.from_dense(d).take_columns(np.array([5, 1]))
    assert np.array_equal(sub.to_dense(), d[:, [5, 1]])


def test_csc_col_view(rng):
    d = random_dense(rng)
    csc = CSCMatrix.from_dense(d)
    rows, vals = csc.col(1)
    assert np.allclose(d[rows, 1], vals)
    with pytest.raises(ShapeError):
        csc.col(77)


def test_csr_csc_conversions(rng):
    d = random_dense(rng, (10, 10))
    csr = CSRMatrix.from_dense(d)
    assert np.array_equal(csr_to_csc(csr).to_dense(), d)
    assert np.array_equal(csc_to_csr(CSCMatrix.from_dense(d)).to_dense(), d)


# ---------------------------------------------------------------- ELL
def test_ell_roundtrip_fixed_fanin(rng):
    idx = rng.integers(0, 16, size=(8, 4))
    val = rng.random((8, 4)).astype(np.float32) + 0.1
    ell = ELLMatrix(idx, val, (8, 16))
    csr = ell.to_csr()
    back = ELLMatrix.from_csr(csr)
    assert np.array_equal(back.to_dense(), ell.to_dense())


def test_ell_from_csr_pads_ragged_rows(rng):
    d = np.zeros((3, 5))
    d[0, [0, 1, 2]] = 1.0
    d[2, 4] = 2.0
    ell = ELLMatrix.from_csr(CSRMatrix.from_dense(d))
    assert ell.width == 3
    assert np.array_equal(ell.to_dense(), d)
    assert ell.nnz == 4


def test_ell_width_too_small_rejected(rng):
    d = np.ones((2, 3))
    with pytest.raises(FormatError, match="width"):
        ELLMatrix.from_csr(CSRMatrix.from_dense(d), width=2)


def test_ell_validation():
    with pytest.raises(FormatError):
        ELLMatrix(np.zeros((2, 2, 2), dtype=np.int64), np.zeros((2, 2, 2)), (2, 4))
    with pytest.raises(FormatError, match="out of range"):
        ELLMatrix(np.array([[9]]), np.array([[1.0]]), (1, 4))


# ----------------------------------------------------------- converters
def test_to_csr_to_csc_accept_everything(rng):
    d = random_dense(rng)
    for m in (d, COOMatrix.from_dense(d), CSRMatrix.from_dense(d),
              CSCMatrix.from_dense(d), ELLMatrix.from_csr(CSRMatrix.from_dense(d))):
        assert np.array_equal(to_csr(m).to_dense(), d)
        assert np.array_equal(to_csc(m).to_dense(), d)


def test_random_sparse_density_and_range(rng):
    m = random_sparse((40, 50), 0.1, rng, value_range=(-2.0, 2.0))
    assert m.nnz == 200
    assert (m.data != 0).all()
    assert (np.abs(m.data) <= 2.0).all()


def test_random_sparse_bad_density(rng):
    from repro.errors import ConfigError

    with pytest.raises(ConfigError):
        random_sparse((4, 4), 1.5, rng)


# --------------------------------------------------------- property based
@settings(max_examples=25, deadline=None)
@given(
    n_rows=st.integers(1, 12),
    n_cols=st.integers(1, 12),
    seed=st.integers(0, 10_000),
    density=st.floats(0.0, 1.0),
)
def test_roundtrip_property(n_rows, n_cols, seed, density):
    rng = np.random.default_rng(seed)
    d = rng.random((n_rows, n_cols))
    d[d > density] = 0.0
    for convert in (CSRMatrix.from_dense, CSCMatrix.from_dense, COOMatrix.from_dense):
        assert np.array_equal(convert(d).to_dense(), d)
