"""Task graph construction and stream scheduling."""

import pytest

from repro.errors import ConfigError
from repro.gpu.stream import Task, TaskGraph, simulate_schedule


def chain_graph(n: int) -> TaskGraph:
    g = TaskGraph()
    for i in range(n):
        g.task(f"t{i}", deps=[f"t{i - 1}"] if i else [])
    return g


def test_duplicate_task_rejected():
    g = TaskGraph()
    g.task("a")
    with pytest.raises(ConfigError, match="duplicate"):
        g.task("a")


def test_unknown_dependency_rejected():
    g = TaskGraph()
    with pytest.raises(ConfigError, match="unknown"):
        g.task("b", deps=["nope"])


def test_topo_order_respects_deps():
    g = TaskGraph()
    g.task("a")
    g.task("b", deps=["a"])
    g.task("c", deps=["a"])
    g.task("d", deps=["b", "c"])
    order = [t.name for t in g.topo_order()]
    assert order.index("a") < order.index("b") < order.index("d")
    assert order.index("a") < order.index("c") < order.index("d")


def test_run_executes_functions_in_order():
    log = []
    g = TaskGraph()
    g.task("a", fn=lambda: log.append("a"))
    g.task("b", fn=lambda: log.append("b"), deps=["a"])
    durations = g.run()
    assert log == ["a", "b"]
    assert durations == {"a": 0.0, "b": 0.0}


def test_run_duration_from_return_value_and_field():
    g = TaskGraph()
    g.task("ret", fn=lambda: 1.5)
    g.task("fixed", fn=lambda: 9.9, duration=0.25)
    durations = g.run()
    assert durations["ret"] == 1.5
    assert durations["fixed"] == 0.25  # explicit duration wins


def test_single_stream_is_serial():
    g = chain_graph(4)
    durations = {f"t{i}": 1.0 for i in range(4)}
    makespan, spans = simulate_schedule(g, durations, n_streams=1)
    assert makespan == pytest.approx(4.0)
    assert spans["t3"] == (3.0, 4.0)


def test_independent_tasks_overlap():
    g = TaskGraph()
    for i in range(4):
        g.task(f"t{i}")
    durations = {f"t{i}": 1.0 for i in range(4)}
    makespan, _ = simulate_schedule(g, durations, n_streams=4)
    assert makespan == pytest.approx(1.0)
    makespan2, _ = simulate_schedule(g, durations, n_streams=2)
    assert makespan2 == pytest.approx(2.0)


def test_dependency_chain_cannot_overlap():
    g = chain_graph(3)
    durations = {f"t{i}": 2.0 for i in range(3)}
    makespan, _ = simulate_schedule(g, durations, n_streams=8)
    assert makespan == pytest.approx(6.0)


def test_partitioned_pipeline_makespan():
    # two independent chains of 3 x 1s on 2 streams: perfect overlap
    g = TaskGraph()
    for p in range(2):
        prev = None
        for i in range(3):
            name = f"p{p}l{i}"
            g.task(name, deps=[prev] if prev else [])
            prev = name
    durations = {t.name: 1.0 for t in g.topo_order()}
    makespan, _ = simulate_schedule(g, durations, n_streams=2)
    assert makespan == pytest.approx(3.0)


def test_invalid_stream_count():
    with pytest.raises(ConfigError):
        simulate_schedule(TaskGraph(), {}, n_streams=0)


def test_missing_duration_defaults_to_zero():
    g = chain_graph(2)
    makespan, _ = simulate_schedule(g, {"t0": 1.0}, n_streams=1)
    assert makespan == pytest.approx(1.0)


def test_task_dataclass_defaults():
    t = Task(name="x")
    assert t.deps == [] and t.fn is None and t.duration is None
