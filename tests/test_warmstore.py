"""Warm-state artifact lifecycle (repro.core.warmstore) + autotuner memo.

Four layers of coverage:

* round-trip — a served-warm session saved and restored into a fresh
  session must come back with the same views, plan, memo baselines, and
  cache fills, and replay the exact saved outputs;
* rejection semantics — truncated files, random bytes, a missing header
  member, a foreign magic, and a future format version all raise
  :class:`~repro.errors.FormatError`; an artifact saved for a *different*
  network (or engine kind) raises :class:`~repro.errors.ConfigError`; a
  missing path propagates ``FileNotFoundError`` untouched;
* bitwise identity — the loaded / freshly-warmed / cold-engine output
  triangle is bitwise equal on both the scaled-SDGC and medium tiers,
  including a repeated block that exercises the adopted centroid cache;
* measure-and-revise — property-based: under any seeded cost history the
  memo revises at most once per stable regime and then goes quiescent (no
  thrash), and a plan-level revision mid-serve never changes outputs, only
  the strategy counters.
"""

import json

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import SNICIT
from repro.core.warmstore import WARMSTORE_VERSION, peek_header
from repro.errors import ConfigError, FormatError
from repro.harness.experiments.common import sdgc_config
from repro.harness.experiments.table4 import medium_config
from repro.harness.medium import get_trained
from repro.harness.workloads import get_benchmark, get_input
from repro.kernels import StrategyMemo
from repro.radixnet import build_benchmark
from repro.serve import EngineSession

BENCH = "144-24"


# ------------------------------------------------------------------ helpers
def _blocks(n=2, cols=4):
    return [np.asarray(get_input(BENCH, cols, seed=10 + i)) for i in range(n)]


def _session(net, cfg, **kw):
    """A reuse-enabled session at the bitwise-lossless setting."""
    kw.setdefault("warm", False)
    kw.setdefault("centroid_reuse", True)
    kw.setdefault("reuse_tolerance", 0.0)
    return EngineSession(net, cfg, **kw)


def _rewrite_header(src, dst, mutate):
    """Copy an artifact, applying ``mutate`` to its JSON header in place."""
    with np.load(src, allow_pickle=False) as data:
        arrays = {name: data[name] for name in data.files}
    header = json.loads(bytes(arrays["header"]).decode("utf-8"))
    mutate(header)
    arrays["header"] = np.frombuffer(
        json.dumps(header, sort_keys=True).encode("utf-8"), dtype=np.uint8
    )
    with open(dst, "wb") as fh:
        np.savez(fh, **arrays)


@pytest.fixture(scope="module")
def sdgc_state(tmp_path_factory):
    """One served-warm SDGC session saved to an artifact, plus its outputs."""
    net = get_benchmark(BENCH)
    cfg = sdgc_config(net.num_layers)
    net.drop_views()
    session = _session(net, cfg, warm=True, revise_ratio=2.0)
    blocks = _blocks()
    outputs = [session.run(y0).y.copy() for y0 in blocks]
    path = str(tmp_path_factory.mktemp("warmstore") / "sdgc.npz")
    manifest = session.save_warm_state(path)
    net.drop_views()
    return {
        "net": net,
        "cfg": cfg,
        "path": path,
        "manifest": manifest,
        "blocks": blocks,
        "outputs": outputs,
        "memo_entries": session.memo.stats()["entries"],
    }


# --------------------------------------------------------------- round trip
def test_unwarmed_session_refuses_to_save(tmp_path):
    net = get_benchmark(BENCH)
    session = _session(net, sdgc_config(net.num_layers))
    with pytest.raises(ConfigError, match="warm"):
        session.save_warm_state(str(tmp_path / "cold.npz"))


def test_save_load_round_trip_restores_state(sdgc_state):
    net = sdgc_state["net"]
    net.drop_views()
    session = _session(net, sdgc_state["cfg"], revise_ratio=2.0)
    assert not session.warmed
    manifest = session.load_warm_state(sdgc_state["path"])
    assert session.warmed
    assert session.warm_source == "artifact"
    saved = sdgc_state["manifest"]
    for key in (
        "fingerprint", "dense_views", "ell_views", "plan_layers",
        "memo_choices", "memo_costs",
    ):
        assert manifest[key] == saved[key]
    assert manifest["cache_entries"] == saved["cache_entries"]
    assert manifest["cache_skipped"] == 0
    # the baked plan came back whole and the memo resumed its baselines
    assert session.plan is not None
    assert len(session.plan.layers) == saved["plan_layers"] == net.num_layers
    assert session.memo.stats()["entries"] == sdgc_state["memo_entries"]
    assert session.memo.stats()["cost_entries"] == saved["memo_costs"]
    # ...and the restored session replays the exact saved outputs
    for y0, want in zip(sdgc_state["blocks"], sdgc_state["outputs"]):
        assert np.array_equal(session.run(y0).y, want)
    net.drop_views()


def test_peek_header_reports_identity(sdgc_state):
    header = peek_header(sdgc_state["path"])
    assert header["format_version"] == WARMSTORE_VERSION
    assert header["engine_kind"] == "snicit"
    assert header["network"]["fingerprint"] == sdgc_state["net"].fingerprint
    assert header["network"]["layers"] == len(sdgc_state["net"].layers)


# ---------------------------------------------------------------- rejection
def test_fingerprint_mismatch_rejected(sdgc_state):
    other = build_benchmark(BENCH, seed=1)  # same shape, different weights
    assert other.fingerprint != sdgc_state["net"].fingerprint
    session = _session(other, sdgc_state["cfg"])
    with pytest.raises(ConfigError, match="fingerprint"):
        session.load_warm_state(sdgc_state["path"])
    assert not session.warmed  # the refused load left no half-restored state


def test_engine_kind_mismatch_rejected(sdgc_state):
    net = sdgc_state["net"]
    session = EngineSession(net, kind="dense", warm=False)
    with pytest.raises(ConfigError, match="dense"):
        session.load_warm_state(sdgc_state["path"])
    net.drop_views()


def test_truncated_artifact_rejected(sdgc_state, tmp_path):
    raw = open(sdgc_state["path"], "rb").read()
    for frac, name in ((0.5, "half.npz"), (0.95, "tail.npz")):
        stump = tmp_path / name
        stump.write_bytes(raw[: int(len(raw) * frac)])
        with pytest.raises(FormatError):
            peek_header(str(stump))


def test_random_bytes_rejected(tmp_path):
    junk = tmp_path / "junk.npz"
    junk.write_bytes(b"\x00\x01not-an-archive\xff" * 128)
    with pytest.raises(FormatError):
        peek_header(str(junk))


def test_npz_without_header_member_rejected(tmp_path):
    bare = tmp_path / "bare.npz"
    with open(bare, "wb") as fh:
        np.savez(fh, weights=np.zeros(4, dtype=np.float32))
    with pytest.raises(FormatError, match="header"):
        peek_header(str(bare))


def test_foreign_magic_rejected(sdgc_state, tmp_path):
    alien = tmp_path / "alien.npz"
    _rewrite_header(
        sdgc_state["path"], alien, lambda h: h.update(format="other-tool")
    )
    with pytest.raises(FormatError):
        peek_header(str(alien))


def test_version_skew_refused(sdgc_state, tmp_path):
    future = tmp_path / "future.npz"
    _rewrite_header(
        sdgc_state["path"], future,
        lambda h: h.update(format_version=WARMSTORE_VERSION + 1),
    )
    with pytest.raises(FormatError, match="version"):
        peek_header(str(future))
    net = sdgc_state["net"]
    session = _session(net, sdgc_state["cfg"])
    with pytest.raises(FormatError, match="version"):
        session.load_warm_state(str(future))
    net.drop_views()


def test_missing_file_propagates_file_not_found(sdgc_state, tmp_path):
    session = _session(sdgc_state["net"], sdgc_state["cfg"])
    with pytest.raises(FileNotFoundError):
        session.load_warm_state(str(tmp_path / "nope.npz"))


# --------------------------------------------------------- bitwise identity
def _assert_triangle(net, cfg, history, continuation, tmp_path, **session_kw):
    """Cold boot, warm boot, and snapshot-resume serve bitwise identically.

    Two invariants at once:

    * boot-path invariance — a lazily-warming session (memo path, nothing
      pre-baked) and a freshly-warmed session (baked plan) serve the whole
      ``history + continuation`` sequence bitwise identically;
    * snapshot-resume invariance — saving the warm session after
      ``history`` and loading the artifact into a new session must continue
      ``continuation`` exactly as the never-stopped session would have: the
      artifact carries the cache/memo state forward, it never invents a
      different one.
    """
    net.drop_views()
    lazy = _session(net, cfg, **session_kw)  # warm=False: warms on demand
    lazy_out = [lazy.run(y0).y.copy() for y0 in history + continuation]
    net.drop_views()
    fresh = _session(net, cfg, warm=True, **session_kw)
    fresh_out = [fresh.run(y0).y.copy() for y0 in history]
    path = str(tmp_path / "triangle.npz")
    fresh.save_warm_state(path)
    fresh_out += [fresh.run(y0).y.copy() for y0 in continuation]
    net.drop_views()
    loaded = _session(net, cfg, **session_kw)
    loaded.load_warm_state(path)
    assert loaded.warm_source == "artifact"
    loaded_out = [loaded.run(y0).y.copy() for y0 in continuation]
    net.drop_views()
    for lazy_y, fresh_y in zip(lazy_out, fresh_out):
        assert np.array_equal(fresh_y, lazy_y)
    for fresh_y, loaded_y in zip(fresh_out[len(history):], loaded_out):
        assert np.array_equal(loaded_y, fresh_y)


def test_loaded_outputs_bitwise_identical_sdgc(tmp_path):
    net = get_benchmark(BENCH)
    a, b = _blocks(2)
    # the repeated block makes the resumed session serve from the artifact's
    # adopted centroid cache, not just recompute — that path must be bitwise
    _assert_triangle(
        net, sdgc_config(net.num_layers), [a, b], [a, b], tmp_path,
        revise_ratio=2.0,
    )


def test_loaded_outputs_bitwise_identical_medium(tmp_path):
    tm = get_trained("A")
    net = tm.stack.network
    cfg = medium_config(tm.spec.sparse_layers)
    y0 = np.ascontiguousarray(tm.stack.head(tm.test.images[:12]))
    a = np.ascontiguousarray(y0[:, :6])
    b = np.ascontiguousarray(y0[:, 6:])
    _assert_triangle(net, cfg, [a, b], [a, b], tmp_path)


def test_loaded_cache_hits_match_pure_engine_on_repeat_stream(tmp_path):
    """Artifact-adopted cache hits reproduce the stateless engine bitwise.

    On an identical repeated block the assign-only path is exact (every
    column's residue telescopes against the very centroids it was filled
    from), so even a raw per-request :class:`~repro.core.SNICIT` engine —
    no session, no cache — must agree with every reused serve.
    """
    net = get_benchmark(BENCH)
    cfg = sdgc_config(net.num_layers)
    (a,) = _blocks(1)
    net.drop_views()
    want = SNICIT(net, cfg).infer(a).y.copy()
    net.drop_views()
    fresh = _session(net, cfg, warm=True)
    for _ in range(2):  # fill, then an in-session hit
        assert np.array_equal(fresh.run(a).y, want)
    path = str(tmp_path / "repeat.npz")
    fresh.save_warm_state(path)
    net.drop_views()
    loaded = _session(net, cfg)
    loaded.load_warm_state(path)
    assert np.array_equal(loaded.run(a).y, want)
    stats = loaded.reuse.stats()
    assert stats["hits"] >= 1  # served from the adopted entry...
    assert stats["fills"] == 0  # ...not from a fresh conversion
    net.drop_views()


# --------------------------------------------------------- measure & revise
def test_memo_revise_ratio_must_exceed_one():
    with pytest.raises(ConfigError):
        StrategyMemo(revise_ratio=1.0)
    with pytest.raises(ConfigError):
        StrategyMemo(revise_ratio=0.5)
    assert StrategyMemo(revise_ratio=1.01).revise_ratio == 1.01


def test_memo_export_import_round_trip():
    memo = StrategyMemo(revise_ratio=2.0)
    memo.record(0, 0.2, "colwise", network="netA")
    memo.record(3, 0.9, "ell", network="netA")
    for seconds in (0.001, 0.002, 0.001, 0.0015):
        memo.observe(3, 0.9, "ell", seconds, network="netA")
    clone = StrategyMemo(revise_ratio=2.0)
    clone.import_state(memo.export_state())
    assert clone.export_state() == memo.export_state()
    assert clone.lookup(3, 0.9, network="netA") == "ell"


def test_memo_import_rejects_bucket_mismatch():
    state = StrategyMemo(n_buckets=16).export_state()
    with pytest.raises(ConfigError, match="bucket"):
        StrategyMemo(n_buckets=8).import_state(state)


@settings(max_examples=40, deadline=None)
@given(
    prefix=st.lists(
        st.floats(1e-6, 1.0, allow_nan=False, allow_infinity=False),
        max_size=30,
    ),
    stable=st.floats(1e-6, 1.0, allow_nan=False, allow_infinity=False),
    ratio=st.floats(1.05, 4.0, allow_nan=False, allow_infinity=False),
)
def test_memo_measure_and_revise_converges(prefix, stable, ratio):
    """Any cost history followed by a stable regime revises at most once.

    After a drift-triggered revision the record resets, so the re-frozen
    baseline equals the stable cost and the trigger condition
    (``ewma > baseline * ratio`` with ``ratio > 1``) can never fire again —
    the autotuner must not thrash, whatever the measurement history was.
    """
    memo = StrategyMemo(revise_ratio=ratio)

    def feed(seconds):
        revised = memo.observe(2, 0.4, "masked", seconds)
        if revised:
            memo.record(2, 0.4, "masked")  # the tournament re-records
        return revised

    memo.record(2, 0.4, "masked")
    for seconds in prefix:
        feed(seconds)
    # 300 stable observations drive the EWMA to its float fixed point, so
    # any drift event this regime can cause has happened by the end
    stable_revisions = sum(feed(stable) for _ in range(300))
    assert stable_revisions <= 1
    before = memo.revisions
    for _ in range(50):
        feed(stable)
    assert memo.revisions == before  # quiescent once costs are stable
    assert memo.lookup(2, 0.4) == "masked"  # and the choice is intact


def test_plan_revision_preserves_outputs():
    """A mid-serve strategy revision moves counters, never outputs."""
    net = get_benchmark(BENCH)
    net.drop_views()
    session = _session(
        net, sdgc_config(net.num_layers), warm=True, revise_ratio=1.5
    )
    y0 = np.asarray(get_input(BENCH, 4, seed=3))
    want = session.run(y0).y.copy()
    for _ in range(session.memo.min_samples):
        assert np.array_equal(session.run(y0).y, want)
    # inject the cost record a suddenly-slow kernel would leave behind:
    # a high EWMA over a tiny frozen baseline, past min_samples
    assert session.memo._cost  # the plan's dispatches observed real costs
    for rec in session.memo._cost.values():
        rec[0] = float(session.memo.min_samples)
        rec[1] = 1.0
        rec[2] = 1e-9
    plan_before = session.plan.revisions
    memo_before = session.memo.revisions
    assert np.array_equal(session.run(y0).y, want)  # revision is invisible
    assert session.plan.revisions > plan_before
    assert session.memo.revisions > memo_before
    assert session.stats()["memo"]["revisions"] == session.memo.revisions
    # the re-derived plan settles and keeps serving identically
    settled = session.plan.revisions
    assert np.array_equal(session.run(y0).y, want)
    assert np.array_equal(session.run(y0).y, want)
    assert session.plan.revisions == settled
    net.drop_views()
