"""Post-convergence update (Eq. 5, Algorithm 3): correctness + kernel twins."""

import numpy as np
import pytest

from repro.core.conversion import convert
from repro.core.postconv import (
    load_reduced_spmm,
    update_centroids_residues,
    update_compact,
    update_kernel,
)
from repro.core.recovery import recover
from repro.network import clamped_relu
from repro.sparse import CSRMatrix
from repro.sparse.spmm import spmm_reduceat


def setup_case(rng, n=10, b=8, ymax=4.0):
    """Random converged state + weight; returns pieces and the ground truth."""
    y = (rng.random((n, b)) * ymax).astype(np.float64)
    # make some duplicate columns so empties exist
    y[:, 3] = y[:, 0]
    y[:, 5] = y[:, 2]
    cents = np.array([0, 2])
    yhat, m, ne_rec = convert(y, cents)
    wd = rng.random((n, n))
    wd[wd > 0.4] = 0
    w = CSRMatrix.from_dense(wd)
    bias = -0.2
    # ground truth next layer on the uncompressed representation
    y_next = clamped_relu(wd @ y + bias, ymax)
    return y, yhat, m, ne_rec, w, wd, bias, y_next, ymax


def test_eq5_reproduces_feedforward(rng):
    y, yhat, m, ne_rec, w, wd, bias, y_next, ymax = setup_case(rng)
    ne_idx = np.flatnonzero(ne_rec | (m == -1))
    z = load_reduced_spmm(w, yhat, ne_idx)
    out, ne2 = update_centroids_residues(z, bias, m, ne_idx, ymax)
    # recovering the updated representation must equal the plain feed-forward
    assert np.allclose(recover(out, m), y_next, atol=1e-9)


def test_load_reduced_skips_empty_columns_exactly(rng):
    y, yhat, m, ne_rec, w, wd, bias, y_next, ymax = setup_case(rng)
    ne_idx = np.flatnonzero(ne_rec | (m == -1))
    full = spmm_reduceat(w, yhat)
    reduced = load_reduced_spmm(w, yhat, ne_idx)
    assert np.allclose(full, reduced, atol=1e-12)  # skipped columns were zero


def test_empty_residue_stays_empty(rng):
    y, yhat, m, ne_rec, w, wd, bias, y_next, ymax = setup_case(rng)
    ne_idx = np.flatnonzero(ne_rec | (m == -1))
    z = load_reduced_spmm(w, yhat, ne_idx)
    out, ne2 = update_centroids_residues(z, bias, m, ne_idx, ymax)
    # columns 3 and 5 were duplicates -> empty residues -> still empty
    assert (out[:, 3] == 0).all() and (out[:, 5] == 0).all()
    assert not ne2[3] and not ne2[5]


def test_vector_bias_supported(rng):
    y, yhat, m, ne_rec, w, wd, _, _, ymax = setup_case(rng)
    bias_vec = rng.standard_normal(w.shape[0]) * 0.1
    ne_idx = np.flatnonzero(ne_rec | (m == -1))
    z = load_reduced_spmm(w, yhat, ne_idx)
    out, _ = update_centroids_residues(z, bias_vec, m, ne_idx, ymax)
    y_next = clamped_relu(wd @ y + bias_vec[:, None], ymax)
    assert np.allclose(recover(out, m), y_next, atol=1e-9)


def test_pruning_zeroes_small_updates(rng):
    y, yhat, m, ne_rec, w, wd, bias, y_next, ymax = setup_case(rng)
    ne_idx = np.flatnonzero(ne_rec | (m == -1))
    z = load_reduced_spmm(w, yhat, ne_idx)
    out_raw, _ = update_centroids_residues(z, bias, m, ne_idx, ymax)
    out_pruned, _ = update_centroids_residues(z, bias, m, ne_idx, ymax, prune_threshold=0.3)
    res_cols = ne_idx[m[ne_idx] != -1]
    raw = out_raw[:, res_cols]
    pruned = out_pruned[:, res_cols]
    assert (pruned[np.abs(raw) < 0.3] == 0).all()
    assert np.array_equal(pruned[np.abs(raw) >= 0.3], raw[np.abs(raw) >= 0.3])
    # centroid columns never pruned
    cent_cols = ne_idx[m[ne_idx] == -1]
    assert np.array_equal(out_raw[:, cent_cols], out_pruned[:, cent_cols])


def test_update_compact_matches_full(rng):
    y, yhat, m, ne_rec, w, wd, bias, y_next, ymax = setup_case(rng)
    ne_idx = np.flatnonzero(ne_rec | (m == -1))
    z = load_reduced_spmm(w, yhat, ne_idx)
    out_full, ne_full = update_centroids_residues(z, bias, m, ne_idx, ymax, 0.1)
    is_cent = m[ne_idx] == -1
    cent_pos = np.searchsorted(ne_idx, m[ne_idx[~is_cent]])
    z_sub = z[:, ne_idx]
    out_sub, ne_sub = update_compact(z_sub, bias, is_cent, cent_pos, ymax, 0.1)
    assert np.allclose(out_sub, out_full[:, ne_idx], atol=1e-12)
    assert np.array_equal(ne_sub, ne_full[ne_idx])


def test_update_kernel_matches_vectorized(device, rng):
    y, yhat, m, ne_rec, w, wd, bias, y_next, ymax = setup_case(rng, n=8, b=6)
    ne_idx = np.flatnonzero(ne_rec | (m == -1))
    z = load_reduced_spmm(w, yhat, ne_idx).astype(np.float64)
    out_v, ne_v = update_centroids_residues(z, bias, m, ne_idx, ymax, 0.05)
    out_k, ne_k = update_kernel(device, z, bias, m, ne_idx, ymax, 0.05, block=3)
    assert np.allclose(out_k, out_v, atol=1e-12)
    assert np.array_equal(ne_k, ne_v)


def test_update_kernel_vector_bias(device, rng):
    y, yhat, m, ne_rec, w, wd, _, _, ymax = setup_case(rng, n=8, b=6)
    bias_vec = rng.standard_normal(8) * 0.1
    ne_idx = np.flatnonzero(ne_rec | (m == -1))
    z = load_reduced_spmm(w, yhat, ne_idx).astype(np.float64)
    out_v, ne_v = update_centroids_residues(z, bias_vec, m, ne_idx, ymax)
    out_k, ne_k = update_kernel(device, z, bias_vec, m, ne_idx, ymax, block=4)
    assert np.allclose(out_k, out_v, atol=1e-12)
    assert np.array_equal(ne_k, ne_v)


def test_update_kernel_empty_ne_idx(device):
    z = np.zeros((4, 3))
    out, ne = update_kernel(device, z, 0.0, np.full(3, -1), np.empty(0, dtype=np.int64), 1.0)
    assert (out == 0).all() and not ne.any()


def test_multi_layer_equivalence_with_refresh(rng):
    """Run several post-convergence layers and compare against ground truth,
    exercising the ne_idx refresh logic (monotone emptiness)."""
    n, b, ymax = 12, 10, 4.0
    y = (rng.random((n, b)) * ymax).astype(np.float64)
    y[:, 4] = y[:, 1]
    y[:, 7] = y[:, 1]
    cents = np.array([1, 2])
    yhat, m, ne_rec = convert(y, cents)
    ne_idx = np.flatnonzero(ne_rec | (m == -1))
    y_ref = y.copy()
    for step in range(4):
        wd = rng.random((n, n))
        wd[wd > 0.35] = 0
        w = CSRMatrix.from_dense(wd)
        bias = -0.1
        y_ref = clamped_relu(wd @ y_ref + bias, ymax)
        z = load_reduced_spmm(w, yhat, ne_idx)
        yhat, ne_rec = update_centroids_residues(z, bias, m, ne_idx, ymax)
        ne_idx = np.flatnonzero(ne_rec | (m == -1))
        assert np.allclose(recover(yhat, m), y_ref, atol=1e-9), f"layer {step}"


def test_postconv_update_wrapper(rng):
    """The convenience wrapper (spMM + update in one call) matches the
    two-step path and reports the spMM workload."""
    from repro.core.postconv import postconv_update
    from repro.network import LayerSpec

    y, yhat, m, ne_rec, w, wd, bias, y_next, ymax = setup_case(rng)
    ne_idx = np.flatnonzero(ne_rec | (m == -1))
    layer = LayerSpec(w, bias=bias)
    out, ne2, active = postconv_update(layer, None, yhat, m, ne_idx, ymax)
    assert active == len(ne_idx)
    assert np.allclose(recover(out, m), y_next, atol=1e-9)

    z = load_reduced_spmm(w, yhat, ne_idx)
    out2, _ = update_centroids_residues(z, bias, m, ne_idx, ymax)
    assert np.allclose(out, out2, atol=1e-12)


def test_update_reuse_buffers_bitwise_identical(rng):
    """The fresh-allocation path and the buffer-reuse path (``out``/``ne_rec``
    passed in) must produce bitwise identical results — warm sessions rely on
    swapping between them freely."""
    y, yhat, m, ne_rec, w, wd, bias, y_next, ymax = setup_case(rng)
    ne_idx = np.flatnonzero(ne_rec | (m == -1))
    z = load_reduced_spmm(w, yhat, ne_idx)
    fresh_out, fresh_ne = update_centroids_residues(z, bias, m, ne_idx, ymax, 0.1)
    # garbage-filled reuse buffers: stale contents must be fully overwritten
    out_buf = np.full_like(z, np.nan)
    ne_buf = np.ones(z.shape[1], dtype=bool)
    reused_out, reused_ne = update_centroids_residues(
        z, bias, m, ne_idx, ymax, 0.1, out=out_buf, ne_rec=ne_buf
    )
    assert reused_out is out_buf and reused_ne is ne_buf
    assert np.array_equal(fresh_out, reused_out)
    assert np.array_equal(fresh_ne, reused_ne)


def test_postconv_update_forwards_reuse_buffers(rng):
    from repro.core.postconv import postconv_update
    from repro.network import LayerSpec

    y, yhat, m, ne_rec, w, wd, bias, y_next, ymax = setup_case(rng)
    ne_idx = np.flatnonzero(ne_rec | (m == -1))
    layer = LayerSpec(w, bias=bias)
    out_buf = np.full_like(yhat, np.nan)
    ne_buf = np.zeros(yhat.shape[1], dtype=bool)
    out, ne2, active = postconv_update(
        layer, None, yhat, m, ne_idx, ymax, out=out_buf, ne_rec=ne_buf
    )
    assert out is out_buf and ne2 is ne_buf
    fresh, fresh_ne, _ = postconv_update(layer, None, yhat, m, ne_idx, ymax)
    assert np.array_equal(out, fresh)
    assert np.array_equal(ne2, fresh_ne)
