"""SparseNetwork / LayerSpec container semantics."""

import numpy as np
import pytest

from repro.errors import ConfigError, ShapeError
from repro.network import LayerSpec, SparseNetwork, clamped_relu
from repro.sparse import CSRMatrix


def make_net(rng, n=8, layers=3, ymax=32.0):
    specs = []
    for i in range(layers):
        d = rng.random((n, n))
        d[d > 0.4] = 0
        specs.append(LayerSpec(CSRMatrix.from_dense(d), bias=-0.1, name=f"L{i}"))
    return SparseNetwork(specs, ymax=ymax, name="test")


def test_clamped_relu_in_place():
    x = np.array([-1.0, 0.5, 40.0])
    out = clamped_relu(x, 32.0)
    assert out is x
    assert list(x) == [0.0, 0.5, 32.0]


def test_layerspec_bias_vector_shape_checked(rng):
    w = CSRMatrix.from_dense(rng.random((4, 4)))
    LayerSpec(w, bias=np.zeros(4))  # ok
    with pytest.raises(ShapeError):
        LayerSpec(w, bias=np.zeros(5))


def test_bias_column_scalar_and_vector(rng):
    w = CSRMatrix.from_dense(rng.random((3, 3)))
    assert LayerSpec(w, bias=-0.5).bias_column().shape == (3, 1)
    vec = LayerSpec(w, bias=np.array([1.0, 2.0, 3.0])).bias_column()
    assert vec.shape == (3, 1) and vec[1, 0] == 2.0


def test_network_shape_chain_validated(rng):
    a = LayerSpec(CSRMatrix.from_dense(rng.random((4, 6))))
    b = LayerSpec(CSRMatrix.from_dense(rng.random((5, 5))))
    with pytest.raises(ShapeError):
        SparseNetwork([a, b])


def test_network_needs_layers_and_positive_ymax(rng):
    with pytest.raises(ConfigError):
        SparseNetwork([])
    layer = LayerSpec(CSRMatrix.from_dense(rng.random((2, 2))))
    with pytest.raises(ConfigError):
        SparseNetwork([layer], ymax=0)


def test_network_properties(rng):
    net = make_net(rng, n=8, layers=3)
    assert net.num_layers == 3
    assert net.input_dim == 8 and net.output_dim == 8
    assert net.total_nnz == sum(l.weight.nnz for l in net.layers)


def test_format_caches_consistent(rng):
    net = make_net(rng)
    dense = net.layers[1].weight.to_dense()
    assert np.allclose(net.ell(1).to_dense(), dense)
    assert np.allclose(net.csc(1).to_dense(), dense)
    assert np.allclose(net.dense(1), dense)
    assert net.ell(1) is net.ell(1)  # cached object identity


def test_validate_input(rng):
    net = make_net(rng, n=8)
    y = np.zeros((8, 5), dtype=np.float32)
    assert net.validate_input(y) is not None
    with pytest.raises(ShapeError):
        net.validate_input(np.zeros((7, 5)))
    with pytest.raises(ShapeError):
        net.validate_input(np.zeros(8))


def test_activation_uses_network_ymax(rng):
    net = make_net(rng, ymax=1.0)
    x = np.array([[2.0, -1.0]])
    assert list(net.activation(x)[0]) == [1.0, 0.0]
