"""Command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_list(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "256-48" in out and "paper" in out


def test_run_engine(capsys):
    assert main(["run", "144-24", "--engine", "snicit", "--batch", "64"]) == 0
    out = capsys.readouterr().out
    assert "snicit on 144-24" in out
    assert "pre_convergence" in out


def test_run_with_threshold(capsys):
    assert main(["run", "144-24", "--batch", "64", "--threshold", "4"]) == 0


def test_compare(capsys):
    assert main(["compare", "144-24", "--batch", "64"]) == 0
    out = capsys.readouterr().out
    assert "categories agree" in out
    assert "xy2021" in out


def test_experiment_table1(capsys, tmp_path):
    out_file = tmp_path / "t1.txt"
    assert main(["experiment", "table1", "--out", str(out_file)]) == 0
    assert "Table 1" in out_file.read_text()


def test_generate_tsv(tmp_path, capsys):
    assert main(["generate", "144-24", str(tmp_path / "out"), "--seed", "3"]) == 0
    files = list((tmp_path / "out").glob("*.tsv"))
    assert len(files) == 24


def test_serve(capsys):
    assert main(["serve", "144-24", "--requests", "16", "--request-cols", "2",
                 "--max-batch", "16"]) == 0
    out = capsys.readouterr().out
    assert "served 16/16 requests" in out
    assert "throughput" in out and "latency" in out


def test_bench_serve(tmp_path, capsys):
    out_file = tmp_path / "BENCH_serve.json"
    assert main(["bench-serve", "144-24", "--requests", "6", "--request-cols", "2",
                 "--max-batch", "12", "--out", str(out_file)]) == 0
    out = capsys.readouterr().out
    assert "speedup" in out
    assert out_file.exists()


def test_serve_centroid_reuse_flag(capsys):
    assert main(["serve", "144-24", "--requests", "16", "--request-cols", "4",
                 "--max-batch", "16", "--centroid-reuse"]) == 0
    out = capsys.readouterr().out
    assert "reuse" in out


def test_bench_serve_reuse_ab(tmp_path, capsys):
    out_file = tmp_path / "BENCH_serve.json"
    assert main(["bench-serve", "144-24", "--requests", "8", "--request-cols", "2",
                 "--max-batch", "8", "--stream", "repeat", "--centroid-reuse",
                 "--reuse-tolerance", "0", "--out", str(out_file)]) == 0
    out = capsys.readouterr().out
    assert "reuse on" in out
    assert "identical=True" in out


def test_bench_serve_rejects_benchmark_plus_tiers(tmp_path):
    from repro.errors import ConfigError

    with pytest.raises(ConfigError):
        main(["bench-serve", "144-24", "--tiers", "sdgc-deep",
              "--out", str(tmp_path / "b.json")])


def test_unknown_experiment_rejected():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["experiment", "table99"])


def test_version(capsys):
    with pytest.raises(SystemExit) as exc:
        main(["--version"])
    assert exc.value.code == 0
