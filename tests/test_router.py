"""Multi-network routing suite: registry, memory budget, isolation, reports.

Three layers of coverage:

* unit — :class:`~repro.gpu.memory.MemoryBudget` ledger arithmetic,
  :meth:`~repro.gpu.memory.BufferPool.clear`, LRU enforcement order and
  ``protect`` semantics against fake sessions on a fake clock;
* concurrency — per-lane backpressure on the :class:`~repro.serve.router.
  AsyncRouter` (one tenant's burst must not reject another's), using the
  gated fake-session pattern from ``test_async_serve.py``;
* differential — mixed-traffic streams through the real engine must be
  bitwise identical to single-tenant serves of the same per-tenant streams,
  with and without budget-driven warm-to-cold demotions mid-stream, and one
  scrape of the shared registry must keep tenants separable by label.
"""

import json
import threading
import time
from types import SimpleNamespace

import numpy as np
import pytest

from repro.errors import (
    ConfigError,
    DeviceError,
    ServeClosedError,
    ServeOverflowError,
    ShapeError,
)
from repro.gpu.memory import BufferPool, MemoryBudget
from repro.harness.experiments.common import sdgc_config
from repro.obs import MetricsRegistry
from repro.radixnet import benchmark_input, build_benchmark
from repro.serve import (
    AsyncRouter,
    AsyncServeReport,
    InferenceServer,
    EngineSession,
    MicroBatcher,
    ModelRegistry,
    Router,
    RouterReport,
    ServeReport,
)

WAIT = 20.0


# ------------------------------------------------------------------ fixtures
class FakeClock:
    def __init__(self, t: float = 0.0):
        self.t = t

    def __call__(self) -> float:
        return self.t

    def advance(self, dt: float) -> None:
        self.t += dt


class FakeNetwork:
    input_dim = 4

    def validate_input(self, y0):
        y0 = np.asarray(y0, dtype=np.float64)
        if y0.ndim != 2 or y0.shape[0] != self.input_dim:
            raise ShapeError(f"input must be ({self.input_dim}, B), got {y0.shape}")
        return y0


class FakeRouterSession:
    """Session stand-in with a controllable retained footprint.

    ``run`` re-warms (retained returns to ``warm_bytes``), ``demote`` goes
    cold (retained drops to zero) — the same warm/cold cycle the registry
    drives on a real :class:`~repro.serve.session.EngineSession`, minus the
    engine.  ``gate`` parks executions for the concurrency tests.
    """

    def __init__(
        self,
        warm_bytes: int = 100,
        warm: bool = True,
        gate: threading.Event | None = None,
        metrics: MetricsRegistry | None = None,
    ):
        from repro.obs import as_tracer

        self.network = FakeNetwork()
        self.tracer = as_tracer(None)
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.warm_bytes = warm_bytes
        self._retained = warm_bytes if warm else 0
        self.gate = gate
        self.calls = 0
        self.demote_calls = 0

    def run(self, y0):
        self.calls += 1
        if self.gate is not None:
            assert self.gate.wait(WAIT), "test gate never opened"
        self._retained = self.warm_bytes  # serving re-warms a cold session
        return SimpleNamespace(y=y0 * 2.0, stats={}, stage_seconds={})

    def retained_nbytes(self) -> int:
        return self._retained

    def demote(self) -> int:
        freed, self._retained = self._retained, 0
        self.demote_calls += 1
        return freed

    def stats(self) -> dict:
        return {"calls": self.calls, "retained_nbytes": self._retained}


def req(k: int = 1, fill: float = 1.0) -> np.ndarray:
    return np.full((FakeNetwork.input_dim, k), fill)


@pytest.fixture(scope="module")
def two_benchmarks():
    net_a = build_benchmark("144-24", seed=0)
    net_b = build_benchmark("144-48", seed=0)
    return (
        (net_a, sdgc_config(net_a.num_layers)),
        (net_b, sdgc_config(net_b.num_layers)),
    )


# ------------------------------------------------------- MemoryBudget (unit)
def test_memory_budget_ledger_arithmetic():
    budget = MemoryBudget(limit_bytes=250)
    assert budget.retained_bytes == 0 and not budget.over_budget
    budget.update("a", 100)
    budget.update("b", 100)
    assert budget.retained_bytes == 200 and not budget.over_budget
    budget.update("b", 200)  # absolute, not a delta
    assert budget.retained_bytes == 300 and budget.over_budget
    assert budget.account_bytes() == {"a": 100, "b": 200}
    budget.drop("b")
    assert budget.retained_bytes == 100
    budget.drop("missing")  # forgetting an unknown account is a no-op


def test_memory_budget_unlimited_never_over():
    budget = MemoryBudget(limit_bytes=None)
    budget.update("a", 10**12)
    assert not budget.over_budget
    assert budget.stats()["limit_bytes"] is None


def test_memory_budget_rejects_negative_limit():
    with pytest.raises(DeviceError):
        MemoryBudget(limit_bytes=-1)


def test_memory_budget_publish_advances_highwater_monotonically():
    registry = MetricsRegistry()
    budget = MemoryBudget(limit_bytes=500).bind_metrics(registry)
    budget.update("a", 300)
    assert budget.publish() == 300
    budget.update("a", 120)
    budget.publish()
    assert budget.highwater_bytes == 300  # peak survives the shrink
    budget.record_eviction(2)
    snap = registry.snapshot()
    assert snap["memory_budget_limit_bytes"] == 500
    assert snap["memory_budget_retained_bytes"] == 120
    assert snap["memory_budget_highwater_bytes"] == 300
    assert snap["memory_budget_evictions_total"] == 2
    stats = budget.stats()
    assert stats["highwater_bytes"] == 300 and stats["evictions"] == 2


def test_buffer_pool_clear_reports_freed_bytes():
    pool = BufferPool()
    a = pool.take((8, 4), np.float32)
    b = pool.take((8, 4), np.float32, avoid=a)
    expected = a.nbytes + b.nbytes
    assert pool.nbytes == expected
    assert pool.clear() == expected
    assert pool.nbytes == 0 and pool.stats()["buffers"] == 0
    assert pool.clear() == 0  # idempotent on an empty pool


# --------------------------------------------------------- registry lifecycle
def test_registry_register_evict_and_unknown_names():
    registry = ModelRegistry()
    session_a = FakeRouterSession()
    registry.register("a", session=session_a)
    assert "a" in registry and len(registry) == 1
    assert registry.get("a") is session_a
    with pytest.raises(ConfigError, match="already registered"):
        registry.register("a", session=FakeRouterSession())
    with pytest.raises(ConfigError, match="needs a network or a session"):
        registry.register("c")
    registry.register("b", session=FakeRouterSession())
    assert sorted(registry.names()) == ["a", "b"]
    evicted = registry.evict("a")
    assert evicted is session_a
    assert "a" not in registry
    assert "a" not in registry.budget.account_bytes()  # account left the ledger
    with pytest.raises(ConfigError, match="unknown model 'a'"):
        registry.get("a")
    with pytest.raises(ConfigError, match="registered: \\['b'\\]"):
        registry.evict("a")


def test_registry_enforce_demotes_lru_first_and_respects_protect():
    clock = FakeClock()
    registry = ModelRegistry(memory_budget_bytes=250, clock=clock)
    sessions = {}
    for name in ("a", "b", "c"):
        clock.advance(1.0)
        sessions[name] = FakeRouterSession(warm_bytes=100)
        registry.register(name, session=sessions[name])
    # registering c pushed the ledger to 300 > 250; enforcement (protecting
    # the newcomer) demoted the least recently served — a, the oldest
    assert registry.demotions == ["a"]
    assert sessions["a"].demote_calls == 1 and sessions["b"].demote_calls == 0
    assert registry.budget.account_bytes() == {"a": 0, "b": 100, "c": 100}
    assert registry.budget.highwater_bytes <= 250  # published post-enforcement

    # a re-warms by serving and becomes the most recent; b is now LRU
    clock.advance(1.0)
    sessions["a"].run(req())
    registry.touch("a")
    demoted = registry.enforce()
    assert demoted == ["b"]
    assert registry.demotions == ["a", "b"]
    assert not registry.budget.over_budget

    # protect exempts the LRU tenant: the next-oldest goes instead
    clock.advance(1.0)
    sessions["b"].run(req())
    registry.touch("b")
    demoted = registry.enforce(protect={"c"})
    assert demoted == ["a"]  # c was LRU but protected; a is next-oldest
    assert sessions["c"].demote_calls == 0


def test_registry_enforce_skips_already_cold_sessions():
    clock = FakeClock()
    registry = ModelRegistry(memory_budget_bytes=50, clock=clock)
    cold = FakeRouterSession(warm_bytes=100, warm=False)
    warm = FakeRouterSession(warm_bytes=100)
    registry.register("cold", session=cold)
    clock.advance(1.0)
    registry.register("warm", session=warm)
    # the newcomer is protected at register time and the cold session holds
    # no bytes, so nothing was demotable yet — over budget, but stable
    assert cold.demote_calls == 0 and warm.demote_calls == 0
    # an unprotected enforce demotes the only tenant holding bytes; the
    # cold one is never a candidate
    assert registry.enforce() == ["warm"]
    assert cold.demote_calls == 0 and warm.demote_calls == 1
    # with every tenant cold the ledger fits and enforce is a no-op
    assert registry.enforce() == []


# --------------------------------------------------------- sync router (fake)
def test_sync_router_routes_by_name_and_rejects_per_lane():
    registry = ModelRegistry()
    registry.register("a", session=FakeRouterSession())
    registry.register("b", session=FakeRouterSession())
    router = Router(registry, max_batch=1024, max_wait_s=60.0, queue_limit=2)
    with pytest.raises(ConfigError, match="unknown model"):
        router.submit("nope", req())
    stream = [("a", req(fill=1.0)), ("a", req(fill=2.0)), ("a", req(fill=3.0)),
              ("b", req(fill=4.0))]
    report = router.serve(iter(stream))
    # lane a overflowed its own queue_limit; lane b was untouched
    assert len(report.per_model["a"].served) == 2
    assert len(report.per_model["a"].rejected) == 1
    assert report.per_model["b"].status == "ok"
    assert report.status == "ok" and report.served == 3 and report.rejected == 1
    for per in report.per_model.values():
        for ticket in per.served:
            assert np.array_equal(ticket.y, ticket.y0 * 2.0)


# ------------------------------------------------- async router (concurrency)
def test_async_router_backpressure_is_per_lane():
    gate = threading.Event()
    session_a = FakeRouterSession(gate=gate)
    session_b = FakeRouterSession()
    registry = ModelRegistry()
    registry.register("a", session=session_a)
    registry.register("b", session=session_b)
    router = AsyncRouter(
        registry, max_batch=1, max_wait_s=60.0, queue_limit=2, on_full="reject"
    )
    first = router.submit("a", req())
    deadline = time.monotonic() + WAIT
    while session_a.calls == 0 and time.monotonic() < deadline:
        time.sleep(0.001)  # worker parked inside lane a's block
    assert session_a.calls == 1
    accepted_a = [router.submit("a", req()) for _ in range(2)]  # fills lane a
    with pytest.raises(ServeOverflowError, match="lane 'a' full"):
        router.submit("a", req())
    # lane b still accepts: a's burst backpressures only a's producers
    accepted_b = [router.submit("b", req()) for _ in range(2)]
    with pytest.raises(ServeOverflowError, match="lane 'b' full"):
        router.submit("b", req())
    gate.set()
    assert router.close(drain=True, timeout=WAIT)
    for ticket in [first, *accepted_a, *accepted_b]:
        assert ticket.ready
    with pytest.raises(ServeClosedError):
        router.submit("a", req())


def test_async_router_unknown_model_fails_synchronously():
    registry = ModelRegistry()
    registry.register("a", session=FakeRouterSession())
    with AsyncRouter(registry) as router:
        with pytest.raises(ConfigError, match="unknown model"):
            router.submit("nope", req())
        with pytest.raises(ShapeError):
            router.submit("a", np.ones((7, 2)))
        ticket = router.submit("a", req(2))
        assert ticket.wait(WAIT) and ticket.ready
        assert np.array_equal(ticket.y, req(2) * 2.0)


# ----------------------------------------------------- differential isolation
def _chunked_mixed(streams: dict, chunk: int):
    mixed = []
    offset = 0
    while any(offset < len(s) for s in streams.values()):
        for name, stream in streams.items():
            for y0 in stream[offset : offset + chunk]:
                mixed.append((name, y0))
        offset += chunk
    return mixed


def _reference_outputs(net, cfg, stream, max_batch):
    net.drop_views()
    server = InferenceServer(
        EngineSession(net, cfg),
        max_batch=max_batch,
        max_wait_s=60.0,
        queue_limit=len(stream),
    )
    report = server.serve(iter(stream))
    assert report.status == "ok"
    net.drop_views()
    return [t.y for t in report.served]


def _constraining_budget(net_a, cfg_a, net_b, cfg_b) -> int:
    """A limit between the largest single footprint and the combined one.

    Below max-single the best-effort floor (never demote the tenant that
    just served) makes highwater <= limit unsatisfiable; above combined
    nothing demotes.  In between, every serve of one tenant must demote
    the other — the thrash regime the isolation test wants.
    """
    probe = ModelRegistry()
    probe.register("a", net_a, config=cfg_a, warm=True)
    probe.register("b", net_b, config=cfg_b, warm=True)
    accounts = probe.budget.account_bytes()
    net_a.drop_views(), net_b.drop_views()
    combined, single_max = sum(accounts.values()), max(accounts.values())
    assert combined > single_max > 0
    return single_max + (combined - single_max) // 4


@pytest.mark.parametrize("limited", [False, True])
def test_mixed_traffic_outputs_bitwise_match_single_tenant(
    two_benchmarks, limited
):
    """The acceptance property: mixing tenants changes nothing, with or
    without budget-driven demotions mid-stream."""
    (net_a, cfg_a), (net_b, cfg_b) = two_benchmarks
    streams = {
        "a": [benchmark_input(net_a, 2, seed=s) for s in range(1, 9)],
        "b": [benchmark_input(net_b, 2, seed=s) for s in range(1, 9)],
    }
    refs = {
        "a": _reference_outputs(net_a, cfg_a, streams["a"], max_batch=8),
        "b": _reference_outputs(net_b, cfg_b, streams["b"], max_batch=8),
    }

    budget = (
        _constraining_budget(net_a, cfg_a, net_b, cfg_b) if limited else None
    )
    registry = ModelRegistry(memory_budget_bytes=budget)
    registry.register("a", net_a, config=cfg_a, warm=True)
    registry.register("b", net_b, config=cfg_b, warm=True)
    router = Router(registry, max_batch=8, max_wait_s=60.0, queue_limit=64)
    report = router.serve(iter(_chunked_mixed(streams, chunk=4)))

    assert report.status == "ok" and report.rejected == 0
    for name in ("a", "b"):
        served = report.per_model[name].served
        assert len(served) == len(refs[name])
        for ticket, ref_y in zip(served, refs[name]):
            assert np.array_equal(ticket.y, ref_y)
    if budget is not None:
        # the limit sits under the combined warm footprint: demotions must
        # have happened, the run must certify staying under budget, and the
        # bitwise assertions above prove they cost nothing
        assert report.demoted
        assert registry.budget.highwater_bytes <= budget
    else:
        assert not report.demoted


def test_one_scrape_separates_tenants_by_model_label(two_benchmarks):
    """Satellite regression: two sessions bound to one registry must scrape
    independently — per-tenant counters, no unlabeled conflated series."""
    (net_a, cfg_a), (net_b, cfg_b) = two_benchmarks
    net_a.drop_views(), net_b.drop_views()
    registry = ModelRegistry()
    registry.register("a", net_a, config=cfg_a)
    registry.register("b", net_b, config=cfg_b)
    router = Router(registry, max_batch=4, max_wait_s=60.0, queue_limit=64)
    for seed in (1, 2):
        router.submit("a", benchmark_input(net_a, 2, seed=seed))
    router.submit("b", benchmark_input(net_b, 2, seed=1))
    router.drain()

    snap = registry.metrics.snapshot()
    assert snap['session_columns_total{model="a"}'] == 4
    assert snap['session_columns_total{model="b"}'] == 2
    assert snap['session_calls_total{model="a"}'] >= 1
    assert snap['session_calls_total{model="b"}'] == 1
    # nothing leaked into an unlabeled series that would conflate tenants
    assert "session_columns_total" not in snap
    assert "session_calls_total" not in snap
    prom = registry.metrics.to_prometheus()
    assert 'session_columns_total{model="a"}' in prom
    assert 'session_columns_total{model="b"}' in prom


def test_demotions_are_counted_per_tenant_in_the_shared_scrape():
    clock = FakeClock()
    metrics = MetricsRegistry()
    registry = ModelRegistry(
        metrics=metrics, memory_budget_bytes=150, clock=clock
    )
    registry.register("a", session=FakeRouterSession(metrics=metrics))
    clock.advance(1.0)
    registry.register("b", session=FakeRouterSession(metrics=metrics))
    snap = metrics.snapshot()
    assert snap['memory_budget_demotions_total{model="a"}'] == 1
    assert 'memory_budget_demotions_total{model="b"}' not in snap
    assert snap["memory_budget_evictions_total"] == 1


# --------------------------------------------------- head-of-line accounting
def test_fifo_head_of_line_underfill_is_counted():
    session = FakeRouterSession()
    batcher = MicroBatcher(session, max_batch=4, max_wait_s=60.0)
    batcher.submit(req(3))          # pending 3 < 4: no flush yet
    batcher.submit(req(2))          # pending 5 >= 4: flush takes only the 3
    assert batcher.counters["hol_stalls"] == 1
    assert batcher.counters["hol_underfill_columns"] == 1
    snap = session.metrics.snapshot()
    assert snap["serve_hol_stalls_total"] == 1
    assert snap["serve_hol_underfill_columns_total"] == 1
    stats = batcher.stats()
    assert stats["hol_stalls"] == 1 and stats["hol_underfill_columns"] == 1
    batcher.drain()                 # final partial block: a drain, not a stall
    assert batcher.counters["hol_stalls"] == 1


# ------------------------------------------------------ report aggregation
def _served_ticket(latency: float, columns: int = 1):
    return SimpleNamespace(latency_seconds=latency, columns=columns)


def _ok_report(latencies=(0.1,)):
    return ServeReport(served=[_served_ticket(lat) for lat in latencies])


def test_router_report_status_excludes_idle_tenants():
    report = RouterReport(per_model={"a": _ok_report(), "idle": ServeReport()})
    assert report.per_model["idle"].status == "no_traffic"
    assert report.status == "ok"  # an idle tenant does not drag a healthy run


def test_router_report_status_merges_without_masking():
    assert RouterReport().status == "no_traffic"
    assert RouterReport(per_model={"a": ServeReport()}).status == "no_traffic"

    shed = ServeReport(rejected=[(0, "full")])
    assert shed.status == "all_rejected"
    failed = AsyncServeReport(failed=[(0, "boom")])
    assert failed.status == "all_failed"
    # all active tenants turned away -> all_rejected, regardless of how
    assert RouterReport(per_model={"a": shed, "b": failed}).status == "all_rejected"
    # one healthy + one shed tenant is degraded, not ok: a fully-shed
    # tenant must not hide behind a neighbor's successes
    mixed = RouterReport(per_model={"a": _ok_report(), "b": shed})
    assert mixed.status == "degraded"


def test_router_report_latency_pools_only_served_tenants():
    report = RouterReport(per_model={
        "a": _ok_report(latencies=(0.1, 0.3)),
        "b": ServeReport(rejected=[(0, "full")]),  # latency None, not zero
    })
    assert report.per_model["b"].latency_quantiles() is None
    pooled = report.latency_quantiles()
    assert pooled["p50"] == pytest.approx(0.2)
    assert pooled["p100"] == pytest.approx(0.3)
    # nothing served anywhere: merged latency is None too
    empty = RouterReport(per_model={"b": ServeReport(rejected=[(0, "full")])})
    assert empty.latency_quantiles() is None


def test_router_report_aggregates_and_summary():
    report = RouterReport(
        per_model={
            "a": ServeReport(
                served=[_served_ticket(0.1, columns=2)], rejected=[(1, "full")]
            ),
            "b": _ok_report(latencies=(0.2,)),
        },
        wall_seconds=2.0,
        demoted=["a"],
    )
    assert report.requests == 3
    assert report.served == 2
    assert report.rejected == 1
    assert report.columns == 3
    assert report.columns_per_second == pytest.approx(1.5)
    summary = report.summary()
    assert summary["status"] == "ok"
    assert summary["demoted"] == ["a"]
    assert set(summary["models"]) == {"a", "b"}
    assert summary["models"]["a"]["rejected"] == 1
    assert summary["latency_seconds"]["p100"] == pytest.approx(0.2)


def test_router_report_per_model_quantiles_unmask_pooled_tail():
    """Satellite regression: the pooled view averages a quiet slow tenant
    into a busy fast one; the per-model view must keep each tail visible."""
    report = RouterReport(per_model={
        "fast": _ok_report(latencies=(0.01,) * 99),
        "slow": _ok_report(latencies=(1.0,)),
        "shed": ServeReport(rejected=[(0, "full")]),
    })
    per = report.per_model_quantiles()
    assert per["slow"]["p99"] == pytest.approx(1.0)
    assert per["fast"]["p99"] == pytest.approx(0.01)
    assert per["shed"] is None  # nothing served -> no latencies, not zeros
    # the pooled p50 sits on the fast tenant and hides the slow one's tail
    pooled = report.latency_quantiles()
    assert pooled["p50"] == pytest.approx(0.01)
    summary = report.summary()
    assert summary["latency_seconds_per_model"]["slow"]["p99"] == pytest.approx(1.0)


def test_router_report_to_json_is_json_dumpable_with_numpy_and_slo():
    """Satellite regression: np.quantile emits numpy scalars; to_json must
    coerce them (and an embedded SLO block) before json.dumps."""
    report = RouterReport(
        per_model={"a": _ok_report(latencies=(0.1, 0.3))}, wall_seconds=1.0
    )
    report.slo = {"a": {"burn_rate": np.float64(0.25), "count": np.int64(2)}}
    summary = report.summary()
    with pytest.raises(TypeError):
        json.dumps(summary)  # the raw summary still carries numpy scalars
    blob = json.dumps(report.to_json())  # the JSON path must not raise
    parsed = json.loads(blob)
    assert parsed["latency_seconds"]["p100"] == pytest.approx(0.3)
    assert parsed["latency_seconds_per_model"]["a"]["p50"] == pytest.approx(0.2)
    assert parsed["slo"]["a"]["burn_rate"] == pytest.approx(0.25)


# ----------------------------------------------------------------- SLO feed
def test_registry_set_slo_validates_parses_and_evicts():
    registry = ModelRegistry()
    with pytest.raises(ConfigError):
        registry.set_slo("nope", "p99<50ms")  # unknown tenants fail loudly
    registry.register("a", session=FakeRouterSession())
    with pytest.raises(ConfigError):
        registry.set_slo("a", "not-a-spec")
    tracker = registry.set_slo("a", "p99<50ms@10s/99%")
    assert registry.slo_tracker("a") is tracker
    assert tracker.policy.latency_target_s == pytest.approx(0.05)
    assert tracker.policy.window_s == 10.0
    assert "slo" in registry.stats()
    registry.evict("a")
    assert registry.slo_tracker("a") is None
    assert registry.slo_report_json() == {}


def test_sync_router_feeds_slo_trackers_per_tenant():
    registry = ModelRegistry()
    registry.register("a", session=FakeRouterSession(), slo="p99<10s")
    registry.register("b", session=FakeRouterSession())
    router = Router(registry, max_batch=4, max_wait_s=60.0)
    report = router.serve(iter([("a", req(2)), ("b", req(1)), ("a", req(1))]))
    assert report.status == "ok"

    tracker = registry.slo_tracker("a")
    assert tracker.requests_total == 2
    assert tracker.columns_total == pytest.approx(3.0)
    # only policied tenants get an slo block; "b" has no policy
    assert set(report.slo) == {"a"}
    block = report.slo["a"]
    assert block["requests_total"] == 2
    assert block["compliant"] is True
    exemplar = block["exemplar"]
    assert exemplar["model"] == "a"
    assert exemplar["request_aid"] >= 1
    assert exemplar["breakdown"]["block_id"] >= 1
    assert exemplar["breakdown"]["queue_wait_seconds"] == 0.0
    # the shared scrape carries the per-tenant summary series
    prom = registry.metrics.to_prometheus()
    assert 'slo_latency_seconds{model="a",quantile="0.99"}' in prom
    assert 'slo_requests_total{model="a"} 2' in prom
    # ...and the report's JSON path carries the block verbatim
    assert report.to_json()["slo"]["a"]["requests_total"] == 2


def test_sync_router_applies_slo_attached_after_first_traffic():
    """The lane hook resolves the tracker lazily, so a policy attached to a
    live tenant starts measuring without rebuilding the lane."""
    registry = ModelRegistry()
    registry.register("a", session=FakeRouterSession())
    router = Router(registry, max_batch=2, max_wait_s=60.0)
    router.submit("a", req(2))
    router.drain()
    registry.set_slo("a", "p99<10s")
    router.submit("a", req(2))
    router.drain()
    assert registry.slo_tracker("a").requests_total == 1


def test_async_router_feeds_outer_tickets_with_intake_wait():
    registry = ModelRegistry()
    registry.register("a", session=FakeRouterSession(), slo="p99<10s")
    router = AsyncRouter(registry, max_batch=4, max_wait_s=0.0)
    report = router.serve(iter([("a", req(1)), ("a", req(2))]))
    assert report.status == "ok"

    tracker = registry.slo_tracker("a")
    assert tracker.requests_total == 2
    assert tracker.columns_total == pytest.approx(3.0)
    exemplar = tracker.report().exemplar
    # the async feed measures the OUTER ticket: latency includes the intake
    # wait, and the breakdown reports it instead of the sync zero
    assert exemplar["breakdown"]["queue_wait_seconds"] is not None
    assert exemplar["breakdown"]["queue_wait_seconds"] >= 0.0
    assert report.slo["a"]["requests_total"] == 2


def test_slo_feed_failure_cannot_break_serving():
    registry = ModelRegistry()
    registry.register("a", session=FakeRouterSession(), slo="p99<10s")
    tracker = registry.slo_tracker("a")

    def explode(*a, **k):
        raise RuntimeError("tracker wedged")

    tracker.record_ticket = explode
    router = Router(registry, max_batch=2, max_wait_s=60.0)
    ticket = router.submit("a", req(2))
    router.drain()
    assert ticket.ready  # the request resolved despite the broken tracker
