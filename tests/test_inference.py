"""InferenceResult and SDGC category semantics."""

import numpy as np

from repro.gpu.costmodel import CostSnapshot
from repro.inference import InferenceResult, sdgc_categories


def test_sdgc_categories():
    y = np.array([[0.0, 1.0, 0.0], [0.0, 0.0, -2.0]])
    assert list(sdgc_categories(y)) == [False, True, True]


def test_result_totals():
    res = InferenceResult(
        y=np.zeros((2, 2)),
        stage_seconds={"a": 1.0, "b": 0.5},
        layer_seconds=np.array([0.7, 0.8]),
        modeled={"a": CostSnapshot(modeled_seconds=0.1), "b": CostSnapshot(modeled_seconds=0.2)},
    )
    assert res.total_seconds == 1.5
    assert res.modeled_seconds == np.float64(0.1 + 0.2)
    assert not res.categories.any()
