"""Champion/baseline kernel dispatch and cost charges."""

import numpy as np
import pytest

from repro.kernels import (
    DENSE_WEIGHT_THRESHOLD,
    LIVE_ROW_THRESHOLD,
    StrategyMemo,
    baseline_spmm,
    champion_spmm,
    charge_for,
)
from repro.network import LayerSpec, SparseNetwork
from repro.sparse import CSRMatrix
from repro.sparse.convert import preferred_spmm_format


def make_net(rng, density, n=20):
    d = rng.random((n, n))
    d[d > density] = 0
    return SparseNetwork([LayerSpec(CSRMatrix.from_dense(d))], ymax=32.0), d


def test_champion_picks_colwise_for_dense_weights(rng):
    net, d = make_net(rng, density=0.5)
    y = rng.random((20, 6)).astype(np.float32)
    z, work, strategy = champion_spmm(net, 0, y)
    assert strategy == "colwise"
    assert np.allclose(z, d @ y, atol=1e-4)
    assert work == int((y != 0).sum())


def test_champion_picks_masked_for_sparse_activations(rng):
    net, d = make_net(rng, density=0.05)
    y = rng.random((20, 6)).astype(np.float32)
    y[5:, :] = 0  # 75% dead rows
    z, work, strategy = champion_spmm(net, 0, y)
    assert strategy == "masked"
    assert np.allclose(z, d @ y, atol=1e-4)


def test_champion_picks_ell_for_dense_activations(rng):
    # uniform fan-in (Radix-Net shape): ELL pads nothing, so the
    # batch-parallel branch resolves to the ELL kernel
    d = np.zeros((20, 20))
    d[:, :3] = rng.random((20, 3)) + 0.1
    net = SparseNetwork([LayerSpec(CSRMatrix.from_dense(d))], ymax=32.0)
    y = rng.random((20, 6)).astype(np.float32) + 0.1  # all rows live
    z, work, strategy = champion_spmm(net, 0, y)
    assert strategy == "ell"
    assert work == net.layers[0].weight.nnz
    assert np.allclose(z, d @ y, atol=1e-4)


def test_champion_picks_csr_for_skewed_fanin(rng):
    # one full row among fan-in-1 rows: ELL would pad ~20x, so the
    # batch-parallel branch falls back to the CSR row-split kernel
    d = np.zeros((20, 20))
    d[0, :] = rng.random(20) + 0.1
    d[1:, 0] = 0.5
    net = SparseNetwork([LayerSpec(CSRMatrix.from_dense(d))], ymax=32.0)
    y = rng.random((20, 6)).astype(np.float32) + 0.1  # all rows live
    z, work, strategy = champion_spmm(net, 0, y)
    assert strategy == "csr"
    assert work == net.layers[0].weight.nnz
    assert np.allclose(z, d @ y, atol=1e-4)


def test_baseline_never_masks(rng):
    net, d = make_net(rng, density=0.05)
    y = rng.random((20, 6)).astype(np.float32)
    y[5:, :] = 0
    z, work, strategy = baseline_spmm(net, 0, y)
    assert strategy == "ell"
    assert np.allclose(z, d @ y, atol=1e-4)


def test_baseline_colwise_for_dense_weights(rng):
    net, d = make_net(rng, density=0.6)
    y = rng.random((20, 4)).astype(np.float32)
    z, work, strategy = baseline_spmm(net, 0, y)
    assert strategy == "colwise"
    assert np.allclose(z, d @ y, atol=1e-4)


def test_charge_for_batch_parallel_vs_colwise():
    ell = charge_for("ell", work=100, n_out=10, batch=50, name="k")
    assert ell.flops == 2 * 100 * 50
    col = charge_for("colwise", work=100, n_out=10, batch=50, name="k")
    assert col.flops == 2 * 100 * 10
    assert ell.bytes_written == col.bytes_written


def test_thresholds_are_sane():
    assert 0 < LIVE_ROW_THRESHOLD <= 1
    assert 0 < DENSE_WEIGHT_THRESHOLD < 0.5


def test_strategy_memo_replays_choice(rng):
    net, d = make_net(rng, density=0.1)
    y = np.zeros((20, 6), dtype=np.float32)
    y[:3] = rng.random((3, 6))  # sparse activations -> masked
    memo = StrategyMemo(n_buckets=8)
    z1, _, s1 = champion_spmm(net, 0, y, memo=memo)
    assert s1 == "masked"
    stats = memo.stats()
    assert (stats["entries"], stats["hits"], stats["misses"]) == (1, 0, 1)
    z2, _, s2 = champion_spmm(net, 0, y, memo=memo)
    assert s2 == s1 and memo.hits == 1
    assert np.array_equal(z1, z2)
    # same layer, very different liveness -> different bucket, fresh miss
    dense_y = rng.random((20, 6)).astype(np.float32) + 0.1
    _, _, s3 = champion_spmm(net, 0, dense_y, memo=memo)
    # the batch-parallel format follows the layer's fan-in skew
    assert s3 == preferred_spmm_format(net.layers[0].weight)
    assert len(memo) == 2


def test_strategy_memo_scoped_by_network(rng):
    """A shared memo must not replay net A's champion for net B's layer 0.

    Before network scoping the key was ``(layer, bucket)``: a 1 %-dense net
    recording "masked" for layer 0 would make a same-index dense-ish layer
    of another net replay "masked" too, even though its own derivation picks
    "colwise".  The fingerprint in the key keeps each network's choices to
    itself.
    """
    sparse_net, _ = make_net(rng, density=0.1)
    dense_net, d = make_net(rng, density=0.6)
    memo = StrategyMemo(n_buckets=8)
    y = np.zeros((20, 6), dtype=np.float32)
    y[:3] = rng.random((3, 6))
    _, _, s_sparse = champion_spmm(sparse_net, 0, y, memo=memo)
    assert s_sparse == "masked"
    # same layer index, same memo: the dense net derives its own champion
    z, _, s_dense = champion_spmm(dense_net, 0, y, memo=memo)
    assert s_dense == "colwise"
    assert np.allclose(z, d @ y, atol=1e-4)
    assert len(memo) == 2  # one entry per network scope
    # raw lookup never crosses scopes either
    assert memo.lookup(0, 1.0, network=sparse_net) is None
    assert memo.lookup(0, 1.0, network=dense_net) == "colwise"


def test_strategy_memo_bucket_quantization():
    memo = StrategyMemo(n_buckets=4)
    assert memo.bucket(0.0) == 0
    assert memo.bucket(0.24) == 0
    assert memo.bucket(0.26) == 1
    assert memo.bucket(1.0) == 3  # clamped into range


def test_champion_out_buffer_reused(rng):
    net, d = make_net(rng, density=0.1)
    y = rng.random((20, 6)).astype(np.float32)
    out = np.full((20, 6), np.nan, dtype=np.float32)
    z, _, _ = champion_spmm(net, 0, y, out=out)
    assert z is out
    assert np.allclose(z, d @ y, atol=1e-4)
