"""Radix-Net generation: topology, weights, registry, I/O, dynamics."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.kernels import champion_spmm
from repro.radixnet import (
    BENCHMARKS,
    benchmark_input,
    build_benchmark,
    butterfly_indices,
    list_benchmarks,
    load_layer_tsv,
    radixnet_topology,
    save_layer_tsv,
)
from repro.radixnet.weights import WeightScale, assign_weights, sdgc_bias


# ------------------------------------------------------------- topology
def test_butterfly_exact_fanin():
    idx = butterfly_indices(64, 8, 1)
    assert idx.shape == (64, 8)
    # stride 1: neuron j connects to j..j+7 mod 64
    assert list(idx[0]) == list(range(8))
    assert list(idx[63]) == [63, 0, 1, 2, 3, 4, 5, 6]


def test_butterfly_slot0_is_self_edge():
    for stride in (1, 8, 64):
        idx = butterfly_indices(256, 32, stride)
        assert (idx[:, 0] == np.arange(256)).all()


def test_butterfly_rejects_bad_args():
    with pytest.raises(ConfigError):
        butterfly_indices(0, 4, 1)
    with pytest.raises(ConfigError):
        butterfly_indices(4, 8, 1)


def test_topology_strides_cycle(rng):
    layers = radixnet_topology(64, 4, fanin=8, permute=False)
    # depth = ceil(log_8 64) = 2 -> strides 1, 8, 1, 8
    assert list(layers[0][0]) == [0, 1, 2, 3, 4, 5, 6, 7]
    assert list(layers[1][0]) == [0, 8, 16, 24, 32, 40, 48, 56]
    assert np.array_equal(layers[0], layers[2])


def test_topology_butterfly_reaches_everything():
    # after depth stages, every input should be able to influence every output
    n, fanin = 64, 8
    layers = radixnet_topology(n, 2, fanin=fanin, permute=False)
    reach = np.zeros((n, n), dtype=bool)  # reach[j, i]: output j sees input i
    for i in range(n):
        frontier = {i}
        for idx in layers:
            nxt = {j for j in range(n) if any(k in frontier for k in idx[j])}
            frontier = nxt
        reach[list(frontier), i] = True
    assert reach.all()


def test_topology_permutation_keeps_fanin(rng):
    layers = radixnet_topology(32, 3, fanin=4, rng=rng, permute=True)
    for idx in layers:
        assert idx.shape == (32, 4)
        assert idx.min() >= 0 and idx.max() < 32


def test_topology_permute_requires_rng():
    with pytest.raises(ConfigError):
        radixnet_topology(16, 2, fanin=4, permute=True)


def test_topology_fanin_too_large():
    with pytest.raises(ConfigError):
        radixnet_topology(16, 2, fanin=32, permute=False)


# --------------------------------------------------------------- weights
def test_assign_weights_structure(rng):
    topo = radixnet_topology(64, 3, fanin=8, permute=False)
    weights = assign_weights(topo, 64, rng)
    assert len(weights) == 3
    for w in weights:
        assert w.shape == (64, 64)
        assert (w.row_nnz == 8).all()  # exact fan-in preserved


def test_assign_weights_self_edge_value(rng):
    topo = radixnet_topology(64, 1, fanin=8, permute=False)
    scale = WeightScale(self_weight=1.7)
    (w,) = assign_weights(topo, 64, rng, scale=scale)
    diag = w.to_dense().diagonal()
    assert np.allclose(diag, 1.7)


def test_sdgc_bias_table():
    assert sdgc_bias(1024) == -0.3
    assert sdgc_bias(65536) == -0.45
    with pytest.raises(ConfigError):
        sdgc_bias(512)


# --------------------------------------------------------------- registry
def test_registry_has_twelve_benchmarks():
    specs = list_benchmarks()
    assert len(specs) == 12
    assert {s.neurons for s in specs} == {144, 256, 576, 1024}
    assert {s.layers for s in specs} == {24, 48, 120}


def test_registry_paper_mapping_and_bias():
    spec = BENCHMARKS["1024-120"]
    assert spec.paper_name == "65536-1920"
    assert spec.bias == -0.45
    assert BENCHMARKS["144-24"].paper_name == "1024-120"


def test_registry_connections_formula():
    spec = BENCHMARKS["256-24"]
    assert spec.connections == 256 * 32 * 24


def test_build_benchmark_structure():
    net = build_benchmark("144-24", seed=0)
    assert net.num_layers == 24
    assert net.input_dim == 144
    assert net.ymax == 32.0
    assert net.meta["paper_name"] == "1024-120"
    for layer in net.layers:
        assert (layer.weight.row_nnz == 32).all()
        assert layer.bias == -0.3


def test_build_benchmark_deterministic():
    a = build_benchmark("144-24", seed=7)
    b = build_benchmark("144-24", seed=7)
    assert np.array_equal(a.layers[3].weight.data, b.layers[3].weight.data)
    c = build_benchmark("144-24", seed=8)
    assert not np.array_equal(a.layers[3].weight.data, c.layers[3].weight.data)


def test_build_benchmark_unknown_name():
    with pytest.raises(ConfigError, match="unknown benchmark"):
        build_benchmark("999-3")


def test_benchmark_input_shape_and_binarization():
    net = build_benchmark("144-24", seed=0)
    y0, labels = benchmark_input(net, 50, seed=2, labeled=True)
    assert y0.shape == (144, 50)
    assert labels.shape == (50,)
    assert set(np.unique(y0)) <= {0.0, 1.0}
    y_raw = benchmark_input(net, 50, seed=2, binarized=False)
    assert y_raw.max() <= 1.0 and len(np.unique(y_raw)) > 2


# --------------------------------------------------------------- dynamics
def test_dynamics_regime():
    """The calibrated SDGC regime (matching the published benchmark
    phenomenology): the vast majority of inputs go completely dead within the
    24-layer tier, and the survivors collapse onto a handful of railed
    patterns — the structure SNICIT's compression monetizes."""
    net = build_benchmark("256-24", seed=0)
    y = benchmark_input(net, 300, seed=1).astype(np.float32)
    for i in range(net.num_layers):
        z, _, _ = champion_spmm(net, i, y)
        z += net.layers[i].bias_column()
        y = net.activation(z)
    alive = (y != 0).any(axis=0)
    assert 0.005 <= alive.mean() <= 0.4, f"alive fraction {alive.mean()} out of regime"
    survivors = y[:, alive]
    railed = ((survivors == 0) | (survivors >= 31.5)).mean()
    assert railed > 0.9, "survivor activations should pin at the clamp rails"
    patterns = len({survivors[:, j].tobytes() for j in range(survivors.shape[1])})
    assert patterns <= 32, "survivors should cluster into few patterns"


def test_dynamics_columns_merge_with_depth():
    net = build_benchmark("256-120", seed=0)
    y = benchmark_input(net, 200, seed=1).astype(np.float32)
    uniques = {}
    for i in range(net.num_layers):
        z, _, _ = champion_spmm(net, i, y)
        z += net.layers[i].bias_column()
        y = net.activation(z)
        if i in (29, 119):
            uniques[i] = len({y[:, j].tobytes() for j in range(y.shape[1])})
    assert uniques[119] <= uniques[29], "deeper layers should merge columns"
    assert uniques[119] < 200, "some columns must have merged"


# ----------------------------------------------------------------- io
def test_tsv_roundtrip(tmp_path, rng):
    topo = radixnet_topology(32, 1, fanin=4, permute=False)
    (w,) = assign_weights(topo, 32, rng)
    path = tmp_path / "layer.tsv"
    save_layer_tsv(path, w)
    loaded = load_layer_tsv(path, (32, 32))
    assert np.array_equal(loaded.indptr, w.indptr)
    assert np.array_equal(loaded.indices, w.indices)
    assert np.allclose(loaded.data, w.data, atol=1e-6)


def test_tsv_is_one_indexed(tmp_path, rng):
    topo = radixnet_topology(8, 1, fanin=2, permute=False)
    (w,) = assign_weights(topo, 8, rng)
    path = tmp_path / "layer.tsv"
    save_layer_tsv(path, w)
    first = path.read_text().splitlines()[0].split("\t")
    assert int(first[0]) >= 1 and int(first[1]) >= 1


def test_tsv_malformed_rejected(tmp_path):
    from repro.errors import FormatError

    path = tmp_path / "bad.tsv"
    path.write_text("1\t2\n")
    with pytest.raises(FormatError, match="3 tab-separated"):
        load_layer_tsv(path, (4, 4))
    path.write_text("0\t1\t0.5\n")
    with pytest.raises(FormatError, match="1-based"):
        load_layer_tsv(path, (4, 4))
    path.write_text("a\tb\tc\n")
    with pytest.raises(FormatError):
        load_layer_tsv(path, (4, 4))


def test_categories_roundtrip(tmp_path):
    from repro.radixnet.io import load_categories, save_categories

    cats = np.array([True, False, True, True, False])
    path = tmp_path / "truth.cat"
    save_categories(path, cats)
    assert path.read_text().split() == ["1", "3", "4"]
    loaded = load_categories(path, 5)
    assert np.array_equal(loaded, cats)


def test_categories_from_indices(tmp_path):
    from repro.radixnet.io import load_categories, save_categories

    path = tmp_path / "truth.cat"
    save_categories(path, np.array([0, 4]))
    assert np.array_equal(load_categories(path, 6),
                          np.array([True, False, False, False, True, False]))


def test_categories_validation(tmp_path):
    from repro.errors import FormatError
    from repro.radixnet.io import load_categories

    path = tmp_path / "bad.cat"
    path.write_text("0\n")
    with pytest.raises(FormatError, match="out of range"):
        load_categories(path, 4)
    path.write_text("xyz\n")
    with pytest.raises(FormatError):
        load_categories(path, 4)


def test_engine_categories_match_saved_truth(tmp_path):
    """End-to-end golden-reference flow: dense engine writes the truth file,
    SNICIT is checked against it — the contest's evaluation protocol."""
    from repro.baselines import DenseReference
    from repro.core import SNICIT, SNICITConfig
    from repro.radixnet.io import load_categories, save_categories

    net = build_benchmark("144-24", seed=0)
    y0 = benchmark_input(net, 100, seed=5)
    truth = DenseReference(net).infer(y0).categories
    path = tmp_path / "144-24.cat"
    save_categories(path, truth)
    # lossless configuration: category agreement is guaranteed, so this
    # exercises the golden-reference protocol itself
    res = SNICIT(net, SNICITConfig(threshold_layer=8, prune_threshold=0.0)).infer(y0)
    assert np.array_equal(res.categories, load_categories(path, 100))
