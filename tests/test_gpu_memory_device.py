"""Virtual device memory management and transfer accounting."""

import numpy as np
import pytest

from repro.errors import DeviceError
from repro.gpu.device import VirtualDevice
from repro.gpu.memory import BufferPool


def test_alloc_tracks_bytes(device):
    buf = device.alloc((10, 10), dtype=np.float32)
    assert device.allocated_bytes == 400
    buf.free()
    assert device.allocated_bytes == 0


def test_zeros_is_zeroed(device):
    buf = device.zeros((5,), dtype=np.float64)
    assert (buf.array == 0).all()


def test_oom_raises(tiny_device):
    with pytest.raises(DeviceError, match="OOM"):
        tiny_device.alloc((1 << 20,), dtype=np.float64)


def test_oom_boundary_exact_fit(tiny_device):
    # exactly the device capacity fits
    buf = tiny_device.alloc((tiny_device.spec.memory_bytes,), dtype=np.uint8)
    assert tiny_device.allocated_bytes == tiny_device.spec.memory_bytes
    with pytest.raises(DeviceError):
        tiny_device.alloc((1,), dtype=np.uint8)
    buf.free()


def test_use_after_free_raises(device):
    buf = device.alloc((4,))
    buf.free()
    with pytest.raises(DeviceError, match="freed"):
        _ = buf.array
    # double free is a no-op
    buf.free()


def test_to_device_copies_and_charges(device):
    host = np.arange(6, dtype=np.float32).reshape(2, 3)
    buf = device.to_device(host)
    host[0, 0] = 99  # device copy must be independent
    assert buf.array[0, 0] == 0
    assert device.snapshot().h2d_bytes == host.nbytes


def test_to_host_charges_d2h(device):
    buf = device.to_device(np.ones(8, dtype=np.float32))
    out = buf.to_host()
    assert (out == 1).all()
    assert device.snapshot().d2h_bytes == 32


def test_copy_from_host_shape_mismatch(device):
    buf = device.alloc((2, 2))
    with pytest.raises(DeviceError, match="shape"):
        buf.copy_from_host(np.zeros((3, 3), dtype=np.float32))


def test_peak_allocation_tracking(device):
    a = device.alloc((1000,), dtype=np.float32)
    b = device.alloc((2000,), dtype=np.float32)
    a.free()
    b.free()
    assert device.allocated_bytes == 0
    assert device.peak_allocated_bytes == 12000


def test_default_spec_is_a6000_scale(device):
    assert device.spec.memory_bytes == 48 * 1024**3
    assert device.spec.sm_count == 84


def test_buffer_pool_reuses_by_shape():
    pool = BufferPool()
    a = pool.take((4, 3))
    b = pool.take((4, 3))
    assert a is b  # nothing to avoid: same retained buffer comes back
    assert pool.owns(a)
    c = pool.take((4, 3), avoid=a)
    assert c is not a
    assert pool.take((4, 3), avoid=c) is a  # ping-pong between the two slots
    assert pool.stats()["buffers"] == 2


def test_buffer_pool_shape_and_dtype_isolation():
    pool = BufferPool()
    a = pool.take((4, 3), np.float32)
    b = pool.take((3, 4), np.float32)
    c = pool.take((4, 3), np.float64)
    assert a is not b and a is not c
    assert a.dtype == np.float32 and c.dtype == np.float64
    assert not pool.owns(np.zeros((4, 3), dtype=np.float32))


def test_buffer_pool_slot_cap():
    pool = BufferPool(slots_per_key=1)
    a = pool.take((2, 2))
    overflow = pool.take((2, 2), avoid=a)
    assert not pool.owns(overflow)  # beyond the cap: allocated but not retained
    assert pool.stats()["buffers"] == 1
    with pytest.raises(DeviceError):
        BufferPool(slots_per_key=0)
