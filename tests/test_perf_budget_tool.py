"""tools/check_perf_budget.py — the hard CI perf gate."""

import importlib.util
import json
import sys
from pathlib import Path

import pytest

_TOOL = Path(__file__).resolve().parents[1] / "tools" / "check_perf_budget.py"
_spec = importlib.util.spec_from_file_location("check_perf_budget", _TOOL)
cpb = importlib.util.module_from_spec(_spec)
sys.modules.setdefault("check_perf_budget", cpb)
_spec.loader.exec_module(cpb)


def record(tier, woc=1.5, cps=100.0, identical=True, cats=True):
    return {
        "tier": tier,
        "warm_over_cold": woc,
        "outputs_identical": identical,
        "categories_match": cats,
        "warm": {"steady_state": {"columns_per_second": cps}},
    }


def bench(*records):
    return {"tiers": list(records)}


BUDGET = {
    "baseline_ratio_floor": 0.75,
    "tiers": {
        "medium-A": {"min_warm_over_cold": 1.0, "require_outputs_identical": True},
        "sdgc-shallow": {"min_warm_over_cold": 1.5},
    },
}


def test_gate_passes_within_budget():
    b = bench(record("medium-A"), record("sdgc-shallow", woc=3.0))
    assert cpb.check_budget(b, b, BUDGET) == []


def test_gate_fails_on_warm_over_cold_floor():
    b = bench(record("medium-A", woc=0.88), record("sdgc-shallow", woc=3.0))
    failures = cpb.check_budget(b, None, BUDGET)
    assert len(failures) == 1
    assert "medium-A" in failures[0] and "0.88" in failures[0]


def test_gate_fails_on_missing_tier():
    failures = cpb.check_budget(bench(record("medium-A")), None, BUDGET)
    assert any("sdgc-shallow" in f and "missing" in f for f in failures)


def test_gate_fails_on_bitwise_divergence():
    b = bench(record("medium-A", identical=False), record("sdgc-shallow"))
    failures = cpb.check_budget(b, None, BUDGET)
    assert any("bitwise" in f for f in failures)
    # sdgc has no bitwise requirement -> divergence there is not a breach
    b2 = bench(record("medium-A"), record("sdgc-shallow", identical=False))
    assert cpb.check_budget(b2, None, BUDGET) == []


def test_gate_fails_on_category_mismatch():
    b = bench(record("medium-A", cats=False), record("sdgc-shallow"))
    assert any("categories" in f for f in cpb.check_budget(b, None, BUDGET))


def test_gate_fails_on_baseline_throughput_ratio():
    new = bench(record("medium-A", cps=50.0), record("sdgc-shallow"))
    base = bench(record("medium-A", cps=100.0), record("sdgc-shallow"))
    failures = cpb.check_budget(new, base, BUDGET)
    assert any("below the committed baseline" in f for f in failures)
    # exactly at the floor passes
    at_floor = bench(record("medium-A", cps=75.0), record("sdgc-shallow"))
    assert cpb.check_budget(at_floor, base, BUDGET) == []


def test_steady_cps_falls_back_to_legacy_warm_shape():
    legacy = {"tier": "x", "warm": {"columns_per_second": 42.0}}
    assert cpb.steady_cps(legacy) == 42.0
    assert cpb.steady_cps({"tier": "x", "warm": {}}) is None


def test_load_records_accepts_legacy_single_benchmark():
    recs = cpb.load_records({"benchmark": "144-24", "warm": {}})
    assert list(recs) == ["144-24"]
    with pytest.raises(ValueError):
        cpb.load_records({"nope": 1})


def test_main_exit_codes(tmp_path):
    ok = bench(record("medium-A"), record("sdgc-shallow", woc=3.0))
    bad = bench(record("medium-A", woc=0.5), record("sdgc-shallow", woc=3.0))
    budget_p = tmp_path / "budget.json"
    budget_p.write_text(json.dumps(BUDGET))
    for payload, code in ((ok, 0), (bad, 1)):
        bench_p = tmp_path / "bench.json"
        bench_p.write_text(json.dumps(payload))
        argv = ["--bench", str(bench_p), "--budget", str(budget_p)]
        assert cpb.main(argv) == code


# ---------------------------------------------------------------------------
# schema-4 scale-out gating


def scale_entry(workers, speedup=2.0, identical=True, failed=0):
    return {
        "workers": workers,
        "served": 192,
        "failed": failed,
        "restarts": [0] * workers,
        "outputs_identical": identical,
        "capacity": {"speedup_vs_single": speedup},
    }


def scale_record(*entries, crash="recovered"):
    rec = {"workers": list(entries)}
    if crash is not None:
        rec["crash"] = {
            "workers": 2,
            "recovered": crash == "recovered",
            "restarts": [1, 0],
            "failed": 0,
            "outputs_identical": True,
        }
    return rec


SCALE_BUDGET = {
    "scale_out": {
        "min_capacity_speedup": {"2": 1.2, "4": 1.5},
        "require_outputs_identical": True,
        "require_crash_recovery": True,
    }
}


def test_scale_out_gate_passes_within_budget():
    b = {"scale_out": scale_record(scale_entry(1, 1.0), scale_entry(2, 1.8))}
    assert cpb.check_budget(b, None, SCALE_BUDGET) == []


def test_scale_out_gate_fails_below_capacity_floor():
    b = {"scale_out": scale_record(scale_entry(1, 1.0), scale_entry(2, 1.1))}
    failures = cpb.check_budget(b, None, SCALE_BUDGET)
    assert any("2-worker capacity speedup" in f for f in failures)


def test_scale_out_gate_skips_unmeasured_counts():
    # budget lists a 4-worker floor; a job measuring only 1,2 must pass
    b = {"scale_out": scale_record(scale_entry(1, 1.0), scale_entry(2, 1.8))}
    assert cpb.check_budget(b, None, SCALE_BUDGET) == []


def test_scale_out_gate_fails_on_divergence_or_failures():
    diverged = {
        "scale_out": scale_record(scale_entry(1, 1.0), scale_entry(2, 1.8, identical=False))
    }
    assert any(
        "bitwise" in f for f in cpb.check_budget(diverged, None, SCALE_BUDGET)
    )
    dropped = {
        "scale_out": scale_record(scale_entry(1, 1.0), scale_entry(2, 1.8, failed=3))
    }
    assert any(
        "failed" in f for f in cpb.check_budget(dropped, None, SCALE_BUDGET)
    )


def test_scale_out_gate_requires_crash_recovery():
    missing = {"scale_out": scale_record(scale_entry(1, 1.0), crash=None)}
    assert any(
        "crash" in f for f in cpb.check_budget(missing, None, SCALE_BUDGET)
    )
    failed = {"scale_out": scale_record(scale_entry(1, 1.0), crash="failed")}
    assert any(
        "did not recover" in f for f in cpb.check_budget(failed, None, SCALE_BUDGET)
    )


def test_scale_out_gate_absent_sections_are_not_breaches():
    # tier-only bench under a tier-only budget: no scale_out rules, no breach
    b = bench(record("medium-A"), record("sdgc-shallow", woc=3.0))
    assert cpb.check_budget(b, b, BUDGET, only="all") == []
    # scale_out rules but --only tiers: the scale-out half is not consulted
    b2 = bench(record("medium-A"), record("sdgc-shallow", woc=3.0))
    assert cpb.check_budget(b2, None, {**BUDGET, **SCALE_BUDGET}, only="tiers") == []


def test_load_records_tolerates_scale_out_only_capture():
    # a --tiers none bench file has no tier records; the tool must return
    # an empty mapping (so --only scale_out jobs run) rather than crash
    assert cpb.load_records({"schema": 4, "scale_out": scale_record()}) == {}


def test_main_only_scale_out_on_tiers_none_capture(tmp_path):
    ok = {"schema": 4, "scale_out": scale_record(scale_entry(1, 1.0), scale_entry(2, 1.8))}
    bad = {"schema": 4, "scale_out": scale_record(scale_entry(1, 1.0), scale_entry(2, 1.05))}
    budget_p = tmp_path / "budget.json"
    budget_p.write_text(json.dumps(SCALE_BUDGET))
    for payload, code in ((ok, 0), (bad, 1)):
        bench_p = tmp_path / "bench.json"
        bench_p.write_text(json.dumps(payload))
        argv = [
            "--bench", str(bench_p), "--budget", str(budget_p),
            "--only", "scale_out",
        ]
        assert cpb.main(argv) == code


# ---------------------------------------------------------------------------
# schema-6 QoS A/B gating


def qos_arm(ratio, served=24, shed=16, failed=0):
    return {
        "interactive_p99_ratio": ratio,
        "per_tenant": {
            "interactive": {"submitted": 24, "served": 24, "shed": 0, "failed": 0},
            "bulk": {"submitted": 40, "served": served, "shed": shed,
                     "failed": failed},
        },
    }


def qos_record(with_ratio=0.9, no_ratio=3.5, identical=True, accounting=True,
               failed=0):
    return {
        "with_qos": qos_arm(with_ratio, failed=failed),
        "no_qos": qos_arm(no_ratio, served=40, shed=0),
        "outputs_identical": identical,
        "shed_accounting_ok": accounting,
    }


QOS_BUDGET = {
    "qos": {
        "max_interactive_p99_ratio": 1.5,
        "require_no_qos_breach": True,
        "require_outputs_identical": True,
        "require_shed_accounting": True,
    }
}


def test_qos_gate_passes_within_budget():
    b = {"qos": qos_record()}
    assert cpb.check_budget(b, None, QOS_BUDGET) == []


def test_qos_gate_fails_above_p99_ceiling():
    b = {"qos": qos_record(with_ratio=2.1)}
    failures = cpb.check_budget(b, None, QOS_BUDGET)
    assert any("2.10x" in f and "ceiling 1.50x" in f for f in failures)


def test_qos_gate_requires_the_control_arm_to_breach():
    # a FIFO arm that also holds the ceiling means the bulk tenant never
    # contended — the QoS pass would be vacuous, so the gate fails it
    b = {"qos": qos_record(no_ratio=1.2)}
    failures = cpb.check_budget(b, None, QOS_BUDGET)
    assert any("proves nothing" in f for f in failures)


def test_qos_gate_fails_on_divergence_and_accounting():
    diverged = {"qos": qos_record(identical=False)}
    assert any(
        "bitwise" in f for f in cpb.check_budget(diverged, None, QOS_BUDGET)
    )
    unbalanced = {"qos": qos_record(accounting=False)}
    assert any(
        "shed accounting" in f
        for f in cpb.check_budget(unbalanced, None, QOS_BUDGET)
    )
    dropped = {"qos": qos_record(failed=2)}
    assert any(
        "failed 2 requests" in f
        for f in cpb.check_budget(dropped, None, QOS_BUDGET)
    )


def test_qos_gate_fails_on_missing_record_or_ratios():
    assert cpb.check_budget({}, None, QOS_BUDGET, only="qos") == [
        "qos: missing from the bench output"
    ]
    armless = {"qos": {"outputs_identical": True, "shed_accounting_ok": True}}
    failures = cpb.check_budget(armless, None, QOS_BUDGET)
    assert any("QoS arm has no interactive p99 ratio" in f for f in failures)
    assert any("control arm has no interactive p99 ratio" in f for f in failures)


def test_qos_gate_only_isolation():
    # qos rules present but --only tiers: the qos half is not consulted
    b = bench(record("medium-A"), record("sdgc-shallow", woc=3.0))
    assert cpb.check_budget(b, None, {**BUDGET, **QOS_BUDGET}, only="tiers") == []
    # --only qos against a qos-only capture ignores the missing tiers
    b2 = {"schema": 6, "qos": qos_record()}
    assert cpb.check_budget(b2, None, {**BUDGET, **QOS_BUDGET}, only="qos") == []


def test_load_records_tolerates_qos_only_capture():
    assert cpb.load_records({"schema": 6, "qos": qos_record()}) == {}


def test_main_only_qos_exit_codes(tmp_path):
    ok = {"schema": 6, "qos": qos_record()}
    bad = {"schema": 6, "qos": qos_record(with_ratio=3.0)}
    budget_p = tmp_path / "budget.json"
    budget_p.write_text(json.dumps(QOS_BUDGET))
    for payload, code in ((ok, 0), (bad, 1)):
        bench_p = tmp_path / "bench.json"
        bench_p.write_text(json.dumps(payload))
        argv = ["--bench", str(bench_p), "--budget", str(budget_p),
                "--only", "qos"]
        assert cpb.main(argv) == code


# ---------------------------------------------------------------------------
# the in-repo loader must accept the same generations (satellite: schema
# round-trip so the gate never silently drops tiers)


def test_repro_load_bench_records_round_trips_all_schemas():
    sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))
    from repro.errors import ConfigError
    from repro.serve.bench import load_bench_records

    tier_rec = record("sdgc-shallow")
    # schema 2/3/4 share the "tiers" list; 4 adds the scale_out sibling
    for payload in (
        {"schema": 2, "tiers": [tier_rec]},
        {"schema": 3, "tiers": [tier_rec], "multi": {}},
        {"schema": 4, "tiers": [tier_rec], "scale_out": scale_record()},
        {"schema": 6, "tiers": [tier_rec], "qos": qos_record()},
    ):
        recs = load_bench_records(payload)
        assert [r["tier"] for r in recs] == ["sdgc-shallow"]
    # legacy single-benchmark dict wraps to one record
    legacy = load_bench_records({"benchmark": "144-24", "warm": {}})
    assert [r["tier"] for r in legacy] == ["144-24"]
    # record-only captures (--tiers none): empty, not an error
    assert load_bench_records({"schema": 4, "scale_out": scale_record()}) == []
    assert load_bench_records({"schema": 6, "qos": qos_record()}) == []
    with pytest.raises(ConfigError):
        load_bench_records({"nope": 1})
    with pytest.raises(ConfigError):
        load_bench_records([tier_rec])

    # both loaders agree on every shape (the tool mirrors the repo loader)
    for payload in (
        {"schema": 4, "tiers": [tier_rec], "scale_out": scale_record()},
        {"benchmark": "144-24", "warm": {}},
        {"schema": 4, "scale_out": scale_record()},
    ):
        tool_view = cpb.load_records(payload)
        repo_view = {r["tier"]: r for r in load_bench_records(payload)}
        assert set(tool_view) == set(repo_view)
