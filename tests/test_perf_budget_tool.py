"""tools/check_perf_budget.py — the hard CI perf gate."""

import importlib.util
import json
import sys
from pathlib import Path

import pytest

_TOOL = Path(__file__).resolve().parents[1] / "tools" / "check_perf_budget.py"
_spec = importlib.util.spec_from_file_location("check_perf_budget", _TOOL)
cpb = importlib.util.module_from_spec(_spec)
sys.modules.setdefault("check_perf_budget", cpb)
_spec.loader.exec_module(cpb)


def record(tier, woc=1.5, cps=100.0, identical=True, cats=True):
    return {
        "tier": tier,
        "warm_over_cold": woc,
        "outputs_identical": identical,
        "categories_match": cats,
        "warm": {"steady_state": {"columns_per_second": cps}},
    }


def bench(*records):
    return {"tiers": list(records)}


BUDGET = {
    "baseline_ratio_floor": 0.75,
    "tiers": {
        "medium-A": {"min_warm_over_cold": 1.0, "require_outputs_identical": True},
        "sdgc-shallow": {"min_warm_over_cold": 1.5},
    },
}


def test_gate_passes_within_budget():
    b = bench(record("medium-A"), record("sdgc-shallow", woc=3.0))
    assert cpb.check_budget(b, b, BUDGET) == []


def test_gate_fails_on_warm_over_cold_floor():
    b = bench(record("medium-A", woc=0.88), record("sdgc-shallow", woc=3.0))
    failures = cpb.check_budget(b, None, BUDGET)
    assert len(failures) == 1
    assert "medium-A" in failures[0] and "0.88" in failures[0]


def test_gate_fails_on_missing_tier():
    failures = cpb.check_budget(bench(record("medium-A")), None, BUDGET)
    assert any("sdgc-shallow" in f and "missing" in f for f in failures)


def test_gate_fails_on_bitwise_divergence():
    b = bench(record("medium-A", identical=False), record("sdgc-shallow"))
    failures = cpb.check_budget(b, None, BUDGET)
    assert any("bitwise" in f for f in failures)
    # sdgc has no bitwise requirement -> divergence there is not a breach
    b2 = bench(record("medium-A"), record("sdgc-shallow", identical=False))
    assert cpb.check_budget(b2, None, BUDGET) == []


def test_gate_fails_on_category_mismatch():
    b = bench(record("medium-A", cats=False), record("sdgc-shallow"))
    assert any("categories" in f for f in cpb.check_budget(b, None, BUDGET))


def test_gate_fails_on_baseline_throughput_ratio():
    new = bench(record("medium-A", cps=50.0), record("sdgc-shallow"))
    base = bench(record("medium-A", cps=100.0), record("sdgc-shallow"))
    failures = cpb.check_budget(new, base, BUDGET)
    assert any("below the committed baseline" in f for f in failures)
    # exactly at the floor passes
    at_floor = bench(record("medium-A", cps=75.0), record("sdgc-shallow"))
    assert cpb.check_budget(at_floor, base, BUDGET) == []


def test_steady_cps_falls_back_to_legacy_warm_shape():
    legacy = {"tier": "x", "warm": {"columns_per_second": 42.0}}
    assert cpb.steady_cps(legacy) == 42.0
    assert cpb.steady_cps({"tier": "x", "warm": {}}) is None


def test_load_records_accepts_legacy_single_benchmark():
    recs = cpb.load_records({"benchmark": "144-24", "warm": {}})
    assert list(recs) == ["144-24"]
    with pytest.raises(ValueError):
        cpb.load_records({"nope": 1})


def test_main_exit_codes(tmp_path):
    ok = bench(record("medium-A"), record("sdgc-shallow", woc=3.0))
    bad = bench(record("medium-A", woc=0.5), record("sdgc-shallow", woc=3.0))
    budget_p = tmp_path / "budget.json"
    budget_p.write_text(json.dumps(BUDGET))
    for payload, code in ((ok, 0), (bad, 1)):
        bench_p = tmp_path / "bench.json"
        bench_p.write_text(json.dumps(payload))
        argv = ["--bench", str(bench_p), "--budget", str(budget_p)]
        assert cpb.main(argv) == code
