"""Property-based end-to-end invariants on arbitrary small networks.

These go beyond the SDGC/medium workloads: for *any* random square sparse
network and any threshold layer, SNICIT without pruning must reproduce the
plain feed-forward output, and its category vector must match the reference.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.baselines import DenseReference
from repro.core import SNICIT, SNICITConfig
from repro.network import LayerSpec, SparseNetwork
from repro.sparse import CSRMatrix


def random_network(rng, n, depth, ymax, density=0.3, bias_scale=0.2):
    layers = []
    for i in range(depth):
        d = rng.random((n, n)).astype(np.float32) * 2 - 1
        d[rng.random((n, n)) > density] = 0
        bias = rng.standard_normal(n).astype(np.float32) * bias_scale
        layers.append(LayerSpec(CSRMatrix.from_dense(d), bias=bias, name=f"L{i}"))
    return SparseNetwork(layers, ymax=ymax, name="prop")


@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    n=st.integers(4, 24),
    depth=st.integers(2, 8),
    t_frac=st.floats(0.0, 1.0),
    ymax=st.floats(0.5, 8.0),
    batch=st.integers(2, 24),
    s=st.integers(1, 16),
)
def test_snicit_lossless_property(seed, n, depth, t_frac, ymax, batch, s):
    rng = np.random.default_rng(seed)
    net = random_network(rng, n, depth, ymax)
    y0 = (rng.random((n, batch)) * ymax).astype(np.float32)
    ref = DenseReference(net).infer(y0)
    cfg = SNICITConfig(
        threshold_layer=int(round(t_frac * depth)),
        sample_size=s,
        downsample_dim=None,
        prune_threshold=0.0,
    )
    res = SNICIT(net, cfg).infer(y0)
    assert np.allclose(res.y, ref.y, atol=5e-3 * ymax), (
        f"max diff {np.abs(res.y - ref.y).max()}"
    )


@settings(max_examples=10, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    dup_pairs=st.integers(0, 5),
    prune=st.floats(0.0, 0.05),
)
def test_snicit_duplicate_columns_share_fate(seed, dup_pairs, prune):
    """Columns that are bitwise identical in the input must produce bitwise
    identical outputs through SNICIT (determinism of the compressed path)."""
    rng = np.random.default_rng(seed)
    n, batch = 12, 16
    net = random_network(rng, n, 4, ymax=4.0)
    y0 = (rng.random((n, batch)) * 4).astype(np.float32)
    chosen = rng.choice(batch, size=2 * dup_pairs, replace=False)
    pairs = []
    for k in range(dup_pairs):
        a, b = chosen[2 * k], chosen[2 * k + 1]
        y0[:, b] = y0[:, a]
        pairs.append((a, b))
    cfg = SNICITConfig(
        threshold_layer=2, sample_size=8, downsample_dim=None, prune_threshold=prune
    )
    res = SNICIT(net, cfg).infer(y0)
    ref = DenseReference(net).infer(y0)
    for a, b in pairs:
        assert np.array_equal(ref.y[:, a], ref.y[:, b])
        assert np.array_equal(res.y[:, a], res.y[:, b]), f"pair {(a, b)} diverged"
