"""Cluster-based conversion (Algorithm 2, Eq. 3-4) and recovery (Eq. 6)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.conversion import assign_centroids, build_residues, construct_kernel, convert
from repro.core.recovery import recover
from repro.errors import ConfigError, ShapeError


def test_assign_centroids_nearest_l0(rng):
    y = np.array(
        [
            [0.0, 0.0, 9.0, 9.0, 0.0],
            [1.0, 1.0, 8.0, 8.0, 1.0],
            [2.0, 2.1, 7.0, 7.0, 2.0],
        ],
        dtype=np.float32,
    )
    cents = np.array([0, 2])
    m = assign_centroids(y, cents)
    assert m[0] == -1 and m[2] == -1
    assert m[1] == 0  # differs from col0 in one entry, from col2 in three
    assert m[3] == 2
    assert m[4] == 0  # exactly equal to col0


def test_assign_centroids_tie_goes_to_first():
    y = np.array([[0.0, 5.0, 9.0]], dtype=np.float32)
    # col1 differs from both centroids in 1 element -> tie -> first centroid
    m = assign_centroids(y, np.array([0, 2]))
    assert m[1] == 0


def test_assign_centroids_chunking_consistent(rng):
    y = rng.random((6, 50)).astype(np.float32)
    cents = np.array([0, 10, 20])
    assert np.array_equal(
        assign_centroids(y, cents, chunk=7), assign_centroids(y, cents, chunk=512)
    )


def test_assign_centroids_validation(rng):
    with pytest.raises(ConfigError):
        assign_centroids(np.zeros((2, 2), dtype=np.float32), np.array([], dtype=np.int64))
    with pytest.raises(ShapeError):
        assign_centroids(np.zeros(4, dtype=np.float32), np.array([0]))


def test_build_residues_eq4(rng):
    y = rng.random((5, 8)).astype(np.float32)
    cents = np.array([1, 4])
    m = assign_centroids(y, cents)
    yhat, ne_rec = build_residues(y, m)
    for j in range(8):
        if m[j] == -1:
            assert np.array_equal(yhat[:, j], y[:, j])
        else:
            assert np.allclose(yhat[:, j], y[:, j] - y[:, m[j]], atol=1e-7)
    # ne_rec is truthful
    assert np.array_equal(ne_rec, (yhat != 0).any(axis=0))


def test_build_residues_pruning_zeroes_small_entries():
    y = np.array([[1.0, 1.005], [1.0, 2.0]], dtype=np.float32)
    m = np.array([-1, 0])
    yhat, ne_rec = build_residues(y, m, prune_threshold=0.01)
    assert yhat[0, 1] == 0.0  # 0.005 pruned
    assert yhat[1, 1] == pytest.approx(1.0)
    # centroid column never pruned
    assert np.array_equal(yhat[:, 0], y[:, 0])


def test_build_residues_duplicate_column_is_empty():
    y = np.array([[3.0, 3.0], [1.0, 1.0]], dtype=np.float32)
    m = np.array([-1, 0])
    yhat, ne_rec = build_residues(y, m)
    assert not ne_rec[1]
    assert ne_rec[0]


def test_recover_inverts_convert(rng):
    y = rng.random((7, 12)).astype(np.float64)  # float64: exact (a-b)+b
    yhat, m, _ = convert(y, np.array([0, 3, 7]))
    back = recover(yhat, m)
    assert np.allclose(back, y, atol=1e-12)


def test_recover_validation():
    with pytest.raises(ShapeError):
        recover(np.zeros(4), np.zeros(4, dtype=np.int64))
    with pytest.raises(ShapeError):
        recover(np.zeros((2, 3)), np.zeros(5, dtype=np.int64))


def test_construct_kernel_matches_vectorized(device, rng):
    y = np.round(rng.random((12, 10)) * 4, 1).astype(np.float32)
    cents = np.array([0, 4])
    yhat_v, m_v, ne_v = convert(y, cents)
    yhat_k, m_k, ne_k = construct_kernel(device, y, cents, tile=4, block=4)
    assert np.array_equal(m_k, m_v)
    assert np.allclose(yhat_k, yhat_v, atol=1e-6)
    assert np.array_equal(ne_k, ne_v)


def test_construct_kernel_dead_centroid_marked_empty(device):
    y = np.zeros((4, 3), dtype=np.float32)
    y[:, 1] = 2.0
    yhat, m, ne_rec = construct_kernel(device, y, np.array([0, 1]), tile=2, block=2)
    assert not ne_rec[0]  # the all-zero centroid is skippable
    assert ne_rec[1]
    assert not ne_rec[2]  # column 2 equals dead centroid 0 -> empty residue


def test_construct_kernel_charges_device(device, rng):
    y = rng.random((8, 6)).astype(np.float32)
    before = device.snapshot()
    construct_kernel(device, y, np.array([0]), tile=4, block=4)
    assert device.snapshot().launches == before.launches + 1


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 3000), b=st.integers(2, 12), n=st.integers(1, 10))
def test_convert_recover_roundtrip_property(seed, b, n):
    rng = np.random.default_rng(seed)
    y = rng.random((n, b))
    n_cents = rng.integers(1, b + 1)
    cents = np.sort(rng.choice(b, size=n_cents, replace=False))
    yhat, m, _ = convert(y, cents)
    assert np.allclose(recover(yhat, m), y, atol=1e-9)
