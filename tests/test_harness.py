"""Harness plumbing: runners, scaling, workload caching, reporting."""

import numpy as np
import pytest

from repro.core.config import SNICITConfig
from repro.errors import ConfigError
from repro.harness import TextTable, bench_scale, get_benchmark, get_input, run_comparison
from repro.harness.report import format_series
from repro.harness.runner import make_engine, run_engine


def test_bench_scale_default(monkeypatch):
    monkeypatch.delenv("REPRO_BENCH_SCALE", raising=False)
    assert bench_scale() == 1.0
    assert bench_scale(default=0.25) == 0.25


def test_bench_scale_env(monkeypatch):
    monkeypatch.setenv("REPRO_BENCH_SCALE", "0.5")
    assert bench_scale() == 0.5
    monkeypatch.setenv("REPRO_BENCH_SCALE", "zero")
    with pytest.raises(ConfigError):
        bench_scale()
    monkeypatch.setenv("REPRO_BENCH_SCALE", "-1")
    with pytest.raises(ConfigError):
        bench_scale()


def test_workload_caching_returns_same_objects():
    net1 = get_benchmark("144-24")
    net2 = get_benchmark("144-24")
    assert net1 is net2
    y1 = get_input("144-24", 64)
    y2 = get_input("144-24", 64)
    assert y1 is y2
    assert not y1.flags.writeable  # cached arrays are read-only


def test_make_engine_kinds():
    net = get_benchmark("144-24")
    cfg = SNICITConfig(threshold_layer=8)
    for kind in ("snicit", "dense", "bf2019", "snig2020", "xy2021"):
        engine = make_engine(kind, net, cfg)
        assert hasattr(engine, "infer")
    with pytest.raises(ConfigError):
        make_engine("warp-drive", net, cfg)
    with pytest.raises(ConfigError):
        make_engine("snicit", net, None)


def test_run_engine_and_comparison():
    net = get_benchmark("144-24")
    y0 = get_input("144-24", 64)
    cfg = SNICITConfig(threshold_layer=8)
    run = run_engine("snicit", net, y0, snicit_config=cfg)
    assert run.wall_ms > 0 and run.modeled_ms > 0
    runs = run_comparison(net, y0, cfg, engines=("snicit", "xy2021"))
    assert set(runs) == {"snicit", "xy2021"}


def test_run_comparison_detects_mismatch(monkeypatch):
    net = get_benchmark("144-24")
    y0 = get_input("144-24", 64)
    cfg = SNICITConfig(threshold_layer=8)

    import repro.harness.runner as runner_mod

    class BrokenEngine:
        name = "broken"

        def __init__(self, net):
            self._net = net

        def infer(self, y0):
            from repro.baselines import DenseReference

            res = DenseReference(self._net).infer(y0)
            res.y = np.zeros_like(res.y)  # kills every category
            return res

    monkeypatch.setitem(runner_mod._ENGINES, "broken", BrokenEngine)
    with pytest.raises(AssertionError, match="disagree"):
        run_comparison(net, y0, cfg, engines=("snicit", "broken"))


def test_text_table_render():
    t = TextTable(["a", "bb"], title="T")
    t.add(1, 2.5)
    t.add("x", 0.001)
    out = t.render()
    assert out.splitlines()[0] == "T"
    assert "a" in out and "bb" in out and "0.001" in out
    with pytest.raises(ValueError):
        t.add(1)


def test_format_series():
    s = format_series("curve", [1, 2], [0.5, 0.25])
    assert s == "curve: (1, 0.50) (2, 0.25)"


def test_render_heatmap():
    from repro.harness.report import render_heatmap

    out = render_heatmap(
        "demo", ["t0", "t4"], [100, 200],
        [[0.5, 1.5], [0.9, 2.0]], mark_above=1.0,
    )
    lines = out.splitlines()
    assert lines[0] == "demo"
    assert "100" in lines[1] and "200" in lines[1]
    assert "[" in out  # the >1x contour is marked
    assert "scale:" in lines[-1]


def test_render_heatmap_empty():
    from repro.harness.report import render_heatmap

    assert render_heatmap("empty", [], [], []) == "empty"


def test_render_heatmap_constant_values():
    from repro.harness.report import render_heatmap

    out = render_heatmap("const", ["a"], [1, 2], [[3.0, 3.0]])
    assert "const" in out  # zero span must not divide by zero
