"""Baked per-layer strategy plans and the hot-path vectorizations.

Two invariants anchor this file:

* a planned engine is a *performance* specialization — every planned spMM,
  conversion, and recovery result must be bitwise identical to the
  unplanned/loop reference it replaced;
* the plan actually preempts per-block work — warm serving of a medium-like
  dense-ish network must not lose to constructing a cold engine per block
  (the regression that motivated it).
"""

import time

import numpy as np
import pytest

from repro.core.conversion import assign_centroids
from repro.core.plan import LayerPlan, StrategyPlan, bake_plan
from repro.core.pruning import _prune_samples_loop, prune_samples
from repro.core.recovery import recover, recover_compact
from repro.core.reuse import CachedConversion, CentroidCache, degenerate_fill_baselines
from repro.errors import ConfigError
from repro.harness.experiments.table4 import medium_config
from repro.kernels import champion_spmm, l0_nearest, planned_spmm
from repro.network import LayerSpec, SparseNetwork
from repro.obs import MetricsRegistry
from repro.sparse import CSRMatrix
from repro.sparse.convert import preferred_spmm_format


def make_net(rng, densities, n=24, ymax=32.0):
    layers = []
    for density in densities:
        d = rng.random((n, n))
        d[d > density] = 0.0
        layers.append(LayerSpec(CSRMatrix.from_dense(d)))
    return SparseNetwork(layers, ymax=ymax)


# ------------------------------------------------------- format preference
def test_preferred_format_ell_for_uniform_fanin(rng):
    d = np.zeros((16, 16))
    d[:, :4] = rng.random((16, 4)) + 0.1  # every row exactly 4 nnz
    assert preferred_spmm_format(CSRMatrix.from_dense(d)) == "ell"


def test_preferred_format_csr_for_skewed_fanin(rng):
    d = np.zeros((16, 16))
    d[0, :] = rng.random(16) + 0.1  # one full row ...
    d[1:, 0] = 0.5  # ... the rest fan-in 1 -> ELL pads 16x
    assert preferred_spmm_format(CSRMatrix.from_dense(d)) == "csr"


def test_preferred_format_csr_for_empty_weight():
    assert preferred_spmm_format(CSRMatrix.from_dense(np.zeros((4, 4)))) == "csr"


# ------------------------------------------------------------- plan baking
def test_bake_plan_freezes_strategy_and_pins_views(rng):
    net = make_net(rng, [0.5, 0.05])  # dense-ish layer + sparse layer
    assert net.view_nbytes() == 0  # nothing built yet
    plan = bake_plan(net)
    assert [lp.strategy for lp in plan.layers] == ["colwise", "dynamic"]
    assert plan.layers[0].format == "dense"
    assert plan.layers[1].format in ("ell", "csr")
    assert all(lp.index == i for i, lp in enumerate(plan.layers))
    assert net.view_nbytes() > 0  # baking pinned the chosen views
    assert plan.baked_seconds >= 0
    assert plan.stats()["layers"] == 2


def test_bake_plan_rejects_bad_threshold(rng):
    net = make_net(rng, [0.5])
    with pytest.raises(ConfigError):
        bake_plan(net, live_threshold=1.5)


def test_plan_dispatch_counts_calls_and_strategies(rng):
    net = make_net(rng, [0.5, 0.05])
    metrics = MetricsRegistry()
    plan = bake_plan(net, metrics=metrics)
    y = (rng.random((24, 6)).astype(np.float32) + 0.1)  # all rows live
    for i in range(net.num_layers):
        plan.dispatch(net, i, y)
    assert plan.calls == 2
    counted = {
        labels["strategy"]: metric.value
        for labels, metric in metrics.series("spmm_strategy_total")
        if metric.value
    }
    assert counted.get("colwise") == 1  # the dense-ish layer
    assert sum(counted.values()) == 2


@pytest.mark.parametrize("density", [0.5, 0.1, 0.02])
@pytest.mark.parametrize("dead_fraction", [0.0, 0.5, 0.9])
def test_planned_spmm_bitwise_matches_champion(rng, density, dead_fraction):
    """The tentpole invariant: planning never changes a single bit."""
    net = make_net(rng, [density])
    plan = bake_plan(net)
    y = rng.random((24, 8)).astype(np.float32)
    dead = int(24 * dead_fraction)
    if dead:
        y[:dead, :] = 0.0
    z_plan, work_plan, strat_plan, frac = planned_spmm(net, plan.layers[0], y)
    z_champ, work_champ, strat_champ = champion_spmm(net, 0, y)
    assert 0.0 <= frac <= 1.0
    assert np.array_equal(z_plan, z_champ)
    assert work_plan == work_champ
    # 'csr' is the plan's name for the batch-parallel branch champion calls
    # 'ell'; both are the same accumulation order (tested bitwise above)
    assert strat_plan == strat_champ or {strat_plan, strat_champ} == {"csr", "ell"}


def test_plan_stats_strategy_histogram(rng):
    plan = StrategyPlan("net", (
        LayerPlan(0, "colwise", "dense"),
        LayerPlan(1, "dynamic", "ell"),
        LayerPlan(2, "dynamic", "csr"),
    ))
    assert plan.stats()["strategies"] == {
        "colwise": 1, "dynamic/ell": 1, "dynamic/csr": 1,
    }


# ------------------------------------------- vectorized kernels == old loops
@pytest.mark.parametrize("seed", [0, 7, 99])
def test_prune_samples_bitwise_matches_loop(seed):
    rng = np.random.default_rng(seed)
    f = (rng.random((16, 32)) * 2).astype(np.float32)
    for eta, eps in [(0.03, 0.03), (0.5, 0.2), (0.0, 0.0)]:
        assert np.array_equal(
            prune_samples(f, eta, eps), _prune_samples_loop(f, eta, eps)
        )


def test_l0_nearest_chunk_invariant_and_exact(rng):
    y = (rng.random((20, 13)) * 3).astype(np.float32)
    cents = (rng.random((20, 5)) * 3).astype(np.float32)
    idx, dist = l0_nearest(y, cents)
    for chunk in (1, 3, 13, 64):
        ci, cd = l0_nearest(y, cents, chunk=chunk)
        assert np.array_equal(ci, idx) and np.array_equal(cd, dist)
    # naive per-column reference
    for j in range(y.shape[1]):
        d = [(y[:, j] != cents[:, k]).sum() for k in range(cents.shape[1])]
        assert idx[j] == int(np.argmin(d))
        assert dist[j] == d[idx[j]]


def test_assign_centroids_matches_reference_loop(rng):
    y = (rng.random((18, 12)) * 2).astype(np.float32)
    cent_cols = np.array([2, 5, 9])
    m = assign_centroids(y, cent_cols)
    assert np.all(m[cent_cols] == -1)
    for j in range(y.shape[1]):
        if j in cent_cols:
            continue
        d = [(y[:, j] != y[:, c]).sum() for c in cent_cols]
        assert m[j] == cent_cols[int(np.argmin(d))]


def test_recover_compact_matches_scatter_then_recover(rng):
    n_rows, b = 10, 8
    m = np.array([-1, 0, 0, -1, 3, 3, -1, 6])
    ne_idx = np.array([0, 2, 3, 5, 6])  # some residues emptied out
    sub = rng.random((n_rows, len(ne_idx))).astype(np.float32)
    yhat = np.zeros((n_rows, b), dtype=np.float32)
    yhat[:, ne_idx] = sub
    assert np.array_equal(
        recover_compact(sub, ne_idx, m, n_rows), recover(yhat, m)
    )


# ------------------------------------------------ degenerate-fill baselines
def test_degenerate_baselines_trivial_cases():
    assert degenerate_fill_baselines(np.zeros((0, 3))) == (0.0, 0.0)
    assert degenerate_fill_baselines(np.zeros((4, 1))) == (0.0, 0.0)


def test_degenerate_baselines_admit_same_mix_spacing(rng):
    """The satellite fix: a degenerate fill (every column its own centroid)
    must self-calibrate so a same-mix column — one sitting about as far from
    the centroids as they sit from each other — is admitted, not churned."""
    cent_y = (rng.random((32, 8)) * 4).astype(np.float32)
    bd, bdens = degenerate_fill_baselines(cent_y)
    assert bd > 0 and bdens > 0
    entry = CachedConversion(
        threshold_layer=3, cent_y=cent_y,
        baseline_distance=bd, baseline_density=bdens,
    )
    cache = CentroidCache(tolerance=0.5)
    assert cache.admit(entry, distance=bd, density=bdens)
    # genuine drift well past the spacing budget must still be rejected
    assert not cache.admit(entry, distance=bd * 2.0, density=bdens)


def test_degenerate_baselines_respect_prune_threshold(rng):
    cent_y = (rng.random((32, 8)) * 4).astype(np.float32)
    _, dense_all = degenerate_fill_baselines(cent_y, prune_threshold=0.0)
    _, dense_pruned = degenerate_fill_baselines(cent_y, prune_threshold=3.0)
    assert dense_pruned < dense_all  # pruning can only zero residue entries


# ------------------------------------------------- warm-vs-cold perf budget
def test_warm_session_not_slower_than_cold_on_medium_like_net(rng):
    """Regression for the medium-tier warm loss: on a dense-ish network the
    warm per-block path (baked plan, pinned views, pooled buffers) must beat
    re-paying engine construction and lazy view builds every block."""
    from repro.harness.runner import make_engine
    from repro.serve import EngineSession

    net = make_net(rng, [0.55] * 8, n=96, ymax=1.0)
    cfg = medium_config(8, sample_size=32)
    blocks = [
        np.clip(rng.random((96, 48)), 0, 1).astype(np.float32) for _ in range(4)
    ]

    def cold_pass():
        outs, t0 = [], time.perf_counter()
        for y0 in blocks:
            engine = make_engine("snicit", net, snicit_config=cfg)
            outs.append(engine.infer(y0).y)
        return time.perf_counter() - t0, outs

    def warm_pass():
        session = EngineSession(net, cfg)  # warmup excluded from the clock
        outs, t0 = [], time.perf_counter()
        for y0 in blocks:
            outs.append(session.run(y0).y)
        return time.perf_counter() - t0, outs

    # min-of-3 on both sides to shrug off scheduler noise
    cold_times, warm_times = [], []
    for _ in range(3):
        ct, cold_out = cold_pass()
        wt, warm_out = warm_pass()
        cold_times.append(ct)
        warm_times.append(wt)
        net.drop_views()  # next cold pass pays lazy builds again
    for c, w in zip(cold_out, warm_out):
        assert np.array_equal(c, w)  # the plan never changes outputs
    assert min(warm_times) <= min(cold_times) * 1.2, (
        f"warm {min(warm_times):.4f}s vs cold {min(cold_times):.4f}s"
    )
