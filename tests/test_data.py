"""Synthetic datasets, resizing, and loading utilities."""

import numpy as np
import pytest

from repro.data import (
    Dataset,
    bilinear_resize,
    binarize,
    images_to_columns,
    render_digit,
    synth_cifar,
    synth_mnist,
    train_test_split,
)
from repro.data.synth_mnist import prototype_digit_batch
from repro.errors import ConfigError, ShapeError


# ----------------------------------------------------------- synth mnist
def test_render_digit_shape_and_range(rng):
    img = render_digit(3, rng)
    assert img.shape == (28, 28)
    assert img.dtype == np.float32
    assert img.min() >= 0.0 and img.max() <= 1.0
    assert img.max() > 0.5  # there is actual ink


def test_render_digit_bad_class(rng):
    with pytest.raises(ConfigError):
        render_digit(10, rng)


def test_synth_mnist_batch(rng):
    images, labels = synth_mnist(30, rng)
    assert images.shape == (30, 28, 28)
    assert labels.shape == (30,)
    assert labels.min() >= 0 and labels.max() <= 9


def test_synth_mnist_classes_are_distinct():
    """Within-class pixel distance must be smaller than between-class."""
    rng = np.random.default_rng(0)
    imgs_a = np.stack([render_digit(2, rng) for _ in range(8)])
    imgs_b = np.stack([render_digit(7, rng) for _ in range(8)])
    intra = np.abs(imgs_a - imgs_a.mean(0)).mean()
    inter = np.abs(imgs_a.mean(0) - imgs_b.mean(0)).mean()
    assert inter > intra


def test_prototype_batch_quantized_variation(rng):
    images, labels = prototype_digit_batch(200, rng, noise=0.0)
    cols = binarize(images_to_columns(images))
    unique = len({cols[:, j].tobytes() for j in range(200)})
    # 10 classes x 25 integer shifts bounds the input diversity
    assert unique <= 250


def test_prototype_batch_same_shift_same_image(rng):
    images, labels = prototype_digit_batch(300, rng, noise=0.0)
    # at 300 draws over <=250 patterns, duplicates must exist
    keys = {}
    dup = 0
    for i in range(300):
        k = images[i].tobytes()
        dup += k in keys
        keys[k] = i
    assert dup > 0


# ----------------------------------------------------------- synth cifar
def test_synth_cifar_batch(rng):
    images, labels = synth_cifar(12, rng)
    assert images.shape == (12, 3, 32, 32)
    assert images.min() >= 0 and images.max() <= 1
    assert labels.shape == (12,)


def test_synth_cifar_classes_differ(rng):
    a, _ = synth_cifar(1, np.random.default_rng(0))
    # same class renders look alike, different class differ more
    rng1, rng2 = np.random.default_rng(1), np.random.default_rng(2)
    from repro.data.synth_cifar import _render

    same = np.abs(_render(0, rng1, 32) - _render(0, rng2, 32)).mean()
    diff = np.abs(_render(0, rng1, 32) - _render(5, rng2, 32)).mean()
    assert diff > same


# --------------------------------------------------------------- resize
def test_resize_identity():
    imgs = np.random.default_rng(0).random((3, 8, 8)).astype(np.float32)
    out = bilinear_resize(imgs, 8)
    assert np.allclose(out, imgs)
    out[0, 0, 0] = 99  # must be a copy
    assert imgs[0, 0, 0] != 99


def test_resize_constant_image_stays_constant():
    imgs = np.full((2, 10, 10), 0.7, dtype=np.float32)
    out = bilinear_resize(imgs, 23)
    assert np.allclose(out, 0.7, atol=1e-6)


def test_resize_preserves_linear_ramp():
    # bilinear interpolation reproduces a linear function exactly
    ramp = np.linspace(0, 1, 8)[None, None, :].repeat(8, axis=1)
    out = bilinear_resize(ramp, 15)
    expected = np.linspace(0, 1, 15)
    assert np.allclose(out[0, 3], expected, atol=1e-6)


def test_resize_upscale_shape():
    imgs = np.random.default_rng(0).random((2, 28, 28))
    assert bilinear_resize(imgs, 32).shape == (2, 32, 32)
    assert bilinear_resize(imgs, 12).shape == (2, 12, 12)


def test_resize_validation():
    with pytest.raises(ShapeError):
        bilinear_resize(np.zeros((4, 4)), 8)
    with pytest.raises(ConfigError):
        bilinear_resize(np.zeros((1, 4, 4)), 0)


# --------------------------------------------------------------- loader
def test_images_to_columns_layout():
    imgs = np.arange(24).reshape(2, 3, 4).astype(np.float32)
    cols = images_to_columns(imgs)
    assert cols.shape == (12, 2)
    assert np.array_equal(cols[:, 0], imgs[0].ravel())
    assert np.array_equal(cols[:, 1], imgs[1].ravel())


def test_binarize_threshold():
    x = np.array([0.2, 0.5, 0.8])
    assert list(binarize(x)) == [0.0, 0.0, 1.0]
    assert list(binarize(x, threshold=0.1)) == [1.0, 1.0, 1.0]


def test_dataset_validation_and_batches(rng):
    with pytest.raises(ShapeError):
        Dataset(np.zeros((3, 2, 2)), np.zeros(4))
    ds = Dataset(np.arange(10)[:, None].astype(float), np.arange(10))
    batches = list(ds.batches(4))
    assert [len(b) for b in batches] == [4, 4, 2]
    with pytest.raises(ConfigError):
        list(ds.batches(0))


def test_shuffled_preserves_pairs(rng):
    ds = Dataset(np.arange(20)[:, None].astype(float), np.arange(20))
    sh = ds.shuffled(rng)
    assert sorted(sh.labels) == list(range(20))
    assert (sh.images[:, 0] == sh.labels).all()  # pairing intact


def test_train_test_split(rng):
    ds = Dataset(np.zeros((100, 2)), np.zeros(100, dtype=int))
    train, test = train_test_split(ds, 0.25, rng)
    assert len(train) == 75 and len(test) == 25
    with pytest.raises(ConfigError):
        train_test_split(ds, 1.5, rng)
