"""Gradient checks and semantics for the NN layers."""

import numpy as np
import pytest

from repro.errors import ConfigError, ShapeError
from repro.nn import (
    BoundedReLU,
    Conv2d,
    Dense,
    Flatten,
    MaxPool2d,
    SparseLinear,
)


def numeric_grad(f, x, eps=1e-4):
    """Central-difference gradient of scalar f wrt array x."""
    g = np.zeros_like(x, dtype=np.float64)
    it = np.nditer(x, flags=["multi_index"])
    while not it.finished:
        idx = it.multi_index
        orig = x[idx]
        x[idx] = orig + eps
        hi = f()
        x[idx] = orig - eps
        lo = f()
        x[idx] = orig
        g[idx] = (hi - lo) / (2 * eps)
        it.iternext()
    return g


def check_layer_gradients(layer, x, atol=2e-2):
    """Backprop gradients must match finite differences (input + params)."""
    rng = np.random.default_rng(0)
    out = layer.forward(x, train=True)
    upstream = rng.standard_normal(out.shape).astype(np.float32)

    def loss():
        return float((layer.forward(x) * upstream).sum())

    for p in layer.params():
        p.zero_grad()
    grad_in = layer.backward(upstream)
    # re-prime the cache that backward consumed
    layer.forward(x, train=True)

    num_in = numeric_grad(loss, x)
    assert np.allclose(grad_in, num_in, atol=atol), "input gradient mismatch"
    for p in layer.params():
        num_p = numeric_grad(loss, p.value)
        assert np.allclose(p.grad, num_p, atol=atol), f"{p.name} gradient mismatch"


def test_dense_gradients(rng):
    layer = Dense(5, 4, rng)
    x = rng.standard_normal((3, 5)).astype(np.float32)
    check_layer_gradients(layer, x)


def test_dense_shape_error(rng):
    with pytest.raises(ShapeError):
        Dense(5, 4, rng).forward(np.zeros((3, 6), dtype=np.float32))


def test_backward_before_forward_raises(rng):
    layer = Dense(3, 3, rng)
    with pytest.raises(ConfigError):
        layer.backward(np.zeros((2, 3), dtype=np.float32))


def test_sparse_linear_gradients_respect_mask(rng):
    layer = SparseLinear(6, 5, density=0.5, rng=rng)
    x = rng.standard_normal((4, 6)).astype(np.float32)
    upstream = rng.standard_normal((4, 5)).astype(np.float32)

    def loss():
        return float((layer.forward(x) * upstream).sum())

    layer.forward(x, train=True)
    layer.weight.zero_grad()
    grad_in = layer.backward(upstream)
    num_in = numeric_grad(loss, x)
    assert np.allclose(grad_in, num_in, atol=2e-2)
    # analytic weight gradient equals the masked projection of the numeric one
    num_w = numeric_grad(loss, layer.weight.value)
    assert np.allclose(layer.weight.grad, num_w * layer.mask, atol=2e-2)
    # masked weights stay exactly zero and receive zero gradient
    off = layer.mask == 0
    assert (layer.weight.value[off] == 0).all()
    assert (layer.weight.grad[off] == 0).all()


def test_sparse_linear_density_property(rng):
    layer = SparseLinear(50, 40, density=0.55, rng=rng)
    assert 0.4 <= layer.density <= 0.7
    with pytest.raises(ConfigError):
        SparseLinear(4, 4, density=0.0, rng=rng)


def test_sparse_linear_no_dead_outputs(rng):
    # even at tiny density every output must keep >= 1 input connection
    layer = SparseLinear(30, 30, density=0.02, rng=rng)
    assert (layer.mask.sum(axis=0) >= 1).all()


def test_bounded_relu_forward_and_grad(rng):
    act = BoundedReLU(1.0)
    x = np.array([[-0.5, 0.3, 2.0]], dtype=np.float32)
    out = act.forward(x, train=True)
    assert list(out[0]) == [0.0, pytest.approx(0.3), 1.0]
    grad = act.backward(np.ones_like(x))
    assert list(grad[0]) == [0.0, 1.0, 0.0]  # zero grad in both clipped regions
    with pytest.raises(ConfigError):
        BoundedReLU(0.0)


def test_flatten_roundtrip(rng):
    f = Flatten()
    x = rng.random((2, 3, 4, 5)).astype(np.float32)
    out = f.forward(x, train=True)
    assert out.shape == (2, 60)
    back = f.backward(out)
    assert back.shape == x.shape


def test_conv2d_gradients(rng):
    layer = Conv2d(2, 3, kernel=3, rng=rng, padding=1)
    x = rng.standard_normal((2, 2, 5, 5)).astype(np.float32)
    check_layer_gradients(layer, x, atol=5e-2)


def test_conv2d_matches_direct_convolution(rng):
    layer = Conv2d(1, 1, kernel=3, rng=rng, padding=1)
    x = rng.standard_normal((1, 1, 6, 6)).astype(np.float32)
    out = layer.forward(x)
    # brute-force same-padding convolution
    k = layer.weight.value.reshape(1, 3, 3)
    pad = np.pad(x[0, 0], 1)
    expected = np.zeros((6, 6))
    for i in range(6):
        for j in range(6):
            expected[i, j] = (pad[i : i + 3, j : j + 3] * k[0]).sum() + layer.bias.value[0]
    assert np.allclose(out[0, 0], expected, atol=1e-4)


def test_conv2d_shape_error(rng):
    with pytest.raises(ShapeError):
        Conv2d(1, 1, 3, rng).forward(np.zeros((2, 4), dtype=np.float32))


def test_maxpool_forward_and_routing(rng):
    pool = MaxPool2d()
    x = np.zeros((1, 1, 4, 4), dtype=np.float32)
    x[0, 0, 1, 1] = 5.0  # window (0,0)
    x[0, 0, 2, 3] = 7.0  # window (1,1)
    out = pool.forward(x, train=True)
    assert out[0, 0, 0, 0] == 5.0 and out[0, 0, 1, 1] == 7.0
    grad = pool.backward(np.ones_like(out))
    assert grad[0, 0, 1, 1] == 1.0 and grad[0, 0, 2, 3] == 1.0
    assert grad.sum() == 4.0  # one routed gradient per window


def test_maxpool_tie_routes_single_gradient():
    pool = MaxPool2d()
    x = np.ones((1, 1, 2, 2), dtype=np.float32)  # all tied
    pool.forward(x, train=True)
    grad = pool.backward(np.ones((1, 1, 1, 1), dtype=np.float32))
    assert grad.sum() == 1.0  # exactly one winner


def test_maxpool_odd_dims_rejected():
    with pytest.raises(ShapeError):
        MaxPool2d().forward(np.zeros((1, 1, 5, 4), dtype=np.float32))


def test_maxpool_gradients(rng):
    pool = MaxPool2d()
    x = rng.standard_normal((2, 2, 4, 4)).astype(np.float32)
    check_layer_gradients(pool, x)
