"""End-to-end SNICIT pipeline behavior."""

import numpy as np
import pytest

from repro.baselines import DenseReference
from repro.core import SNICIT, SNICITConfig
from repro.errors import ConfigError
from repro.radixnet import build_benchmark, benchmark_input


@pytest.fixture(scope="module")
def bench():
    net = build_benchmark("144-24", seed=0)
    y0 = benchmark_input(net, 200, seed=1)
    ref = DenseReference(net).infer(y0)
    return net, y0, ref


def test_lossless_without_pruning(bench):
    net, y0, ref = bench
    cfg = SNICITConfig(threshold_layer=8, prune_threshold=0.0)
    res = SNICIT(net, cfg).infer(y0)
    # float accumulation order differs between kernels; tolerance is tight
    assert np.allclose(res.y, ref.y, atol=1e-2)
    assert (res.categories == ref.categories).all()


def test_categories_match_with_default_pruning(bench):
    net, y0, ref = bench
    res = SNICIT(net, SNICITConfig(threshold_layer=8)).infer(y0)
    assert (res.categories == ref.categories).all()


def test_stage_names_and_timing(bench):
    net, y0, _ = bench
    res = SNICIT(net, SNICITConfig(threshold_layer=8)).infer(y0)
    assert set(res.stage_seconds) == {
        "pre_convergence", "conversion", "post_convergence", "recovery",
    }
    assert res.total_seconds > 0
    assert len(res.layer_seconds) == net.num_layers
    assert set(res.modeled) == set(res.stage_seconds)
    assert res.modeled_seconds > 0


def test_threshold_zero_converts_input(bench):
    net, y0, ref = bench
    res = SNICIT(net, SNICITConfig(threshold_layer=0, prune_threshold=0.0)).infer(y0)
    assert (res.categories == ref.categories).all()
    assert res.stage_seconds["pre_convergence"] < res.stage_seconds["post_convergence"]


def test_threshold_at_depth_is_plain_feedforward(bench):
    net, y0, ref = bench
    res = SNICIT(net, SNICITConfig(threshold_layer=net.num_layers)).infer(y0)
    assert np.allclose(res.y, ref.y, atol=1e-3)
    assert res.stats["n_centroids"] == 0


def test_degenerate_threshold_skips_stages_2_to_4(bench):
    """Regression: with threshold_layer == num_layers the engine used to
    sample, prune, convert, and charge conversion kernels, then discard the
    result.  Stages 2-4 must be skipped entirely: output bitwise equal to the
    shared-kernel feed-forward, only pre-convergence kernels charged."""
    from repro.baselines import XY2021
    from repro.gpu.device import VirtualDevice

    net, y0, _ = bench
    dev = VirtualDevice()
    res = SNICIT(net, SNICITConfig(threshold_layer=net.num_layers), device=dev).infer(y0)
    ff = XY2021(net).infer(y0)
    assert np.array_equal(res.y, ff.y)  # bitwise: same kernels, same order

    assert res.stats["n_centroids"] == 0
    assert len(res.stats["centroid_cols"]) == 0
    assert len(res.stats["active_columns_trace"]) == 0

    # cost model saw nothing but pre-convergence spMM kernels
    assert {c.name for c in dev.cost.history} == {"pre_spmm"}
    for stage in ("conversion", "post_convergence", "recovery"):
        assert res.stage_seconds[stage] == 0.0
        snap = res.modeled[stage]
        assert snap.launches == 0 and snap.flops == 0 and snap.bytes_total == 0
    # the stage-key contract is unchanged
    assert set(res.stage_seconds) == {
        "pre_convergence", "conversion", "post_convergence", "recovery",
    }


def test_threshold_clamped_to_depth(bench):
    net, y0, ref = bench
    cfg = SNICITConfig(threshold_layer=10_000)
    engine = SNICIT(net, cfg)
    assert engine.config.threshold_layer == net.num_layers
    res = engine.infer(y0)
    assert (res.categories == ref.categories).all()


def test_active_columns_never_increase(bench):
    net, y0, _ = bench
    res = SNICIT(net, SNICITConfig(threshold_layer=8)).infer(y0)
    trace = res.stats["active_columns_trace"]
    assert len(trace) == net.num_layers - 8
    assert (np.diff(trace) <= 0).all()


def test_stats_fields(bench):
    net, y0, _ = bench
    res = SNICIT(net, SNICITConfig(threshold_layer=8, sample_size=16)).infer(y0)
    assert 1 <= res.stats["n_centroids"] <= 16
    assert len(res.stats["centroid_cols"]) == res.stats["n_centroids"]
    assert res.stats["threshold_layer"] == 8


def test_downsampling_disabled_matches_categories(bench):
    net, y0, ref = bench
    cfg = SNICITConfig(threshold_layer=8, downsample_dim=None)
    res = SNICIT(net, cfg).infer(y0)
    assert (res.categories == ref.categories).all()


def test_ne_idx_interval_slows_refresh_but_keeps_output(bench):
    net, y0, ref = bench
    lazy = SNICIT(net, SNICITConfig(threshold_layer=8, ne_idx_interval=50)).infer(y0)
    eager = SNICIT(net, SNICITConfig(threshold_layer=8, ne_idx_interval=1)).infer(y0)
    assert np.allclose(lazy.y, eager.y, atol=1e-4)
    # the lazy engine processes at least as many columns per layer
    assert (lazy.stats["active_columns_trace"] >= eager.stats["active_columns_trace"]).all()


def test_config_validation():
    with pytest.raises(ConfigError):
        SNICITConfig(threshold_layer=-1)
    with pytest.raises(ConfigError):
        SNICITConfig(threshold_layer=1, sample_size=0)
    with pytest.raises(ConfigError):
        SNICITConfig(threshold_layer=1, downsample_dim=0)
    with pytest.raises(ConfigError):
        SNICITConfig(threshold_layer=1, eta=-0.1)
    with pytest.raises(ConfigError):
        SNICITConfig(threshold_layer=1, prune_threshold=-1)
    with pytest.raises(ConfigError):
        SNICITConfig(threshold_layer=1, ne_idx_interval=0)


def test_for_network_returns_same_object_when_valid():
    cfg = SNICITConfig(threshold_layer=5)
    assert cfg.for_network(10) is cfg
    clamped = cfg.for_network(3)
    assert clamped.threshold_layer == 3
    assert clamped.sample_size == cfg.sample_size


def test_nonsquare_post_convergence_layer_rejected(rng):
    """Residue arithmetic needs a fixed width after t; the engine must say so
    up front instead of crashing mid-inference."""
    from repro.network import LayerSpec, SparseNetwork
    from repro.sparse import CSRMatrix

    layers = [
        LayerSpec(CSRMatrix.from_dense(rng.random((8, 8)))),
        LayerSpec(CSRMatrix.from_dense(rng.random((6, 8)))),  # shape change
        LayerSpec(CSRMatrix.from_dense(rng.random((6, 6)))),
    ]
    net = SparseNetwork(layers, ymax=1.0)
    with pytest.raises(ConfigError, match="square"):
        SNICIT(net, SNICITConfig(threshold_layer=1))
    # a threshold after the shape change is fine
    SNICIT(net, SNICITConfig(threshold_layer=2))
    # auto mode could fire anywhere, so it must also be rejected
    with pytest.raises(ConfigError, match="square"):
        SNICIT(net, SNICITConfig(threshold_layer=3, auto_threshold=True))
