"""Tests for the scrapeable obs endpoint (repro.obs.http)."""

import json
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.obs import MetricsRegistry, ObsServer
from repro.obs.http import PROMETHEUS_CONTENT_TYPE


def scrape(server, path):
    with urllib.request.urlopen(f"{server.url}{path}", timeout=5.0) as resp:
        return resp.status, resp.headers.get("Content-Type"), resp.read().decode()


@pytest.fixture
def registry():
    reg = MetricsRegistry()
    reg.counter("requests_total", help="requests seen").inc(3)
    reg.window("latency_seconds", help="windowed latency").observe(0.01, columns=2)
    return reg


def test_healthz_and_index(registry):
    with ObsServer(registry) as server:
        assert server.port != 0  # ephemeral port resolved from the socket
        status, ctype, body = scrape(server, "/healthz")
        assert status == 200 and body == "ok\n"
        status, _, body = scrape(server, "/")
        assert status == 200 and "/metrics" in body


def test_metrics_renders_prometheus_text(registry):
    with ObsServer(registry) as server:
        status, ctype, body = scrape(server, "/metrics")
        assert status == 200
        assert ctype == PROMETHEUS_CONTENT_TYPE
        assert "# TYPE requests_total counter" in body
        assert "requests_total 3" in body
        assert "# TYPE latency_seconds summary" in body
        assert 'latency_seconds{quantile="0.99"}' in body


def test_slo_without_provider_is_empty_json(registry):
    with ObsServer(registry) as server:
        status, ctype, body = scrape(server, "/slo")
        assert status == 200 and ctype == "application/json"
        assert json.loads(body) == {}


def test_slo_provider_is_evaluated_per_scrape(registry):
    state = {"n": 0}

    def provider():
        state["n"] += 1
        # numpy scalars must survive the json_safe path, not crash the scrape
        return {"a": {"burn_rate": np.float64(0.5), "scrapes": state["n"]}}

    with ObsServer(registry, slo_provider=provider) as server:
        first = json.loads(scrape(server, "/slo")[2])
        second = json.loads(scrape(server, "/slo")[2])
    assert first["a"]["burn_rate"] == 0.5
    assert second["a"]["scrapes"] == first["a"]["scrapes"] + 1


def test_slo_payload_is_strictly_finite_on_idle_window(registry):
    """Satellite regression: burn math on an idle (rotated-empty) window
    used to leak NaN/inf into the /slo JSON.  The payload must parse under
    a strict-finite decoder — json.dumps happily emits bare ``NaN`` tokens,
    so only rejecting the constants proves the clamp."""
    from repro.obs import SloPolicy, SloTracker

    class Clock:
        t = 50.0

        def __call__(self):
            return self.t

    clock = Clock()
    tracker = SloTracker(SloPolicy.parse("p99<10ms@5s/99%"), clock=clock)
    tracker.record(1.0)  # one breach, then the window rotates empty
    clock.t += 6.0

    def reject_constants(token):
        raise AssertionError(f"non-finite {token!r} leaked into /slo JSON")

    provider = lambda: {"a": tracker.report().to_json()}  # noqa: E731
    with ObsServer(registry, slo_provider=provider) as server:
        status, _, body = scrape(server, "/slo")
    assert status == 200
    payload = json.loads(body, parse_constant=reject_constants)
    assert payload["a"]["burn_rate"] == 0.0
    assert payload["a"]["budget_remaining"] == 1.0
    assert payload["a"]["compliant"] is True


def test_slo_provider_error_renders_as_body_not_crash(registry):
    def provider():
        raise RuntimeError("reporter wedged")

    with ObsServer(registry, slo_provider=provider) as server:
        status, _, body = scrape(server, "/slo")
        assert status == 200  # the process is alive; the reporter is not
        assert json.loads(body)["error"] == "RuntimeError: reporter wedged"
        # ...and the liveness path is unaffected
        assert scrape(server, "/healthz")[0] == 200


def test_healthz_provider_flips_readiness_status(registry):
    state = {"healthy": True, "workers": 2, "dead_workers": []}

    with ObsServer(registry, health_provider=lambda: dict(state)) as server:
        status, ctype, body = scrape(server, "/healthz")
        assert status == 200 and ctype == "application/json"
        assert json.loads(body)["healthy"] is True
        # degraded: the endpoint must answer 503 with the diagnostic payload
        state["healthy"] = False
        state["dead_workers"] = [1]
        with pytest.raises(urllib.error.HTTPError) as exc_info:
            scrape(server, "/healthz")
        assert exc_info.value.code == 503
        payload = json.loads(exc_info.value.read().decode())
        assert payload["healthy"] is False
        assert payload["dead_workers"] == [1]
        # recovery flips it back without restarting the server
        state["healthy"] = True
        state["dead_workers"] = []
        assert scrape(server, "/healthz")[0] == 200


def test_healthz_provider_error_falls_back_to_liveness(registry):
    def provider():
        raise RuntimeError("health reporter wedged")

    with ObsServer(registry, health_provider=provider) as server:
        status, _, body = scrape(server, "/healthz")
        # the probe answers for this process; a broken reporter must not
        # fake a dead one
        assert status == 200 and body == "ok\n"


def test_unknown_path_is_404(registry):
    with ObsServer(registry) as server:
        with pytest.raises(urllib.error.HTTPError) as exc_info:
            scrape(server, "/nope")
        assert exc_info.value.code == 404


def test_query_strings_are_ignored_in_routing(registry):
    with ObsServer(registry) as server:
        assert scrape(server, "/healthz?probe=1")[0] == 200


def test_close_stops_accepting_scrapes(registry):
    server = ObsServer(registry)
    url = server.url
    assert scrape(server, "/healthz")[0] == 200
    server.close()
    with pytest.raises((urllib.error.URLError, ConnectionError, OSError)):
        urllib.request.urlopen(f"{url}/healthz", timeout=1.0)
