"""Loss, optimizers, and the Sequential training loop."""

import numpy as np
import pytest

from repro.data.loader import Dataset
from repro.errors import ConfigError, ShapeError
from repro.nn import Adam, BoundedReLU, Dense, SGD, Sequential, accuracy
from repro.nn.loss import softmax, softmax_cross_entropy
from repro.nn.params import Param


# ------------------------------------------------------------------ loss
def test_softmax_rows_sum_to_one(rng):
    p = softmax(rng.standard_normal((5, 7)))
    assert np.allclose(p.sum(axis=1), 1.0)
    assert (p > 0).all()


def test_softmax_is_shift_invariant(rng):
    z = rng.standard_normal((3, 4))
    assert np.allclose(softmax(z), softmax(z + 1000.0))


def test_cross_entropy_perfect_prediction_near_zero():
    logits = np.array([[100.0, 0.0], [0.0, 100.0]])
    loss, grad = softmax_cross_entropy(logits, np.array([0, 1]))
    assert loss < 1e-6
    assert np.allclose(grad, 0.0, atol=1e-6)


def test_cross_entropy_uniform_is_log_k():
    logits = np.zeros((4, 10))
    loss, _ = softmax_cross_entropy(logits, np.zeros(4, dtype=int))
    assert loss == pytest.approx(np.log(10), rel=1e-5)


def test_cross_entropy_gradient_matches_numeric(rng):
    logits = rng.standard_normal((3, 5))
    labels = np.array([1, 4, 0])
    _, grad = softmax_cross_entropy(logits.copy(), labels)
    eps = 1e-5
    for i in range(3):
        for j in range(5):
            up = logits.copy()
            up[i, j] += eps
            down = logits.copy()
            down[i, j] -= eps
            num = (softmax_cross_entropy(up, labels)[0]
                   - softmax_cross_entropy(down, labels)[0]) / (2 * eps)
            assert grad[i, j] == pytest.approx(num, abs=1e-4)


def test_cross_entropy_shape_error():
    with pytest.raises(ShapeError):
        softmax_cross_entropy(np.zeros((3, 2)), np.zeros(4, dtype=int))


# ------------------------------------------------------------- optimizers
def test_sgd_step():
    p = Param(np.array([1.0, 2.0]))
    p.grad[:] = [0.5, -0.5]
    SGD([p], lr=0.1).step()
    assert np.allclose(p.value, [0.95, 2.05])


def test_sgd_momentum_accumulates():
    p = Param(np.array([0.0]))
    opt = SGD([p], lr=1.0, momentum=0.9)
    p.grad[:] = 1.0
    opt.step()
    first = p.value.copy()
    opt.zero_grad()
    p.grad[:] = 1.0
    opt.step()
    assert (p.value - first) < first  # velocity grows the second step downward
    assert p.value < first


def test_adam_first_step_is_lr_sized():
    p = Param(np.array([0.0]))
    opt = Adam([p], lr=0.01)
    p.grad[:] = 123.0
    opt.step()
    # bias-corrected Adam's first step magnitude ~= lr regardless of grad scale
    assert abs(p.value[0] + 0.01) < 1e-6


def test_adam_converges_on_quadratic():
    p = Param(np.array([5.0]))
    opt = Adam([p], lr=0.1)
    for _ in range(500):
        opt.zero_grad()
        p.grad[:] = 2 * p.value  # d/dx x^2
        opt.step()
    assert abs(p.value[0]) < 1e-2


def test_optimizer_validation():
    with pytest.raises(ConfigError):
        Adam([], lr=-1)
    with pytest.raises(ConfigError):
        Adam([], beta1=1.5)
    with pytest.raises(ConfigError):
        SGD([], lr=0)


# ------------------------------------------------------------- sequential
def _toy_problem(rng, n=200):
    """Two linearly separable 2-D blobs."""
    x = rng.standard_normal((n, 2)).astype(np.float32)
    labels = (x[:, 0] + x[:, 1] > 0).astype(np.int64)
    x[labels == 1] += 1.5
    return Dataset(x, labels)


def test_sequential_training_learns(rng):
    ds = _toy_problem(rng)
    model = Sequential([Dense(2, 16, rng), BoundedReLU(5.0), Dense(16, 2, rng)])
    report = model.fit(ds, epochs=30, rng=rng, lr=0.01, batch_size=32)
    assert report.losses[-1] < report.losses[0] * 0.5
    assert model.evaluate(ds) > 0.9


def test_sequential_predict_chunks_match(rng):
    ds = _toy_problem(rng, n=50)
    model = Sequential([Dense(2, 4, rng), Dense(4, 2, rng)])
    whole = model.predict(ds.images, batch_size=64)
    chunked = model.predict(ds.images, batch_size=7)
    assert np.allclose(whole, chunked, atol=1e-5)


def test_sequential_needs_layers():
    with pytest.raises(ConfigError):
        Sequential([])


def test_accuracy_helper():
    logits = np.array([[1.0, 0.0], [0.0, 1.0], [1.0, 0.0]])
    assert accuracy(logits, np.array([0, 1, 1])) == pytest.approx(2 / 3)
