"""Unit tests for the observability subsystem (repro.obs)."""

import json

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.obs import (
    NULL_TRACER,
    MetricsRegistry,
    Tracer,
    as_tracer,
    json_safe,
    setup_logging,
)


# ------------------------------------------------------------------- tracer
def test_tracer_nests_spans_and_tracks_parenthood():
    tracer = Tracer()
    with tracer.span("request", cat="request") as req:
        with tracer.span("stage", cat="stage") as stage:
            with tracer.span("kernel", cat="kernel") as kernel:
                pass
    assert req.parent is None
    assert stage.parent is req
    assert kernel.parent is stage
    assert tracer.roots() == [req]
    assert req.children == [stage]
    assert all(s.closed for s in tracer.spans)
    assert req.duration >= stage.duration >= kernel.duration >= 0


def test_tracer_sibling_spans_share_parent():
    tracer = Tracer()
    with tracer.span("root"):
        with tracer.span("a"):
            pass
        with tracer.span("b"):
            pass
    root = tracer.roots()[0]
    assert [s.name for s in root.children] == ["a", "b"]


def test_chrome_export_is_valid_json_with_microsecond_spans():
    tracer = Tracer()
    with tracer.span("work", cat="stage", layer=3):
        pass
    tracer.event("tick", k=1)
    tracer.begin_async("request", 7, columns=4)
    tracer.end_async("request", 7)
    chrome = tracer.to_chrome()
    text = json.dumps(chrome)  # must not raise
    parsed = json.loads(text)
    events = parsed["traceEvents"]
    span_events = [e for e in events if e["ph"] == "X"]
    assert len(span_events) == 1
    ev = span_events[0]
    assert ev["name"] == "work" and ev["cat"] == "stage"
    assert isinstance(ev["ts"], float) and isinstance(ev["dur"], float)
    assert ev["args"]["layer"] == 3
    phases = {e["ph"] for e in events}
    assert {"M", "X", "i", "b", "e"} <= phases


def test_span_charge_links_kernel_cost_and_utilization():
    from repro.gpu.costmodel import KernelCharge

    tracer = Tracer()
    with tracer.span("k", cat="kernel") as span:
        span.charge(KernelCharge(name="spmm", flops=100.0, bytes_read=10.0), 0.5)
    ev = next(e for e in tracer.iter_events() if e["ph"] == "X")
    assert ev["args"]["kernel"] == "spmm"
    assert ev["args"]["flops"] == 100.0
    assert ev["args"]["modeled_seconds"] == 0.5
    assert ev["args"]["modeled_vs_wall"] > 0  # wall duration was tiny but > 0


def test_jsonl_export_one_object_per_line():
    tracer = Tracer()
    with tracer.span("a"):
        pass
    tracer.event("b")
    lines = tracer.to_jsonl().splitlines()
    assert len(lines) == 2
    for line in lines:
        json.loads(line)


def test_jsonl_write_roundtrip(tmp_path):
    tracer = Tracer()
    with tracer.span("a", cat="stage"):
        pass
    path = tracer.write_jsonl(tmp_path / "t.jsonl")
    rows = [json.loads(x) for x in path.read_text().splitlines()]
    assert rows[0]["name"] == "a"


def test_null_tracer_records_nothing_and_costs_nothing():
    tracer = as_tracer(None)
    assert tracer is NULL_TRACER
    with tracer.span("x", cat="request", huge=list(range(100))) as s:
        s.set(a=1).charge(None)
    tracer.event("e")
    tracer.begin_async("r", 1)
    tracer.end_async("r", 1)
    assert tracer.spans == ()
    assert tracer.events == ()
    # one shared span object: no per-call allocation of spans
    assert tracer.span("y") is tracer.span("z")


def test_tracer_find_filters_by_cat_and_name():
    tracer = Tracer()
    with tracer.span("a", cat="stage"):
        with tracer.span("b", cat="kernel"):
            pass
    assert [s.name for s in tracer.find(cat="kernel")] == ["b"]
    assert [s.name for s in tracer.find(name="a")] == ["a"]


# ------------------------------------------------------------------ metrics
def test_counter_and_gauge_basics():
    reg = MetricsRegistry()
    c = reg.counter("requests_total", help="requests")
    c.inc()
    c.inc(2)
    assert c.value == 3
    assert reg.counter("requests_total") is c  # get-or-create
    g = reg.gauge("depth")
    g.set(5)
    g.set_max(3)
    assert g.value == 5
    g.set_max(9)
    assert g.value == 9


def test_counter_rejects_negative_increments():
    reg = MetricsRegistry()
    with pytest.raises(ConfigError):
        reg.counter("c").inc(-1)


def test_metric_kind_collision_rejected():
    reg = MetricsRegistry()
    reg.counter("x_total")
    with pytest.raises(ConfigError):
        reg.gauge("x_total")


def test_labels_create_distinct_series():
    reg = MetricsRegistry()
    a = reg.counter("strategy_total", strategy="ell")
    b = reg.counter("strategy_total", strategy="masked")
    assert a is not b
    a.inc()
    snap = reg.snapshot()
    assert snap['strategy_total{strategy="ell"}'] == 1.0
    assert snap['strategy_total{strategy="masked"}'] == 0.0


def test_histogram_buckets_are_cumulative():
    reg = MetricsRegistry()
    h = reg.histogram("lat", buckets=(0.1, 1.0))
    for v in (0.05, 0.5, 0.7, 5.0):
        h.observe(v)
    assert h.count == 4
    assert h.sum == pytest.approx(6.25)
    assert h.cumulative() == [("0.1", 1), ("1", 3), ("+Inf", 4)]
    assert h.mean == pytest.approx(6.25 / 4)


def test_prometheus_exposition_format():
    reg = MetricsRegistry()
    reg.counter("reqs_total", help="total requests").inc(7)
    reg.gauge("queue_depth").set(3)
    reg.histogram("fill", buckets=(0.5, 1.0), reason="full").observe(0.75)
    text = reg.to_prometheus()
    assert "# HELP reqs_total total requests" in text
    assert "# TYPE reqs_total counter" in text
    assert "reqs_total 7.0" in text
    assert "# TYPE queue_depth gauge" in text
    assert 'fill_bucket{reason="full",le="+Inf"} 1' in text
    assert 'fill_count{reason="full"} 1' in text


def test_prometheus_label_values_are_escaped():
    reg = MetricsRegistry()
    # tenant names come from CLI input: quotes, backslashes, and newlines
    # must not corrupt the exposition
    reg.counter("req_total", model='evil"name').inc()
    reg.counter("req_total", model="back\\slash").inc()
    reg.counter("req_total", model="new\nline").inc()
    text = reg.to_prometheus()
    assert 'req_total{model="evil\\"name"} 1.0' in text
    assert 'req_total{model="back\\\\slash"} 1.0' in text
    assert 'req_total{model="new\\nline"} 1.0' in text
    assert "\nline" not in text.replace("\\nline", "")  # no raw newline leaks


def test_prometheus_help_is_escaped_and_one_type_block_per_name():
    reg = MetricsRegistry()
    reg.counter("a_total", help="first\nline with back\\slash", k="1").inc()
    reg.counter("a_total", k="2").inc()
    text = reg.to_prometheus()
    assert "# HELP a_total first\\nline with back\\\\slash" in text
    # two series of one name share a single HELP/TYPE block
    assert text.count("# TYPE a_total counter") == 1
    assert text.count("# HELP a_total") == 1


def test_prometheus_histogram_buckets_are_monotone_and_consistent():
    reg = MetricsRegistry()
    h = reg.histogram("lat_seconds", buckets=(0.001, 0.01, 0.1, 1.0))
    values = (0.0005, 0.005, 0.005, 0.05, 0.5, 5.0)
    for v in values:
        h.observe(v)
    text = reg.to_prometheus()
    counts = []
    for line in text.splitlines():
        if line.startswith("lat_seconds_bucket"):
            counts.append(int(line.rsplit(" ", 1)[1]))
    assert counts == sorted(counts), "cumulative buckets must be monotone"
    assert counts[-1] == len(values)  # +Inf bucket equals _count
    assert f"lat_seconds_count {len(values)}" in text
    assert f"lat_seconds_sum {sum(values)}" in text


def test_prometheus_window_exposes_summary_series():
    reg = MetricsRegistry()
    win = reg.window("tail_seconds", help="windowed tail", model="a")
    for v in (0.001, 0.002, 0.004, 0.5):
        win.observe(v)
    text = reg.to_prometheus()
    assert "# TYPE tail_seconds summary" in text
    # model label sorts before the synthetic quantile label
    assert 'tail_seconds{model="a",quantile="0.5"}' in text
    assert 'tail_seconds{model="a",quantile="0.99"}' in text
    assert 'tail_seconds_count{model="a"} 4' in text
    assert f'tail_seconds_sum{{model="a"}} {0.001 + 0.002 + 0.004 + 0.5}' in text
    # an idle window exposes no quantile samples but keeps _sum/_count
    reg2 = MetricsRegistry()
    reg2.window("idle_seconds")
    text2 = reg2.to_prometheus()
    assert "quantile=" not in text2
    assert "idle_seconds_count 0" in text2


def test_labeled_registry_window_forwards_geometry_and_labels():
    reg = MetricsRegistry()
    scoped = reg.labeled(model="t")
    win = scoped.window("w_seconds", window_s=10.0, slots=5, target=0.1, extra="x")
    assert win.window_s == 10.0 and win.slots == 5 and win.target == 0.1
    # get-or-create through the base registry lands on the same series
    assert reg.window("w_seconds", model="t", extra="x") is win
    win.observe(0.05)
    assert reg.snapshot()['w_seconds{extra="x",model="t"}']["count"] == 1


def test_snapshot_is_json_safe():
    reg = MetricsRegistry()
    reg.counter("a").inc()
    reg.histogram("h").observe(0.1)
    json.dumps(reg.snapshot())  # must not raise


def test_collect_callbacks_run_at_scrape_time():
    reg = MetricsRegistry()
    state = {"n": 0}
    gauge = reg.gauge("live")
    reg.on_collect(lambda _r: gauge.set(state["n"]))
    state["n"] = 42
    assert reg.snapshot()["live"] == 42.0


def test_registry_series_lookup():
    reg = MetricsRegistry()
    reg.counter("s_total", stage="pre").inc(2)
    reg.counter("s_total", stage="post").inc(3)
    series = dict((labels["stage"], m.value) for labels, m in reg.series("s_total"))
    assert series == {"pre": 2.0, "post": 3.0}


# ---------------------------------------------------------------- json_safe
def test_json_safe_converts_numpy_and_dataclasses():
    from repro.gpu.costmodel import CostSnapshot

    blob = {
        "arr": np.arange(3, dtype=np.int64),
        "scalar": np.float32(1.5),
        "snap": CostSnapshot(launches=2, flops=10.0),
        "nested": [np.bool_(True), (1, 2)],
    }
    safe = json_safe(blob)
    json.dumps(safe)  # must not raise
    assert safe["arr"] == [0, 1, 2]
    assert safe["scalar"] == 1.5
    assert safe["snap"]["launches"] == 2
    assert safe["nested"] == [True, [1, 2]]


def test_json_safe_falls_back_to_str_for_unknown_objects():
    class Weird:
        def __repr__(self):
            return "weird"

    assert json_safe({"w": Weird()}) == {"w": "weird"}


# ------------------------------------------------------------------ logging
def test_setup_logging_levels(capsys):
    import logging

    log = setup_logging()
    assert log.level == logging.INFO
    log.info("hello")
    assert "hello" in capsys.readouterr().out
    log = setup_logging(quiet=True)
    log.info("dropped")
    log.warning("kept")
    out = capsys.readouterr().out
    assert "dropped" not in out and "kept" in out
    log = setup_logging(verbose=True)
    log.debug("debugline")
    assert "debugline" in capsys.readouterr().out
    # no handler stacking on reconfiguration
    assert len(log.handlers) == 1


# -------------------------------------------------------------- concurrency
def test_metrics_no_lost_updates_from_two_threads():
    """Counters and histograms mutated from two threads must not drop
    updates: `value += x` is three bytecodes and races without the lock."""
    import threading

    registry = MetricsRegistry()
    counter = registry.counter("thr_total")
    gauge = registry.gauge("thr_gauge")
    hist = registry.histogram("thr_hist", buckets=(0.5, 1.0))
    rounds = 20_000

    def pound():
        for _ in range(rounds):
            counter.inc()
            gauge.inc()
            hist.observe(0.25)

    threads = [threading.Thread(target=pound) for _ in range(2)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(60)
    assert counter.value == 2 * rounds
    assert gauge.value == 2 * rounds
    snap = registry.snapshot()
    assert snap["thr_hist"]["count"] == 2 * rounds
    assert snap["thr_hist"]["buckets"]["0.5"] == 2 * rounds


def test_metrics_get_or_create_race_yields_one_series():
    """Two threads asking for the same (name, labels) must share one cell."""
    import threading

    registry = MetricsRegistry()
    seen = []
    barrier = threading.Barrier(2)

    def create():
        barrier.wait()
        for _ in range(1000):
            seen.append(registry.counter("race_total", shard="a"))

    threads = [threading.Thread(target=create) for _ in range(2)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(60)
    assert len({id(c) for c in seen}) == 1
    assert len(registry.series("race_total")) == 1


def test_tracer_nests_spans_per_thread():
    """Parenthood never crosses threads: each thread nests on its own stack,
    and the Chrome export tags each thread's spans with its own tid."""
    import threading

    tracer = Tracer()
    barrier = threading.Barrier(2)

    def traced_worker(name):
        barrier.wait()
        with tracer.span(f"{name}.outer", cat="test"):
            with tracer.span(f"{name}.inner", cat="test"):
                tracer.event(f"{name}.tick")

    threads = [
        threading.Thread(target=traced_worker, args=(n,), name=f"worker-{n}")
        for n in ("a", "b")
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join(60)

    spans = {s.name: s for s in tracer.spans}
    assert spans["a.inner"].parent is spans["a.outer"]
    assert spans["b.inner"].parent is spans["b.outer"]
    assert spans["a.outer"].parent is None and spans["b.outer"].parent is None
    assert spans["a.inner"].tid == spans["a.outer"].tid
    assert spans["b.inner"].tid == spans["b.outer"].tid
    assert spans["a.outer"].tid != spans["b.outer"].tid

    chrome = tracer.to_chrome()
    json.dumps(chrome)  # must not raise
    events = chrome["traceEvents"]
    thread_names = {
        e["tid"]: e["args"]["name"]
        for e in events
        if e["ph"] == "M" and e["name"] == "thread_name"
    }
    assert set(thread_names.values()) >= {"worker-a", "worker-b"}
    by_name = {e["name"]: e for e in events if e["ph"] == "X"}
    assert by_name["a.inner"]["tid"] == by_name["a.outer"]["tid"]
    assert by_name["b.inner"]["tid"] != by_name["a.inner"]["tid"]
    # instants carry their emitting thread too
    ticks = {e["name"]: e for e in events if e["ph"] == "i"}
    assert ticks["a.tick"]["tid"] == by_name["a.outer"]["tid"]


def test_tracer_concurrent_spans_all_recorded():
    import threading

    tracer = Tracer()
    per_thread = 200

    def burst(tag):
        for i in range(per_thread):
            with tracer.span(f"{tag}.{i}", cat="burst"):
                pass

    threads = [threading.Thread(target=burst, args=(t,)) for t in ("x", "y", "z")]
    for t in threads:
        t.start()
    for t in threads:
        t.join(60)
    assert len(tracer.spans) == 3 * per_thread
    assert all(s.closed for s in tracer.spans)
