"""Baseline engines: correctness vs reference and engine-specific behavior."""

import numpy as np
import pytest

from repro.baselines import BF2019, DenseReference, SNIG2020, XY2021
from repro.errors import ConfigError
from repro.radixnet import build_benchmark, benchmark_input


@pytest.fixture(scope="module")
def workload():
    net = build_benchmark("144-24", seed=0)
    y0 = benchmark_input(net, 150, seed=1)
    ref = DenseReference(net).infer(y0)
    return net, y0, ref


def test_all_baselines_match_reference(workload):
    net, y0, ref = workload
    for engine_cls in (BF2019, SNIG2020, XY2021):
        res = engine_cls(net).infer(y0)
        assert np.allclose(res.y, ref.y, atol=1e-3), engine_cls.__name__
        assert (res.categories == ref.categories).all(), engine_cls.__name__


def test_dense_reference_result_fields(workload):
    net, y0, ref = workload
    assert ref.y.shape == (net.output_dim, 150)
    assert len(ref.layer_seconds) == net.num_layers
    assert ref.stage_seconds["inference"] > 0
    assert ref.modeled["inference"].flops > 0


def test_bf_alive_trace_monotone(workload):
    net, y0, _ = workload
    res = BF2019(net).infer(y0)
    trace = res.stats["alive_trace"]
    assert len(trace) == net.num_layers
    assert (np.diff(trace) <= 0).all()


def test_bf_partition_validation(workload):
    net, _, _ = workload
    with pytest.raises(ConfigError):
        BF2019(net, n_partitions=0)


def test_snig_makespan_bounds(workload):
    net, y0, _ = workload
    res = SNIG2020(net, n_partitions=4, n_streams=4).infer(y0)
    makespan = res.stats["makespan"]
    serial = res.stats["serial_kernel_time"]
    assert makespan <= serial + 1e-12
    assert makespan >= serial / 4 - 1e-12


def test_snig_overlap_beats_single_stream(workload):
    net, y0, _ = workload
    multi = SNIG2020(net, n_partitions=4, n_streams=4).infer(y0)
    single = SNIG2020(net, n_partitions=4, n_streams=1).infer(y0)
    assert multi.stats["makespan"] < single.stats["makespan"]
    assert np.allclose(multi.y, single.y)


def test_snig_validation(workload):
    net, _, _ = workload
    with pytest.raises(ConfigError):
        SNIG2020(net, n_partitions=0)
    with pytest.raises(ConfigError):
        SNIG2020(net, n_streams=0)


def test_snig_partition_count_clamped(workload):
    net, _, _ = workload
    y_small = benchmark_input(net, 2, seed=3)
    res = SNIG2020(net, n_partitions=16).infer(y_small)
    assert res.stats["n_partitions"] == 2


def test_xy_records_strategies(workload):
    net, y0, _ = workload
    engine = XY2021(net)
    engine.infer(y0)
    assert len(engine.chosen) == net.num_layers
    assert set(engine.chosen) <= {"masked", "ell", "reduceat", "tiled", "colwise"}


def test_xy_measure_mode_matches_model_mode(workload):
    net, y0, ref = workload
    res = XY2021(net, explore="measure").infer(y0)
    assert np.allclose(res.y, ref.y, atol=1e-3)


def test_xy_validation(workload):
    net, _, _ = workload
    with pytest.raises(ConfigError):
        XY2021(net, explore="exhaustive")


def test_modeled_latency_ordering_snicit_fastest():
    """At work-dominated batch sizes the modeled ordering must reproduce the
    paper's Table 3: SNICIT < XY-2021 < official-style dense baseline.
    (At tiny batches kernel-launch overhead dominates and the gap closes —
    also true on real GPUs.)"""
    from repro.core import SNICIT, SNICITConfig

    net = build_benchmark("256-48", seed=0)
    y0 = benchmark_input(net, 1200, seed=1)
    times = {
        "snicit": SNICIT(net, SNICITConfig(threshold_layer=16)).infer(y0).modeled_seconds,
        "xy": XY2021(net).infer(y0).modeled_seconds,
        "dense": DenseReference(net).infer(y0).modeled_seconds,
    }
    assert times["snicit"] < times["xy"] < times["dense"]
