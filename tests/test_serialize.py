"""Network .npz serialization round trips."""

import numpy as np
import pytest

from repro.errors import FormatError
from repro.network import LayerSpec, SparseNetwork
from repro.serialize import load_network, save_network
from repro.sparse import CSRMatrix


def make_net(rng):
    layers = []
    for i in range(3):
        d = rng.random((6, 6))
        d[d > 0.4] = 0
        bias = rng.standard_normal(6).astype(np.float32) if i == 1 else -0.3
        layers.append(LayerSpec(CSRMatrix.from_dense(d), bias=bias, name=f"L{i}"))
    return SparseNetwork(layers, ymax=7.5, name="roundtrip", meta={"kind": "test", "x": 1})


def test_roundtrip(tmp_path, rng):
    net = make_net(rng)
    path = tmp_path / "net.npz"
    save_network(path, net)
    loaded = load_network(path)
    assert loaded.name == net.name
    assert loaded.ymax == net.ymax
    assert loaded.meta == net.meta
    assert loaded.num_layers == net.num_layers
    for a, b in zip(net.layers, loaded.layers):
        assert a.name == b.name
        assert np.array_equal(a.weight.to_dense(), b.weight.to_dense())
        if isinstance(a.bias, np.ndarray):
            assert np.array_equal(a.bias, b.bias)
        else:
            assert a.bias == b.bias


def test_loaded_network_runs(tmp_path, rng):
    from repro.baselines import DenseReference

    net = make_net(rng)
    path = tmp_path / "net.npz"
    save_network(path, net)
    loaded = load_network(path)
    y0 = rng.random((6, 5)).astype(np.float32)
    a = DenseReference(net).infer(y0)
    b = DenseReference(loaded).infer(y0)
    assert np.allclose(a.y, b.y)


def test_rejects_foreign_npz(tmp_path):
    path = tmp_path / "foreign.npz"
    np.savez(path, x=np.zeros(3))
    with pytest.raises(FormatError, match="header"):
        load_network(path)


def test_rejects_wrong_version(tmp_path, rng, monkeypatch):
    import repro.serialize as ser

    net = make_net(rng)
    path = tmp_path / "net.npz"
    monkeypatch.setattr(ser, "_FORMAT_VERSION", 99)
    save_network(path, net)
    monkeypatch.setattr(ser, "_FORMAT_VERSION", 1)
    with pytest.raises(FormatError, match="version"):
        load_network(path)
