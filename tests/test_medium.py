"""Medium-scale DNN construction, training cache, and SNICIT behavior.

Uses the on-disk weight cache (.cache/) — the first ever run trains the
networks (~1 minute each); subsequent runs load instantly.
"""

import numpy as np
import pytest

from repro.core import SNICIT
from repro.errors import ConfigError
from repro.harness.experiments.table4 import medium_config
from repro.harness.medium import MEDIUM_DNNS, build_model, get_trained
from repro.nn.model import accuracy


def test_specs_match_paper_table4():
    assert MEDIUM_DNNS["A"].name == "128-18"
    assert MEDIUM_DNNS["B"].name == "256-18"
    assert MEDIUM_DNNS["C"].name == "256-12"
    assert MEDIUM_DNNS["D"].name == "256-12"
    assert MEDIUM_DNNS["D"].dataset == "cifar"
    for spec in MEDIUM_DNNS.values():
        assert 0.5 <= spec.density <= 0.6  # paper: 50-60 %


def test_build_model_architecture(rng):
    model = build_model(MEDIUM_DNNS["A"], rng)
    from repro.nn import Dense, SparseLinear

    sparse = [l for l in model.layers if isinstance(l, SparseLinear)]
    dense = [l for l in model.layers if isinstance(l, Dense)]
    assert len(sparse) == 18
    assert len(dense) == 2  # embed + output
    assert sparse[0].weight.shape == (128, 128)


def test_build_model_cifar_architecture(rng):
    model = build_model(MEDIUM_DNNS["D"], rng)
    from repro.nn import Conv2d, MaxPool2d

    convs = [l for l in model.layers if isinstance(l, Conv2d)]
    pools = [l for l in model.layers if isinstance(l, MaxPool2d)]
    assert len(convs) == 6 and len(pools) == 3  # three (conv, conv, pool) stages
    # the feature extractor must produce the calibration input size
    images = rng.random((2, 3, 32, 32)).astype(np.float32)
    assert model.forward(images).shape == (2, 10)


def test_unknown_dnn_rejected():
    with pytest.raises(ConfigError):
        get_trained("Z")


def test_trained_network_reaches_accuracy():
    tm = get_trained("C")
    assert tm.test_accuracy > 0.9  # synthetic digits are easier than MNIST


def test_cache_roundtrip_preserves_weights(tmp_path):
    # training with epochs=0-equivalent is not exposed; instead verify that a
    # second load returns identical parameters from the shared disk cache
    a = get_trained("A")
    from repro.harness.medium import _memory_cache

    _memory_cache.clear()
    b = get_trained("A")
    for p1, p2 in zip(a.model.params(), b.model.params()):
        assert np.array_equal(p1.value, p2.value)


def test_snicit_accuracy_loss_small_on_medium():
    tm = get_trained("C")
    stack = tm.stack
    y0 = stack.head(tm.test.images)
    res = SNICIT(stack.network, medium_config(tm.spec.sparse_layers)).infer(y0)
    acc = accuracy(stack.tail(res.y), tm.test.labels)
    assert tm.test_accuracy - acc < 0.02  # paper band: <= 1.43 %


def test_medium_config_matches_paper_rules():
    cfg = medium_config(18)
    assert cfg.threshold_layer == 8  # largest even int <= 18/2
    assert cfg.sample_size == 128
    assert cfg.downsample_dim is None
    assert cfg.ne_idx_interval == 1
    cfg12 = medium_config(12)
    assert cfg12.threshold_layer == 6
