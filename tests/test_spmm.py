"""spMM kernel family: correctness against dense reference, work metrics."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ShapeError
from repro.sparse import CSRMatrix, ELLMatrix
from repro.sparse.spmm import (
    spmm,
    spmm_charge,
    spmm_colwise,
    spmm_ell,
    spmm_masked,
    spmm_reduceat,
    spmm_scatter,
)


def make_operands(rng, n_out=12, n_in=10, b=7, w_density=0.3, y_density=0.6):
    w = rng.random((n_out, n_in))
    w[w > w_density] = 0.0
    y = rng.random((n_in, b)).astype(np.float32)
    y[y > y_density] = 0.0
    return w, CSRMatrix.from_dense(w), y


def test_reduceat_matches_dense(rng):
    w, w_csr, y = make_operands(rng)
    assert np.allclose(spmm_reduceat(w_csr, y), w @ y, atol=1e-5)


def test_reduceat_empty_rows_are_zero(rng):
    w = np.zeros((4, 3))
    w[2, 1] = 2.0
    y = rng.random((3, 5)).astype(np.float32)
    out = spmm_reduceat(CSRMatrix.from_dense(w), y)
    assert (out[[0, 1, 3]] == 0).all()
    assert np.allclose(out[2], 2.0 * y[1])


def test_reduceat_chunking_consistent(rng, monkeypatch):
    import importlib

    m = importlib.import_module("repro.sparse.spmm")
    w, w_csr, y = make_operands(rng, n_out=50, n_in=40, b=9)
    full = spmm_reduceat(w_csr, y)
    monkeypatch.setattr(m, "_SCRATCH_ELEMENTS", 64)  # force many tiny chunks
    chunked = spmm_reduceat(w_csr, y)
    assert np.array_equal(full, chunked)


def test_reduceat_chunking_bounded_under_skew(rng, monkeypatch):
    """Chunks are sized by actual nonzero spans, not mean nnz/row: a skewed
    row distribution must never allocate scratch beyond the budget (one
    irreducibly-wide row excepted)."""
    import importlib

    m = importlib.import_module("repro.sparse.spmm")
    n_out, n_in, b = 40, 200, 5
    w = np.zeros((n_out, n_in))
    w[0, :] = 1.0  # one row holds half of all nonzeros
    w[1:, :5] = rng.random((n_out - 1, 5))
    w_csr = CSRMatrix.from_dense(w)
    full = spmm_reduceat(w_csr, y := rng.random((n_in, b)).astype(np.float32))

    budget = 400  # nnz budget = 400 // 5 = 80 < the 200-wide row
    seen: list[int] = []
    real_segment_sum = m._segment_sum

    def spy(values, indptr, n_segments):
        seen.append(values.shape[0] * values.shape[1])
        return real_segment_sum(values, indptr, n_segments)

    monkeypatch.setattr(m, "_SCRATCH_ELEMENTS", budget)
    monkeypatch.setattr(m, "_segment_sum", spy)
    chunked = spmm_reduceat(w_csr, y)
    assert np.array_equal(full, chunked)
    widest_row = int(np.diff(w_csr.indptr).max()) * b
    assert max(seen) <= max(budget, widest_row)
    # the skewed row ran alone; every other chunk stayed within budget
    assert sum(1 for s in seen if s > budget) <= 1


def test_ell_matches_dense(rng):
    w, w_csr, y = make_operands(rng)
    assert np.allclose(spmm_ell(ELLMatrix.from_csr(w_csr), y), w @ y, atol=1e-5)


def test_scatter_matches_dense(rng):
    w, w_csr, y = make_operands(rng)
    assert np.allclose(spmm_scatter(w_csr, y), w @ y, atol=1e-5)


def test_masked_full_mask_equals_reduceat(rng):
    w, w_csr, y = make_operands(rng)
    out, nnz = spmm_masked(w_csr, y, np.ones(w.shape[1], dtype=bool))
    assert np.array_equal(out, spmm_reduceat(w_csr, y))
    assert nnz == w_csr.nnz


def test_masked_skips_dead_rows_exactly(rng):
    w, w_csr, y = make_operands(rng)
    y[[1, 3], :] = 0.0  # kill input rows 1 and 3
    live = (y != 0).any(axis=1)
    out, active = spmm_masked(w_csr, y, live)
    assert np.allclose(out, w @ y, atol=1e-5)
    assert active == int(live[w_csr.indices].sum())
    assert active < w_csr.nnz


def test_masked_empty_mask_returns_zero(rng):
    w, w_csr, y = make_operands(rng)
    out, active = spmm_masked(w_csr, y, np.zeros(w.shape[1], dtype=bool))
    assert (out == 0).all()
    assert active == 0


def test_masked_bad_mask_shape(rng):
    _, w_csr, y = make_operands(rng)
    with pytest.raises(ShapeError):
        spmm_masked(w_csr, y, np.ones(3, dtype=bool))


def test_colwise_matches_dense(rng):
    w, _, y = make_operands(rng, w_density=1.0)
    out, nnz = spmm_colwise(w, y)
    assert np.allclose(out, w @ y, atol=1e-5)
    assert nnz == int((y != 0).sum())


def test_colwise_empty_y(rng):
    w, _, y = make_operands(rng)
    out, nnz = spmm_colwise(w, np.zeros_like(y))
    assert nnz == 0 and (out == 0).all()


def test_colwise_chunking_consistent(rng, monkeypatch):
    import importlib

    m = importlib.import_module("repro.sparse.spmm")
    w, _, y = make_operands(rng, n_out=30, n_in=20, b=40, w_density=1.0)
    full, _ = spmm_colwise(w, y)
    monkeypatch.setattr(m, "_SCRATCH_ELEMENTS", 128)
    chunked, _ = spmm_colwise(w, y)
    assert np.allclose(full, chunked, atol=1e-6)


def test_colwise_work_scales_with_activation_nnz(rng):
    w, _, y = make_operands(rng, w_density=1.0)
    _, nnz_full = spmm_colwise(w, y)
    y_sparser = y.copy()
    y_sparser[:, ::2] = 0
    _, nnz_half = spmm_colwise(w, y_sparser)
    assert nnz_half < nnz_full


def test_dispatcher_strategies_agree(rng):
    w, w_csr, y = make_operands(rng)
    base = spmm(w_csr, y, method="reduceat")
    for method in ("ell", "scatter", "auto"):
        assert np.allclose(spmm(w_csr, y, method=method), base, atol=1e-5)
    ell = ELLMatrix.from_csr(w_csr)
    assert np.allclose(spmm(ell, y, method="auto"), base, atol=1e-5)
    assert np.allclose(spmm(ell, y, method="reduceat"), base, atol=1e-5)


def test_dispatcher_unknown_method(rng):
    _, w_csr, y = make_operands(rng)
    with pytest.raises(ValueError):
        spmm(w_csr, y, method="quantum")


def test_shape_validation(rng):
    _, w_csr, y = make_operands(rng)
    with pytest.raises(ShapeError):
        spmm_reduceat(w_csr, y[:3])
    with pytest.raises(ShapeError):
        spmm_reduceat(w_csr, y[:, 0])


def test_spmm_charge_fields():
    c = spmm_charge(nnz=100, batch=50, n_out=20)
    assert c.flops == 2 * 100 * 50
    assert c.bytes_written == 20 * 50 * 4
    assert c.bytes_read > 0


def test_out_buffer_reuse(rng):
    w, w_csr, y = make_operands(rng)
    out = np.full((w.shape[0], y.shape[1]), 7.0, dtype=np.float32)
    result = spmm_reduceat(w_csr, y, out=out)
    assert result is out
    assert np.allclose(out, w @ y, atol=1e-5)


@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    n_out=st.integers(1, 15),
    n_in=st.integers(1, 15),
    b=st.integers(1, 8),
    w_density=st.floats(0.0, 1.0),
)
def test_all_kernels_match_dense_property(seed, n_out, n_in, b, w_density):
    rng = np.random.default_rng(seed)
    w = rng.random((n_out, n_in))
    w[w > w_density] = 0.0
    y = rng.random((n_in, b)).astype(np.float32)
    y[y > 0.7] = 0.0
    w_csr = CSRMatrix.from_dense(w)
    expected = w @ y
    assert np.allclose(spmm_reduceat(w_csr, y), expected, atol=1e-5)
    assert np.allclose(spmm_ell(ELLMatrix.from_csr(w_csr), y), expected, atol=1e-5)
    assert np.allclose(spmm_scatter(w_csr, y), expected, atol=1e-5)
    live = (y != 0).any(axis=1)
    out, _ = spmm_masked(w_csr, y, live)
    assert np.allclose(out, expected, atol=1e-5)
    outc, _ = spmm_colwise(w, y)
    assert np.allclose(outc, expected, atol=1e-5)


def test_tiled_matches_reduceat_exactly(rng):
    from repro.sparse.spmm import spmm_tiled

    w, w_csr, y = make_operands(rng, n_out=20, n_in=15, b=33)
    full = spmm_reduceat(w_csr, y)
    for tile in (1, 7, 32, 1000):
        assert np.array_equal(spmm_tiled(w_csr, y, tile_cols=tile), full)


def test_tiled_validation(rng):
    from repro.sparse.spmm import spmm_tiled

    _, w_csr, y = make_operands(rng)
    with pytest.raises(ShapeError):
        spmm_tiled(w_csr, y, tile_cols=0)
