"""t-SNE and convergence/cluster metrics."""

import numpy as np
import pytest

from repro.analysis import (
    cluster_separation,
    column_convergence_curve,
    computational_intensity,
    intra_inter_distances,
    tsne,
)
from repro.errors import ConfigError, ShapeError


def blobs(rng, n_per=20, centers=((0, 0, 0), (10, 10, 10), (-10, 5, -5))):
    xs, labels = [], []
    for c, center in enumerate(centers):
        xs.append(rng.normal(0, 0.5, size=(n_per, 3)) + np.array(center))
        labels += [c] * n_per
    return np.concatenate(xs), np.array(labels)


def test_tsne_shape_and_determinism(rng):
    x, _ = blobs(rng)
    e1 = tsne(x, n_iter=120, seed=3)
    e2 = tsne(x, n_iter=120, seed=3)
    assert e1.shape == (60, 2)
    assert np.array_equal(e1, e2)


def test_tsne_separates_blobs(rng):
    x, labels = blobs(rng)
    emb = tsne(x, n_iter=300, seed=0)
    # within-cluster spread must be far below between-cluster distance
    centers = np.stack([emb[labels == c].mean(axis=0) for c in range(3)])
    intra = max(
        np.linalg.norm(emb[labels == c] - centers[c], axis=1).mean() for c in range(3)
    )
    inter = min(
        np.linalg.norm(centers[a] - centers[b])
        for a in range(3)
        for b in range(a + 1, 3)
    )
    assert inter > 2 * intra


def test_tsne_validation(rng):
    with pytest.raises(ShapeError):
        tsne(np.zeros(10))
    with pytest.raises(ConfigError):
        tsne(np.zeros((3, 2)))


def test_intra_inter_on_crafted_clusters():
    y = np.zeros((4, 6), dtype=np.float32)
    y[:, :3] = 1.0  # class 0 columns identical
    y[:, 3:] = 5.0  # class 1 columns identical
    labels = np.array([0, 0, 0, 1, 1, 1])
    intra, inter = intra_inter_distances(y, labels)
    assert intra == 0.0
    assert inter > 0.0
    assert cluster_separation(y, labels) > 1.0


def test_intra_inter_validation():
    with pytest.raises(ShapeError):
        intra_inter_distances(np.zeros((3, 4)), np.zeros(3))


def test_convergence_curve():
    a = np.zeros((3, 3))
    b = np.ones((3, 3))
    curve = column_convergence_curve([a, b, b])
    assert list(curve) == [1.0, 0.0]
    with pytest.raises(ShapeError):
        column_convergence_curve([a])


def test_computational_intensity_shape_and_drop():
    trace = np.array([40, 30, 20])
    curve = computational_intensity(1000, trace, batch=100, threshold_layer=2)
    assert len(curve) == 5
    assert (curve[:2] == 1000 * 100).all()
    assert list(curve[2:]) == [40_000, 30_000, 20_000]
    assert curve[2] < curve[1]  # the Fig. 1 cliff at the threshold layer
