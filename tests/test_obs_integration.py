"""Observability invariants across the pipeline, serving stack, and CLI."""

import json

import numpy as np
import pytest

from repro.cli import main
from repro.harness.experiments.common import sdgc_config
from repro.core.pipeline import SNICIT
from repro.obs import NULL_TRACER, Tracer
from repro.radixnet import benchmark_input, build_benchmark
from repro.serve import EngineSession, InferenceServer, bench_serve


@pytest.fixture(scope="module")
def bench():
    net = build_benchmark("144-24", seed=0)
    cfg = sdgc_config(net.num_layers)
    y0 = benchmark_input(net, 64, seed=1)
    return net, cfg, y0


# ------------------------------------------------------- disabled == no-op
def test_disabled_tracer_is_a_noop(bench):
    """Tracing off must change nothing: same output, zero recorded spans."""
    net, cfg, y0 = bench
    plain = SNICIT(net, cfg).infer(y0)
    traced = SNICIT(net, cfg, tracer=Tracer()).infer(y0)
    assert np.array_equal(plain.y, traced.y)
    assert plain.stats["n_centroids"] == traced.stats["n_centroids"]
    # the default tracer is the shared null tracer and records nothing
    engine = SNICIT(net, cfg)
    assert engine.tracer is NULL_TRACER
    engine.infer(y0)
    assert len(NULL_TRACER.spans) == 0


# ------------------------------------------------------------ span nesting
def test_trace_tree_nests_request_stage_layer_kernel(bench):
    net, cfg, y0 = bench
    tracer = Tracer()
    SNICIT(net, cfg, tracer=tracer).infer(y0)
    roots = tracer.roots()
    assert len(roots) == 1
    req = roots[0]
    assert req.cat == "request" and req.name == "snicit.infer"
    stages = req.children
    assert [s.name for s in stages] == [
        "pre_convergence", "conversion", "post_convergence", "recovery",
    ]
    assert all(s.cat == "stage" for s in stages)
    pre, conv, post, rec = stages
    pre_layers = pre.children
    assert len(pre_layers) == cfg.threshold_layer
    assert all(s.cat == "layer" for s in pre_layers)
    # each pre-convergence layer wraps exactly one champion kernel span
    for layer_span in pre_layers:
        kernels = layer_span.children
        assert [k.cat for k in kernels] == ["kernel"]
        assert kernels[0].args["flops"] > 0
        assert kernels[0].args["bytes_read"] > 0
        assert "modeled_seconds" in kernels[0].args
    # post-convergence layers carry SNICIT telemetry and two kernel spans
    post_layers = post.children
    assert len(post_layers) == net.num_layers - cfg.threshold_layer
    for layer_span in post_layers:
        assert layer_span.args["active_columns"] > 0
        assert "empty_columns" in layer_span.args
        assert [k.name for k in layer_span.children] == [
            "load_reduced_spmm", "update_centroids_residues",
        ]
    assert conv.args["n_centroids"] >= 1
    assert rec.children[0].args["kernel"] == "recovery"


def test_trace_spans_stay_inside_their_parents(bench):
    net, cfg, y0 = bench
    tracer = Tracer()
    SNICIT(net, cfg, tracer=tracer).infer(y0)
    for span in tracer.spans:
        if span.parent is not None:
            assert span.t0 >= span.parent.t0
            assert span.t1 <= span.parent.t1


# ------------------------------------------------- durations vs busy time
def test_request_span_durations_sum_to_session_busy_seconds(bench):
    net, cfg, y0 = bench
    tracer = Tracer()
    session = EngineSession(net, cfg, tracer=tracer)
    for _ in range(3):
        session.run(y0)
    req_spans = tracer.find(cat="request")
    assert len(req_spans) == 3
    total = sum(s.duration for s in req_spans)
    busy = session.busy_seconds
    # request spans live just inside session.run's busy window; they must
    # account for (nearly) all of it
    assert total <= busy
    assert total == pytest.approx(busy, rel=0.5)
    # and each request's stage spans tile the request span
    for req in req_spans:
        stage_sum = sum(s.duration for s in req.children if s.cat == "stage")
        assert stage_sum <= req.duration
        assert stage_sum == pytest.approx(req.duration, rel=0.5)


# -------------------------------------------------------- serving metrics
def test_serving_metrics_survive_overflow_rejections(bench):
    net, cfg, y0 = bench
    requests = [y0[:, lo : lo + 1] for lo in range(12)]
    session = EngineSession(net, cfg)
    server = InferenceServer(session, max_batch=64, max_wait_s=60.0, queue_limit=2)
    report = server.serve(iter(requests))
    assert len(report.rejected) == 10
    snap = session.metrics.snapshot()
    assert snap["serve_rejected_total"] == 10.0
    assert snap["server_overflow_total"] == 10.0
    assert snap["serve_requests_total"] == 2.0
    assert snap["session_calls_total"] == 1.0  # the drained block ran once
    assert snap["serve_queue_depth"] == 0.0  # drained clean
    # accepted + rejected covers the whole stream — nothing silent
    assert snap["serve_requests_total"] + snap["serve_rejected_total"] == len(requests)


def test_batcher_flush_reasons_and_fill_histogram(bench):
    net, cfg, y0 = bench
    session = EngineSession(net, cfg)
    server = InferenceServer(session, max_batch=8, max_wait_s=60.0)
    requests = [y0[:, lo : lo + 4] for lo in range(0, 20, 4)]  # 5 requests x 4 cols
    server.serve(iter(requests))
    fills = {
        labels["reason"]: h for labels, h in session.metrics.series("serve_batch_fill")
    }
    # 8-column blocks flush on 'full'; the odd request drains at end of stream
    assert fills["full"].count == 2
    assert fills["drain"].count == 1
    assert fills["full"].mean == pytest.approx(1.0)
    wait = dict(
        (tuple(labels.items()), h)
        for labels, h in session.metrics.series("serve_queue_wait_seconds")
    )[()]
    assert wait.count == 3


def test_pool_and_memo_metrics_published(bench):
    net, cfg, y0 = bench
    session = EngineSession(net, cfg)
    session.run(y0)
    session.run(y0)
    snap = session.metrics.snapshot()
    assert snap["pool_take_total"] > 0
    assert snap["pool_hit_total"] > 0
    assert snap["pool_take_total"] == snap["pool_hit_total"] + snap["pool_alloc_total"]
    assert snap["pool_bytes_highwater"] == session.scratch.nbytes
    assert snap["memo_entries"] == len(session.memo)
    # 144-24 layers are dense-ish -> colwise strategy, counted per layer call
    strategies = session.metrics.series("spmm_strategy_total")
    assert sum(m.value for _, m in strategies) == 2 * net.num_layers


def test_request_lifecycle_async_events(bench):
    net, cfg, y0 = bench
    tracer = Tracer()
    session = EngineSession(net, cfg, tracer=tracer)
    server = InferenceServer(session, max_batch=8, max_wait_s=60.0)
    requests = [y0[:, lo : lo + 2] for lo in range(0, 16, 2)]
    server.serve(iter(requests))
    begins = [e for e in tracer.events if e["ph"] == "b" and e["name"] == "request"]
    ends = [e for e in tracer.events if e["ph"] == "e" and e["name"] == "request"]
    assert len(begins) == len(requests)
    assert len(ends) == len(requests)
    assert {e["id"] for e in begins} == {e["id"] for e in ends}
    # pack -> execute -> resolve spans exist per flushed block
    packs = tracer.find(cat="serve", name="batch.pack")
    executes = tracer.find(cat="serve", name="batch.execute")
    resolves = tracer.find(cat="serve", name="batch.resolve")
    assert len(packs) == len(executes) == len(resolves) >= 2


# -------------------------------------------------- degenerate threshold
def test_degenerate_threshold_stage_windows_are_empty_and_disjoint(bench):
    net, cfg, y0 = bench
    engine = SNICIT(net, sdgc_config(net.num_layers, threshold_layer=net.num_layers))
    result = engine.infer(y0)
    for name in ("conversion", "post_convergence", "recovery"):
        snap = result.modeled[name]
        assert snap.launches == 0
        assert snap.flops == 0.0
        assert snap.modeled_seconds == 0.0
    tracer = Tracer()
    engine = SNICIT(
        net, sdgc_config(net.num_layers, threshold_layer=net.num_layers), tracer=tracer
    )
    engine.infer(y0)
    req = tracer.roots()[0]
    assert req.args["degenerate_threshold"] is True
    stage_names = [s.name for s in req.children]
    assert stage_names == ["pre_convergence", "conversion", "post_convergence", "recovery"]
    assert all(s.args.get("skipped") for s in req.children[1:])


# -------------------------------------------------------------- JSON-safety
def test_inference_result_to_json_is_dumpable(bench):
    net, cfg, y0 = bench
    result = SNICIT(net, cfg).infer(y0)
    report = result.to_json()
    text = json.dumps(report)  # numpy arrays in stats must not crash this
    parsed = json.loads(text)
    assert parsed["stats"]["n_centroids"] == result.stats["n_centroids"]
    assert isinstance(parsed["stats"]["active_columns_trace"], list)
    assert isinstance(parsed["stats"]["centroid_cols"], list)
    assert parsed["modeled"]["pre_convergence"]["launches"] > 0
    assert "y" not in parsed
    assert "y" in result.to_json(include_output=True)


# --------------------------------------------------------------------- CLI
def test_cli_run_writes_chrome_trace_with_full_stage_tree(tmp_path, capsys):
    trace_path = tmp_path / "trace.json"
    assert main([
        "run", "144-24", "--batch", "64", "--trace", str(trace_path), "--metrics",
    ]) == 0
    out = capsys.readouterr().out
    assert "wrote Chrome trace" in out
    assert "spmm_strategy_total" in out  # prometheus exposition printed
    trace = json.loads(trace_path.read_text())
    events = trace["traceEvents"]
    stage_names = {e["name"] for e in events if e.get("cat") == "stage"}
    assert stage_names == {"pre_convergence", "conversion", "post_convergence", "recovery"}
    layers = [e for e in events if e.get("cat") == "layer"]
    assert len(layers) == 24
    kernels = [e for e in events if e.get("cat") == "kernel"]
    assert kernels and all("flops" in e["args"] for e in kernels)


def test_cli_run_json_report(capsys):
    assert main(["run", "144-24", "--batch", "32", "--json"]) == 0
    out = capsys.readouterr().out
    payload = out[out.index("{"):]
    parsed = json.loads(payload[: payload.rindex("}") + 1])
    assert "stage_seconds" in parsed and "stats" in parsed


def test_cli_quiet_suppresses_info_output(capsys):
    assert main(["--quiet", "run", "144-24", "--batch", "32"]) == 0
    assert capsys.readouterr().out == ""


def test_cli_serve_with_trace_and_metrics(tmp_path, capsys):
    trace_path = tmp_path / "serve_trace.json"
    assert main([
        "serve", "144-24", "--requests", "8", "--request-cols", "2",
        "--max-batch", "8", "--trace", str(trace_path), "--metrics",
    ]) == 0
    out = capsys.readouterr().out
    assert "served 8/8 requests" in out
    assert "session_calls_total" in out
    events = json.loads(trace_path.read_text())["traceEvents"]
    assert any(e.get("cat") == "serve" for e in events)
    assert any(e.get("cat") == "kernel" for e in events)


def test_bench_serve_embeds_metrics_snapshot(tmp_path):
    out = tmp_path / "BENCH_serve.json"
    trace = tmp_path / "bench_trace.json"
    result = bench_serve(
        benchmark="144-24", requests=6, request_cols=2, max_batch=12,
        out=out, trace=trace,
    )
    on_disk = json.loads(out.read_text())
    rec = on_disk["tiers"][0]
    assert rec["metrics"]["serve_requests_total"] == 6.0
    assert rec["metrics"]["session_calls_total"] > 0
    assert rec["warm"]["last_block"]["stats"]["n_centroids"] >= 1
    assert on_disk["trace"] == str(trace)
    assert trace.exists()
    assert result["tiers"][0]["speedup"] > 0
