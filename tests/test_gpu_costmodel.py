"""Cost-model accounting and roofline math."""

import pytest

from repro.gpu.costmodel import CostModel, CostSnapshot, KernelCharge


def test_kernel_time_compute_bound():
    cm = CostModel(peak_flops=1e9, mem_bandwidth=1e12, launch_overhead=0.0, atomic_cost=0.0)
    charge = KernelCharge(name="k", flops=2e9, bytes_read=8, bytes_written=8)
    assert cm.kernel_time(charge) == pytest.approx(2.0)


def test_kernel_time_memory_bound():
    cm = CostModel(peak_flops=1e15, mem_bandwidth=1e9, launch_overhead=0.0, atomic_cost=0.0)
    charge = KernelCharge(name="k", flops=10, bytes_read=5e8, bytes_written=5e8)
    assert cm.kernel_time(charge) == pytest.approx(1.0)


def test_launch_overhead_and_atomics_add_up():
    cm = CostModel(peak_flops=1e12, mem_bandwidth=1e12, launch_overhead=1e-6, atomic_cost=1e-9)
    charge = KernelCharge(name="k", atomics=1000)
    assert cm.kernel_time(charge) == pytest.approx(1e-6 + 1000 * 1e-9)


def test_charge_accumulates_and_snapshot_diffs():
    cm = CostModel()
    cm.charge_kernel(KernelCharge(name="a", flops=100, bytes_read=10))
    snap1 = cm.snapshot()
    cm.charge_kernel(KernelCharge(name="b", flops=50, bytes_written=20, atomics=3))
    snap2 = cm.snapshot()
    delta = snap2 - snap1
    assert delta.launches == 1
    assert delta.flops == 50
    assert delta.bytes_written == 20
    assert delta.atomics == 3
    assert delta.modeled_seconds > 0


def test_h2d_d2h_charged_against_pcie():
    cm = CostModel(pcie_bandwidth=1e9)
    assert cm.charge_h2d(1e9) == pytest.approx(1.0)
    assert cm.charge_d2h(5e8) == pytest.approx(0.5)
    snap = cm.snapshot()
    assert snap.h2d_bytes == 1e9
    assert snap.d2h_bytes == 5e8


def test_reset_clears_everything():
    cm = CostModel()
    cm.charge_kernel(KernelCharge(name="a", flops=100))
    cm.charge_h2d(100)
    cm.reset()
    snap = cm.snapshot()
    assert snap.launches == 0
    assert snap.flops == 0
    assert snap.modeled_seconds == 0
    assert cm.history == ()


def test_history_records_charges_in_order():
    cm = CostModel()
    cm.charge_kernel(KernelCharge(name="first"))
    cm.charge_kernel(KernelCharge(name="second"))
    assert [c.name for c in cm.history] == ["first", "second"]


def test_snapshot_bytes_total():
    snap = CostSnapshot(bytes_read=3, bytes_written=4)
    assert snap.bytes_total == 7


def test_charge_bytes_total_property():
    c = KernelCharge(name="k", bytes_read=1, bytes_written=2)
    assert c.bytes_total == 3
