"""Unit tests for SLO policies, budgets, and burn accounting (repro.obs.slo)."""

import json

import pytest

from repro.errors import ConfigError
from repro.obs import MetricsRegistry, SloPolicy, SloTracker


class FakeClock:
    def __init__(self, t=0.0):
        self.t = float(t)

    def __call__(self):
        return self.t

    def advance(self, dt):
        self.t += dt


class FakeTicket:
    """The duck-typed slice of a serving Ticket record_ticket consumes."""

    def __init__(self, latency=0.01, columns=4, failed=False, aid=7, error=None):
        self.latency_seconds = latency
        self.columns = columns
        self.failed = failed
        self.aid = aid
        self.error = error

    def breakdown(self):
        return {
            "queue_wait_seconds": 0.0,
            "batch_wait_seconds": 0.001,
            "execute_seconds": self.latency_seconds - 0.001,
            "block_id": 3,
            "batch_columns": self.columns,
        }


# -------------------------------------------------------------------- policy
def test_policy_parse_full_spec():
    policy = SloPolicy.parse("p99<50ms@60s/99.9%")
    assert policy.latency_target_s == pytest.approx(0.05)
    assert policy.quantile == pytest.approx(0.99)
    assert policy.window_s == pytest.approx(60.0)
    assert policy.objective == pytest.approx(0.999)
    assert policy.error_budget == pytest.approx(0.001)


def test_policy_parse_defaults_and_units():
    policy = SloPolicy.parse("p95<2s")
    assert policy.latency_target_s == pytest.approx(2.0)
    assert policy.quantile == pytest.approx(0.95)
    # window and objective fall back to the dataclass defaults
    assert policy.window_s == 60.0 and policy.objective == 0.99


def test_policy_parse_overrides_win():
    policy = SloPolicy.parse("p99<50ms@60s", window_s=10.0,
                             min_columns_per_second=100.0)
    assert policy.window_s == 10.0
    assert policy.min_columns_per_second == 100.0


@pytest.mark.parametrize("spec", ["", "p99", "50ms", "p99<50", "p99<50ms@", "q99<50ms"])
def test_policy_parse_rejects_garbage(spec):
    with pytest.raises(ConfigError):
        SloPolicy.parse(spec)


@pytest.mark.parametrize(
    "kwargs",
    [
        {"latency_target_s": 0.0},
        {"latency_target_s": -0.1},
        {"latency_target_s": 0.1, "quantile": 1.0},
        {"latency_target_s": 0.1, "quantile": 0.0},
        {"latency_target_s": 0.1, "window_s": 0.0},
        {"latency_target_s": 0.1, "objective": 1.0},
    ],
)
def test_policy_validation(kwargs):
    with pytest.raises(ConfigError):
        SloPolicy(**kwargs)


def test_policy_describe_and_json_round_trip():
    policy = SloPolicy.parse("p99<50ms@30s/99.5%", min_columns_per_second=10.0)
    text = policy.describe()
    assert "p99 < 50ms" in text and "30s" in text and "99.5%" in text
    assert ">= 10 col/s" in text
    blob = json.dumps(policy.to_json())  # must not raise
    assert json.loads(blob)["objective"] == pytest.approx(0.995)


# ---------------------------------------------------------------- burn math
def test_idle_tracker_is_compliant_with_full_budget():
    tracker = SloTracker(SloPolicy.parse("p99<50ms"), clock=FakeClock())
    report = tracker.report()
    assert report.burn_rate == 0.0
    assert report.budget_remaining == 1.0
    assert report.latency_estimate_s is None
    assert report.quantile_ok is None and report.budget_ok is None
    assert report.compliant


def test_burn_rate_is_breach_fraction_over_budget():
    # objective 99% -> 1% error budget; 2/100 breaches -> burn 2.0
    policy = SloPolicy.parse("p99<100ms@60s/99%")
    tracker = SloTracker(policy, clock=FakeClock(50.0))
    for _ in range(98):
        tracker.record(0.01, columns=1)
    tracker.record(0.2, columns=1)
    tracker.record(0.3, columns=1)
    report = tracker.report()
    assert report.burn_rate == pytest.approx(2.0)
    assert report.budget_remaining == pytest.approx(-1.0)
    assert report.budget_ok is False
    assert not report.compliant


def test_sustainable_burn_keeps_budget_ok():
    policy = SloPolicy.parse("p99<100ms@60s/99%")
    tracker = SloTracker(policy, clock=FakeClock(50.0))
    for _ in range(199):
        tracker.record(0.01)
    tracker.record(0.5)  # 1/200 = 0.5% of a 1% budget -> burn 0.5
    report = tracker.report()
    assert report.burn_rate == pytest.approx(0.5)
    assert report.budget_ok is True


def test_fast_failure_still_burns_budget():
    policy = SloPolicy.parse("p99<100ms@60s/99%")
    tracker = SloTracker(policy, clock=FakeClock(50.0))
    for _ in range(99):
        tracker.record(0.01)
    # the failure resolved *under* the latency target, but a failed request
    # violates the objective: the window's exact breach counter must see it
    tracker.record(0.001, failed=True)
    report = tracker.report()
    assert report.window["over_target"] == 1
    assert report.burn_rate == pytest.approx(1.0)


def test_throughput_floor_verdict():
    policy = SloPolicy.parse("p99<1s@10s", min_columns_per_second=100.0)
    tracker = SloTracker(policy, clock=FakeClock(50.0))
    tracker.record(0.01, columns=50)
    report = tracker.report()
    # 50 columns over a 10 s window = 5 col/s, far under the floor
    assert report.columns_per_second == pytest.approx(5.0)
    assert report.throughput_ok is False
    assert not report.compliant
    for _ in range(40):
        tracker.record(0.01, columns=50)
    assert tracker.report().throughput_ok is True


def test_idle_window_burn_is_finite_zero_and_caches_last_burn():
    """Satellite regression: an idle window after rotation must read as
    burn 0 / budget 1 (not 0/0 -> NaN), and ``last_burn`` — the cheap
    signal admission control polls on every submit — must track it."""
    import math

    clock = FakeClock(50.0)
    tracker = SloTracker(SloPolicy.parse("p99<10ms@10s/99%"), clock=clock)
    assert tracker.last_burn == 0.0  # idle from birth, no traffic yet
    tracker.record(1.0)  # a breach: the window burns hard
    assert tracker.report().burn_rate == pytest.approx(100.0)
    assert tracker.last_burn == pytest.approx(100.0)
    clock.advance(11.0)  # everything rotates out: the window is empty again
    report = tracker.report()
    assert report.burn_rate == 0.0 and math.isfinite(report.burn_rate)
    assert report.budget_remaining == 1.0
    assert tracker.last_burn == 0.0
    # the JSON path must carry no non-finite tokens (json.dumps would
    # happily serialize NaN; a strict re-parse is the actual check)
    blob = json.dumps(report.to_json())
    json.loads(blob, parse_constant=lambda s: pytest.fail(f"leaked {s!r}"))


def test_window_expiry_restores_budget():
    clock = FakeClock(50.0)
    tracker = SloTracker(SloPolicy.parse("p99<10ms@10s/99%"), clock=clock)
    for _ in range(10):
        tracker.record(1.0)  # every request breaches
    assert tracker.report().burn_rate == pytest.approx(100.0)
    clock.advance(11.0)
    report = tracker.report()
    assert report.burn_rate == 0.0 and report.budget_remaining == 1.0
    assert report.compliant


# ----------------------------------------------------------------- tickets
def test_record_ticket_builds_trace_linked_exemplar():
    tracker = SloTracker(SloPolicy.parse("p99<100ms"), clock=FakeClock(50.0))
    tracker.record_ticket(FakeTicket(latency=0.01, aid=11), model="a")
    tracker.record_ticket(FakeTicket(latency=0.09, aid=42), model="a")
    report = tracker.report()
    exemplar = report.exemplar
    assert exemplar["request_aid"] == 42  # the slowest request's span id
    assert exemplar["model"] == "a"
    assert exemplar["latency_seconds"] == pytest.approx(0.09)
    assert exemplar["breakdown"]["block_id"] == 3
    assert "error" not in exemplar


def test_record_ticket_failed_carries_error_type():
    tracker = SloTracker(SloPolicy.parse("p99<100ms"), clock=FakeClock(50.0))
    tracker.record_ticket(
        FakeTicket(latency=0.01, failed=True, error=ValueError("boom"))
    )
    report = tracker.report()
    assert report.exemplar["error"] == "ValueError"
    assert report.breaches_total == 0  # no registry -> no lifetime counters
    assert report.window["over_target"] == 1


# ----------------------------------------------------- registry integration
def test_tracker_publishes_per_tenant_series():
    registry = MetricsRegistry()
    clock = FakeClock(50.0)
    tracker = SloTracker(
        SloPolicy.parse("p99<100ms@60s/99%"),
        metrics=registry.labeled(model="a"), clock=clock, name="a",
    )
    # the registry-created window must share the tracker's clock for tests;
    # production uses the default monotonic clock everywhere
    tracker.window.clock = clock
    for _ in range(9):
        tracker.record(0.01, columns=2)
    tracker.record(0.5, columns=2)
    assert tracker.requests_total == 10
    assert tracker.breaches_total == 1
    assert tracker.columns_total == pytest.approx(20.0)
    snap = registry.snapshot()
    assert snap['slo_requests_total{model="a"}'] == 10
    assert snap['slo_breaches_total{model="a"}'] == 1
    # burn 10x the sustainable rate -> gauges published on every record
    assert snap['slo_burn_rate{model="a"}'] == pytest.approx(10.0)
    assert snap['slo_compliant{model="a"}'] == 0.0
    text = registry.to_prometheus()
    assert 'slo_latency_seconds{model="a",quantile="0.99"}' in text
    assert 'slo_latency_seconds_count{model="a"} 10' in text


def test_report_to_json_is_json_dumpable():
    tracker = SloTracker(SloPolicy.parse("p99<100ms"), clock=FakeClock(50.0))
    tracker.record_ticket(FakeTicket(latency=0.2, aid=3))
    blob = json.dumps(tracker.report().to_json())  # must not raise
    parsed = json.loads(blob)
    assert parsed["compliant"] is False  # windowed p99 over the target
    assert parsed["exemplar"]["request_aid"] == 3
    assert parsed["window"]["quantiles"]["p99"] > 0.1
    assert parsed["policy"]["latency_target_s"] == pytest.approx(0.1)
