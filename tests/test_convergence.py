"""Dynamic threshold detection (paper §5 future-work extension)."""

import numpy as np
import pytest

from repro.core import SNICIT, SNICITConfig
from repro.core.convergence import ConvergenceDetector
from repro.errors import ConfigError


def test_detector_fires_on_constant_stream():
    det = ConvergenceDetector(tolerance=0.01, patience=2, min_layer=0)
    y = np.ones((8, 4))
    fired = [det.observe(y) for _ in range(5)]
    # first observation seeds the sketch; two identical follow-ups fire
    assert fired == [False, False, True, True, True]


def test_detector_resists_changing_stream(rng):
    det = ConvergenceDetector(tolerance=0.01, patience=2, min_layer=0)
    for _ in range(6):
        assert not det.observe(rng.random((8, 4)) * 10)


def test_detector_streak_resets_on_change(rng):
    det = ConvergenceDetector(tolerance=0.01, patience=2, min_layer=0)
    y = np.ones((8, 4))
    det.observe(y)
    det.observe(y)  # streak 1
    det.observe(rng.random((8, 4)) * 10)  # breaks the streak
    assert not det.observe(y)  # big change from random -> streak 0
    det.observe(y)  # streak 1
    assert det.observe(y)  # streak 2 -> fires


def test_detector_min_layer_gate():
    det = ConvergenceDetector(tolerance=0.5, patience=1, min_layer=4)
    y = np.ones((4, 4))
    results = [det.observe(y) for _ in range(7)]
    assert not any(results[:4])
    assert results[-1]


def test_detector_reset():
    det = ConvergenceDetector(tolerance=0.1, patience=1, min_layer=0)
    y = np.ones((4, 4))
    det.observe(y)
    assert det.observe(y)
    det.reset()
    assert not det.observe(y)  # needs a fresh baseline again
    assert det.trace == [float("inf")]


def test_detector_validation():
    with pytest.raises(ConfigError):
        ConvergenceDetector(tolerance=-1)
    with pytest.raises(ConfigError):
        ConvergenceDetector(patience=0)
    with pytest.raises(ConfigError):
        ConvergenceDetector(probe_columns=0)


def test_auto_threshold_in_pipeline():
    from repro.baselines import DenseReference
    from repro.radixnet import benchmark_input, build_benchmark

    net = build_benchmark("256-48", seed=0)
    y0 = benchmark_input(net, 300, seed=1)
    ref = DenseReference(net).infer(y0)
    cfg = SNICITConfig(threshold_layer=net.num_layers, auto_threshold=True)
    res = SNICIT(net, cfg).infer(y0)
    assert res.stats["auto_detected"], "the SDGC regime converges; detector must fire"
    assert res.stats["threshold_layer"] < net.num_layers
    assert (res.categories == ref.categories).all()
    assert len(res.stats["convergence_trace"]) >= res.stats["threshold_layer"]


def test_auto_threshold_respects_cap():
    from repro.radixnet import benchmark_input, build_benchmark

    net = build_benchmark("144-24", seed=0)
    y0 = benchmark_input(net, 150, seed=1)
    cfg = SNICITConfig(threshold_layer=4, auto_threshold=True, auto_tolerance=0.0)
    res = SNICIT(net, cfg).infer(y0)
    assert res.stats["threshold_layer"] == 4  # tolerance 0 never fires early


def test_auto_config_validation():
    with pytest.raises(ConfigError):
        SNICITConfig(threshold_layer=1, auto_tolerance=-0.1)
    with pytest.raises(ConfigError):
        SNICITConfig(threshold_layer=1, auto_patience=0)
