#!/usr/bin/env python3
"""CI smoke: boot a fleet from a warm-state artifact and crash-replay it.

Runs the same stream population through a 2-worker (configurable)
:class:`~repro.serve.fleet.FleetDispatcher` twice — once clean, once with a
worker SIGKILLed mid-stream — with every worker booting from the
``repro warmup --save`` artifact passed in.  Asserts:

* every worker incarnation (the crash victim's replacement included)
  reports ``warm_sources == "artifact"`` — nobody silently re-baked;
* the crash run restarted the victim and failed no request;
* every stream's outputs are bitwise identical between the two runs —
  artifact boot plus crash replay changes nothing.

A real file (not a heredoc) because the fleet uses the ``spawn`` start
method, which must be able to re-import ``__main__``.  Needs PYTHONPATH=src.
"""

from __future__ import annotations

import argparse
import sys


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--artifact", required=True,
                        help="warm-state artifact path (repro warmup --save)")
    parser.add_argument("--benchmark", default="144-24")
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--requests", type=int, default=32)
    parser.add_argument("--request-cols", type=int, default=4)
    parser.add_argument("--streams", type=int, default=8)
    args = parser.parse_args(argv)

    import numpy as np

    from repro.harness.workloads import get_input
    from repro.serve.bench import _split_requests
    from repro.serve.fleet import FleetDispatcher, TenantSpec

    spec = TenantSpec(
        "m", args.benchmark, centroid_reuse=True, reuse_tolerance=0.0,
        warm_state=args.artifact,
    )
    pool = np.asarray(
        get_input(args.benchmark, args.requests * args.request_cols, 1)
    )
    items = [
        (f"s{j % args.streams}", y0)
        for j, y0 in enumerate(_split_requests(pool, args.request_cols))
    ]

    def run(kill=None):
        fleet = FleetDispatcher(
            [spec], workers=args.workers, max_batch=16, max_wait_s=60.0,
            queue_limit=len(items) + 1,
        )
        try:
            for stream, y0 in items:
                fleet.submit("m", y0, stream=stream)
            if kill is not None:
                fleet.kill_worker(kill)
            return fleet.join()
        finally:
            fleet.close()

    ref = run()
    crash = run(kill=0)
    for rep in (*ref.worker_reports, *crash.worker_reports):
        rep = rep or {}
        print(f"worker {rep.get('worker')} incarnation "
              f"{rep.get('incarnation')}: warm_sources={rep.get('warm_sources')}, "
              f"build {(rep.get('build_seconds') or 0) * 1e3:.1f} ms, "
              f"warmup {(rep.get('warmup_seconds') or 0) * 1e3:.1f} ms")
        # every incarnation — the SIGKILLed worker's replacement included —
        # must boot from the artifact, never re-bake
        assert (rep.get("warm_sources") or {}).get("m") == "artifact", \
            f"worker {rep.get('worker')} did not boot from the artifact"
    assert crash.restart_total >= 1, "victim was not restarted"
    assert not crash.failed, f"{len(crash.failed)} requests failed"
    streams = sorted({s for s, _ in items})
    for s in streams:
        assert np.array_equal(crash.stream_output(s), ref.stream_output(s)), \
            f"stream {s}: crash-replayed outputs diverged"
    print(f"warm fleet OK: restarts={crash.restart_total}, "
          f"{len(streams)} streams bitwise identical after artifact-boot replay")
    return 0


if __name__ == "__main__":
    sys.exit(main())
