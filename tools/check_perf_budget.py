#!/usr/bin/env python3
"""Hard per-tier serving-perf budget gate for CI.

Replaces the old warning-only ">25% below baseline" check: every tier named
in the budget file must be present in the fresh bench output, meet its
warm-over-cold floor, satisfy its bitwise-output requirement, and stay above
the committed-baseline throughput ratio.  Any breach prints a GitHub
``::error`` annotation and exits non-zero, failing the job (the workflow
uploads the trace artifact regardless of outcome).

Usage:
    python tools/check_perf_budget.py \
        --bench BENCH_new.json --baseline BENCH_serve.json \
        --budget CI_perf_budget.json

The tool is stdlib-only and standalone (no repo imports), so it runs before
PYTHONPATH is set up and can be unit-tested in isolation.
"""

from __future__ import annotations

import argparse
import json
import sys


def load_records(data: dict) -> dict[str, dict]:
    """Tier-name -> record from a BENCH_serve-shaped object.

    Mirrors :func:`repro.serve.bench.load_bench_records` (schema-2/3
    ``tiers`` list, or the legacy single-benchmark dict) without importing
    the repo.
    """
    if "tiers" in data:
        return {rec.get("tier", rec.get("benchmark")): rec for rec in data["tiers"]}
    if "benchmark" in data:
        return {data.get("tier", data["benchmark"]): data}
    raise ValueError("unrecognized BENCH_serve layout (no 'tiers' or 'benchmark' key)")


def steady_cps(rec: dict) -> float | None:
    """Steady-state warm columns/second, falling back for legacy records."""
    steady = (rec.get("warm") or {}).get("steady_state")
    if steady and steady.get("columns_per_second"):
        return float(steady["columns_per_second"])
    warm = rec.get("warm") or {}
    cps = warm.get("columns_per_second")
    return float(cps) if cps else None


def check_budget(bench: dict, baseline: dict | None, budget: dict) -> list[str]:
    """Every budget breach as a message; empty means the gate passes."""
    failures: list[str] = []
    records = load_records(bench)
    base_records = load_records(baseline) if baseline else {}
    floor = float(budget.get("baseline_ratio_floor", 0.75))
    for tier, rules in budget.get("tiers", {}).items():
        rec = records.get(tier)
        if rec is None:
            failures.append(f"{tier}: missing from the bench output")
            continue
        woc = rec.get("warm_over_cold")
        min_woc = rules.get("min_warm_over_cold")
        if min_woc is not None:
            if woc is None:
                failures.append(f"{tier}: record has no warm_over_cold metric")
            elif woc < min_woc:
                failures.append(
                    f"{tier}: warm_over_cold {woc:.2f} below the budget floor "
                    f"{min_woc:.2f} — the warm session loses to cold engines"
                )
        if rules.get("require_outputs_identical") and not rec.get("outputs_identical"):
            failures.append(
                f"{tier}: warm outputs are not bitwise identical to cold"
            )
        if rules.get("require_categories_match", True) and not rec.get(
            "categories_match"
        ):
            failures.append(f"{tier}: warm serving changed output categories")
        base_rec = base_records.get(tier)
        if base_rec is not None:
            new_cps = steady_cps(rec)
            base_cps = steady_cps(base_rec)
            if new_cps and base_cps:
                ratio = new_cps / base_cps
                if ratio < floor:
                    failures.append(
                        f"{tier}: steady-state columns/s {new_cps:.1f} is "
                        f"{(1 - ratio) * 100:.0f}% below the committed baseline "
                        f"{base_cps:.1f} (floor ratio {floor})"
                    )
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--bench", required=True, help="fresh bench JSON to gate")
    parser.add_argument("--baseline", help="committed baseline bench JSON")
    parser.add_argument("--budget", required=True, help="per-tier budget JSON")
    args = parser.parse_args(argv)

    with open(args.bench) as fh:
        bench = json.load(fh)
    baseline = None
    if args.baseline:
        with open(args.baseline) as fh:
            baseline = json.load(fh)
    with open(args.budget) as fh:
        budget = json.load(fh)

    for tier, rec in load_records(bench).items():
        woc = rec.get("warm_over_cold")
        cps = steady_cps(rec)
        print(
            f"[{tier}]",
            f"warm_over_cold={woc:.2f}" if woc is not None else "warm_over_cold=n/a",
            f"steady_columns/s={cps:.1f}" if cps else "steady_columns/s=n/a",
            f"outputs_identical={rec.get('outputs_identical')}",
        )

    failures = check_budget(bench, baseline, budget)
    for message in failures:
        print(f"::error title=Serving perf budget breach::{message}")
    if failures:
        return 1
    print(f"perf budget OK ({len(budget.get('tiers', {}))} tiers checked)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
