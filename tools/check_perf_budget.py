#!/usr/bin/env python3
"""Hard serving-perf budget gate for CI: per-tier floors + scale-out curve.

Replaces the old warning-only ">25% below baseline" check: every tier named
in the budget file must be present in the fresh bench output, meet its
warm-over-cold floor, satisfy its bitwise-output requirement, and stay above
the committed-baseline throughput ratio.  A ``scale_out`` budget section
additionally gates the schema-4 fleet record: per-worker-count *capacity*
speedup floors (capacity — total columns over the critical-path worker's
CPU seconds — is used instead of wall-clock so the gate is stable across
runners with different core counts), bitwise ``outputs_identical`` at every
count, and a successful crash-recovery run.  A ``warm_boot`` budget section
gates the schema-5 persistent-warmup record: the artifact boot must be at
least ``min_speedup`` times faster than the cold warmup + priming path and
its outputs bitwise identical across the loaded/fresh/cold triangle.  A
``qos`` budget section gates the schema-6 QoS A/B record: the interactive
tenant's mixed-load p99 must stay within ``max_interactive_p99_ratio`` of
its solo-run p99 under the QoS scheduler, the no-QoS FIFO arm must
demonstrably breach that same ceiling (otherwise the A/B proves nothing),
per-stream outputs must be bitwise identical to the solo runs, and shed
accounting must balance (served + shed + failed == submitted).  Any
breach prints a GitHub ``::error`` annotation and exits non-zero, failing
the job (the workflow uploads the trace artifact regardless of outcome).

Usage:
    python tools/check_perf_budget.py \
        --bench BENCH_new.json --baseline BENCH_serve.json \
        --budget CI_perf_budget.json \
        [--only tiers|scale_out|warm_boot|qos|all]

``--only`` lets split CI jobs gate their own section: the tier smoke passes
``--only tiers``, the scale-out smoke ``--only scale_out`` (whose bench
file, produced with ``--tiers none``, has no tier records at all), the
warm-artifact smoke ``--only warm_boot``, and the qos smoke ``--only qos``.

The tool is stdlib-only and standalone (no repo imports), so it runs before
PYTHONPATH is set up and can be unit-tested in isolation.
"""

from __future__ import annotations

import argparse
import json
import sys


def load_records(data: dict) -> dict[str, dict]:
    """Tier-name -> record from a BENCH_serve-shaped object.

    Mirrors :func:`repro.serve.bench.load_bench_records` without importing
    the repo: the schema-2/3/4 ``tiers`` list, the legacy single-benchmark
    dict, or a scale-out-only capture (``tiers`` absent entirely — an empty
    mapping, not an error, so ``--only scale_out`` runs can gate a bench
    file produced with ``--tiers none``).
    """
    if "tiers" in data:
        return {rec.get("tier", rec.get("benchmark")): rec for rec in data["tiers"]}
    if "benchmark" in data:
        return {data.get("tier", data["benchmark"]): data}
    if "scale_out" in data or "qos" in data:
        return {}
    raise ValueError(
        "unrecognized BENCH_serve layout (no 'tiers', 'benchmark', "
        "'scale_out', or 'qos' key)"
    )


def steady_cps(rec: dict) -> float | None:
    """Steady-state warm columns/second, falling back for legacy records."""
    steady = (rec.get("warm") or {}).get("steady_state")
    if steady and steady.get("columns_per_second"):
        return float(steady["columns_per_second"])
    warm = rec.get("warm") or {}
    cps = warm.get("columns_per_second")
    return float(cps) if cps else None


def check_tiers(bench: dict, baseline: dict | None, budget: dict) -> list[str]:
    """Per-tier budget breaches; empty means the tier gate passes."""
    failures: list[str] = []
    records = load_records(bench)
    base_records = load_records(baseline) if baseline else {}
    floor = float(budget.get("baseline_ratio_floor", 0.75))
    for tier, rules in budget.get("tiers", {}).items():
        rec = records.get(tier)
        if rec is None:
            failures.append(f"{tier}: missing from the bench output")
            continue
        woc = rec.get("warm_over_cold")
        min_woc = rules.get("min_warm_over_cold")
        if min_woc is not None:
            if woc is None:
                failures.append(f"{tier}: record has no warm_over_cold metric")
            elif woc < min_woc:
                failures.append(
                    f"{tier}: warm_over_cold {woc:.2f} below the budget floor "
                    f"{min_woc:.2f} — the warm session loses to cold engines"
                )
        if rules.get("require_outputs_identical") and not rec.get("outputs_identical"):
            failures.append(
                f"{tier}: warm outputs are not bitwise identical to cold"
            )
        if rules.get("require_categories_match", True) and not rec.get(
            "categories_match"
        ):
            failures.append(f"{tier}: warm serving changed output categories")
        base_rec = base_records.get(tier)
        if base_rec is not None:
            new_cps = steady_cps(rec)
            base_cps = steady_cps(base_rec)
            if new_cps and base_cps:
                ratio = new_cps / base_cps
                if ratio < floor:
                    failures.append(
                        f"{tier}: steady-state columns/s {new_cps:.1f} is "
                        f"{(1 - ratio) * 100:.0f}% below the committed baseline "
                        f"{base_cps:.1f} (floor ratio {floor})"
                    )
    return failures


def check_scale_out(bench: dict, budget: dict) -> list[str]:
    """Scale-out budget breaches; empty means the fleet gate passes."""
    rules = budget.get("scale_out")
    if not rules:
        return []
    failures: list[str] = []
    record = bench.get("scale_out")
    if not record:
        return ["scale_out: missing from the bench output"]
    entries = {int(e["workers"]): e for e in record.get("workers", [])}
    for count, min_speedup in (rules.get("min_capacity_speedup") or {}).items():
        entry = entries.get(int(count))
        if entry is None:
            # budgets list every count any job might run; a job that only
            # measured 1,2 must not fail the 4-worker floor
            continue
        speedup = (entry.get("capacity") or {}).get("speedup_vs_single")
        if speedup is None:
            failures.append(
                f"scale_out: {count}-worker entry has no capacity speedup"
            )
        elif speedup < float(min_speedup):
            failures.append(
                f"scale_out: {count}-worker capacity speedup {speedup:.2f} "
                f"below the budget floor {float(min_speedup):.2f}"
            )
    if rules.get("require_outputs_identical"):
        for count, entry in sorted(entries.items()):
            if not entry.get("outputs_identical"):
                failures.append(
                    f"scale_out: {count}-worker outputs are not bitwise "
                    f"identical to the single-process reference"
                )
        for count, entry in sorted(entries.items()):
            if entry.get("failed"):
                failures.append(
                    f"scale_out: {count}-worker run failed "
                    f"{entry['failed']} requests"
                )
    if rules.get("require_crash_recovery"):
        crash = record.get("crash")
        if not crash:
            failures.append("scale_out: no crash-recovery run in the record")
        elif not crash.get("recovered"):
            failures.append(
                f"scale_out: crash run did not recover (restarts="
                f"{crash.get('restarts')}, failed={crash.get('failed')}, "
                f"identical={crash.get('outputs_identical')})"
            )
    return failures


def check_warm_boot(bench: dict, budget: dict) -> list[str]:
    """Warm-boot budget breaches; empty means the artifact gate passes."""
    rules = budget.get("warm_boot")
    if not rules:
        return []
    record = bench.get("warm_boot")
    if not record:
        return ["warm_boot: missing from the bench output"]
    failures: list[str] = []
    min_speedup = rules.get("min_speedup")
    speedup = record.get("speedup")
    if min_speedup is not None:
        if speedup is None:
            failures.append("warm_boot: record has no speedup metric")
        elif speedup < float(min_speedup):
            failures.append(
                f"warm_boot: artifact boot is only {speedup:.2f}x faster than "
                f"cold warmup+priming, below the budget floor "
                f"{float(min_speedup):.2f}x"
            )
    if rules.get("require_outputs_identical") and not record.get(
        "outputs_identical"
    ):
        failures.append(
            "warm_boot: loaded/fresh/cold outputs are not bitwise identical"
        )
    if rules.get("require_artifact_source", True):
        if record.get("loaded_warm_source") != "artifact":
            failures.append(
                f"warm_boot: loaded session reports warm_source="
                f"{record.get('loaded_warm_source')!r}, expected 'artifact'"
            )
    return failures


def check_qos(bench: dict, budget: dict) -> list[str]:
    """QoS budget breaches; empty means the priority-scheduling gate passes."""
    rules = budget.get("qos")
    if not rules:
        return []
    record = bench.get("qos")
    if not record:
        return ["qos: missing from the bench output"]
    failures: list[str] = []
    ceiling = rules.get("max_interactive_p99_ratio")
    with_qos = record.get("with_qos") or {}
    no_qos = record.get("no_qos") or {}
    ratio = with_qos.get("interactive_p99_ratio")
    if ceiling is not None:
        if ratio is None:
            failures.append("qos: QoS arm has no interactive p99 ratio")
        elif ratio > float(ceiling):
            failures.append(
                f"qos: interactive p99 under bulk load is {ratio:.2f}x its "
                f"solo p99, above the budget ceiling {float(ceiling):.2f}x — "
                f"priority scheduling is not isolating the interactive tenant"
            )
    if rules.get("require_no_qos_breach") and ceiling is not None:
        # the control arm must actually hurt, or the A/B shows nothing:
        # a FIFO run that also holds the ceiling means the bulk load never
        # contended and the QoS-arm pass is vacuous
        no_ratio = no_qos.get("interactive_p99_ratio")
        if no_ratio is None:
            failures.append("qos: FIFO control arm has no interactive p99 ratio")
        elif no_ratio <= float(ceiling):
            failures.append(
                f"qos: FIFO control arm held interactive p99 at "
                f"{no_ratio:.2f}x solo (ceiling {float(ceiling):.2f}x) — the "
                f"bulk tenant never contended, so the QoS pass proves nothing"
            )
    if rules.get("require_outputs_identical") and not record.get(
        "outputs_identical"
    ):
        failures.append(
            "qos: QoS-arm outputs are not bitwise identical to the solo runs"
        )
    if rules.get("require_shed_accounting", True):
        if not record.get("shed_accounting_ok"):
            failures.append(
                "qos: shed accounting does not balance "
                "(served + shed + failed != submitted)"
            )
        for name, tenant in (with_qos.get("per_tenant") or {}).items():
            if tenant.get("failed"):
                failures.append(
                    f"qos: tenant {name} failed {tenant['failed']} requests "
                    f"in the QoS arm"
                )
    return failures


def check_budget(
    bench: dict, baseline: dict | None, budget: dict, only: str = "all"
) -> list[str]:
    """Every budget breach as a message; empty means the gate passes."""
    failures: list[str] = []
    if only in ("all", "tiers"):
        failures.extend(check_tiers(bench, baseline, budget))
    if only in ("all", "scale_out"):
        failures.extend(check_scale_out(bench, budget))
    if only in ("all", "warm_boot"):
        failures.extend(check_warm_boot(bench, budget))
    if only in ("all", "qos"):
        failures.extend(check_qos(bench, budget))
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--bench", required=True, help="fresh bench JSON to gate")
    parser.add_argument("--baseline", help="committed baseline bench JSON")
    parser.add_argument("--budget", required=True, help="per-tier budget JSON")
    parser.add_argument(
        "--only", choices=("all", "tiers", "scale_out", "warm_boot", "qos"),
        default="all",
        help="gate only one budget section (default: all)",
    )
    args = parser.parse_args(argv)

    with open(args.bench) as fh:
        bench = json.load(fh)
    baseline = None
    if args.baseline:
        with open(args.baseline) as fh:
            baseline = json.load(fh)
    with open(args.budget) as fh:
        budget = json.load(fh)

    if args.only in ("all", "tiers"):
        for tier, rec in load_records(bench).items():
            woc = rec.get("warm_over_cold")
            cps = steady_cps(rec)
            print(
                f"[{tier}]",
                f"warm_over_cold={woc:.2f}" if woc is not None else "warm_over_cold=n/a",
                f"steady_columns/s={cps:.1f}" if cps else "steady_columns/s=n/a",
                f"outputs_identical={rec.get('outputs_identical')}",
            )
    if args.only in ("all", "scale_out"):
        for entry in (bench.get("scale_out") or {}).get("workers", []):
            cap = entry.get("capacity") or {}
            speedup = cap.get("speedup_vs_single")
            print(
                f"[scale-out {entry.get('workers')}w]",
                f"capacity_speedup={speedup:.2f}" if speedup else "capacity_speedup=n/a",
                f"outputs_identical={entry.get('outputs_identical')}",
                f"restarts={entry.get('restarts')}",
            )
    if args.only in ("all", "warm_boot"):
        record = bench.get("warm_boot")
        if record:
            speedup = record.get("speedup")
            print(
                "[warm-boot]",
                f"speedup={speedup:.2f}" if speedup is not None else "speedup=n/a",
                f"cold_ready_s={(record.get('cold') or {}).get('ready_seconds')}",
                f"artifact_load_s={(record.get('artifact') or {}).get('load_seconds')}",
                f"outputs_identical={record.get('outputs_identical')}",
            )
    if args.only in ("all", "qos"):
        record = bench.get("qos")
        if record:
            for arm_key, label in (("with_qos", "qos"), ("no_qos", "fifo")):
                arm = record.get(arm_key) or {}
                ratio = arm.get("interactive_p99_ratio")
                bulk = (arm.get("per_tenant") or {}).get("bulk") or {}
                print(
                    f"[qos {label}]",
                    f"interactive_p99_ratio={ratio:.2f}"
                    if ratio is not None
                    else "interactive_p99_ratio=n/a",
                    f"bulk_served={bulk.get('served')}/{bulk.get('submitted')}",
                    f"shed={bulk.get('shed')}",
                )
            print(
                "[qos]",
                f"outputs_identical={record.get('outputs_identical')}",
                f"shed_accounting_ok={record.get('shed_accounting_ok')}",
            )

    failures = check_budget(bench, baseline, budget, only=args.only)
    for message in failures:
        print(f"::error title=Serving perf budget breach::{message}")
    if failures:
        return 1
    sections = []
    if args.only in ("all", "tiers"):
        sections.append(f"{len(budget.get('tiers', {}))} tiers")
    if args.only in ("all", "scale_out") and budget.get("scale_out"):
        sections.append("scale_out")
    if args.only in ("all", "warm_boot") and budget.get("warm_boot"):
        sections.append("warm_boot")
    if args.only in ("all", "qos") and budget.get("qos"):
        sections.append("qos")
    print(f"perf budget OK ({', '.join(sections) or 'nothing'} checked)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
