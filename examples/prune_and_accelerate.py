"""The full sparse-DNN lifecycle the paper motivates (§1).

1. Train a *dense* MLP on the synthetic digit dataset.
2. Magnitude-prune it gradually to ~55 % density with fine-tuning
   (`repro.nn.sparsify`) — the pruning pipeline that produces the sparse
   models SNICIT targets.
3. Export the sparse hidden stack and accelerate inference with SNICIT,
   comparing against the SNIG-2020 baseline.

Run:  python examples/prune_and_accelerate.py
"""

import numpy as np

from repro.baselines import SNIG2020
from repro.core import SNICIT, SNICITConfig
from repro.data.loader import Dataset, train_test_split
from repro.data.synth_mnist import synth_mnist
from repro.nn import BoundedReLU, Dense, Flatten, Sequential, SparseLinear
from repro.nn.export import export_sparse_stack
from repro.nn.model import accuracy
from repro.nn.sparsify import iterative_prune


def main() -> None:
    rng = np.random.default_rng(0)
    images, labels = synth_mnist(2400, rng)
    train, test = train_test_split(Dataset(images, labels), 0.25, rng)

    n, l_sparse = 128, 14
    layers = [Flatten(), Dense(784, n, rng), BoundedReLU(1.0)]
    for _ in range(l_sparse):
        layers += [SparseLinear(n, n, 1.0, rng), BoundedReLU(1.0)]  # dense to start
    layers += [Dense(n, 10, rng)]
    model = Sequential(layers, name="dense-mlp")

    print("training the dense model ...")
    model.fit(train, epochs=6, rng=rng, lr=1e-3)
    dense_acc = model.evaluate(test)
    print(f"dense test accuracy: {dense_acc:.4f}")

    print("\ngradual magnitude pruning to 55% density ...")
    report = iterative_prune(
        model, train, test, final_density=0.55, rng=rng, steps=3, epochs_per_step=2
    )
    for density, acc in zip(report.densities, report.accuracies):
        print(f"  density {density:.2f}  ->  accuracy {acc:.4f}")

    print("\naccelerating the pruned stack ...")
    stack = export_sparse_stack(model)
    y0 = stack.head(test.images)
    snig = SNIG2020(stack.network).infer(y0)
    cfg = SNICITConfig(
        threshold_layer=l_sparse // 2, sample_size=128,
        downsample_dim=None, prune_threshold=0.05,
    )
    snicit = SNICIT(stack.network, cfg).infer(y0)
    acc_snig = accuracy(stack.tail(snig.y), test.labels)
    acc_snicit = accuracy(stack.tail(snicit.y), test.labels)
    print(f"SNIG-2020 : {snig.total_seconds * 1e3:8.1f} ms  acc {acc_snig:.4f}")
    print(f"SNICIT    : {snicit.total_seconds * 1e3:8.1f} ms  acc {acc_snicit:.4f} "
          f"({snig.total_seconds / snicit.total_seconds:.2f}x)")


if __name__ == "__main__":
    main()
