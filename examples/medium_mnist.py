"""Medium-scale sparse DNN acceleration (paper §4.2).

Trains (or loads from cache) the paper's DNN C — a 12-layer, 256-neuron
sparse MLP on MNIST-like data — exports its sparse hidden stack, and
compares SNICIT against SNIG-2020 and BF-2019 on the test set, reporting
end-to-end accuracy, SNICIT's accuracy loss at several pruning thresholds,
and the speed-ups.

Run:  python examples/medium_mnist.py
"""

from repro.baselines import BF2019, SNIG2020
from repro.core import SNICIT
from repro.harness.experiments.table4 import medium_config
from repro.harness.medium import get_trained
from repro.nn.model import accuracy


def main() -> None:
    print("loading / training DNN C (256 neurons, 12 sparse layers) ...")
    tm = get_trained("C", verbose=True)
    print(f"test accuracy of the trained model: {tm.test_accuracy:.4f}")

    stack = tm.stack
    net = stack.network
    y0 = stack.head(tm.test.images)
    labels = tm.test.labels
    print(f"sparse stack: {net.num_layers} layers, "
          f"density {net.layers[0].weight.density:.2f}, batch {y0.shape[1]}")

    snig = SNIG2020(net).infer(y0)
    bf = BF2019(net).infer(y0)
    base_acc = accuracy(stack.tail(snig.y), labels)
    print(f"\nSNIG-2020: {snig.total_seconds * 1e3:8.1f} ms  acc {base_acc:.4f}")
    print(f"BF-2019  : {bf.total_seconds * 1e3:8.1f} ms")

    print("\nSNICIT at different near-zero pruning thresholds:")
    print(f"{'threshold':>10s} {'ms':>9s} {'x SNIG':>7s} {'acc loss %':>11s}")
    for thr in (0.0, 0.02, 0.05, 0.1):
        cfg = medium_config(tm.spec.sparse_layers, prune_threshold=thr)
        res = SNICIT(net, cfg).infer(y0)
        acc = accuracy(stack.tail(res.y), labels)
        print(f"{thr:10.2f} {res.total_seconds * 1e3:9.1f} "
              f"{snig.total_seconds / res.total_seconds:6.2f}x "
              f"{(base_acc - acc) * 100:10.3f}")


if __name__ == "__main__":
    main()
