"""Quickstart: accelerate a sparse DNN with SNICIT.

Builds a scaled SDGC benchmark network, runs the plain reference engine and
SNICIT on the same input batch, verifies both agree on the contest's
golden-reference categories, and prints the speed-up with a stage breakdown.

Run:  python examples/quickstart.py
"""

from repro.baselines import DenseReference, XY2021
from repro.core import SNICIT, SNICITConfig
from repro.radixnet import benchmark_input, build_benchmark


def main() -> None:
    # 1. a sparse network: 256 neurons/layer, 48 layers, 32-edge fan-in
    net = build_benchmark("256-48", seed=0)
    print(f"network: {net}")

    # 2. an input batch: 1000 MNIST-like images, resized and binarized
    y0 = benchmark_input(net, batch=1000, seed=1)
    print(f"input block: {y0.shape[0]} neurons x {y0.shape[1]} samples")

    # 3. run the engines
    reference = DenseReference(net).infer(y0)
    champion = XY2021(net).infer(y0)
    snicit = SNICIT(net, SNICITConfig(threshold_layer=24)).infer(y0)

    # 4. correctness: all engines agree on which inputs survive (the SDGC
    #    golden-reference check)
    assert (snicit.categories == reference.categories).all()
    assert (champion.categories == reference.categories).all()
    print(f"categories agree; {int(snicit.categories.sum())} inputs alive at the last layer")

    # 5. results
    print(f"\nreference : {reference.total_seconds * 1e3:8.1f} ms")
    print(f"XY-2021   : {champion.total_seconds * 1e3:8.1f} ms")
    print(f"SNICIT    : {snicit.total_seconds * 1e3:8.1f} ms "
          f"({champion.total_seconds / snicit.total_seconds:.2f}x vs XY-2021)")
    print("\nSNICIT stage breakdown:")
    for stage, seconds in snicit.stage_seconds.items():
        print(f"  {stage:18s} {seconds * 1e3:8.1f} ms")
    print(f"\ncentroids selected: {snicit.stats['n_centroids']}")
    trace = snicit.stats["active_columns_trace"]
    print(f"non-empty columns: {trace[0]} -> {trace[-1]} of {y0.shape[1]}")


if __name__ == "__main__":
    main()
