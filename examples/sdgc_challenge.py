"""Sparse DNN Graph Challenge workflow (paper §4.1).

Reproduces one row of the paper's Table 3 end to end: generate a Radix-Net
benchmark, run SNICIT and all three champion baselines, verify golden-
reference agreement, and report wall-clock plus modeled-GPU latency — then
sweep the threshold layer t to show the paper's Figure-8 shape (the optimum
sits in the interior).

Run:  python examples/sdgc_challenge.py [benchmark] [batch]
e.g.  python examples/sdgc_challenge.py 576-48 1500
"""

import sys

from repro.core import SNICIT
from repro.harness.experiments.common import sdgc_config
from repro.harness.runner import run_comparison
from repro.radixnet import BENCHMARKS, benchmark_input, build_benchmark


def main(name: str = "256-120", batch: int = 1500) -> None:
    spec = BENCHMARKS[name]
    print(f"benchmark {name} (stands in for the paper's {spec.paper_name})")
    net = build_benchmark(name, seed=0)
    y0 = benchmark_input(net, batch, seed=1)

    cfg = sdgc_config(spec.layers)
    runs = run_comparison(net, y0, cfg)  # raises if categories disagree
    sn = runs["snicit"]
    print(f"\n{'engine':10s} {'wall ms':>10s} {'modeled ms':>12s} {'speed-up':>9s}")
    for kind, run in runs.items():
        speedup = run.wall_ms / sn.wall_ms
        label = f"{sn.wall_ms / run.wall_ms:.2f}x" if kind != "snicit" else "-"
        print(f"{kind:10s} {run.wall_ms:10.1f} {run.modeled_ms:12.4f} "
              f"{run.wall_ms / sn.wall_ms:8.2f}x")

    print("\nthreshold-layer sweep (Figure 8 shape):")
    for t in range(0, spec.layers + 1, max(1, spec.layers // 6)):
        res = SNICIT(net, sdgc_config(spec.layers, threshold_layer=t)).infer(y0)
        bar = "#" * int(res.total_seconds * 1e3 / 20)
        print(f"  t={t:3d}  {res.total_seconds * 1e3:8.1f} ms  {bar}")


if __name__ == "__main__":
    args = sys.argv[1:]
    main(
        args[0] if args else "256-120",
        int(args[1]) if len(args) > 1 else 1500,
    )
