"""Running the paper's CUDA kernels on the virtual GPU.

The paper specifies three GPU kernels in CUDA pseudocode (Algorithms 1-3).
This example executes all three *as written* — shared memory, barriers,
atomics, ``__syncthreads_count`` — on the per-thread virtual-GPU executor,
cross-checks them against the fast vectorized twins the production pipeline
uses, and prints the cost-model ledger (launches, FLOPs, bytes, atomics,
modeled latency) that the experiments use as the GPU-time stand-in.

Run:  python examples/virtual_gpu_kernels.py
"""

import numpy as np

from repro.core.conversion import construct_kernel, convert
from repro.core.postconv import load_reduced_spmm, update_centroids_residues, update_kernel
from repro.core.pruning import prune_samples, prune_samples_kernel, select_centroids
from repro.core.sampling import sample_columns, sum_downsample
from repro.gpu import VirtualDevice
from repro.sparse import CSRMatrix


def main() -> None:
    device = VirtualDevice()
    rng = np.random.default_rng(0)
    n, b, ymax = 32, 24, 4.0

    # a converged-looking state: railed values with duplicate columns
    y = np.round(rng.random((n, b)) * ymax, 1).astype(np.float32)
    y[:, 5] = y[:, 0]
    y[:, 9] = y[:, 2]

    # --- Algorithm 1: sample pruning ------------------------------------
    f = sum_downsample(sample_columns(y, 12), 8)
    col_idx_kernel = prune_samples_kernel(device, f, eta=0.3, eps=0.3)
    col_idx_vec = prune_samples(f, eta=0.3, eps=0.3)
    assert np.array_equal(col_idx_kernel, col_idx_vec)
    cents = select_centroids(col_idx_kernel)
    print(f"Algorithm 1 (sample pruning): {len(cents)} centroids from 12 samples "
          f"- kernel == vectorized: True")

    # --- Algorithm 2: Ŷ and M construction -------------------------------
    yhat_k, m_k, ne_k = construct_kernel(device, y, cents, tile=8, block=8)
    yhat_v, m_v, ne_v = convert(y, cents)
    assert np.array_equal(m_k, m_v) and np.allclose(yhat_k, yhat_v, atol=1e-6)
    print(f"Algorithm 2 (construction): {int(ne_k.sum())}/{b} non-empty columns "
          f"- kernel == vectorized: True")

    # --- Algorithm 3: centroid / residue update ---------------------------
    wd = rng.random((n, n)).astype(np.float32)
    wd[wd > 0.3] = 0
    w = CSRMatrix.from_dense(wd)
    ne_idx = np.flatnonzero(ne_k | (m_k == -1))
    z = load_reduced_spmm(w, yhat_k, ne_idx)
    out_k, rec_k = update_kernel(device, z, -0.1, m_k, ne_idx, ymax, block=8)
    out_v, rec_v = update_centroids_residues(z, -0.1, m_k, ne_idx, ymax)
    assert np.allclose(out_k, out_v, atol=1e-6) and np.array_equal(rec_k, rec_v)
    print("Algorithm 3 (update): kernel == vectorized: True")

    # --- the cost ledger ----------------------------------------------------
    snap = device.snapshot()
    print("\nvirtual-GPU ledger:")
    print(f"  kernel launches : {snap.launches}")
    print(f"  flops           : {snap.flops:.3g}")
    print(f"  bytes moved     : {snap.bytes_total:.3g}")
    print(f"  atomics         : {snap.atomics}")
    print(f"  barriers        : {snap.barriers}")
    print(f"  modeled latency : {snap.modeled_seconds * 1e6:.2f} us")


if __name__ == "__main__":
    main()
