"""Figure 7: stage breakdown on the four SDGC nets."""

from repro.harness.experiments import fig7


def test_fig7_breakdown(benchmark, record_report):
    report = benchmark.pedantic(fig7.run, rounds=1, iterations=1)
    record_report(report)
    for name, shares in report.data.items():
        assert shares["recovery"] < 5.0, f"{name}: recovery must be negligible"
        assert shares["pre_convergence"] > shares["recovery"]
        total = sum(shares[s] for s in
                    ("pre_convergence", "conversion", "post_convergence", "recovery"))
        assert abs(total - 100.0) < 1e-6
