"""Design-choice ablations (DESIGN.md §4): ne_idx interval, pruning
threshold, sum downsampling, spGEMM-vs-spMM."""

from repro.harness.experiments import ablations


def test_ablations(benchmark, record_report):
    report = benchmark.pedantic(ablations.run, rounds=1, iterations=1)
    record_report(report)
    rendered = report.render()
    assert "spGEMM" in rendered and "load-reduced" in rendered
