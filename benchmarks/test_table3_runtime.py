"""Table 3: overall runtime of SNICIT vs the previous champions.

Shape assertions: SNICIT beats XY-2021 on the deep benchmarks, the margin
grows with depth within each neuron tier, and every engine agrees on the
SDGC categories (enforced inside run_comparison).
"""

import numpy as np

from repro.core import SNICIT
from repro.harness.experiments import table3
from repro.harness.experiments.common import sdgc_config
from repro.harness.workloads import get_benchmark, get_input


def test_table3_runtime(benchmark, record_report):
    report = benchmark.pedantic(table3.run, rounds=1, iterations=1)
    record_report(report)
    data = report.data
    # SNICIT wins on the deep (120-layer) rows on wall clock
    for name in ("256-120", "576-120", "1024-120"):
        if name in data:
            assert data[name]["x_xy"] > 1.0, f"{name}: SNICIT should beat XY"
    # margins grow with depth within a tier (the paper's headline trend)
    for tier in (256, 576, 1024):
        xs = [data[f"{tier}-{l}"]["x_xy"] for l in (24, 120) if f"{tier}-{l}" in data]
        if len(xs) == 2:
            assert xs[1] > xs[0], f"tier {tier}: speed-up should grow with depth"


def test_snicit_inference_throughput(benchmark):
    """pytest-benchmark timing of the headline engine on one benchmark."""
    net = get_benchmark("256-48")
    y0 = get_input("256-48", 600)
    engine = SNICIT(net, sdgc_config(net.num_layers))
    benchmark.pedantic(lambda: engine.infer(y0), rounds=3, iterations=1)
