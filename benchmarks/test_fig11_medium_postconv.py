"""Figure 11: post-convergence layer latency on medium DNNs."""

from repro.harness.experiments import fig11


def test_fig11_medium_postconv(benchmark, record_report):
    report = benchmark.pedantic(fig11.run, rounds=1, iterations=1)
    record_report(report)
    for dnn_id in ("A", "B", "C", "D"):
        row = report.data[dnn_id]
        assert row["snicit"] < row["snig"], f"{dnn_id}: SNICIT post-conv should beat SNIG"
        assert row["snicit"] < row["bf"], f"{dnn_id}: SNICIT post-conv should beat BF"
    var = report.data["variance"]
    assert var["snicit"] < var["snig"] and var["snicit"] < var["bf"], (
        "SNICIT's cross-network latency variance should be smallest (§4.2.2)"
    )
