"""Figure 8: runtime vs threshold layer t."""

from repro.harness.experiments import fig8


def test_fig8_threshold(benchmark, record_report):
    report = benchmark.pedantic(
        fig8.run, kwargs={"step": 20}, rounds=1, iterations=1
    )
    record_report(report)
    for name, row in report.data.items():
        ts, ms = row["t"], row["ms"]
        best = ms.index(min(ms))
        # the paper's finding: the optimum is in the interior, well below l
        assert ts[best] < ts[-1], f"{name}: t=l should not be optimal"
