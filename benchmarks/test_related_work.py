"""Related-work comparison (paper §2.2.2): WTA, thresholding, cache exit."""

from repro.harness.experiments import related


def test_related_work(benchmark, record_report):
    report = benchmark.pedantic(related.run, rounds=1, iterations=1)
    record_report(report)
    rows = report.data
    assert rows["SNICIT"]["x_base"] > 1.0, "SNICIT should beat the SNIG baseline"
    # the cited techniques pay accuracy (or deliver labels only) for speed;
    # SNICIT's loss must be the smallest of the activation-preserving methods
    assert rows["SNICIT"]["acc_loss"] <= rows["DASNet-WTA (k=0.3)"]["acc_loss"] + 0.5
