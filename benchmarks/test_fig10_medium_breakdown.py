"""Figure 10: stage breakdown on medium DNNs A and D."""

from repro.harness.experiments import fig10


def test_fig10_medium_breakdown(benchmark, record_report):
    report = benchmark.pedantic(fig10.run, rounds=1, iterations=1)
    record_report(report)
    for dnn_id, shares in report.data.items():
        assert shares["recovery"] < 5.0
        assert shares["pre_convergence"] > 25.0, "pre-convergence should dominate"
