"""Figure 1: convergence / centralization + computational intensity."""

from repro.analysis.tsne import tsne
from repro.harness.experiments import fig1
from repro.harness.medium import get_trained


def test_fig1_convergence(benchmark, record_report):
    report = fig1.run()
    record_report(report)
    seps = report.data["separations"]
    layers = sorted(seps)
    # centralization: separation at the deepest probe exceeds the shallowest
    assert seps[layers[-1]] > seps[layers[0]], "classes should centralize with depth"
    # computational intensity drops at the threshold layer
    dense = report.data["intensity_dense"]
    snicit = report.data["intensity_snicit"]
    assert snicit[-1] < 0.5 * dense[-1], "SNICIT should cut deep-layer intensity"

    tm = get_trained("B")
    y = tm.stack.head(tm.test.images[:100]).T
    benchmark.pedantic(lambda: tsne(y, n_iter=100), rounds=1, iterations=1)
