"""Table 1: benchmark statistics (and generation throughput)."""

from repro.harness.experiments import table1
from repro.radixnet import build_benchmark


def test_table1_stats(benchmark, record_report):
    report = table1.run()
    record_report(report)
    # shape check: connection counts grow monotonically along each axis
    # (deeper within a tier, larger tier at fixed depth) — the paper's
    # global ordering has exact ties, so per-axis monotonicity is the
    # meaningful invariant
    data = report.data
    for tier in (144, 256, 576, 1024):
        conns = [data[f"{tier}-{l}"]["connections"] for l in (24, 48, 120)]
        assert conns == sorted(conns)
    for layers in (24, 48, 120):
        conns = [data[f"{t}-{layers}"]["connections"] for t in (144, 256, 576, 1024)]
        assert conns == sorted(conns)
    benchmark.pedantic(lambda: build_benchmark("256-24", seed=1), rounds=3, iterations=1)
