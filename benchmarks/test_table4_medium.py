"""Table 4: medium-scale sparse DNNs — accuracy loss and speed-ups."""

from repro.harness.experiments import table4
from repro.harness.medium import get_trained


def test_table4_medium(benchmark, record_report):
    report = table4.run(scale=1.0)
    record_report(report)
    for dnn_id, row in report.data.items():
        assert row["x_snig"] > 1.0, f"DNN {dnn_id}: SNICIT should beat SNIG-2020"
        assert row["x_bf"] > 1.0, f"DNN {dnn_id}: SNICIT should beat BF-2019"
        assert row["acc_loss"] < 2.0, f"DNN {dnn_id}: accuracy loss out of band"
    benchmark.pedantic(
        lambda: table4.run_one("C"), rounds=2, iterations=1
    )
