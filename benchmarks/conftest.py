"""Benchmark-suite configuration.

Each benchmark regenerates one table/figure of the paper, prints it, and
writes it to ``benchmarks/results/<experiment>.txt``.  Batch sizes scale
with ``REPRO_BENCH_SCALE`` (default 0.5 here so the whole suite finishes in
minutes; set to 1.0 for the full scaled workloads).
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"

os.environ.setdefault("REPRO_BENCH_SCALE", "0.5")


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def record_report(results_dir):
    """Persist + print an ExperimentReport."""

    def _record(report) -> None:
        text = report.render()
        (results_dir / f"{report.experiment}.txt").write_text(text + "\n")
        print("\n" + text)

    return _record
