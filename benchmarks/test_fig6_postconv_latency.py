"""Figure 6: average post-convergence layer latency vs XY-2021."""

from repro.harness.experiments import fig6
from repro.harness.experiments.common import sdgc_config
from repro.harness.workloads import get_benchmark, get_input


def test_fig6_postconv_latency(benchmark, record_report):
    report = fig6.run()
    record_report(report)
    reductions = {k: v["reduction"] for k, v in report.data.items()}
    # SNICIT's post-convergence layers are faster on the deep benchmarks
    deep = [v for k, v in reductions.items() if k.endswith("-120")]
    assert deep and min(deep) > 1.0
    # the reduction grows with benchmark size (compare smallest vs largest tier)
    if "144-120" in reductions and "576-120" in reductions:
        assert reductions["576-120"] > reductions["144-120"]

    from repro.core import SNICIT

    net = get_benchmark("256-120")
    y0 = get_input("256-120", 500)
    engine = SNICIT(net, sdgc_config(net.num_layers))
    benchmark.pedantic(lambda: engine.infer(y0), rounds=2, iterations=1)
