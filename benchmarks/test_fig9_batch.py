"""Figure 9: runtime vs batch size B (SNICIT vs XY-2021)."""

import numpy as np

from repro.harness.experiments import fig9


def test_fig9_batch(benchmark, record_report):
    report = benchmark.pedantic(
        fig9.run, kwargs={"benchmarks": ("256-120", "576-120")}, rounds=1, iterations=1
    )
    record_report(report)
    for name, row in report.data.items():
        speedups = np.array(row["xy_ms"]) / np.array(row["snicit_ms"])
        # paper: speed-up grows with B — compare smallest vs largest batch
        assert speedups[-1] > speedups[0], f"{name}: speed-up should grow with B"
