"""Figure 12: (t, B) grid — speed-up over SNIG + accuracy loss."""

from repro.harness.experiments import fig12


def test_fig12_grid(benchmark, record_report):
    report = benchmark.pedantic(
        fig12.run,
        kwargs={"dnn_ids": ("B", "C"), "t_step": 4},
        rounds=1,
        iterations=1,
    )
    record_report(report)
    for dnn_id in ("B", "C"):
        means = report.data[dnn_id]["mean_speedup_by_batch"]
        batches = sorted(int(k) for k in means)
        # paper: larger B -> larger speed-ups
        assert means[str(batches[-1])] > means[str(batches[0])], (
            f"DNN {dnn_id}: speed-up should grow with batch size"
        )
        # accuracy loss stays small everywhere on the grid
        losses = [v[1] for k, v in report.data[dnn_id].items()
                  if "," in k]
        assert max(losses) < 3.0
