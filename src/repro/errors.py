"""Exception hierarchy for the repro package.

Every error raised by this package derives from :class:`ReproError` so callers
can catch library failures without catching unrelated bugs.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ShapeError(ReproError, ValueError):
    """An array argument has an incompatible shape."""


class FormatError(ReproError, ValueError):
    """A sparse matrix is structurally invalid (bad indptr, out-of-range index, ...)."""


class ConfigError(ReproError, ValueError):
    """An algorithm configuration value is out of its documented range."""


class DeviceError(ReproError, RuntimeError):
    """Virtual-GPU misuse: out-of-memory, freed buffer access, bad launch geometry."""


class KernelError(ReproError, RuntimeError):
    """A virtual-GPU kernel violated the execution model (e.g. divergent barrier)."""


class ConvergenceError(ReproError, RuntimeError):
    """An iterative routine failed to converge within its iteration budget."""


class ServeOverflowError(ReproError, RuntimeError):
    """The serving queue is full; the request was rejected, never dropped silently."""


class ServeClosedError(ReproError, RuntimeError):
    """The serving transport is shut down; the request was not (or will not be) run."""


class ServeShedError(ServeOverflowError):
    """Admission control shed the request before it entered a lane.

    Subclasses :class:`ServeOverflowError` so every existing overflow handler
    (reject accounting in routers, benches, and the fleet) treats a shed as a
    rejection; ``reason`` carries the admission trigger (``rate_limit``,
    ``queue_pressure``, ``slo_burn``, ``memory_pressure``).
    """

    def __init__(self, message: str, *, reason: str = "shed") -> None:
        super().__init__(message)
        self.reason = reason
