"""SNICIT reproduction: sparse DNN inference acceleration via compression at inference time.

This package reimplements the system described in

    Shui Jiang, Tsung-Wei Huang, Bei Yu, Tsung-Yi Ho.
    "SNICIT: Accelerating Sparse Neural Network Inference via Compression at
    Inference Time on GPU." ICPP 2023.

together with every substrate it depends on: a virtual-GPU execution model
(:mod:`repro.gpu`), from-scratch sparse matrix formats and kernels
(:mod:`repro.sparse`), the Radix-Net synthetic network generator used by the
HPEC Sparse DNN Graph Challenge (:mod:`repro.radixnet`), synthetic
MNIST/CIFAR-like datasets (:mod:`repro.data`), a small trainable neural-network
stack for the paper's medium-scale experiments (:mod:`repro.nn`), the SNICIT
algorithm itself (:mod:`repro.core`), the prior Graph Challenge champions used
as baselines (:mod:`repro.baselines`), analysis utilities including an exact
t-SNE (:mod:`repro.analysis`), and the experiment harness that regenerates
every table and figure of the paper (:mod:`repro.harness`).

Quickstart
----------
>>> from repro import radixnet, core, baselines
>>> net = radixnet.build_benchmark("256-24", seed=0)
>>> y0 = radixnet.benchmark_input(net, batch=512, seed=1)
>>> engine = core.SNICIT(net, core.SNICITConfig(threshold_layer=8))
>>> result = engine.infer(y0)
>>> ref = baselines.DenseReference(net).infer(y0)
>>> bool((result.categories == ref.categories).all())
True
"""

from repro._version import __version__
from repro.network import LayerSpec, SparseNetwork

__all__ = ["__version__", "SparseNetwork", "LayerSpec"]
