"""Procedural MNIST-like digit rendering.

Each class has a fixed stroke skeleton (a polyline through class-seeded
control points, plus an elliptical arc for even classes).  An instance
jitters the control points, stamps Gaussian ink along the strokes, and adds
pixel noise — yielding within-class variation around a stable prototype,
like handwritten digits.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError

__all__ = ["render_digit", "synth_mnist"]

_N_CLASSES = 10


def _class_skeleton(class_id: int, size: int) -> np.ndarray:
    """Deterministic control points for a class (independent of instance rng)."""
    proto_rng = np.random.default_rng(97_000 + class_id)
    n_pts = 4 + class_id % 3
    margin = size * 0.15
    pts = proto_rng.uniform(margin, size - margin, size=(n_pts, 2))
    if class_id % 2 == 0:
        # even classes get a loop segment: append an arc around the centroid
        center = pts.mean(axis=0)
        radius = size * 0.22
        angles = np.linspace(0.0, 1.5 * np.pi, 6) + proto_rng.uniform(0, np.pi)
        arc = center + radius * np.stack([np.cos(angles), np.sin(angles)], axis=1)
        pts = np.concatenate([pts, arc], axis=0)
    return pts


def render_digit(
    class_id: int,
    rng: np.random.Generator,
    size: int = 28,
    jitter: float = 1.2,
    ink_sigma: float = 1.1,
    noise: float = 0.05,
) -> np.ndarray:
    """Render one ``(size, size)`` float32 image of the given class in [0, 1]."""
    if not 0 <= class_id < _N_CLASSES:
        raise ConfigError(f"class_id must be in [0, {_N_CLASSES}), got {class_id}")
    pts = _class_skeleton(class_id, size) + rng.normal(0.0, jitter, size=(1, 2))
    pts = pts + rng.normal(0.0, jitter * 0.5, size=pts.shape)

    # sample stamp centers densely along the polyline
    seg_starts = pts[:-1]
    seg_ends = pts[1:]
    seg_lens = np.linalg.norm(seg_ends - seg_starts, axis=1)
    stamps = []
    for s, e, ln in zip(seg_starts, seg_ends, seg_lens):
        n = max(2, int(ln * 2))
        ts = np.linspace(0.0, 1.0, n)[:, None]
        stamps.append(s[None, :] * (1 - ts) + e[None, :] * ts)
    centers = np.concatenate(stamps, axis=0)

    yy, xx = np.mgrid[0:size, 0:size].astype(np.float64)
    img = np.zeros((size, size), dtype=np.float64)
    sig2 = 2.0 * ink_sigma**2
    # accumulate max ink over stamps (strokes, not heat blobs)
    d2 = (xx[None] - centers[:, 0, None, None]) ** 2 + (yy[None] - centers[:, 1, None, None]) ** 2
    img = np.exp(-d2 / sig2).max(axis=0)

    brightness = rng.uniform(0.8, 1.0)
    img = img * brightness + rng.normal(0.0, noise, size=img.shape)
    return np.clip(img, 0.0, 1.0).astype(np.float32)


def prototype_digit_batch(
    n: int,
    rng: np.random.Generator,
    size: int = 28,
    max_shift: int = 2,
    noise: float = 0.01,
) -> tuple[np.ndarray, np.ndarray]:
    """Digits with *quantized* within-class variation (SDGC input model).

    Each instance is its class prototype translated by an integer shift in
    ``[-max_shift, max_shift]^2`` plus light pixel noise.  After the
    contest's binarization and downsampling, batches drawn this way contain
    many (near-)duplicate feature columns — the redundancy structure of real
    MNIST batches that compression-at-inference-time methods exploit.
    :func:`synth_mnist` (continuous stroke jitter, every instance unique) is
    the harder variant used for training the medium-scale networks.
    """
    protos = np.stack([
        render_digit(c, np.random.default_rng(77_000 + c), size=size, jitter=0.0, noise=0.0)
        for c in range(_N_CLASSES)
    ])
    labels = rng.integers(0, _N_CLASSES, size=n)
    shifts = rng.integers(-max_shift, max_shift + 1, size=(n, 2))
    images = np.empty((n, size, size), dtype=np.float32)
    for i, (c, (dy, dx)) in enumerate(zip(labels, shifts)):
        images[i] = np.roll(protos[c], (int(dy), int(dx)), axis=(0, 1))
    if noise > 0:
        images += rng.normal(0.0, noise, size=images.shape).astype(np.float32)
        np.clip(images, 0.0, 1.0, out=images)
    return images, labels.astype(np.int64)


def synth_mnist(
    n: int, rng: np.random.Generator, size: int = 28
) -> tuple[np.ndarray, np.ndarray]:
    """``n`` labeled digit images: ``(images (n,size,size), labels (n,))``.

    Labels are drawn uniformly and shuffled, matching the paper's note that
    MNIST batches arrive with classes interleaved (§3.2.1 column sampling
    relies on this).
    """
    labels = rng.integers(0, _N_CLASSES, size=n)
    images = np.stack([render_digit(int(c), rng, size=size) for c in labels])
    return images, labels.astype(np.int64)
