"""Bilinear image resizing (SDGC input preparation, §2.1).

SDGC resizes each 28x28 MNIST image "with fine granularity" to 32x32, 64x64,
128x128 or 256x256 before flattening into feature columns.  This is a plain
align-corners bilinear interpolation, vectorized over the whole batch.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError, ShapeError

__all__ = ["bilinear_resize"]


def bilinear_resize(images: np.ndarray, out_size: int) -> np.ndarray:
    """Resize a batch ``(n, h, w)`` to ``(n, out_size, out_size)``."""
    images = np.asarray(images)
    if images.ndim != 3:
        raise ShapeError(f"expected (n, h, w) batch, got shape {images.shape}")
    if out_size < 1:
        raise ConfigError("out_size must be >= 1")
    n, h, w = images.shape
    if (h, w) == (out_size, out_size):
        return images.astype(np.float32, copy=True)

    def grid(in_dim: int) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        if out_size == 1:
            coords = np.zeros(1)
        else:
            coords = np.linspace(0.0, in_dim - 1.0, out_size)
        lo = np.floor(coords).astype(np.int64)
        hi = np.minimum(lo + 1, in_dim - 1)
        frac = coords - lo
        return lo, hi, frac

    y_lo, y_hi, fy = grid(h)
    x_lo, x_hi, fx = grid(w)

    top = images[:, y_lo][:, :, x_lo] * (1 - fx) + images[:, y_lo][:, :, x_hi] * fx
    bot = images[:, y_hi][:, :, x_lo] * (1 - fx) + images[:, y_hi][:, :, x_hi] * fx
    out = top * (1 - fy[:, None]) + bot * fy[:, None]
    return out.astype(np.float32)
