"""Dataset container, column layout, and split utilities.

The contest (and this whole repo) stores activations column-major in the
mathematical sense: ``Y`` is ``(N, B)`` with one *column per sample*
(paper Table 2), so images must be flattened to columns.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.errors import ConfigError, ShapeError

__all__ = ["Dataset", "images_to_columns", "binarize", "train_test_split"]


@dataclass
class Dataset:
    """Labeled image set: ``images`` is (n, ...) and ``labels`` is (n,)."""

    images: np.ndarray
    labels: np.ndarray

    def __post_init__(self) -> None:
        if len(self.images) != len(self.labels):
            raise ShapeError(
                f"{len(self.images)} images vs {len(self.labels)} labels"
            )

    def __len__(self) -> int:
        return len(self.images)

    def shuffled(self, rng: np.random.Generator) -> "Dataset":
        order = rng.permutation(len(self))
        return Dataset(self.images[order], self.labels[order])

    def batches(self, batch_size: int) -> Iterator["Dataset"]:
        """Yield consecutive mini-batches (last one may be short)."""
        if batch_size < 1:
            raise ConfigError("batch_size must be >= 1")
        for lo in range(0, len(self), batch_size):
            yield Dataset(self.images[lo : lo + batch_size], self.labels[lo : lo + batch_size])


def images_to_columns(images: np.ndarray) -> np.ndarray:
    """Flatten an image batch ``(n, ...)`` into a feature matrix ``(N, n)``.

    Column ``i`` is sample ``i`` — the layout of ``Y(0)`` in the paper.
    """
    images = np.asarray(images)
    if images.ndim < 2:
        raise ShapeError("need at least (n, features)")
    n = images.shape[0]
    return images.reshape(n, -1).T.astype(np.float32, copy=True)


def binarize(x: np.ndarray, threshold: float = 0.5) -> np.ndarray:
    """SDGC-style input binarization: pixels above threshold become 1.0."""
    return (np.asarray(x) > threshold).astype(np.float32)


def train_test_split(
    ds: Dataset, test_fraction: float, rng: np.random.Generator
) -> tuple[Dataset, Dataset]:
    """Shuffle and split; returns (train, test)."""
    if not 0.0 < test_fraction < 1.0:
        raise ConfigError("test_fraction must be in (0, 1)")
    shuffled = ds.shuffled(rng)
    n_test = max(1, int(round(len(ds) * test_fraction)))
    return (
        Dataset(shuffled.images[n_test:], shuffled.labels[n_test:]),
        Dataset(shuffled.images[:n_test], shuffled.labels[:n_test]),
    )
