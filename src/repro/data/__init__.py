"""Synthetic datasets standing in for MNIST and CIFAR-10.

The real datasets are not available offline, so this package renders
procedural substitutes with the properties the experiments rely on:

* ten visually distinct classes whose instances are small perturbations of a
  class prototype — so intermediate activations *cluster by class*, the
  phenomenon SNICIT exploits (paper Fig. 1);
* trainable: the NN stack reaches high accuracy on held-out data, so the
  accuracy-loss measurements of Table 4 / Fig. 12 are meaningful;
* MNIST-shaped (28x28 grayscale) and CIFAR-shaped (3x32x32 color) so the
  paper's resizing pipeline (28^2 -> 32^2/64^2/... flattened feature
  columns, §2.1) is exercised unchanged.
"""

from repro.data.synth_mnist import synth_mnist, render_digit
from repro.data.synth_cifar import synth_cifar
from repro.data.resize import bilinear_resize
from repro.data.loader import (
    Dataset,
    binarize,
    images_to_columns,
    train_test_split,
)

__all__ = [
    "synth_mnist",
    "render_digit",
    "synth_cifar",
    "bilinear_resize",
    "Dataset",
    "binarize",
    "images_to_columns",
    "train_test_split",
]
