"""Procedural CIFAR-like color image rendering.

Each class is a textured color field: a class-specific mixture of oriented
sinusoids plus a class-colored blob, with instance-level phase shifts, blob
displacement and noise.  Classes are separable by both texture frequency and
color statistics, giving convolutional layers something real to learn.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError

__all__ = ["synth_cifar"]

_N_CLASSES = 10


def _class_params(class_id: int) -> dict:
    proto_rng = np.random.default_rng(53_000 + class_id)
    return {
        "freqs": proto_rng.uniform(0.5, 3.0, size=(2, 2)),  # two oriented waves
        "phases": proto_rng.uniform(0, 2 * np.pi, size=2),
        "color": proto_rng.uniform(0.2, 1.0, size=3),
        "blob_color": proto_rng.uniform(0.0, 1.0, size=3),
        "blob_sigma": proto_rng.uniform(3.0, 6.0),
    }


def _render(class_id: int, rng: np.random.Generator, size: int) -> np.ndarray:
    p = _class_params(class_id)
    yy, xx = np.mgrid[0:size, 0:size].astype(np.float64) / size
    waves = np.zeros((size, size))
    for (fx, fy), ph in zip(p["freqs"], p["phases"]):
        waves += np.sin(2 * np.pi * (fx * xx + fy * yy) + ph + rng.uniform(-0.5, 0.5))
    waves = (waves - waves.min()) / (np.ptp(waves) + 1e-9)

    cx, cy = rng.uniform(0.25 * size, 0.75 * size, size=2)
    blob = np.exp(-(((xx * size - cx) ** 2 + (yy * size - cy) ** 2) / (2 * p["blob_sigma"] ** 2)))

    img = (
        p["color"][:, None, None] * waves[None]
        + p["blob_color"][:, None, None] * blob[None] * 0.8
    )
    img += rng.normal(0.0, 0.04, size=img.shape)
    return np.clip(img, 0.0, 1.0).astype(np.float32)


def synth_cifar(
    n: int, rng: np.random.Generator, size: int = 32
) -> tuple[np.ndarray, np.ndarray]:
    """``n`` labeled color images: ``(images (n,3,size,size), labels (n,))``."""
    if n < 0:
        raise ConfigError("n must be non-negative")
    labels = rng.integers(0, _N_CLASSES, size=n)
    images = np.stack([_render(int(c), rng, size) for c in labels]) if n else np.zeros(
        (0, 3, size, size), dtype=np.float32
    )
    return images, labels.astype(np.int64)
