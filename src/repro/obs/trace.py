"""Nested-span tracer with a no-op fast path and Chrome-trace export.

The tracer produces the span tree the paper's own evaluation implies:
request -> stage -> layer -> kernel, each span carrying wall-clock duration
plus arbitrary attributes (SNICIT telemetry such as active-column counts, or
the cost model's :class:`~repro.gpu.costmodel.KernelCharge` for modeled
flops/bytes).  Two exporters make the tree consumable outside the process:

* :meth:`Tracer.to_chrome` — the Chrome trace-event JSON format, loadable in
  Perfetto or ``chrome://tracing`` (complete ``"X"`` events for spans, ``"i"``
  for instants, ``"b"``/``"e"`` async pairs for request lifecycles);
* :meth:`Tracer.to_jsonl` — one JSON object per line, grep/pandas friendly.

When tracing is off the engines hold :data:`NULL_TRACER`, whose ``span()``
returns one shared object with empty ``__enter__``/``__exit__`` — the hot
path pays a method call and an attribute check, nothing else.  That is the
"near-zero overhead when disabled" contract the serving benchmarks rely on.
"""

from __future__ import annotations

import json
import threading
import time
from pathlib import Path
from typing import TYPE_CHECKING, Any

from repro.obs.export import json_safe

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.gpu.costmodel import KernelCharge

__all__ = ["Span", "Tracer", "NullTracer", "NULL_TRACER", "as_tracer"]


class Span:
    """One timed region; also its own context manager.

    Created via :meth:`Tracer.span`; entering records the start time and
    pushes the span on the tracer's stack (establishing parenthood), exiting
    records the end time.  ``args`` carries attributes; :meth:`charge`
    attaches a kernel charge so the exported event links wall time to
    modeled flops/bytes.
    """

    __slots__ = ("tracer", "name", "cat", "args", "t0", "t1", "parent", "tid")

    def __init__(self, tracer: "Tracer", name: str, cat: str, args: dict[str, Any]):
        self.tracer = tracer
        self.name = name
        self.cat = cat
        self.args = args
        self.t0: float | None = None
        self.t1: float | None = None
        self.parent: Span | None = None
        #: dense per-tracer thread index of the thread that entered the span
        self.tid: int = 0

    # ------------------------------------------------------------ lifecycle
    def __enter__(self) -> "Span":
        self.tracer._enter(self)
        self.t0 = self.tracer.clock()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.t1 = self.tracer.clock()
        self.tracer._exit(self)

    # ----------------------------------------------------------- attributes
    def set(self, **attrs: Any) -> "Span":
        """Attach attributes to the span (last write per key wins)."""
        self.args.update(attrs)
        return self

    def charge(self, charge: "KernelCharge", modeled_seconds: float | None = None) -> "Span":
        """Link a cost-model charge: modeled flops/bytes ride on the span."""
        self.args.update(
            kernel=charge.name,
            flops=charge.flops,
            bytes_read=charge.bytes_read,
            bytes_written=charge.bytes_written,
        )
        if modeled_seconds is not None:
            self.args["modeled_seconds"] = modeled_seconds
        return self

    # ------------------------------------------------------------- geometry
    @property
    def duration(self) -> float:
        """Wall seconds, 0.0 while the span is still open."""
        if self.t0 is None or self.t1 is None:
            return 0.0
        return self.t1 - self.t0

    @property
    def closed(self) -> bool:
        return self.t1 is not None

    @property
    def children(self) -> list["Span"]:
        return [s for s in self.tracer.spans if s.parent is self]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Span({self.name!r}, cat={self.cat!r}, dur={self.duration * 1e3:.3f}ms)"


class _NullSpan:
    """Shared do-nothing span; every no-op ``with`` reuses this one object."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None

    def set(self, **attrs: Any) -> "_NullSpan":
        return self

    def charge(self, charge, modeled_seconds=None) -> "_NullSpan":
        return self

    duration = 0.0


_SHARED_NULL_SPAN = _NullSpan()


class NullTracer:
    """Disabled tracer: records nothing, costs one call per span site."""

    enabled = False
    spans: tuple = ()
    events: tuple = ()

    def span(self, name: str, cat: str = "", **args: Any) -> _NullSpan:
        return _SHARED_NULL_SPAN

    def event(self, name: str, **args: Any) -> None:
        return None

    def begin_async(self, name: str, aid: int, **args: Any) -> None:
        return None

    def end_async(self, name: str, aid: int, **args: Any) -> None:
        return None


#: Process-wide disabled tracer; engines default to it.
NULL_TRACER = NullTracer()


def as_tracer(tracer: "Tracer | NullTracer | None") -> "Tracer | NullTracer":
    """Normalize an optional tracer argument to a usable instance."""
    return NULL_TRACER if tracer is None else tracer


class Tracer:
    """Collects a span tree plus instant/async events.

    Thread-aware: each thread nests spans on its own stack (parenthood never
    crosses threads), and every span/event carries a dense per-tracer thread
    index exported as the Chrome-trace ``tid`` — the async serving transport
    records producer submits and worker block execution side by side.  All
    timestamps are ``clock()`` readings (``time.perf_counter`` by default)
    relative to the tracer's ``epoch``.
    """

    enabled = True

    def __init__(self, clock=time.perf_counter, process_name: str = "repro"):
        self.clock = clock
        self.process_name = process_name
        self.epoch = clock()
        self.spans: list[Span] = []
        #: instant ("i") and async ("b"/"e") events as raw trace-event dicts
        self.events: list[dict[str, Any]] = []
        self._tls = threading.local()
        self._lock = threading.Lock()
        #: thread ident -> dense tid; insertion order names tid 0, 1, ...
        self._tids: dict[int, int] = {}
        self._tid_names: dict[int, str] = {}

    # ------------------------------------------------------------- threading
    def _thread_stack(self) -> list[Span]:
        stack = getattr(self._tls, "stack", None)
        if stack is None:
            stack = self._tls.stack = []
        return stack

    def _thread_tid(self) -> int:
        ident = threading.get_ident()
        tid = self._tids.get(ident)
        if tid is None:
            with self._lock:
                tid = self._tids.get(ident)
                if tid is None:
                    tid = len(self._tids)
                    self._tids[ident] = tid
                    self._tid_names[tid] = threading.current_thread().name
        return tid

    def _enter(self, span: Span) -> None:
        stack = self._thread_stack()
        span.parent = stack[-1] if stack else None
        span.tid = self._thread_tid()
        stack.append(span)
        with self._lock:
            self.spans.append(span)

    def _exit(self, span: Span) -> None:
        self._thread_stack().pop()

    # ------------------------------------------------------------ recording
    def span(self, name: str, cat: str = "", **args: Any) -> Span:
        """Open a new child span of the current thread's entered span."""
        return Span(self, name, cat, args)

    def event(self, name: str, **args: Any) -> None:
        """Record an instant event at the current time."""
        record = {"name": name, "ph": "i", "ts": self._ts(self.clock()),
                  "s": "t", "tid": self._thread_tid(), "args": args}
        with self._lock:
            self.events.append(record)

    def begin_async(self, name: str, aid: int, **args: Any) -> None:
        """Open an async event (e.g. a request lifecycle spanning batches)."""
        record = {"name": name, "ph": "b", "id": aid, "ts": self._ts(self.clock()),
                  "tid": self._thread_tid(), "args": args}
        with self._lock:
            self.events.append(record)

    def end_async(self, name: str, aid: int, **args: Any) -> None:
        record = {"name": name, "ph": "e", "id": aid, "ts": self._ts(self.clock()),
                  "tid": self._thread_tid(), "args": args}
        with self._lock:
            self.events.append(record)

    # -------------------------------------------------------------- export
    def _ts(self, t: float) -> float:
        """Microseconds since the tracer epoch (the Chrome trace unit)."""
        return (t - self.epoch) * 1e6

    def _span_event(self, span: Span) -> dict[str, Any]:
        args = json_safe(span.args)
        modeled = args.get("modeled_seconds")
        if modeled is not None and span.duration > 0:
            # achieved-vs-modeled: >1 means the wall clock beat the roofline
            # model, <1 means overheads the model does not see dominate
            args["modeled_vs_wall"] = modeled / span.duration
        return {
            "name": span.name,
            "cat": span.cat or "span",
            "ph": "X",
            "ts": self._ts(span.t0 if span.t0 is not None else self.epoch),
            "dur": span.duration * 1e6,
            "pid": 0,
            "tid": span.tid,
            "args": args,
        }

    def iter_events(self):
        """All trace events (spans, instants, async) in recording order."""
        with self._lock:
            spans = list(self.spans)
            events = list(self.events)
        for span in spans:
            yield self._span_event(span)
        for event in events:
            yield {**event, "pid": 0, "tid": event.get("tid", 0),
                   "cat": event.get("cat", "event"),
                   "args": json_safe(event.get("args", {}))}

    def to_chrome(self) -> dict[str, Any]:
        """The Chrome trace-event JSON object (Perfetto/chrome://tracing)."""
        meta = [{
            "name": "process_name",
            "ph": "M",
            "pid": 0,
            "tid": 0,
            "args": {"name": self.process_name},
        }]
        with self._lock:
            tid_names = dict(self._tid_names)
        for tid, name in sorted(tid_names.items()):
            meta.append({
                "name": "thread_name",
                "ph": "M",
                "pid": 0,
                "tid": tid,
                "args": {"name": name},
            })
        return {
            "traceEvents": [*meta, *self.iter_events()],
            "displayTimeUnit": "ms",
        }

    def write_chrome(self, path: str | Path) -> Path:
        """Write the Chrome trace file; returns the path."""
        path = Path(path)
        path.write_text(json.dumps(self.to_chrome()) + "\n")
        return path

    def to_jsonl(self) -> str:
        """One JSON object per line — the grep/pandas-friendly export."""
        return "\n".join(json.dumps(e) for e in self.iter_events())

    def write_jsonl(self, path: str | Path) -> Path:
        path = Path(path)
        text = self.to_jsonl()
        path.write_text(text + "\n" if text else "")
        return path

    # ------------------------------------------------------------- queries
    def roots(self) -> list[Span]:
        """Top-level spans (no parent) in start order."""
        return [s for s in self.spans if s.parent is None]

    def find(self, cat: str | None = None, name: str | None = None) -> list[Span]:
        """Spans filtered by category and/or exact name."""
        return [
            s
            for s in self.spans
            if (cat is None or s.cat == cat) and (name is None or s.name == name)
        ]

    def __len__(self) -> int:
        return len(self.spans)
