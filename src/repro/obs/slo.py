"""Per-tenant SLO policies, error budgets, and burn-rate accounting.

An :class:`SloPolicy` states the contract a tenant is served under — "p99
latency below 50 ms over a 60 s window, 99 % of requests within target" —
and an :class:`SloTracker` measures it live: every resolved request feeds a
:class:`~repro.obs.window.SlidingWindow` (streaming quantiles + exact
breach counts against the target), lifetime counters, and the derived
budget arithmetic:

* the **error budget** is the fraction of requests allowed to miss the
  latency target, ``1 - objective``;
* **burn rate** is how fast the window is spending it: windowed breach
  fraction over allowed fraction.  Burn 1.0 consumes the budget exactly at
  the sustainable rate; 2.0 exhausts it in half the window — the standard
  multi-window alerting signal;
* the **exemplar** is the slowest request in the window, carrying its async
  trace span id, block id, and the queue-wait / batch-wait / execute /
  per-stage latency breakdown the serving stack threads into every ticket —
  so a p99 spike points at head-of-line stalls vs kernel time instead of
  being a bare number.

Trackers publish through whatever registry view they are given — a
per-tenant ``metrics.labeled(model=name)`` in multi-model serving — so one
scrape carries ``slo_latency_seconds{model="a",quantile="0.99"}`` per
tenant, and :meth:`SloTracker.report` renders the JSON block embedded in
``RouterReport.to_json()`` and the bench-serve record.
"""

from __future__ import annotations

import math
import re
import time
from dataclasses import dataclass
from typing import Any

from repro.obs.export import json_safe
from repro.obs.window import SlidingWindow

__all__ = ["SloPolicy", "SloTracker", "SloReport"]

_SPEC_RE = re.compile(
    r"^p(?P<q>\d+(?:\.\d+)?)\s*<\s*(?P<target>\d+(?:\.\d+)?)\s*(?P<unit>ms|s)"
    r"(?:\s*@\s*(?P<window>\d+(?:\.\d+)?)\s*s)?"
    r"(?:\s*/\s*(?P<objective>\d+(?:\.\d+)?)\s*%)?$"
)


@dataclass(frozen=True)
class SloPolicy:
    """One tenant's service-level objective.

    Parameters
    ----------
    latency_target_s:
        The per-request latency bound (submit-to-resolve wall seconds).
    quantile:
        The tail the objective is stated at (0.99 -> p99).
    window_s:
        Sliding-window span the live quantile/budget view covers.
    objective:
        Fraction of requests that must meet the target (0.99 -> 1 % error
        budget).  Burn rate is windowed breach fraction over ``1 -
        objective``.
    min_columns_per_second:
        Optional throughput floor over the window; ``None`` means the SLO
        is latency-only.
    """

    latency_target_s: float
    quantile: float = 0.99
    window_s: float = 60.0
    objective: float = 0.99
    min_columns_per_second: float | None = None

    def __post_init__(self):
        from repro.errors import ConfigError

        if self.latency_target_s <= 0:
            raise ConfigError(
                f"latency target must be positive, got {self.latency_target_s}"
            )
        if not 0 < self.quantile < 1:
            raise ConfigError(f"quantile must be in (0, 1), got {self.quantile}")
        if self.window_s <= 0:
            raise ConfigError(f"window must be positive, got {self.window_s}")
        if not 0 < self.objective < 1:
            raise ConfigError(f"objective must be in (0, 1), got {self.objective}")

    @property
    def error_budget(self) -> float:
        """Allowed breach fraction (1 - objective)."""
        return 1.0 - self.objective

    def describe(self) -> str:
        """Human rendering, e.g. ``p99 < 50ms over 60s (objective 99%)``."""
        text = (
            f"p{self.quantile * 100:g} < {self.latency_target_s * 1e3:g}ms "
            f"over {self.window_s:g}s (objective {self.objective * 100:g}%)"
        )
        if self.min_columns_per_second is not None:
            text += f", >= {self.min_columns_per_second:g} col/s"
        return text

    @classmethod
    def parse(cls, spec: str, **overrides) -> "SloPolicy":
        """Parse a compact CLI spec like ``p99<50ms@60s/99.9%``.

        Window (``@60s``) and objective (``/99.9%``) are optional and fall
        back to the dataclass defaults; ``overrides`` win over the spec.
        """
        match = _SPEC_RE.match(spec.strip())
        if match is None:
            from repro.errors import ConfigError

            raise ConfigError(
                f"cannot parse SLO spec {spec!r}; expected e.g. 'p99<50ms@60s/99.9%'"
            )
        target = float(match["target"])
        if match["unit"] == "ms":
            target /= 1e3
        kwargs: dict[str, Any] = {
            "latency_target_s": target,
            "quantile": float(match["q"]) / 100.0,
        }
        if match["window"] is not None:
            kwargs["window_s"] = float(match["window"])
        if match["objective"] is not None:
            kwargs["objective"] = float(match["objective"]) / 100.0
        kwargs.update(overrides)
        return cls(**kwargs)

    def to_json(self) -> dict[str, Any]:
        return {
            "latency_target_s": self.latency_target_s,
            "quantile": self.quantile,
            "window_s": self.window_s,
            "objective": self.objective,
            "min_columns_per_second": self.min_columns_per_second,
            "describe": self.describe(),
        }


@dataclass
class SloReport:
    """Point-in-time SLO evaluation for one tenant (JSON-safe via to_json)."""

    policy: SloPolicy
    #: live window view: count, quantiles, over_target, exemplar, ...
    window: dict[str, Any]
    #: lifetime totals since the tracker was created
    requests_total: int
    breaches_total: int
    columns_total: float
    #: windowed latency estimate at the policy quantile (None when idle)
    latency_estimate_s: float | None
    #: windowed breach fraction over the allowed fraction (0.0 when idle)
    burn_rate: float
    #: remaining window budget fraction (1.0 untouched, < 0 overspent)
    budget_remaining: float
    #: windowed served columns per second (None when idle)
    columns_per_second: float | None
    #: individual verdicts (None = not applicable / no traffic)
    quantile_ok: bool | None
    budget_ok: bool | None
    throughput_ok: bool | None

    @property
    def compliant(self) -> bool:
        """All applicable verdicts hold (an idle window is compliant)."""
        return all(v is not False for v in
                   (self.quantile_ok, self.budget_ok, self.throughput_ok))

    @property
    def exemplar(self) -> dict[str, Any] | None:
        """Slowest live request's tag: span ids + latency breakdown."""
        return self.window.get("exemplar")

    def to_json(self) -> dict[str, Any]:
        return json_safe({
            "policy": self.policy.to_json(),
            "window": self.window,
            "requests_total": self.requests_total,
            "breaches_total": self.breaches_total,
            "columns_total": self.columns_total,
            "latency_estimate_s": self.latency_estimate_s,
            "burn_rate": self.burn_rate,
            "budget_remaining": self.budget_remaining,
            "columns_per_second": self.columns_per_second,
            "quantile_ok": self.quantile_ok,
            "budget_ok": self.budget_ok,
            "throughput_ok": self.throughput_ok,
            "compliant": self.compliant,
            "exemplar": self.exemplar,
        })


class SloTracker:
    """Live SLO accounting for one tenant.

    Parameters
    ----------
    policy:
        The :class:`SloPolicy` to measure against.
    metrics:
        Registry (or per-tenant labeled view) the tracker publishes its
        series into; a throwaway private window when ``None`` (pure
        in-process tracking, nothing scrapeable).
    clock:
        Shared time source for window rotation; injectable in tests.
    name:
        Tenant name, echoed into reports for log readability.
    """

    def __init__(self, policy: SloPolicy, metrics=None, clock=time.monotonic,
                 name: str | None = None):
        self.policy = policy
        self.name = name
        self.clock = clock
        #: most recently evaluated burn rate — a cheap signal admission
        #: control can poll on every submit without re-reading the window
        self.last_burn = 0.0
        quantiles = tuple(sorted({0.5, 0.95, 0.99, policy.quantile}))
        if metrics is not None:
            self.window = metrics.window(
                "slo_latency_seconds",
                help="sliding-window request latency under the tenant's SLO",
                window_s=policy.window_s,
                quantiles=quantiles,
                target=policy.latency_target_s,
            )
            self._c_requests = metrics.counter(
                "slo_requests_total", help="requests evaluated against the SLO"
            )
            self._c_breaches = metrics.counter(
                "slo_breaches_total",
                help="requests over the latency target (or failed)",
            )
            self._c_columns = metrics.counter(
                "slo_columns_total", help="columns served under the SLO"
            )
            self._g_burn = metrics.gauge(
                "slo_burn_rate",
                help="windowed breach fraction / allowed fraction (1.0 = "
                     "spending the error budget exactly at the sustainable rate)",
            )
            self._g_budget = metrics.gauge(
                "slo_budget_remaining",
                help="remaining window error budget fraction (negative = overspent)",
            )
            self._g_compliant = metrics.gauge(
                "slo_compliant", help="1 when every applicable SLO verdict holds"
            )
            self._g_compliant.set(1.0)
        else:
            self.window = SlidingWindow(
                window_s=policy.window_s, quantiles=quantiles,
                target=policy.latency_target_s, clock=clock,
            )
            self._c_requests = self._c_breaches = self._c_columns = None
            self._g_burn = self._g_budget = self._g_compliant = None

    # ------------------------------------------------------------- recording
    def record(
        self,
        latency_s: float,
        columns: float = 0.0,
        exemplar: dict[str, Any] | None = None,
        failed: bool = False,
    ) -> None:
        """Account one resolved request.

        A failed request burns budget regardless of its latency: its
        observation is clamped above the target so the window's exact
        breach counter sees it.
        """
        latency_s = float(latency_s)
        breach = failed or latency_s > self.policy.latency_target_s
        if failed and latency_s <= self.policy.latency_target_s:
            # a fast failure still violates the objective; push it past the
            # target so the window's over_target count stays exact
            latency_s = self.policy.latency_target_s * (1.0 + 1e-9)
        self.window.observe(latency_s, columns=columns, exemplar=exemplar)
        if self._c_requests is not None:
            self._c_requests.inc()
            self._c_columns.inc(columns)
            if breach:
                self._c_breaches.inc()
            self._publish()

    def record_ticket(self, ticket, model: str | None = None) -> None:
        """Account one serving ticket (sync or async), with its exemplar.

        The exemplar carries the ids that link back into the trace — the
        request's async span id (``aid``) and its block — plus the latency
        breakdown, so the slowest request in any window is attributable.
        """
        exemplar: dict[str, Any] = {
            "latency_seconds": ticket.latency_seconds,
            "breakdown": ticket.breakdown(),
        }
        aid = getattr(ticket, "aid", None)
        if aid is None and getattr(ticket, "inner", None) is not None:
            aid = ticket.inner.aid
        if aid is not None:
            exemplar["request_aid"] = aid
        if model is not None:
            exemplar["model"] = model
        if ticket.failed:
            exemplar["error"] = type(ticket.error).__name__ if getattr(
                ticket, "error", None
            ) is not None else type(ticket.exception).__name__
        self.record(
            ticket.latency_seconds,
            columns=ticket.columns,
            exemplar=exemplar,
            failed=ticket.failed,
        )

    # -------------------------------------------------------------- reporting
    def _evaluate(self) -> SloReport:
        snap = self.window.snapshot()
        count = snap["count"]
        policy = self.policy
        if count <= 0:
            # an idle window (zero requests after rotation) must read as
            # zero burn / full budget — a 0/0 here would leak NaN into the
            # /slo JSON and every merged fleet scrape
            self.last_burn = 0.0
            return SloReport(
                policy=policy, window=snap,
                requests_total=self.requests_total,
                breaches_total=self.breaches_total,
                columns_total=self.columns_total,
                latency_estimate_s=None, burn_rate=0.0, budget_remaining=1.0,
                columns_per_second=None,
                quantile_ok=None, budget_ok=None, throughput_ok=None,
            )
        # read the estimate from the same snapshot as the breach counts: a
        # second window read could rotate in between and disagree (or go
        # empty entirely, reintroducing the divide-by-zero this guards)
        estimate = snap["quantiles"].get(f"p{policy.quantile * 100:g}")
        breach_fraction = (snap["over_target"] or 0) / count
        burn = breach_fraction / policy.error_budget
        if not math.isfinite(burn):
            burn = 0.0
        budget_remaining = 1.0 - burn
        self.last_burn = burn
        # windowed throughput: columns over the full window span (slightly
        # conservative while the window is still filling)
        cps = snap["columns"] / policy.window_s
        throughput_ok = (
            None if policy.min_columns_per_second is None
            else cps is not None and cps >= policy.min_columns_per_second
        )
        return SloReport(
            policy=policy, window=snap,
            requests_total=self.requests_total,
            breaches_total=self.breaches_total,
            columns_total=self.columns_total,
            latency_estimate_s=estimate,
            burn_rate=burn,
            budget_remaining=budget_remaining,
            columns_per_second=cps,
            quantile_ok=bool(estimate is not None
                             and estimate <= policy.latency_target_s),
            budget_ok=bool(burn <= 1.0),
            throughput_ok=throughput_ok,
        )

    def _publish(self) -> None:
        if self._g_burn is None:
            return
        report = self._evaluate()
        self._g_burn.set(report.burn_rate)
        self._g_budget.set(report.budget_remaining)
        self._g_compliant.set(1.0 if report.compliant else 0.0)

    @property
    def requests_total(self) -> int:
        return int(self._c_requests.value) if self._c_requests is not None else 0

    @property
    def breaches_total(self) -> int:
        return int(self._c_breaches.value) if self._c_breaches is not None else 0

    @property
    def columns_total(self) -> float:
        return self._c_columns.value if self._c_columns is not None else 0.0

    def report(self) -> SloReport:
        """Evaluate the SLO right now (also refreshes the gauges)."""
        report = self._evaluate()
        if self._g_burn is not None:
            self._g_burn.set(report.burn_rate)
            self._g_budget.set(report.budget_remaining)
            self._g_compliant.set(1.0 if report.compliant else 0.0)
        return report

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SloTracker({self.name!r}, {self.policy.describe()!r})"
