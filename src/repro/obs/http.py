"""Scrapeable observability endpoint over the stdlib ``http.server``.

:class:`ObsServer` exposes a running serving process on three paths:

* ``/metrics`` — the shared :class:`~repro.obs.metrics.MetricsRegistry`
  rendered as Prometheus text (counters, gauges, histograms, and the
  sliding-window summaries with per-tenant labels);
* ``/slo`` — a JSON document of per-tenant :class:`~repro.obs.slo.SloReport`
  blocks (windowed quantiles, budget burn, exemplar span ids), produced by
  whatever callable the host registers — typically
  ``ModelRegistry.slo_report_json``;
* ``/healthz`` — health.  Plain liveness (200 ``ok``) by default; a host
  that knows more passes ``health_provider`` and the endpoint turns into a
  readiness probe — 200 while the provider reports healthy, 503 with a JSON
  diagnostic once it reports degraded (the fleet dispatcher wires this to
  "any worker slot dead past its restart budget").

The server is a daemon-threaded :class:`~http.server.ThreadingHTTPServer`
bound to localhost by default, so a scrape never blocks serving and a crash
of the serving loop cannot be masked by a still-answering endpoint of a
different process.  Port 0 binds an ephemeral port (the bound port is
re-read from the socket and reported via :attr:`ObsServer.port` /
:attr:`ObsServer.url`), which is what the tests, the CI smoke job, and
every fleet worker use — N workers on one host can never collide.

The same surface serves both halves of the multi-process fleet
(:mod:`repro.serve.fleet`): each worker exposes its own registry with
``ObsServer(metrics)``, while the dispatcher exposes the *merged* fleet
scrape by passing ``metrics_provider`` — a callable producing the already
rendered exposition (see :mod:`repro.obs.merge`) — instead of a registry.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Callable

from repro.obs.export import json_safe
from repro.obs.metrics import MetricsRegistry

__all__ = ["ObsServer"]

#: the Prometheus text exposition content type
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


class _ObsHandler(BaseHTTPRequestHandler):
    """One request; all state lives on ``self.server`` (the ObsServer's inner)."""

    server_version = "repro-obs/1"

    # route table: path -> (content-type, body producer on the owning ObsServer)
    def do_GET(self):  # noqa: N802 - http.server API
        owner: "ObsServer" = self.server.owner
        path = self.path.split("?", 1)[0]
        if path == "/healthz":
            status, content_type, body = owner.render_health()
            self._reply(status, content_type, body)
        elif path == "/metrics":
            self._reply(200, PROMETHEUS_CONTENT_TYPE, owner.render_metrics())
        elif path == "/slo":
            self._reply(200, "application/json", owner.render_slo())
        elif path == "/":
            self._reply(
                200,
                "text/plain; charset=utf-8",
                "repro obs endpoint: /metrics /slo /healthz\n",
            )
        else:
            self._reply(404, "text/plain; charset=utf-8", f"unknown path {path}\n")

    def _reply(self, status: int, content_type: str, body: str) -> None:
        data = body.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(data)))
        self.end_headers()
        self.wfile.write(data)

    def log_message(self, format, *args):  # noqa: A002 - http.server API
        # scrapes are high-frequency; route them to the obs logger at debug
        # instead of stderr
        import logging

        logging.getLogger("repro.obs.http").debug(
            "%s %s", self.address_string(), format % args
        )


class ObsServer:
    """Daemon-threaded scrape endpoint for one serving process.

    Parameters
    ----------
    metrics:
        The registry ``/metrics`` renders.  Scrapes call
        :meth:`~repro.obs.metrics.MetricsRegistry.to_prometheus`, which takes
        the registry lock — safe against concurrent serving threads.  May be
        ``None`` when ``metrics_provider`` is given.
    slo_provider:
        Zero-argument callable returning the JSON-safe object ``/slo``
        serves (``{}`` when absent).  Evaluated per scrape so reports are
        live; exceptions render as a 200 ``{"error": ...}`` body rather than
        killing the scrape (an unhealthy reporter must not look like a dead
        process).
    metrics_provider:
        Zero-argument callable returning the *rendered* exposition text for
        ``/metrics``, overriding ``metrics`` — this is how the fleet
        dispatcher serves a merged multi-worker scrape.  Exceptions render
        as a comment line, never a dead endpoint.
    health_provider:
        Zero-argument callable returning a dict with a boolean ``healthy``
        key (extra keys are diagnostic payload).  ``/healthz`` then answers
        200 with the JSON while healthy and **503** with the same JSON once
        degraded — process liveness alone must not report a fleet that can
        no longer serve part of its streams as healthy.  A provider that
        raises renders as 200 ``ok`` (the probe answers for *this* process;
        a broken reporter must not fake a dead one).  ``None`` keeps the
        legacy pure-liveness 200 ``ok``.
    host / port:
        Bind address.  ``port=0`` picks an ephemeral port; read the
        resolved one from :attr:`port` after construction.
    """

    def __init__(
        self,
        metrics: MetricsRegistry | None,
        slo_provider: Callable[[], Any] | None = None,
        host: str = "127.0.0.1",
        port: int = 0,
        metrics_provider: Callable[[], str] | None = None,
        health_provider: Callable[[], dict] | None = None,
    ):
        if metrics is None and metrics_provider is None:
            from repro.errors import ConfigError

            raise ConfigError("ObsServer needs a registry or a metrics_provider")
        self.metrics = metrics
        self.slo_provider = slo_provider
        self.metrics_provider = metrics_provider
        self.health_provider = health_provider
        self._httpd = ThreadingHTTPServer((host, port), _ObsHandler)
        self._httpd.daemon_threads = True
        self._httpd.owner = self
        self.host, self.port = self._httpd.server_address[:2]
        self._thread = threading.Thread(
            target=self._httpd.serve_forever, name="repro-obs-http", daemon=True
        )
        self._thread.start()

    # ------------------------------------------------------------- rendering
    def render_metrics(self) -> str:
        if self.metrics_provider is not None:
            try:
                return self.metrics_provider()
            except Exception as exc:
                return f"# metrics provider failed: {type(exc).__name__}: {exc}\n"
        return self.metrics.to_prometheus()

    def render_health(self) -> tuple[int, str, str]:
        """``(status, content_type, body)`` for ``/healthz`` (see class doc)."""
        if self.health_provider is None:
            return 200, "text/plain; charset=utf-8", "ok\n"
        try:
            payload = json_safe(self.health_provider())
            healthy = bool(payload.get("healthy", False))
        except Exception:
            return 200, "text/plain; charset=utf-8", "ok\n"
        return (
            200 if healthy else 503,
            "application/json",
            json.dumps(payload, indent=2) + "\n",
        )

    def render_slo(self) -> str:
        if self.slo_provider is None:
            return "{}\n"
        try:
            payload = json_safe(self.slo_provider())
        except Exception as exc:
            payload = {"error": f"{type(exc).__name__}: {exc}"}
        return json.dumps(payload, indent=2) + "\n"

    # ------------------------------------------------------------- lifecycle
    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def close(self) -> None:
        """Stop accepting scrapes and join the server thread."""
        self._httpd.shutdown()
        self._thread.join(timeout=5.0)
        self._httpd.server_close()

    def __enter__(self) -> "ObsServer":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ObsServer({self.url})"
