"""JSON-safety helpers shared by the tracer, metrics, and engine reports.

NumPy scalars and arrays crash ``json.dumps``; every exporter in
:mod:`repro.obs` funnels through :func:`json_safe` so traces, metric
snapshots, and :meth:`~repro.inference.InferenceResult.to_json` all emit
plain Python containers.
"""

from __future__ import annotations

import dataclasses
from typing import Any

import numpy as np

__all__ = ["json_safe"]


def json_safe(obj: Any) -> Any:
    """Recursively convert ``obj`` into ``json.dumps``-able containers.

    NumPy arrays become lists, NumPy scalars become Python scalars,
    dataclasses become dicts, tuples/sets become lists.  Unknown objects
    fall back to ``str`` rather than raising — an exporter must never crash
    the run it is observing.
    """
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    if isinstance(obj, np.generic):
        return obj.item()
    if isinstance(obj, np.ndarray):
        return obj.tolist()
    if isinstance(obj, dict):
        return {str(k): json_safe(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple, set, frozenset)):
        return [json_safe(v) for v in obj]
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {f.name: json_safe(getattr(obj, f.name)) for f in dataclasses.fields(obj)}
    return str(obj)
