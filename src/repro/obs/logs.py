"""Logging for the ``repro`` CLI and library.

Everything logs through the ``"repro"`` logger (child loggers per module via
:func:`get_logger`).  The CLI calls :func:`setup_logging` once per
invocation: plain ``%(message)s`` to stdout at INFO by default, DEBUG with
``--verbose``, WARNING with ``--quiet`` — so instrumentation chatter is
controllable without losing the machine-facing result lines.

The handler is (re)bound to the *current* ``sys.stdout`` on every call,
which keeps capture-based tests (pytest's ``capsys``) and shell redirection
working no matter when the module was imported.
"""

from __future__ import annotations

import logging
import sys

__all__ = ["get_logger", "setup_logging", "ROOT_LOGGER_NAME"]

ROOT_LOGGER_NAME = "repro"


def get_logger(name: str | None = None) -> logging.Logger:
    """The ``repro`` logger, or a dotted child (``repro.serve`` etc.)."""
    if not name or name == ROOT_LOGGER_NAME:
        return logging.getLogger(ROOT_LOGGER_NAME)
    if name.startswith(ROOT_LOGGER_NAME + "."):
        return logging.getLogger(name)
    return logging.getLogger(f"{ROOT_LOGGER_NAME}.{name}")


def setup_logging(
    verbose: bool = False, quiet: bool = False, stream=None
) -> logging.Logger:
    """Configure the CLI logger; returns it.

    ``quiet`` wins over ``verbose`` when both are passed.  Re-running
    replaces the previous handler rather than stacking duplicates.
    """
    logger = logging.getLogger(ROOT_LOGGER_NAME)
    level = logging.WARNING if quiet else logging.DEBUG if verbose else logging.INFO
    handler = logging.StreamHandler(stream if stream is not None else sys.stdout)
    handler.setFormatter(logging.Formatter("%(message)s"))
    for old in list(logger.handlers):
        logger.removeHandler(old)
    logger.addHandler(handler)
    logger.setLevel(level)
    logger.propagate = False
    return logger
