"""Observability: tracing, metrics, and logging for the whole hot path.

``repro.obs`` is the cross-cutting layer every perf-facing PR reports
through.  It is always importable and near-zero overhead when disabled:

* :class:`~repro.obs.trace.Tracer` — nested spans (request -> stage ->
  layer -> kernel) with Chrome-trace and JSONL exporters; the default
  :data:`~repro.obs.trace.NULL_TRACER` turns every span site into a no-op.
* :class:`~repro.obs.metrics.MetricsRegistry` — counters, gauges, and
  histograms with Prometheus text exposition and a JSON snapshot.
* :func:`~repro.obs.logs.setup_logging` — the ``"repro"`` logger behind the
  CLI's ``--verbose``/``--quiet``.
* :func:`~repro.obs.export.json_safe` — NumPy-tolerant JSON conversion used
  by every exporter (and by ``InferenceResult.to_json``).
* :class:`~repro.obs.window.SlidingWindow` — streaming p50/p95/p99 over the
  last N seconds (ring of bucketed sub-windows), the live-tail counterpart
  of the cumulative :class:`~repro.obs.metrics.Histogram`.
* :class:`~repro.obs.slo.SloPolicy` / :class:`~repro.obs.slo.SloTracker` —
  per-tenant latency objectives with error-budget burn accounting and
  trace-linked tail exemplars.
* :class:`~repro.obs.http.ObsServer` — the ``/metrics`` + ``/slo`` +
  ``/healthz`` scrape endpoint (stdlib ``http.server``, daemon thread).
* :func:`~repro.obs.merge.merge_snapshots` /
  :func:`~repro.obs.merge.merge_prometheus` — fleet telemetry merging: union
  per-worker JSON snapshots / Prometheus exposition under an injected
  ``worker=`` label, keeping every worker's series separable.
"""

from repro.obs.export import json_safe
from repro.obs.http import ObsServer
from repro.obs.logs import get_logger, setup_logging
from repro.obs.merge import inject_label, merge_prometheus, merge_snapshots
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    LabeledRegistry,
    MetricsRegistry,
)
from repro.obs.slo import SloPolicy, SloReport, SloTracker
from repro.obs.trace import NULL_TRACER, NullTracer, Span, Tracer, as_tracer
from repro.obs.window import SlidingWindow, geometric_buckets

__all__ = [
    "Tracer",
    "Span",
    "NullTracer",
    "NULL_TRACER",
    "as_tracer",
    "MetricsRegistry",
    "LabeledRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "SlidingWindow",
    "geometric_buckets",
    "SloPolicy",
    "SloTracker",
    "SloReport",
    "ObsServer",
    "inject_label",
    "merge_snapshots",
    "merge_prometheus",
    "json_safe",
    "get_logger",
    "setup_logging",
]
