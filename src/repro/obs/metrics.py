"""Counters, gauges, and histograms with Prometheus-style exposition.

A :class:`MetricsRegistry` is the process-local home for serving and engine
telemetry: queue depths, batch occupancy, strategy decisions, buffer-pool
hit rates.  Metric objects are cheap mutable cells — hot paths bind them
once (``registry.counter(...)`` is get-or-create) and increment without any
lookup afterwards.  Two exports:

* :meth:`MetricsRegistry.to_prometheus` — the text exposition format, so a
  scrape endpoint or a CI artifact is one ``write_text`` away;
* :meth:`MetricsRegistry.snapshot` — a JSON-safe dict, embedded verbatim in
  ``BENCH_serve.json`` by :func:`repro.serve.bench.bench_serve`.

Collect callbacks (:meth:`MetricsRegistry.on_collect`) let objects that
already keep their own counters (``StrategyMemo``, ``BufferPool``,
``EngineSession``) publish at scrape time instead of paying per-event
updates.

Everything here is thread-safe: the async serving transport updates the
same registry from producer threads and the consumer worker, so every
metric mutation (``inc``/``set``/``observe``) holds a per-metric lock —
``value += amount`` is three bytecodes and *does* lose updates under
contention without one — and the registry serializes get-or-create and
exports behind an RLock (collect callbacks re-enter it).
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Iterable

from repro.obs.export import json_safe
from repro.obs.window import DEFAULT_QUANTILES, WINDOW_BUCKETS, SlidingWindow

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "LabeledRegistry",
    "MetricsRegistry",
    "DEFAULT_BUCKETS",
]

#: Default histogram buckets: latencies/fills in serving land between 1e-4
#: and ~10 in whatever unit the caller observes (seconds or a ratio).
DEFAULT_BUCKETS = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
    0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)


class Counter:
    """Monotonically increasing value; safe to ``inc`` from any thread."""

    __slots__ = ("value", "_lock")
    kind = "counter"

    def __init__(self):
        self.value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            from repro.errors import ConfigError

            raise ConfigError(f"counters only go up; got inc({amount})")
        with self._lock:
            self.value += amount

    def expose(self) -> float:
        return self.value


class Gauge:
    """Point-in-time value; ``set_max`` tracks a high-water mark."""

    __slots__ = ("value", "_lock")
    kind = "gauge"

    def __init__(self):
        self.value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self.value = float(value)

    def set_max(self, value: float) -> None:
        with self._lock:
            if value > self.value:
                self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self.value -= amount

    def expose(self) -> float:
        return self.value


class Histogram:
    """Cumulative-bucket histogram (Prometheus semantics).

    ``buckets`` are upper bounds; an implicit ``+Inf`` bucket catches the
    rest.  ``observe`` is O(len(buckets)) — fine for per-batch events, do
    not put it on a per-element path.
    """

    __slots__ = ("buckets", "counts", "sum", "count", "_lock")
    kind = "histogram"

    def __init__(self, buckets: Iterable[float] = DEFAULT_BUCKETS):
        self.buckets = tuple(sorted(float(b) for b in buckets))
        if not self.buckets:
            from repro.errors import ConfigError

            raise ConfigError("a histogram needs at least one bucket bound")
        self.counts = [0] * (len(self.buckets) + 1)  # +1 for +Inf
        self.sum = 0.0
        self.count = 0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self.sum += value
            self.count += 1
            for i, bound in enumerate(self.buckets):
                if value <= bound:
                    self.counts[i] += 1
                    return
            self.counts[-1] += 1

    def cumulative(self) -> list[tuple[str, int]]:
        """(le, cumulative count) pairs, ending with ('+Inf', count)."""
        out, running = [], 0
        for bound, n in zip(self.buckets, self.counts):
            running += n
            out.append((format(bound, "g"), running))
        out.append(("+Inf", self.count))
        return out

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def expose(self) -> dict[str, Any]:
        return {
            "count": self.count,
            "sum": self.sum,
            "mean": self.mean,
            "buckets": {le: n for le, n in self.cumulative()},
        }


def _label_key(labels: dict[str, str]) -> tuple:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _escape_label_value(value: str) -> str:
    """Prometheus label-value escaping: backslash, double-quote, newline.

    Tenant names come from user CLI input (``--model NAME=BENCH``), so a
    quote or newline in a name must not corrupt the exposition.
    """
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _escape_help(text: str) -> str:
    """Prometheus HELP escaping: backslash and newline only."""
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _label_text(key: tuple) -> str:
    if not key:
        return ""
    return "{" + ",".join(f'{k}="{_escape_label_value(v)}"' for k, v in key) + "}"


class MetricsRegistry:
    """Get-or-create registry of named metric series.

    A series is ``(name, labels)``; all series of one name share a kind and
    help string.  Asking for an existing name with a different kind is a
    :class:`~repro.errors.ConfigError` — a name means one thing.
    """

    def __init__(self):
        self._series: dict[
            tuple[str, tuple], Counter | Gauge | Histogram | SlidingWindow
        ] = {}
        self._kinds: dict[str, str] = {}
        self._help: dict[str, str] = {}
        self._collectors: list[Callable[[MetricsRegistry], None]] = []
        # RLock: collect callbacks run under it and themselves call
        # counter()/gauge() to publish, re-entering the registry
        self._lock = threading.RLock()

    # ------------------------------------------------------------- creation
    def _get(self, cls, name: str, help: str, labels: dict[str, str], **kwargs):
        with self._lock:
            kind = self._kinds.get(name)
            if kind is not None and kind != cls.kind:
                from repro.errors import ConfigError

                raise ConfigError(f"metric {name!r} already registered as a {kind}")
            key = (name, _label_key(labels))
            metric = self._series.get(key)
            if metric is None:
                metric = cls(**kwargs)
                self._series[key] = metric
                self._kinds[name] = cls.kind
                if help:
                    self._help[name] = help
            return metric

    def counter(self, name: str, help: str = "", **labels: str) -> Counter:
        return self._get(Counter, name, help, labels)

    def gauge(self, name: str, help: str = "", **labels: str) -> Gauge:
        return self._get(Gauge, name, help, labels)

    def histogram(
        self, name: str, buckets: Iterable[float] = DEFAULT_BUCKETS,
        help: str = "", **labels: str,
    ) -> Histogram:
        return self._get(Histogram, name, help, labels, buckets=buckets)

    def window(
        self, name: str, help: str = "", window_s: float = 60.0,
        slots: int = 12, buckets: Iterable[float] = WINDOW_BUCKETS,
        quantiles: Iterable[float] = DEFAULT_QUANTILES,
        target: float | None = None, **labels: str,
    ) -> SlidingWindow:
        """Get-or-create a :class:`~repro.obs.window.SlidingWindow` series.

        Windows expose as Prometheus ``summary`` series — one
        ``name{quantile="..."}`` line per configured quantile plus windowed
        ``_sum``/``_count`` — and as a quantile/exemplar dict in
        :meth:`snapshot`.  Like histogram buckets, the window geometry is
        fixed by the first creation; later get-or-create calls with
        different parameters return the existing series unchanged.
        """
        return self._get(
            SlidingWindow, name, help, labels,
            window_s=window_s, slots=slots, buckets=buckets,
            quantiles=quantiles, target=target,
        )

    # -------------------------------------------------------------- lookup
    def series(self, name: str) -> list[tuple[dict[str, str], "Counter | Gauge | Histogram"]]:
        """All (labels, metric) series registered under ``name``."""
        with self._lock:
            return [
                (dict(key), metric)
                for (n, key), metric in self._series.items()
                if n == name
            ]

    # ------------------------------------------------------------ callbacks
    def on_collect(self, fn: Callable[["MetricsRegistry"], None]) -> None:
        """Register a scrape-time publisher (runs before every export)."""
        with self._lock:
            self._collectors.append(fn)

    def _collect(self) -> None:
        for fn in self._collectors:
            fn(self)

    # -------------------------------------------------------------- export
    def snapshot(self) -> dict[str, Any]:
        """JSON-safe dict keyed ``name{label="v"}`` -> exposed value."""
        with self._lock:
            self._collect()
            out: dict[str, Any] = {}
            for (name, key), metric in sorted(self._series.items()):
                out[name + _label_text(key)] = json_safe(metric.expose())
            return out

    def to_prometheus(self) -> str:
        """Prometheus text exposition (one ``# TYPE`` block per name)."""
        with self._lock:
            self._collect()
            by_name: dict[str, list[tuple[tuple, Counter | Gauge | Histogram]]] = {}
            for (name, key), metric in sorted(self._series.items()):
                by_name.setdefault(name, []).append((key, metric))
        lines: list[str] = []
        for name, series in by_name.items():
            if name in self._help:
                lines.append(f"# HELP {name} {_escape_help(self._help[name])}")
            lines.append(f"# TYPE {name} {self._kinds[name]}")
            for key, metric in series:
                if isinstance(metric, Histogram):
                    for le, n in metric.cumulative():
                        bucket_key = key + (("le", le),)
                        lines.append(f"{name}_bucket{_label_text(bucket_key)} {n}")
                    lines.append(f"{name}_sum{_label_text(key)} {metric.sum}")
                    lines.append(f"{name}_count{_label_text(key)} {metric.count}")
                elif isinstance(metric, SlidingWindow):
                    snap = metric.snapshot()
                    for q in metric.quantiles:
                        value = snap["quantiles"].get(f"p{q * 100:g}")
                        if value is None:
                            continue
                        q_key = key + (("quantile", format(q, "g")),)
                        lines.append(f"{name}{_label_text(q_key)} {value}")
                    lines.append(f"{name}_sum{_label_text(key)} {snap['sum']}")
                    lines.append(f"{name}_count{_label_text(key)} {snap['count']}")
                else:
                    lines.append(f"{name}{_label_text(key)} {metric.expose()}")
        return "\n".join(lines) + ("\n" if lines else "")

    def __len__(self) -> int:
        return len(self._series)

    def __contains__(self, name: str) -> bool:
        return name in self._kinds

    # ------------------------------------------------------------- labeling
    def labeled(self, **labels: str) -> "LabeledRegistry":
        """A view of this registry that stamps ``labels`` on every series.

        The canonical use is tenant isolation in multi-model serving: each
        :class:`~repro.serve.session.EngineSession` takes
        ``registry.labeled(model=name)`` so that two sessions sharing one
        registry publish ``memo_hits_total{model="a"}`` and
        ``memo_hits_total{model="b"}`` instead of double-counting a single
        unlabeled series (and clobbering each other's ``on_collect`` gauges).
        """
        return LabeledRegistry(self, labels)


class LabeledRegistry:
    """A :class:`MetricsRegistry` facade with fixed labels pre-applied.

    Everything an instrumented object needs from a registry — get-or-create
    metric constructors, ``on_collect``, ``series`` — is forwarded to the
    underlying registry with the view's labels merged in (call-site labels
    win on conflict, so a view cannot silently re-route an explicit label).
    Exports (``snapshot``/``to_prometheus``) expose the *whole* base
    registry: one scrape covers every tenant, each under its own labels.
    """

    def __init__(self, registry: MetricsRegistry, labels: dict[str, str]):
        self._registry = registry
        self._labels = {str(k): str(v) for k, v in labels.items()}

    @property
    def base(self) -> MetricsRegistry:
        """The unlabeled registry underneath (shared across all views)."""
        base = self._registry
        while isinstance(base, LabeledRegistry):
            base = base._registry
        return base

    @property
    def labels(self) -> dict[str, str]:
        return dict(self._labels)

    def _merge(self, labels: dict[str, str]) -> dict[str, str]:
        return {**self._labels, **labels}

    def counter(self, name: str, help: str = "", **labels: str) -> Counter:
        return self._registry.counter(name, help, **self._merge(labels))

    def gauge(self, name: str, help: str = "", **labels: str) -> Gauge:
        return self._registry.gauge(name, help, **self._merge(labels))

    def histogram(
        self, name: str, buckets: Iterable[float] = DEFAULT_BUCKETS,
        help: str = "", **labels: str,
    ) -> Histogram:
        return self._registry.histogram(name, buckets, help, **self._merge(labels))

    def window(self, name: str, help: str = "", **kwargs) -> SlidingWindow:
        labels = {
            k: kwargs.pop(k) for k in list(kwargs)
            if k not in ("window_s", "slots", "buckets", "quantiles", "target")
        }
        return self._registry.window(name, help, **kwargs, **self._merge(labels))

    def on_collect(self, fn: Callable[[MetricsRegistry], None]) -> None:
        self._registry.on_collect(fn)

    def series(self, name: str):
        """Series under ``name`` whose labels include this view's labels."""
        return [
            (labels, metric)
            for labels, metric in self._registry.series(name)
            if all(labels.get(k) == v for k, v in self._labels.items())
        ]

    def labeled(self, **labels: str) -> "LabeledRegistry":
        return LabeledRegistry(self._registry, self._merge(labels))

    def snapshot(self) -> dict[str, Any]:
        return self._registry.snapshot()

    def to_prometheus(self) -> str:
        return self._registry.to_prometheus()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"LabeledRegistry({self._labels!r})"
