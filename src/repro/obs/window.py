"""Sliding-window quantile estimation for live tail-latency telemetry.

The pooled quantiles :meth:`~repro.serve.server.ServeReport.latency_quantiles`
computes are end-of-run numbers — useless to an SLO controller that needs
"what is p99 *right now*".  :class:`SlidingWindow` gives the streaming
answer: a ring of bucketed sub-windows, each covering ``window_s / slots``
seconds, rotated lazily on observe/scrape.  A scrape merges the live slots'
bucket counts and interpolates the requested quantiles, so the estimate
covers between ``(slots-1)/slots`` and the full window of history and
forgets old traffic in whole-slot steps (staleness <= one slot width).

Accuracy is bounded by bucket geometry, not sample count: with the default
geometric buckets (ratio :data:`WINDOW_BUCKET_RATIO`) an estimated quantile
lies in the same bucket as the exact sample quantile, i.e. within one bucket
ratio of it — ~19 % relative error worst case, far below the decade-scale
swings a tail-latency alarm cares about.  Exact per-window breach counting
against a fixed ``target`` (for SLO error budgets) rides on the same slots,
as does the window's *exemplar*: the slowest observation and the opaque tag
(trace span ids, latency breakdown) its caller attached, which is what makes
a p99 spike attributable instead of just visible.

Everything is thread-safe behind one lock per window, matching the rest of
:mod:`repro.obs.metrics`; registries hand windows out via
``registry.window(...)`` and expose them as Prometheus ``summary`` series.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Sequence

__all__ = [
    "SlidingWindow",
    "geometric_buckets",
    "WINDOW_BUCKETS",
    "WINDOW_BUCKET_RATIO",
    "DEFAULT_QUANTILES",
]

#: geometric growth factor of the default bucket edges; the worst-case
#: relative error of a quantile estimate is bounded by ``ratio - 1``
WINDOW_BUCKET_RATIO = 2 ** 0.25

#: quantiles every window reports by default (the SLO trio)
DEFAULT_QUANTILES = (0.5, 0.95, 0.99)


def geometric_buckets(
    lo: float = 1e-5, hi: float = 60.0, ratio: float = WINDOW_BUCKET_RATIO
) -> tuple[float, ...]:
    """Geometric bucket upper bounds from ``lo`` to at least ``hi``.

    Geometric spacing bounds the *relative* quantile error by ``ratio - 1``
    uniformly across the range — microsecond kernels and multi-second stalls
    are estimated equally well, which linear buckets cannot do.
    """
    if lo <= 0 or hi <= lo or ratio <= 1:
        from repro.errors import ConfigError

        raise ConfigError(
            f"geometric buckets need 0 < lo < hi and ratio > 1, "
            f"got lo={lo}, hi={hi}, ratio={ratio}"
        )
    edges = [lo]
    while edges[-1] < hi:
        edges.append(edges[-1] * ratio)
    return tuple(edges)


#: default edges: 10 us .. ~60 s, ~19 % worst-case relative quantile error
WINDOW_BUCKETS = geometric_buckets()


class _Slot:
    """One sub-window of the ring: bucket counts plus slot-local extrema."""

    __slots__ = ("index", "counts", "count", "sum", "over_target",
                 "columns", "max_value", "min_value", "exemplar")

    def __init__(self, n_buckets: int):
        self.counts = [0] * (n_buckets + 1)  # +1 for +Inf
        self._reset(-1)

    def _reset(self, index: int) -> None:
        self.index = index
        for i in range(len(self.counts)):
            self.counts[i] = 0
        self.count = 0
        self.sum = 0.0
        self.over_target = 0
        self.columns = 0.0
        self.max_value = float("-inf")
        self.min_value = float("inf")
        self.exemplar: dict[str, Any] | None = None


class SlidingWindow:
    """Streaming quantiles over the last ``window_s`` seconds.

    Parameters
    ----------
    window_s:
        Span of history a scrape covers (the estimator forgets older
        observations in whole sub-window steps).
    slots:
        Number of sub-windows in the ring; staleness granularity is
        ``window_s / slots``.  More slots means smoother forgetting at the
        cost of ``slots * len(buckets)`` integers of state.
    buckets:
        Bucket upper bounds shared by every slot (an implicit ``+Inf``
        bucket catches the rest).  Geometric by default; see
        :func:`geometric_buckets` for the error bound.
    quantiles:
        The quantiles :meth:`expose` reports.
    target:
        Optional breach threshold: observations strictly above it are
        counted exactly per slot (``over_target``), which is what SLO error
        budgets burn against — no bucket approximation on the budget path.
    clock:
        Time source (monotonic by default); injectable for deterministic
        rotation tests.
    """

    __slots__ = ("window_s", "slots", "buckets", "quantiles", "target",
                 "clock", "_slot_width", "_ring", "_lock")
    kind = "summary"

    def __init__(
        self,
        window_s: float = 60.0,
        slots: int = 12,
        buckets: Sequence[float] = WINDOW_BUCKETS,
        quantiles: Sequence[float] = DEFAULT_QUANTILES,
        target: float | None = None,
        clock=time.monotonic,
    ):
        if window_s <= 0 or slots < 1:
            from repro.errors import ConfigError

            raise ConfigError(
                f"a sliding window needs window_s > 0 and slots >= 1, "
                f"got window_s={window_s}, slots={slots}"
            )
        self.window_s = float(window_s)
        self.slots = int(slots)
        self.buckets = tuple(sorted(float(b) for b in buckets))
        if not self.buckets:
            from repro.errors import ConfigError

            raise ConfigError("a sliding window needs at least one bucket bound")
        self.quantiles = tuple(float(q) for q in quantiles)
        self.target = None if target is None else float(target)
        self.clock = clock
        self._slot_width = self.window_s / self.slots
        self._ring = [_Slot(len(self.buckets)) for _ in range(self.slots)]
        self._lock = threading.Lock()

    # ------------------------------------------------------------- recording
    def _slot_at(self, now: float) -> _Slot:
        """The slot owning ``now``, reset if it still holds stale history."""
        index = int(now / self._slot_width)
        slot = self._ring[index % self.slots]
        if slot.index != index:
            slot._reset(index)
        return slot

    def observe(
        self,
        value: float,
        columns: float = 0.0,
        exemplar: dict[str, Any] | None = None,
    ) -> None:
        """Record one observation (thread-safe).

        ``columns`` accumulates a throughput-side weight (served columns)
        alongside the latency sample; ``exemplar`` is an opaque tag kept
        only while this observation is the slot's maximum — the window's
        exemplar at scrape time is the slowest live observation's tag.
        """
        value = float(value)
        with self._lock:
            slot = self._slot_at(self.clock())
            slot.count += 1
            slot.sum += value
            slot.columns += float(columns)
            if self.target is not None and value > self.target:
                slot.over_target += 1
            if value > slot.max_value:
                slot.max_value = value
                slot.exemplar = exemplar
            if value < slot.min_value:
                slot.min_value = value
            for i, bound in enumerate(self.buckets):
                if value <= bound:
                    slot.counts[i] += 1
                    return
            slot.counts[-1] += 1

    # -------------------------------------------------------------- scraping
    def _live_slots(self, now: float) -> list[_Slot]:
        floor = int(now / self._slot_width) - self.slots + 1
        return [s for s in self._ring if s.index >= floor and s.count > 0]

    def _quantile_from_counts(
        self, counts: list[int], total: int, q: float,
        lo_clamp: float, hi_clamp: float,
    ) -> float:
        """Interpolated quantile from merged cumulative-able bucket counts.

        The rank is located in its bucket and linearly interpolated between
        the bucket's edges; the first bucket interpolates from the window
        minimum and the ``+Inf`` bucket from the last edge to the window
        maximum, so estimates never leave the observed value range.
        """
        rank = q * (total - 1)
        running = 0
        for i, n in enumerate(counts):
            if n == 0:
                continue
            if running + n > rank:
                frac = (rank - running + 1.0) / n
                lower = lo_clamp if i == 0 else self.buckets[i - 1]
                upper = hi_clamp if i == len(self.buckets) else self.buckets[i]
                upper = min(upper, hi_clamp)
                lower = max(min(lower, upper), lo_clamp)
                return lower + (upper - lower) * min(frac, 1.0)
            running += n
        return hi_clamp

    def snapshot(self) -> dict[str, Any]:
        """Merged live-slot view: quantiles, extrema, breaches, exemplar."""
        with self._lock:
            now = self.clock()
            live = self._live_slots(now)
            count = sum(s.count for s in live)
            if count == 0:
                return {
                    "window_seconds": self.window_s,
                    "count": 0,
                    "sum": 0.0,
                    "columns": 0.0,
                    "over_target": 0 if self.target is not None else None,
                    "quantiles": {},
                    "min": None,
                    "max": None,
                    "exemplar": None,
                }
            merged = [0] * (len(self.buckets) + 1)
            for slot in live:
                for i, n in enumerate(slot.counts):
                    merged[i] += n
            lo = min(s.min_value for s in live)
            hi = max(s.max_value for s in live)
            slowest = max(live, key=lambda s: s.max_value)
            return {
                "window_seconds": self.window_s,
                "count": count,
                "sum": sum(s.sum for s in live),
                "columns": sum(s.columns for s in live),
                "over_target": (
                    sum(s.over_target for s in live)
                    if self.target is not None
                    else None
                ),
                "quantiles": {
                    f"p{q * 100:g}": self._quantile_from_counts(
                        merged, count, q, lo, hi
                    )
                    for q in self.quantiles
                },
                "min": lo,
                "max": hi,
                "exemplar": slowest.exemplar,
            }

    def quantile(self, q: float) -> float | None:
        """One interpolated quantile of the live window (None when empty)."""
        with self._lock:
            now = self.clock()
            live = self._live_slots(now)
            count = sum(s.count for s in live)
            if count == 0:
                return None
            merged = [0] * (len(self.buckets) + 1)
            for slot in live:
                for i, n in enumerate(slot.counts):
                    merged[i] += n
            lo = min(s.min_value for s in live)
            hi = max(s.max_value for s in live)
            return self._quantile_from_counts(merged, count, float(q), lo, hi)

    @property
    def count(self) -> int:
        """Live observations in the window right now."""
        with self._lock:
            return sum(s.count for s in self._live_slots(self.clock()))

    def expose(self) -> dict[str, Any]:
        """The registry-facing export (:meth:`MetricsRegistry.snapshot`)."""
        return self.snapshot()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SlidingWindow(window_s={self.window_s}, slots={self.slots}, "
            f"count={self.count})"
        )
