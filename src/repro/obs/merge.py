"""Cross-process telemetry merge for the multi-worker serving fleet.

Every fleet worker owns a private :class:`~repro.obs.metrics.MetricsRegistry`
(its sessions, batcher lanes, and SLO trackers publish there), so the
dispatcher sees N independent scrapes.  This module folds them into one:

* :func:`merge_snapshots` — JSON snapshots (``name{label="v"} -> value``)
  relabeled with a ``worker="i"`` label and unioned.  Per-worker series stay
  separate on purpose: counters from different processes measure different
  traffic, and summing them here would hide a dead or lopsided worker —
  exactly what the fleet report must surface.  Aggregation across workers
  is the scrape consumer's job (PromQL ``sum by``), as in any multi-replica
  deployment.
* :func:`merge_prometheus` — text expositions merged the same way: every
  series line gains the ``worker`` label, ``# HELP``/``# TYPE`` headers are
  deduplicated (first worker wins), and series of one metric stay grouped
  under their header.

Both are pure functions over already-collected payloads; scraping the
workers (HTTP to their per-process :class:`~repro.obs.http.ObsServer`, or
the final report a worker ships at drain) is the dispatcher's concern.
"""

from __future__ import annotations

import re

__all__ = ["merge_snapshots", "merge_prometheus", "inject_label"]

#: one exposition series line: name, optional {labels}, value.  The label
#: group is greedy because label *values* may contain escaped quotes or
#: braces; the trailing value is the last whitespace-separated token.
_SERIES_RE = re.compile(r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{.*\})?\s+(\S+)$")

#: series-name suffixes that belong to a composite metric's header
_COMPOSITE_SUFFIXES = ("_bucket", "_sum", "_count")


def inject_label(key: str, label: str, value: str) -> str:
    """Add ``label="value"`` as the *first* label of a snapshot-style key.

    ``key`` is the snapshot form — ``name`` or ``name{a="x",b="y"}`` — as
    produced by :meth:`~repro.obs.metrics.MetricsRegistry.snapshot`.
    """
    if "{" in key:
        name, rest = key.split("{", 1)
        return f'{name}{{{label}="{value}",{rest}'
    return f'{key}{{{label}="{value}"}}'


def merge_snapshots(
    snapshots: dict[str, dict], label: str = "worker"
) -> dict[str, float]:
    """Union per-worker metric snapshots under a ``worker=...`` label.

    ``snapshots`` maps a worker id (stringified into the label value) to
    that worker's :meth:`~repro.obs.metrics.MetricsRegistry.snapshot` dict.
    Key collisions are impossible after relabeling, so the union is exact.
    """
    merged: dict[str, float] = {}
    for worker, snap in snapshots.items():
        for key, value in (snap or {}).items():
            merged[inject_label(key, label, str(worker))] = value
    return dict(sorted(merged.items()))


def _base_name(series_name: str) -> str:
    """Metric name a series line's header was emitted under."""
    for suffix in _COMPOSITE_SUFFIXES:
        if series_name.endswith(suffix):
            return series_name[: -len(suffix)]
    return series_name


def merge_prometheus(expositions: dict[str, str], label: str = "worker") -> str:
    """One Prometheus text exposition from many per-worker ones.

    Every series line gains ``label="<worker>"`` as its first label;
    ``# HELP`` / ``# TYPE`` headers are kept once per metric (duplicates
    across workers are identical by construction — same code emitted them)
    and all workers' series of a metric are grouped under its header, as
    the exposition format requires.  Unparseable lines are dropped rather
    than corrupting the merged scrape.
    """
    headers: dict[str, list[str]] = {}
    series: dict[str, list[str]] = {}
    order: list[str] = []

    def bucket(base: str) -> None:
        if base not in headers and base not in series:
            order.append(base)

    for worker, text in expositions.items():
        for line in (text or "").splitlines():
            if not line.strip():
                continue
            if line.startswith("#"):
                parts = line.split(None, 3)
                if len(parts) >= 3 and parts[1] in ("HELP", "TYPE"):
                    base = _base_name(parts[2])
                    bucket(base)
                    lines = headers.setdefault(base, [])
                    if line not in lines:
                        lines.append(line)
                continue
            match = _SERIES_RE.match(line)
            if match is None:
                continue
            name, labels, value = match.groups()
            base = _base_name(name)
            bucket(base)
            if labels:
                relabeled = f'{name}{{{label}="{worker}",{labels[1:]}'
            else:
                relabeled = f'{name}{{{label}="{worker}"}}'
            series.setdefault(base, []).append(f"{relabeled} {value}")

    out: list[str] = []
    for base in order:
        out.extend(headers.get(base, []))
        out.extend(series.get(base, []))
    return "\n".join(out) + ("\n" if out else "")
