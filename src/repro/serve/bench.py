"""Serving throughput benchmark: cold per-request engines vs a warm session.

The cold path is today's ``run_engine`` usage — a fresh SNICIT engine per
request, each request its own tiny batch.  The warm path is the serving
stack this package adds: one :class:`~repro.serve.session.EngineSession`
behind an :class:`~repro.serve.server.InferenceServer`, requests packed into
SNICIT-sized blocks.  Results land in ``BENCH_serve.json`` so successive
PRs accumulate a machine-readable perf trajectory.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np

from repro.harness.experiments.common import sdgc_config
from repro.harness.runner import run_engine
from repro.harness.workloads import get_benchmark, get_input
from repro.obs import Tracer
from repro.serve.server import InferenceServer
from repro.serve.session import EngineSession

__all__ = ["bench_serve", "DEFAULT_BENCH_PATH"]

DEFAULT_BENCH_PATH = "BENCH_serve.json"


def _split_requests(y0: np.ndarray, request_cols: int) -> list[np.ndarray]:
    """Cut a block into per-request column slices (last one may be short)."""
    return [
        y0[:, lo : lo + request_cols] for lo in range(0, y0.shape[1], request_cols)
    ]


def bench_serve(
    benchmark: str = "144-24",
    requests: int = 48,
    request_cols: int = 4,
    max_batch: int = 64,
    threshold: int | None = None,
    seed: int = 1,
    out: str | Path | None = DEFAULT_BENCH_PATH,
    trace: str | Path | None = None,
) -> dict:
    """Measure request throughput: cold per-request engines vs warm serving.

    Returns the result dict and, unless ``out`` is None, writes it as JSON.
    Both paths run the same requests on the same network; weight views are
    pre-built before timing either path so the comparison isolates
    steady-state serving cost (engine construction + packing), not the
    one-time view build both paths share through the network cache.

    The warm session's metrics snapshot is embedded under ``"metrics"`` so
    ``BENCH_serve.json`` carries queue/batch/pool/strategy telemetry next to
    the throughput numbers.  ``trace`` additionally writes a Chrome trace of
    the warm serving run (note: span recording adds overhead to the warm
    numbers; leave it off when comparing throughput across PRs).
    """
    net = get_benchmark(benchmark)
    overrides = {} if threshold is None else {"threshold_layer": threshold}
    cfg = sdgc_config(net.num_layers, **overrides)
    stream = _split_requests(get_input(benchmark, requests * request_cols, seed), request_cols)

    # one warm session serves; its warmup also pre-builds the shared views
    # the cold path will hit through the network cache
    tracer = Tracer() if trace is not None else None
    session = EngineSession(net, cfg, tracer=tracer)
    server = InferenceServer(
        session, max_batch=max_batch, max_wait_s=60.0, queue_limit=len(stream)
    )

    t0 = time.perf_counter()
    cold_runs = [
        run_engine("snicit", net, y0, snicit_config=cfg) for y0 in stream
    ]
    cold_seconds = time.perf_counter() - t0

    report = server.serve(iter(stream))

    cold_cats = np.concatenate([run.result.categories for run in cold_runs])
    warm_cats = np.concatenate([t.categories for t in report.served])
    total_cols = sum(y0.shape[1] for y0 in stream)

    result = {
        "benchmark": benchmark,
        "paper_name": net.meta.get("paper_name"),
        "requests": len(stream),
        "request_cols": request_cols,
        "total_columns": total_cols,
        "max_batch": max_batch,
        "threshold_layer": cfg.threshold_layer,
        "cold": {
            "seconds": cold_seconds,
            "requests_per_second": len(stream) / cold_seconds if cold_seconds else 0.0,
            "columns_per_second": total_cols / cold_seconds if cold_seconds else 0.0,
        },
        "warm": {
            "seconds": report.wall_seconds,
            "requests_per_second": report.requests_per_second,
            "columns_per_second": report.columns_per_second,
            "latency_seconds": report.latency_quantiles(),
            "rejected": len(report.rejected),
            "warmup_seconds": session.warmup_seconds,
            "batcher": server.batcher.stats(),
            "memo": session.memo.stats(),
            "scratch": session.scratch.stats(),
            # telemetry of the last warm block (JSON-safe engine report)
            "last_block": report.served[-1].result.to_json() if report.served else None,
        },
        "metrics": session.metrics.snapshot(),
        "speedup": (
            cold_seconds / report.wall_seconds if report.wall_seconds > 0 else float("inf")
        ),
        "categories_match": bool((cold_cats == warm_cats).all()),
    }
    if trace is not None and tracer is not None:
        tracer.write_chrome(trace)
        result["trace"] = str(trace)
    if out is not None:
        Path(out).write_text(json.dumps(result, indent=2) + "\n")
    return result
