"""Serving throughput benchmark: cold per-request engines vs a warm session.

The cold path is today's ``run_engine`` usage — a fresh SNICIT engine per
request, each request its own tiny batch.  The warm path is the serving
stack this package adds: one :class:`~repro.serve.session.EngineSession`
behind an :class:`~repro.serve.server.InferenceServer`, requests packed into
SNICIT-sized blocks.  Results land in ``BENCH_serve.json`` so successive
PRs accumulate a machine-readable perf trajectory.

The bench runs a *tier list* (schema 3): two SDGC depths plus a trained
medium-scale DNN, each measured independently so a perf change that only
helps shallow nets cannot hide a regression on deep ones.  With
``centroid_reuse=True`` every tier additionally runs an A/B pass — the same
request stream through a second warm session with the
:class:`~repro.core.reuse.CentroidCache` enabled — and records cache
counters, per-block outcomes, and whether the reuse outputs match the
reuse-off outputs bitwise.

Schema 4 adds the ``scale_out`` record: the same stream population served
through :class:`~repro.serve.fleet.FleetDispatcher` at increasing worker
counts, with per-count wall *and* capacity throughput (see
:mod:`repro.serve.fleet` on why both are reported), bitwise
``outputs_identical`` checks against a single-process reference, and a
crash-injection run proving supervised recovery mid-stream.

Schema 6 adds the ``qos`` record (see :mod:`repro.serve.qos`): an
interactive tenant and a saturating bulk tenant served through the same
router twice — once under the QoS policy (priority lanes, deficit-weighted
service, admission control shedding the bulk tenant at its hard quota) and
once under plain registration-order FIFO.  The record carries each
tenant's solo-run latency baseline, the mixed-run quantiles for both arms,
the interactive p99 inflation ratio the CI gate bounds, bitwise
``outputs_identical`` checks against the solo runs, and the shed
accounting identity (submitted == served + shed + failed).

Schema 5 adds the ``warm_boot`` record (see :mod:`repro.core.warmstore`):
one tier booted cold — plan baked, then a priming pass that fills the
centroid cache and cost baselines from traffic — then snapshotted and
re-booted from the artifact with a single ``load_warm_state`` call.  The
record compares time-to-warm for both boot modes and asserts the identity
triangle (loaded == freshly warmed == cold, bitwise).  The scale-out
crash run additionally boots its workers from a saved artifact, so the
SIGKILLed worker's replacement incarnation demonstrates the crash-restart
path the artifact exists for.
"""

from __future__ import annotations

import dataclasses
import json
import os
import shutil
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.errors import ConfigError
from repro.harness.experiments.common import sdgc_config
from repro.harness.runner import run_engine
from repro.harness.workloads import get_benchmark, get_input
from repro.obs import Tracer
from repro.serve.async_server import AsyncInferenceServer
from repro.serve.server import InferenceServer
from repro.serve.session import EngineSession

__all__ = [
    "bench_serve",
    "load_bench_records",
    "poisson_interarrivals",
    "BENCH_SCHEMA",
    "DEFAULT_BENCH_PATH",
    "DEFAULT_SCALE_OUT",
    "DEFAULT_TIERS",
    "MULTI_TIERS",
    "MULTI_SLO_SPEC",
    "STREAM_MODES",
]

DEFAULT_BENCH_PATH = "BENCH_serve.json"

#: current on-disk layout of ``BENCH_serve.json``.  Schema 6 added the
#: top-level ``qos`` record (priority-lane A/B: interactive p99 under bulk
#: saturation with and without the QoS scheduler, plus shed accounting);
#: schema 5 added the ``warm_boot`` record (persistent-warmup artifact boot
#: vs cold warmup + priming) and the artifact-boot crash run under
#: ``scale_out``; schema 4 added the ``scale_out`` record (multi-process
#: fleet curve + crash-recovery run); schema 3 added the multi-tenant
#: record's per-tenant ``slo`` blocks (windowed quantiles, error-budget
#: burn, trace-linked exemplars) and per-tenant latency quantiles in the
#: router summary; schemas 2 through 5 are still readable.
BENCH_SCHEMA = 6

#: worker counts of the default scale-out curve
DEFAULT_SCALE_OUT = (1, 2, 4)

#: SLO every multi-tenant bench tenant is registered under — loose enough
#: that a healthy CI run is compliant, tight enough that the windowed
#: estimator and budget arithmetic are exercised with real traffic
MULTI_SLO_SPEC = "p99<250ms@30s/95%"

#: tier name -> SDGC benchmark, or the sentinel ``"medium:<id>"``
DEFAULT_TIERS = ("sdgc-shallow", "sdgc-deep", "medium-A")

#: tenants of the mixed-traffic multi-model record (two SDGC depths: fast
#: enough for CI, different enough that conflated state would be caught)
MULTI_TIERS = ("sdgc-shallow", "sdgc-deep")

_TIER_SOURCES = {
    "sdgc-shallow": "144-24",
    "sdgc-deep": "144-48",
    "medium-A": "medium:A",
}

#: request-stream shapes the bench can synthesize
STREAM_MODES = ("mix", "repeat", "drift")


def poisson_interarrivals(n: int, rate_rps: float, seed: int = 0) -> np.ndarray:
    """``n`` exponential interarrival gaps for a Poisson stream of ``rate_rps``.

    The open-loop arrival model: clients submit on their own clock, at
    ``rate_rps`` requests/second on average, independent of how fast the
    server drains.  A non-positive rate degenerates to a closed-loop stream
    (all gaps zero).  Seeded, so sync and async A/B passes replay the exact
    same schedule.
    """
    if n < 0:
        raise ConfigError(f"need a non-negative request count, got {n}")
    if rate_rps <= 0:
        return np.zeros(n)
    return np.random.default_rng(seed).exponential(1.0 / rate_rps, size=n)


def _split_requests(y0: np.ndarray, request_cols: int) -> list[np.ndarray]:
    """Cut a block into per-request column slices (last one may be short)."""
    return [
        y0[:, lo : lo + request_cols] for lo in range(0, y0.shape[1], request_cols)
    ]


def _shape_stream(y0: np.ndarray, stream: str, max_batch: int) -> np.ndarray:
    """Reshape the base column pool into one of the named traffic patterns.

    ``mix``
        The pool as-is: every column distinct, one stable traffic mix.
    ``repeat``
        The first ``max_batch`` columns tiled across the whole stream, so
        every packed block is identical — the best case for centroid reuse
        and the configuration under which reuse must be *bitwise* lossless.
    ``drift``
        First half the base mix, second half the same columns with their
        amplitude doubled — a deliberate input-distribution shift that must
        trip the staleness policy and force a full re-conversion.
    """
    if stream == "mix":
        return y0
    if stream == "repeat":
        block = y0[:, :max_batch]
        reps = -(-y0.shape[1] // block.shape[1])  # ceil
        return np.tile(block, reps)[:, : y0.shape[1]]
    if stream == "drift":
        half = y0.shape[1] // 2
        drifted = y0.copy()
        drifted[:, half:] = y0[:, half:] * 2.0
        return drifted
    raise ConfigError(f"unknown stream mode {stream!r}; known: {STREAM_MODES}")


def _tier_workload(tier: str, total_cols: int, seed: int):
    """Resolve one tier to ``(net, cfg, base column pool)``."""
    source = _TIER_SOURCES.get(tier, tier)
    if source.startswith("medium:"):
        from repro.harness.experiments.table4 import medium_config
        from repro.harness.medium import get_trained

        tm = get_trained(source.split(":", 1)[1])
        images = tm.test.images
        reps = -(-total_cols // images.shape[0])
        if reps > 1:
            images = np.concatenate([images] * reps)
        y0 = tm.stack.head(images[:total_cols])
        return tm.stack.network, medium_config(tm.spec.sparse_layers), y0
    net = get_benchmark(source)
    return net, sdgc_config(net.num_layers), np.asarray(get_input(source, total_cols, seed))


def _warm_pass(
    net, cfg, stream, max_batch, tracer=None, centroid_reuse=False, reuse_tolerance=0.5
):
    """One full serve of ``stream`` through a fresh warm session."""
    session = EngineSession(
        net, cfg, tracer=tracer,
        centroid_reuse=centroid_reuse, reuse_tolerance=reuse_tolerance,
    )
    server = InferenceServer(
        session, max_batch=max_batch, max_wait_s=60.0, queue_limit=len(stream)
    )
    report = server.serve(iter(stream))
    return session, server, report


def _async_ab(
    net, cfg, stream, max_batch, seed: int, arrival_rate: float | None,
    warm_wall: float, reference_served,
) -> dict:
    """Open-loop sync-vs-async A/B on one tier's stream.

    Both transports replay the *same* seeded Poisson arrival schedule; the
    synchronous loop serializes arrival gaps with block execution while the
    async worker hides them behind it.  ``max_wait_s`` stays high so both
    sides pack identical blocks — outputs must then match bitwise, and the
    throughput delta is purely the overlap.
    """
    rate = arrival_rate
    if rate is None:
        # auto-pace: mean interarrival ~= the tier's warm per-request service
        # time, so the arrival span is comparable to execution and the
        # overlap is what separates the two transports
        per_request = warm_wall / max(len(stream), 1)
        rate = 1.0 / per_request if per_request > 0 else 1000.0
    gaps = poisson_interarrivals(len(stream), rate, seed)

    s_session = EngineSession(net, cfg)
    s_server = InferenceServer(
        s_session, max_batch=max_batch, max_wait_s=60.0, queue_limit=len(stream)
    )
    s_report = s_server.serve(iter(stream), interarrivals=gaps)

    a_session = EngineSession(net, cfg)
    a_server = AsyncInferenceServer(
        a_session, max_batch=max_batch, max_wait_s=60.0, queue_limit=len(stream)
    )
    a_report = a_server.serve(iter(stream), interarrivals=gaps)

    sync_y = np.hstack([t.y for t in s_report.served])
    a_served = sorted(a_report.served, key=lambda t: t.index)
    async_y = np.hstack([t.y for t in a_served])
    sync_cats = np.concatenate([t.categories for t in s_report.served])
    async_cats = np.concatenate([t.categories for t in a_served])
    ref_cats = np.concatenate([t.categories for t in reference_served])
    return {
        "arrival_rate_rps": rate,
        "arrival_seconds": float(gaps.sum()),
        "sync": {
            "seconds": s_report.wall_seconds,
            "requests_per_second": s_report.requests_per_second,
            "latency_seconds": s_report.latency_quantiles(),
            "status": s_report.status,
        },
        "async": {
            "seconds": a_report.wall_seconds,
            "requests_per_second": a_report.requests_per_second,
            "latency_seconds": a_report.latency_quantiles(),
            "status": a_report.status,
            "overlap_fraction": a_report.overlap_fraction,
            "exec_seconds": a_report.exec_seconds,
            "failed": len(a_report.failed),
        },
        "outputs_identical": bool(np.array_equal(async_y, sync_y)),
        "categories_match": bool(
            (async_cats == sync_cats).all() and (async_cats == ref_cats).all()
        ),
        "async_ge_sync": bool(
            a_report.requests_per_second >= s_report.requests_per_second
        ),
        "speedup_vs_sync": (
            s_report.wall_seconds / a_report.wall_seconds
            if a_report.wall_seconds > 0
            else float("inf")
        ),
    }


def _run_tier(
    tier: str,
    benchmark_source: str,
    requests: int,
    request_cols: int,
    max_batch: int,
    threshold: int | None,
    seed: int,
    stream_mode: str,
    centroid_reuse: bool,
    reuse_tolerance: float,
    tracer: Tracer | None,
    async_ab: bool = True,
    arrival_rate: float | None = None,
) -> dict:
    """Measure one tier: cold pass, warm pass, and the optional reuse A/B."""
    total_cols = requests * request_cols
    net, cfg, pool = _tier_workload(benchmark_source, total_cols, seed)
    if threshold is not None:
        cfg = dataclasses.replace(cfg, threshold_layer=threshold)
    pool = _shape_stream(pool, stream_mode, max_batch)
    stream = _split_requests(pool, request_cols)

    # the warm session's warmup also pre-builds the shared weight views the
    # cold path will then hit through the network cache, so the comparison
    # isolates steady-state serving cost (engine construction + packing)
    session, server, report = _warm_pass(net, cfg, stream, max_batch, tracer=tracer)

    t0 = time.perf_counter()
    cold_runs = [run_engine("snicit", net, y0, snicit_config=cfg) for y0 in stream]
    cold_seconds = time.perf_counter() - t0

    cold_cats = np.concatenate([run.result.categories for run in cold_runs])
    warm_cats = np.concatenate([t.categories for t in report.served])
    cold_y = np.hstack([run.result.y for run in cold_runs])
    warm_y = np.hstack([t.y for t in report.served])
    cold_busy = sum(sum(r.result.stage_seconds.values()) for r in cold_runs)

    # per-block engine seconds, in serve order (tickets of one block share
    # its InferenceResult); the steady-state view drops the first block so
    # one-time effects — plan priming, first pool/view touches — report
    # separately from the hot-path rate the perf gate regresses on
    seen: set[int] = set()
    blocks: list[tuple[float, int]] = []
    for ticket in report.served:
        if id(ticket.result) not in seen:
            seen.add(id(ticket.result))
            blocks.append(
                (sum(ticket.result.stage_seconds.values()), int(ticket.batch_columns))
            )
    steady_busy = sum(b for b, _ in blocks[1:])
    steady_cols = sum(c for _, c in blocks[1:])
    steady_state = {
        "blocks": max(len(blocks) - 1, 0),
        "columns": steady_cols,
        "busy_seconds": steady_busy,
        "columns_per_second": steady_cols / steady_busy if steady_busy > 0 else 0.0,
    }
    first_block = (
        {"busy_seconds": blocks[0][0], "columns": blocks[0][1]} if blocks else None
    )

    record = {
        "tier": tier,
        "benchmark": net.name,
        "paper_name": net.meta.get("paper_name"),
        "requests": len(stream),
        "request_cols": request_cols,
        "total_columns": sum(y0.shape[1] for y0 in stream),
        "max_batch": max_batch,
        "threshold_layer": cfg.for_network(net.num_layers).threshold_layer,
        "stream": stream_mode,
        "cold": {
            "seconds": cold_seconds,
            "busy_seconds": cold_busy,
            "requests_per_second": len(stream) / cold_seconds if cold_seconds else 0.0,
            "columns_per_second": (
                sum(y0.shape[1] for y0 in stream) / cold_seconds if cold_seconds else 0.0
            ),
        },
        "warm": {
            "seconds": report.wall_seconds,
            "requests_per_second": report.requests_per_second,
            "columns_per_second": report.columns_per_second,
            "latency_seconds": report.latency_quantiles(),
            "rejected": len(report.rejected),
            "batcher": server.batcher.stats(),
            # one-time costs, reported apart from steady-state throughput
            "first_block": first_block,
            "steady_state": steady_state,
            # session lifetime stats: warmup_seconds, busy_seconds, the
            # baked plan, memo/scratch/cache counters
            "session": session.stats(),
            # telemetry of the last warm block (JSON-safe engine report)
            "last_block": report.served[-1].result.to_json() if report.served else None,
        },
        "metrics": session.metrics.snapshot(),
        "speedup": (
            cold_seconds / report.wall_seconds if report.wall_seconds > 0 else float("inf")
        ),
        # the fair hot-path regression metric: warm steady-state engine
        # throughput (warmup and the first block excluded) against the cold
        # per-request engine throughput on the same stream
        "warm_over_cold": (
            steady_state["columns_per_second"]
            / (sum(y0.shape[1] for y0 in stream) / cold_seconds)
            if cold_seconds > 0 and steady_state["columns_per_second"] > 0
            else 0.0
        ),
        "categories_match": bool((cold_cats == warm_cats).all()),
        "outputs_identical": bool(np.array_equal(warm_y, cold_y)),
    }

    if async_ab:
        record["async"] = _async_ab(
            net, cfg, stream, max_batch, seed, arrival_rate,
            warm_wall=report.wall_seconds, reference_served=report.served,
        )

    if centroid_reuse:
        r_session, r_server, r_report = _warm_pass(
            net, cfg, stream, max_batch,
            centroid_reuse=True, reuse_tolerance=reuse_tolerance,
        )
        off_y = np.hstack([t.y for t in report.served])
        on_y = np.hstack([t.y for t in r_report.served])
        on_cats = np.concatenate([t.categories for t in r_report.served])
        record["reuse"] = {
            "tolerance": reuse_tolerance,
            "warm": {
                "seconds": r_report.wall_seconds,
                "requests_per_second": r_report.requests_per_second,
                "columns_per_second": r_report.columns_per_second,
                "latency_seconds": r_report.latency_quantiles(),
            },
            "cache": r_session.reuse.stats(),
            "reuse_blocks": dict(r_server.batcher.reuse_outcomes),
            "outputs_identical": bool(np.array_equal(on_y, off_y)),
            "categories_match": bool((on_cats == warm_cats).all()),
            "speedup_vs_warm": (
                report.wall_seconds / r_report.wall_seconds
                if r_report.wall_seconds > 0
                else float("inf")
            ),
            "metrics": r_session.metrics.snapshot(),
        }
    return record


def _run_multi(
    tiers: tuple[str, ...],
    requests: int,
    request_cols: int,
    max_batch: int,
    seed: int,
    memory_budget_mb: float | None,
    slo: str | None = MULTI_SLO_SPEC,
) -> dict:
    """Mixed-traffic multi-tenant record: throughput, isolation, budget, SLO.

    Each tier becomes one named tenant in a :class:`~repro.serve.router.
    ModelRegistry`; the mixed stream round-robins the tenants in
    block-sized chunks through the synchronous :class:`~repro.serve.router.
    Router`.  Two properties are asserted into the record:

    * **isolation** — every tenant's outputs are compared bitwise against a
      single-tenant serve of the same stream (same batcher geometry).
      Mixing tenants must change nothing, with or without budget-driven
      warm-to-cold demotions mid-stream;
    * **budget** — with ``memory_budget_mb`` set, the post-run high-water
      mark must sit at or under the limit and the LRU demotions it took to
      get there are recorded.

    Every tenant is additionally registered under the ``slo`` policy spec
    (default :data:`MULTI_SLO_SPEC`; ``None`` disables), so the record
    carries a live per-tenant SLO evaluation — windowed p50/p95/p99, budget
    burn, and the slowest request's exemplar with its trace span id.  The
    isolation check doubles as the proof that SLO instrumentation does not
    change served outputs: the single-tenant references run *without*
    trackers, and the mixed run must still match them bitwise.
    """
    from repro.serve.router import ModelRegistry, Router

    budget_bytes = (
        int(memory_budget_mb * 1024 * 1024) if memory_budget_mb is not None else None
    )
    tenants: dict[str, dict] = {}
    for tier in tiers:
        net, cfg, pool = _tier_workload(tier, requests * request_cols, seed)
        net.drop_views()  # a prior tier may share this network object warm
        tenants[tier] = {
            "net": net,
            "cfg": cfg,
            "stream": _split_requests(pool, request_cols),
        }

    # single-tenant references: same stream, same batcher geometry, no
    # neighbors — the bar the mixed run must match bitwise
    for name, tenant in tenants.items():
        session, server, report = _warm_pass(
            tenant["net"], tenant["cfg"], tenant["stream"], max_batch
        )
        tenant["reference"] = report
        tenant["net"].drop_views()  # hand the views back cold to the router

    registry = ModelRegistry(memory_budget_bytes=budget_bytes)
    for name, tenant in tenants.items():
        registry.register(
            name, tenant["net"], config=tenant["cfg"], warm=True, slo=slo
        )
    router = Router(
        registry, max_batch=max_batch, max_wait_s=60.0,
        queue_limit=max(len(t["stream"]) for t in tenants.values()),
    )

    # round-robin in block-sized chunks so every tenant flushes full blocks
    # and budget enforcement happens per block, not per request
    chunk = max(1, max_batch // request_cols)
    mixed: list[tuple[str, np.ndarray]] = []
    offset = 0
    while any(offset < len(t["stream"]) for t in tenants.values()):
        for name, tenant in tenants.items():
            for y0 in tenant["stream"][offset : offset + chunk]:
                mixed.append((name, y0))
        offset += chunk

    report = router.serve(iter(mixed))

    per_tenant = {}
    for name, tenant in tenants.items():
        ref, mine = tenant["reference"], report.per_model[name]
        identical = len(ref.served) == len(mine.served) and all(
            np.array_equal(t.y, rt.y) for t, rt in zip(mine.served, ref.served)
        )
        lane = router.lane(name).stats()
        per_tenant[name] = {
            "requests": mine.requests,
            "served": len(mine.served),
            "rejected": len(mine.rejected),
            "columns": mine.columns,
            "columns_per_second": mine.columns_per_second,
            "latency_seconds": mine.latency_quantiles(),
            "status": mine.status,
            "isolation_identical": bool(identical),
            # same check, stated as the SLO-instrumentation invariant: the
            # references ran without trackers, so a bitwise match proves the
            # telemetry path never touched served outputs
            "outputs_identical": bool(identical),
            "single_tenant_seconds": ref.wall_seconds,
            "single_tenant_columns_per_second": ref.columns_per_second,
            "hol_stalls": lane["hol_stalls"],
            "hol_underfill_columns": lane["hol_underfill_columns"],
            "batcher": lane,
            # live SLO evaluation: windowed p50/p95/p99, burn rate, budget,
            # and the slowest request's exemplar with its trace span id
            "slo": (report.slo or {}).get(name),
        }

    budget_stats = registry.budget.stats()
    return {
        "tenants": list(tiers),
        "requests_per_tenant": requests,
        "request_cols": request_cols,
        "max_batch": max_batch,
        "memory_budget_mb": memory_budget_mb,
        "slo_spec": slo,
        "router": report.to_json(),
        "per_tenant": per_tenant,
        "isolation_identical": bool(
            all(t["isolation_identical"] for t in per_tenant.values())
        ),
        "demoted": list(report.demoted),
        "budget": budget_stats,
        "under_budget": (
            bool(budget_stats["highwater_bytes"] <= budget_stats["limit_bytes"])
            if budget_stats["limit_bytes"] is not None
            else None
        ),
        "metrics": registry.metrics.snapshot(),
    }


def _balanced_streams(count: int, workers: int) -> list[str]:
    """``count`` stream names sharding evenly over ``workers`` fleet slots.

    :func:`~repro.serve.fleet.stream_shard` is a hash, so a tiny stream
    population can land lopsided by luck; the bench picks names that fill
    every slot of the *largest* measured worker count evenly (divisor
    counts then inherit balance, since ``h % d == (h % w) % d`` when ``d``
    divides ``w``).  Real deployments get the same effect from stream
    population size; the curve should measure scaling, not hash variance.
    """
    from repro.serve.fleet import stream_shard

    per_slot = -(-count // workers)  # ceil
    filled = dict.fromkeys(range(workers), 0)
    names: list[str] = []
    n = 0
    while len(names) < count:
        name = f"s{n}"
        n += 1
        slot = stream_shard(name, workers)
        if filled[slot] < per_slot:
            filled[slot] += 1
            names.append(name)
    return names


def _single_process_reference(net, cfg, items, max_batch) -> dict:
    """Per-stream hstacked outputs from one in-process stream-lane router."""
    from repro.serve.router import AsyncRouter, ModelRegistry

    net.drop_views()
    registry = ModelRegistry()
    registry.register("m", net, config=cfg, warm=True)
    router = AsyncRouter(
        registry, max_batch=max_batch, max_wait_s=60.0,
        queue_limit=len(items) + 1,
    )
    tickets = [
        (stream, router.submit(model, y0, stream=stream))
        for model, stream, y0 in items
    ]
    router.close(drain=True)
    outputs: dict[str, list] = {}
    for stream, ticket in tickets:
        outputs.setdefault(stream, []).append(ticket.y)
    net.drop_views()  # hand the memoized network back cold
    return {s: np.hstack(parts) for s, parts in outputs.items()}


def _fleet_pass(spec, items, workers, max_batch, kill: int | None = None):
    """One fleet serve of ``items``; optionally SIGKILL a worker mid-stream."""
    from repro.serve.fleet import FleetDispatcher

    fleet = FleetDispatcher(
        [spec], workers=workers, max_batch=max_batch, max_wait_s=60.0,
        queue_limit=len(items) + 1,
    )
    try:
        for model, stream, y0 in items:
            fleet.submit(model, y0, stream=stream)
        if kill is not None:
            fleet.kill_worker(kill)
        return fleet.join()
    finally:
        fleet.close()


def _streams_identical(report, reference, streams) -> bool:
    return all(
        stream in reference
        and np.array_equal(report.stream_output(stream), reference[stream])
        for stream in streams
    )


def _run_warm_boot(
    tier: str,
    requests: int,
    request_cols: int,
    max_batch: int,
    seed: int,
    reuse_tolerance: float = 0.0,
    revise_ratio: float | None = 2.0,
) -> dict:
    """Schema-5 persistent-warmup record: artifact boot vs cold warm+prime.

    The cold path to a fully warm session is two-phase: ``warmup()`` bakes
    the plan and pins views, then the first blocks of traffic *teach* it —
    centroid-cache fills with their staleness baselines, per-bucket kernel
    cost baselines.  The warmstore artifact replaces both phases with one
    ``load_warm_state`` call, so the honest comparison is::

        cold.ready_seconds  = warmup_seconds + prime_seconds   (bake + learn)
        artifact.load_seconds                                   (one load)

    The stream is ``repeat`` with ``reuse_tolerance=0.0`` — the regime where
    centroid reuse is bitwise lossless — so the record can also assert the
    identity triangle: loaded-warm == freshly-warmed == cold-boot outputs,
    all bitwise.  ``revise_ratio`` keeps the measure-and-revise loop armed
    on every session, proving a loaded plan revises like a baked one.
    """
    total_cols = requests * request_cols
    net, cfg, pool = _tier_workload(tier, total_cols, seed)
    pool = _shape_stream(pool, "repeat", max_batch)
    stream = _split_requests(pool, request_cols)

    def fresh_session():
        return EngineSession(
            net, cfg, warm=False,
            centroid_reuse=True, reuse_tolerance=reuse_tolerance,
            revise_ratio=revise_ratio,
        )

    def serve(session):
        server = InferenceServer(
            session, max_batch=max_batch, max_wait_s=60.0, queue_limit=len(stream)
        )
        report = server.serve(iter(stream))
        return np.hstack([t.y for t in report.served])

    # ---- cold boot: bake the plan, then learn from the priming pass
    net.drop_views()
    cold = fresh_session()
    t0 = time.perf_counter()
    cold.warmup()
    warmup_seconds = time.perf_counter() - t0
    t0 = time.perf_counter()
    cold_y = serve(cold)
    prime_seconds = time.perf_counter() - t0

    art_dir = tempfile.mkdtemp(prefix="repro-warmstore-")
    art_path = os.path.join(art_dir, f"{tier}.warmstate")
    try:
        t0 = time.perf_counter()
        save_manifest = cold.save_warm_state(art_path)
        save_seconds = time.perf_counter() - t0

        # freshly-warmed reference: bakes its own plan, learns its own cache
        net.drop_views()
        fresh = fresh_session()
        fresh.warmup()
        fresh_y = serve(fresh)

        # artifact boot: one load call replaces warmup *and* priming
        net.drop_views()
        loaded = fresh_session()
        t0 = time.perf_counter()
        load_manifest = loaded.load_warm_state(art_path)
        load_seconds = time.perf_counter() - t0
        loaded_y = serve(loaded)
    finally:
        shutil.rmtree(art_dir, ignore_errors=True)
    net.drop_views()

    ready_seconds = warmup_seconds + prime_seconds
    return {
        "tier": tier,
        "benchmark": net.name,
        "requests": len(stream),
        "request_cols": request_cols,
        "max_batch": max_batch,
        "stream": "repeat",
        "reuse_tolerance": reuse_tolerance,
        "revise_ratio": revise_ratio,
        "cold": {
            "warmup_seconds": warmup_seconds,
            "prime_seconds": prime_seconds,
            "ready_seconds": ready_seconds,
        },
        "artifact": {
            "save_seconds": save_seconds,
            "load_seconds": load_seconds,
            "size_bytes": save_manifest["size_bytes"],
            "dense_views": save_manifest["dense_views"],
            "ell_views": save_manifest["ell_views"],
            "plan_layers": save_manifest["plan_layers"],
            "memo_choices": save_manifest["memo_choices"],
            "memo_costs": save_manifest["memo_costs"],
            "cache_entries_saved": save_manifest["cache_entries"],
            "cache_entries_adopted": load_manifest["cache_entries"],
        },
        "speedup": ready_seconds / load_seconds if load_seconds > 0 else float("inf"),
        "loaded_warm_source": loaded.warm_source,
        "loaded_cache": loaded.reuse.stats() if loaded.reuse is not None else None,
        "outputs_identical": bool(
            np.array_equal(loaded_y, fresh_y) and np.array_equal(fresh_y, cold_y)
        ),
    }


def _run_scale_out(
    worker_counts,
    tier: str,
    requests: int,
    request_cols: int,
    seed: int,
    streams: int = 8,
    max_batch: int = 16,
) -> dict:
    """Schema-4 scale-out curve: one tier through the fleet at rising N.

    The same ``requests`` (round-robined over a fixed stream population)
    are served by a :class:`~repro.serve.fleet.FleetDispatcher` at every
    worker count, and every run's per-stream outputs are compared bitwise
    against a single-process stream-lane reference — scale-out must be
    numerically free.  Each entry records *wall* throughput (this host,
    possibly core-limited) and *capacity* throughput (total columns over
    the critical-path worker's CPU seconds — what the shard layout sustains
    with a core per worker); ``speedup_vs_single`` under ``capacity`` is
    the headline the CI gate checks.  A final crash run at the largest
    count SIGKILLs one worker mid-stream and must recover: victim restarted
    (restart counters surfaced), streams replayed, every output still
    bitwise identical, no request failed anywhere.  Since schema 5 the
    crash run's workers boot from a saved warmstore artifact, so the
    victim's replacement incarnation demonstrates the artifact-boot
    restart path (``crash["artifact_boot"]``).
    """
    from repro.serve.fleet import TenantSpec, stream_shard

    counts = sorted({int(n) for n in worker_counts})
    if not counts or counts[0] < 1:
        raise ConfigError(f"worker counts must be >= 1, got {list(worker_counts)}")
    source = _TIER_SOURCES.get(tier, tier)
    net, cfg, pool = _tier_workload(tier, requests * request_cols, seed)
    slices = _split_requests(pool, request_cols)
    names = _balanced_streams(streams, counts[-1])
    items = [
        ("m", names[j % len(names)], y0) for j, y0 in enumerate(slices)
    ]
    total_columns = sum(y0.shape[1] for _, _, y0 in items)
    reference = _single_process_reference(net, cfg, items, max_batch)
    spec = TenantSpec("m", source)

    entries = []
    baseline = None  # the single-worker (smallest-count) entry
    merged_metrics = None
    for n in counts:
        report = _fleet_pass(spec, items, n, max_batch)
        per_worker = []
        for i, rep in enumerate(report.worker_reports):
            per_worker.append({
                "worker": i,
                "requests": (rep or {}).get("requests"),
                "columns": (rep or {}).get("columns"),
                "streams": len((rep or {}).get("streams") or []),
                "cpu_seconds": (rep or {}).get("cpu_seconds"),
                "busy_seconds": (rep or {}).get("busy_seconds"),
            })
        entry = {
            "workers": n,
            "served": len(report.served),
            "rejected": len(report.rejected),
            "failed": len(report.failed),
            "restarts": report.restart_total,
            "outputs_identical": _streams_identical(report, reference, names),
            "wall_seconds": report.wall_seconds,
            "wall_columns_per_second": report.columns_per_second,
            "latency_seconds": report.latency_quantiles(),
            "capacity": {
                "critical_path_cpu_seconds": report.critical_path_cpu_seconds,
                "columns_per_second": report.capacity_columns_per_second,
            },
            "per_worker": per_worker,
        }
        if baseline is None:
            baseline = entry
        base_wall = baseline["wall_columns_per_second"]
        base_cap = baseline["capacity"]["columns_per_second"]
        entry["wall_speedup_vs_single"] = (
            entry["wall_columns_per_second"] / base_wall if base_wall else None
        )
        entry["capacity"]["speedup_vs_single"] = (
            entry["capacity"]["columns_per_second"] / base_cap
            if base_cap
            else None
        )
        entries.append(entry)
        if n == counts[-1]:
            merged_metrics = report.merged_metrics()

    crash = None
    if counts[-1] >= 2:
        n = counts[-1]
        victim = stream_shard(items[0][1], n)
        # the crash run boots its workers from a warm-state artifact: warmup
        # is paid once here at save time, and — the point of the exercise —
        # the SIGKILLed worker's replacement incarnation loads the same file
        # instead of re-baking before it replays the victim streams
        art_dir = tempfile.mkdtemp(prefix="repro-warmstore-")
        art_path = os.path.join(art_dir, "fleet.warmstate")
        net.drop_views()
        save_manifest = EngineSession(net, cfg).save_warm_state(art_path)
        net.drop_views()
        try:
            report = _fleet_pass(
                dataclasses.replace(spec, warm_state=art_path),
                items, n, max_batch, kill=victim,
            )
        finally:
            shutil.rmtree(art_dir, ignore_errors=True)
        other_streams = [s for s in names if stream_shard(s, n) != victim]
        victim_streams = [s for s in names if stream_shard(s, n) == victim]
        victim_rep = report.worker_reports[victim] or {}
        sources = [
            ((rep or {}).get("warm_sources") or {}).get("m")
            for rep in report.worker_reports
        ]
        crash = {
            "workers": n,
            "victim": victim,
            "restarts": list(report.restarts),
            "restart_total": report.restart_total,
            "replayed": list(report.replayed),
            "served": len(report.served),
            "failed": len(report.failed),
            "rejected": len(report.rejected),
            "outputs_identical": _streams_identical(report, reference, names),
            "other_workers_identical": _streams_identical(
                report, reference, other_streams
            ),
            "victim_streams_identical": _streams_identical(
                report, reference, victim_streams
            ),
            "recovered": bool(
                report.restart_total >= 1
                and not report.failed
                and len(report.served) == len(items)
                and _streams_identical(report, reference, names)
            ),
            "artifact_boot": {
                "size_bytes": save_manifest["size_bytes"],
                "plan_layers": save_manifest["plan_layers"],
                "warm_sources": sources,
                "all_workers_artifact": all(s == "artifact" for s in sources),
                "victim_warm_source": sources[victim],
                "victim_incarnation": victim_rep.get("incarnation"),
                "victim_build_seconds": victim_rep.get("build_seconds"),
                "victim_warmup_seconds": victim_rep.get("warmup_seconds"),
            },
        }

    return {
        "tier": tier,
        "benchmark": net.name,
        "source": source,
        "streams": len(names),
        "stream_names": names,
        "requests": len(items),
        "request_cols": request_cols,
        "total_columns": total_columns,
        "max_batch": max_batch,
        "cpu_count": os.cpu_count(),
        "workers": entries,
        "crash": crash,
        "metrics": merged_metrics,
    }


def _qos_latency_quantiles(tickets, qs=(0.5, 0.95, 0.99)) -> dict | None:
    lat = [
        t.latency_seconds
        for t in tickets
        if t.ready and t.latency_seconds is not None
    ]
    if not lat:
        return None
    arr = np.array(lat)
    return {f"p{int(q * 100)}": float(np.quantile(arr, q)) for q in qs}


def _qos_tickets_identical(mine, reference) -> bool:
    """Bitwise compare two served-ticket sequences, submit order."""
    a = [t for t in mine if t.ready]
    b = [t for t in reference if t.ready]
    return len(a) == len(b) and all(
        np.array_equal(x.y, y.y) for x, y in zip(a, b)
    )


def _qos_pass(tenants, submissions, max_batch, policy):
    """One async serve of ``submissions`` under the given scheduler policy.

    Returns per-tenant ticket lists (submit order), per-tenant shed counts
    by admission reason, the router's final stats, and the wall seconds
    from first submit to drained.
    """
    from repro.errors import ServeShedError
    from repro.serve.router import AsyncRouter, ModelRegistry

    registry = ModelRegistry()
    for name, tenant in tenants.items():
        tenant["net"].drop_views()
        registry.register(
            name, tenant["net"], config=tenant["cfg"], warm=True,
            slo=tenant.get("slo"), qos=tenant.get("qos"),
        )
    router = AsyncRouter(
        registry, max_batch=max_batch, max_wait_s=60.0,
        queue_limit=len(submissions) + 1, on_full="reject", policy=policy,
    )
    tickets: dict[str, list] = {name: [] for name in tenants}
    shed: dict[str, dict[str, int]] = {name: {} for name in tenants}
    t0 = time.perf_counter()
    for name, y0 in submissions:
        try:
            tickets[name].append(router.submit(name, y0))
        except ServeShedError as exc:
            shed[name][exc.reason] = shed[name].get(exc.reason, 0) + 1
    router.close(drain=True)
    wall = time.perf_counter() - t0
    stats = router.stats()
    for tenant in tenants.values():
        tenant["net"].drop_views()  # hand the memoized network back cold
    return tickets, shed, stats, wall


def _run_qos(
    requests: int = 24,
    bulk_requests: int = 40,
    request_cols: int = 16,
    seed: int = 1,
    interactive_tier: str = "sdgc-shallow",
    bulk_tier: str = "sdgc-deep",
    bulk_admit: int | None = None,
    slo: str | None = MULTI_SLO_SPEC,
) -> dict:
    """Schema-6 QoS A/B: interactive p99 under bulk saturation, two arms.

    Two tenants share one :class:`~repro.serve.router.AsyncRouter`: an
    ``interactive``-class tenant and a ``batch``-class bulk tenant whose
    policy carries a hard quota (``rate=0`` token bucket) sized to admit
    ``bulk_admit`` of its ``bulk_requests`` requests.  The bulk tenant
    submits its whole burst first, then the interactive tenant submits —
    the worst arrival order for the interactive side, since the worker is
    already deep in the bulk backlog.

    Every request is exactly one ``request_cols``-column block
    (``max_batch == request_cols``), so scheduling order — not packing — is
    the only variable between arms; packing invariance under QoS is proved
    separately by the scheduler property tests.

    Four passes: each tenant solo (its latency baseline and, for the bulk
    tenant, the admitted-prefix reference the quota must reproduce), the
    mixed stream under ``policy="qos"``, and the same mixed stream under
    ``policy="fifo"`` (registration-order service, no admission).  The
    record carries both arms' interactive p99 inflation over solo — the
    QoS arm must hold near 1.0 while the FIFO arm queues interactive
    behind the whole bulk backlog — plus bitwise output identity against
    the solo runs and the shed accounting identity.
    """
    max_batch = request_cols
    tenants: dict[str, dict] = {}
    for name, tier, count in (
        ("interactive", interactive_tier, requests),
        ("bulk", bulk_tier, bulk_requests),
    ):
        net, cfg, pool = _tier_workload(tier, count * request_cols, seed)
        net.drop_views()
        tenants[name] = {
            "net": net, "cfg": cfg, "tier": tier, "slo": slo,
            "stream": _split_requests(pool, request_cols),
        }
    if bulk_admit is None:
        bulk_admit = max(1, (bulk_requests * 3) // 5)
    if not 0 < bulk_admit <= bulk_requests:
        raise ConfigError(
            f"bulk_admit must be in 1..{bulk_requests}, got {bulk_admit}"
        )
    tenants["interactive"]["qos"] = "interactive"
    # hard quota: a zero-rate bucket admits exactly the first `bulk_admit`
    # requests, so the shed count — and the served subsequence the solo
    # reference must match bitwise — is deterministic, not timing-dependent
    tenants["bulk"]["qos"] = f"batch:rate=0,burst={bulk_admit * request_cols}"

    def submissions(names):
        return [
            (name, y0) for name in names for y0 in tenants[name]["stream"]
        ]

    solo: dict[str, dict] = {}
    solo_tickets: dict[str, list] = {}
    for name in tenants:
        tks, shed, _, wall = _qos_pass(
            {name: tenants[name]}, submissions([name]), max_batch, "qos"
        )
        solo_tickets[name] = tks[name]
        solo[name] = {
            "served": sum(1 for t in tks[name] if t.ready),
            "shed": sum(shed[name].values()),
            "latency_seconds": _qos_latency_quantiles(tks[name]),
            "wall_seconds": wall,
        }

    def run_arm(policy):
        # bulk first: its lane is created first (so FIFO services it
        # first) and its backlog is already queued when interactive arrives
        tks, shed, stats, wall = _qos_pass(
            tenants, submissions(["bulk", "interactive"]), max_batch, policy
        )
        per_tenant = {}
        for name in tenants:
            served = sum(1 for t in tks[name] if t.ready)
            failed = sum(1 for t in tks[name] if t.failed)
            shed_n = sum(shed[name].values())
            submitted = len(tenants[name]["stream"])
            lat = _qos_latency_quantiles(tks[name])
            solo_p99 = (solo[name]["latency_seconds"] or {}).get("p99")
            per_tenant[name] = {
                "tier": tenants[name]["tier"],
                "qos": tenants[name]["qos"],
                "submitted": submitted,
                "served": served,
                "shed": shed_n,
                "shed_reasons": dict(shed[name]),
                "failed": failed,
                "shed_accounting_ok": bool(
                    served + shed_n + failed == submitted
                ),
                "latency_seconds": lat,
                "p99_over_solo": (
                    lat["p99"] / solo_p99
                    if lat and solo_p99 and solo_p99 > 0
                    else None
                ),
                "outputs_identical": _qos_tickets_identical(
                    tks[name], solo_tickets[name]
                ),
            }
        return {
            "policy": policy,
            "wall_seconds": wall,
            "per_tenant": per_tenant,
            "interactive_p99_ratio": per_tenant["interactive"]["p99_over_solo"],
            "qos": stats.get("qos"),
        }

    with_qos = run_arm("qos")
    no_qos = run_arm("fifo")
    return {
        "interactive_tier": interactive_tier,
        "bulk_tier": bulk_tier,
        "requests": requests,
        "bulk_requests": bulk_requests,
        "bulk_admit": bulk_admit,
        "request_cols": request_cols,
        "max_batch": max_batch,
        "slo_spec": slo,
        "solo": solo,
        "with_qos": with_qos,
        "no_qos": no_qos,
        "outputs_identical": bool(
            all(
                t["outputs_identical"]
                for t in with_qos["per_tenant"].values()
            )
        ),
        "shed_accounting_ok": bool(
            all(
                t["shed_accounting_ok"]
                for t in with_qos["per_tenant"].values()
            )
        ),
    }


def load_bench_records(data) -> list[dict]:
    """Per-tier records from a loaded ``BENCH_serve.json`` object.

    Accepts every on-disk generation: the current schema-5 layout
    (``{"schema": 5, "tiers": [...], "warm_boot": {...}, "scale_out":
    {...}}``) and schemas 2-4 before it (same ``tiers`` shape — those bumps
    added the ``multi`` SLO blocks, the ``scale_out`` record, and the
    ``warm_boot`` record without touching the per-tier
    records), a scale-out-only capture (``tiers`` absent — an
    empty record list, *not* an error, so perf tooling pointed at such a
    file skips tier gating instead of crashing), and the legacy
    single-benchmark dict from before the tier split, which is wrapped as a
    one-record list (its ``tier`` defaults to its benchmark name).
    """
    if not isinstance(data, dict):
        raise ConfigError(f"expected a BENCH_serve dict, got {type(data).__name__}")
    if "tiers" in data:
        return list(data["tiers"])
    if "benchmark" in data:  # legacy pre-schema shape
        legacy = dict(data)
        legacy.setdefault("tier", legacy["benchmark"])
        return [legacy]
    if "scale_out" in data or "qos" in data:
        return []  # record-only capture (e.g. a CI smoke run); no tiers
    raise ConfigError(
        "unrecognized BENCH_serve layout (no 'tiers', 'benchmark', "
        "'scale_out', or 'qos' key)"
    )


def bench_serve(
    benchmark: str | None = None,
    requests: int = 48,
    request_cols: int = 4,
    max_batch: int = 64,
    threshold: int | None = None,
    seed: int = 1,
    out: str | Path | None = DEFAULT_BENCH_PATH,
    trace: str | Path | None = None,
    tiers: tuple[str, ...] | None = None,
    stream: str = "mix",
    centroid_reuse: bool = False,
    reuse_tolerance: float = 0.5,
    async_ab: bool = True,
    arrival_rate: float | None = None,
    multi: bool = False,
    multi_tiers: tuple[str, ...] | None = None,
    memory_budget_mb: float | None = None,
    slo: str | None = MULTI_SLO_SPEC,
    scale_out: tuple[int, ...] | None = None,
    scale_out_tier: str = "sdgc-shallow",
    scale_out_streams: int = 8,
    scale_out_max_batch: int = 16,
    scale_out_requests: int | None = None,
    warm_boot: bool | None = None,
    warm_boot_tier: str = "sdgc-shallow",
    qos: bool = False,
    qos_requests: int = 24,
    qos_bulk_requests: int = 40,
    qos_request_cols: int = 16,
) -> dict:
    """Measure request throughput: cold per-request engines vs warm serving.

    Runs every tier in ``tiers`` (default :data:`DEFAULT_TIERS`); passing
    ``benchmark`` instead runs that single SDGC benchmark as an ad-hoc tier.
    Returns the schema-3 result dict and, unless ``out`` is None, writes it
    as JSON.

    ``stream`` picks the request-stream shape (see :func:`_shape_stream`);
    ``centroid_reuse`` adds the A/B pass — the same stream served again with
    the centroid cache on — whose record lands under each tier's ``"reuse"``
    key.  ``async_ab`` (on by default) additionally replays each tier's
    stream open-loop — seeded Poisson arrivals at ``arrival_rate`` req/s, or
    auto-paced to the tier's warm service rate — through both the
    synchronous and the async transport, recorded under ``"async"``.
    ``trace`` writes a Chrome trace of the first tier's warm serving run
    (note: span recording adds overhead to that tier's warm numbers; leave
    it off when comparing throughput across PRs).

    ``multi`` adds the mixed-traffic multi-tenant record (see
    :func:`_run_multi`) under the result's ``"multi"`` key: the
    ``multi_tiers`` (default :data:`MULTI_TIERS`) served together through
    one :class:`~repro.serve.router.Router`, with per-tenant throughput, a
    bitwise isolation check against single-tenant runs, and — when
    ``memory_budget_mb`` bounds the combined footprint — LRU warm-to-cold
    demotions plus the post-enforcement high-water mark.  ``slo`` is the
    per-tenant policy spec the multi record evaluates live (default
    :data:`MULTI_SLO_SPEC`; ``None`` turns SLO tracking off).

    ``scale_out`` — a tuple of worker counts like ``(1, 2, 4)`` — adds the
    schema-4 fleet curve under the result's ``"scale_out"`` key (see
    :func:`_run_scale_out`): ``scale_out_tier``'s stream population served
    through a multi-process :class:`~repro.serve.fleet.FleetDispatcher` at
    every count, with wall + capacity throughput, bitwise output checks
    against a single-process reference, and a crash-recovery run at the
    largest count.  ``scale_out_requests`` defaults to ``max(requests,
    192)``: the scale-out record needs enough traffic per worker that fixed
    per-process costs (poll wakeups, queue plumbing) amortize, or the curve
    measures overhead instead of sharding.  An empty ``tiers`` tuple (CLI:
    ``--tiers none``) skips the per-tier records entirely for
    scale-out-only captures.

    ``warm_boot`` adds the schema-5 persistent-warmup record under the
    result's ``"warm_boot"`` key (see :func:`_run_warm_boot`):
    ``warm_boot_tier`` booted cold (bake + priming traffic), snapshotted
    via :mod:`repro.core.warmstore`, and re-booted from the artifact, with
    time-to-warm for both modes and the bitwise identity triangle.  The
    default (``None``) runs it whenever per-tier records run.

    ``qos`` adds the schema-6 QoS A/B record under the result's ``"qos"``
    key (see :func:`_run_qos`): an interactive tenant's p99 measured while
    a quota-limited bulk tenant saturates the same router, under the QoS
    scheduler and under plain FIFO, against each tenant's solo baseline.
    """
    if tiers is None:
        tiers = (benchmark,) if benchmark is not None else DEFAULT_TIERS
    elif benchmark is not None:
        raise ConfigError("pass either benchmark or tiers, not both")
    tracer = Tracer() if trace is not None else None
    records = []
    for index, tier in enumerate(tiers):
        records.append(
            _run_tier(
                tier=tier,
                benchmark_source=tier,
                requests=requests,
                request_cols=request_cols,
                max_batch=max_batch,
                threshold=threshold,
                seed=seed,
                stream_mode=stream,
                centroid_reuse=centroid_reuse,
                reuse_tolerance=reuse_tolerance,
                tracer=tracer if index == 0 else None,
                async_ab=async_ab,
                arrival_rate=arrival_rate,
            )
        )
    result = {
        "schema": BENCH_SCHEMA,
        "stream": stream,
        "centroid_reuse": centroid_reuse,
        "async_ab": async_ab,
        "tiers": records,
    }
    if warm_boot is None:
        warm_boot = bool(tiers)
    if warm_boot:
        result["warm_boot"] = _run_warm_boot(
            tier=warm_boot_tier,
            requests=requests,
            request_cols=request_cols,
            max_batch=max_batch,
            seed=seed,
        )
    if multi:
        result["multi"] = _run_multi(
            tiers=multi_tiers if multi_tiers is not None else MULTI_TIERS,
            requests=requests,
            request_cols=request_cols,
            max_batch=max_batch,
            seed=seed,
            memory_budget_mb=memory_budget_mb,
            slo=slo,
        )
    if qos:
        result["qos"] = _run_qos(
            requests=qos_requests,
            bulk_requests=qos_bulk_requests,
            request_cols=qos_request_cols,
            seed=seed,
            slo=slo,
        )
    if scale_out:
        result["scale_out"] = _run_scale_out(
            scale_out,
            tier=scale_out_tier,
            requests=(
                scale_out_requests
                if scale_out_requests is not None
                else max(requests, 192)
            ),
            request_cols=request_cols,
            seed=seed,
            streams=scale_out_streams,
            max_batch=scale_out_max_batch,
        )
    if trace is not None and tracer is not None:
        tracer.write_chrome(trace)
        result["trace"] = str(trace)
    if out is not None:
        Path(out).write_text(json.dumps(result, indent=2) + "\n")
    return result
