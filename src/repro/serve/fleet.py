"""Multi-process serving: shard tenant streams across supervised workers.

Everything below :mod:`repro.serve.router` lives in one interpreter, so
aggregate throughput is GIL-capped no matter how many tenants register.
This module adds the scale-out tier:

* :class:`TenantSpec` — a picklable recipe for one tenant (benchmark
  source, threshold, SLO, reuse flags).  Workers rebuild the network from
  the spec deterministically (:func:`~repro.harness.workloads.get_benchmark`
  is seeded), so a replacement process after a crash warms up to exactly
  the state the original had — no state needs to survive the crash.
* :func:`_worker_main` — the spawn-safe worker entry point: builds its own
  :class:`~repro.serve.router.ModelRegistry` (every tenant, warm), runs the
  existing :class:`~repro.serve.router.AsyncRouter` loop with per-stream
  lanes, heartbeats through a shared double, optionally exposes its own
  :class:`~repro.obs.http.ObsServer` on an ephemeral port, and ships
  results + a final report back over its result queue.
* :class:`FleetDispatcher` — the front end: ``submit(model, y0, stream=s)``
  routes whole *streams* (never individual requests) to workers via the
  stable :func:`stream_shard` hash, collects results on a daemon thread
  into :class:`FleetTicket` futures, supervises worker health
  (restart-on-crash with stream replay, restart counts in the report),
  drains gracefully, and merges per-worker reports and telemetry
  (:mod:`repro.obs.merge`) into one :class:`FleetReport` and one
  ``/metrics`` + ``/slo`` scrape.

Why sharding by stream keeps outputs bitwise identical
------------------------------------------------------
SNICIT packs requests into blocks, and block composition is numerically
load-bearing: centroids are computed over the whole block, so a request's
output depends on its blockmates.  The router's lanes are therefore keyed
``(model, stream)`` — a stream's packing depends only on its own request
order.  Hashing *streams* to workers preserves exactly that order (one
stream, one worker, one FIFO task queue), so every stream's block sequence
— and hence its outputs — is bitwise identical to a single-process serve
of the same submission order, for any worker count.  Sharding by *request*
would scatter one stream's requests across processes and change packing.

Crash recovery rides on the same property plus one more (established in
PR 6 and gated in CI): with centroid reuse off, a warm session's outputs
are bitwise identical to a cold engine's, i.e. outputs are independent of
accumulated warm state.  A replacement worker therefore *replays every
affected stream from its first request* — not just the unresolved tail —
so the replayed packing prefix matches the original run; already-resolved
tickets ignore their duplicate results (first resolution wins), and the
previously unresolved ones complete with the same bytes an uncrashed run
would have produced.  Streams hashed to other workers never notice.

Determinism requires a deterministic flush schedule: blocks must flush on
size (``max_batch``) or drain, not on wall-clock ``max_wait_s`` racing
arrival jitter.  The bench and tests run with a large ``max_wait_s`` for
exactly this reason; with a tight deadline the fleet still serves
correctly, but replayed packing may legitimately differ.

Throughput accounting on core-limited hosts
-------------------------------------------
The fleet report carries two throughput views, mirroring the repo's
wall-vs-modeled convention: *measured* wall-clock columns/second, and
*capacity* columns/second — total columns divided by the critical-path
worker CPU seconds (``time.process_time`` per worker, steady-state, i.e.
what the shard layout sustains with at least one core per worker).  On a
multi-core host the two agree; on a single-core container the measured
curve is flat while capacity still certifies the sharding (balance and
overhead), which is what the CI gate checks.
"""

from __future__ import annotations

import hashlib
import os
import queue as queue_mod
import signal
import threading
import time
from collections import deque
from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigError, ReproError, ServeClosedError
from repro.obs.export import json_safe
from repro.obs.merge import merge_prometheus, merge_snapshots

__all__ = [
    "TenantSpec",
    "FleetDispatcher",
    "FleetReport",
    "FleetTicket",
    "WorkerCrashError",
    "stream_shard",
]


class WorkerCrashError(ReproError, RuntimeError):
    """A fleet worker died and exhausted its restart budget."""


def stream_shard(stream: str, workers: int) -> int:
    """Stable stream -> worker-slot index.

    SHA-1 over the stream id, independent of ``PYTHONHASHSEED`` and of the
    process, so the same stream always lands on the same slot — across
    dispatcher restarts, across worker restarts, and in every test that
    needs to predict placement.
    """
    if workers < 1:
        raise ConfigError(f"need at least one worker, got {workers}")
    digest = hashlib.sha1(str(stream).encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") % workers


@dataclass(frozen=True)
class TenantSpec:
    """Picklable recipe for one tenant, rebuilt identically in any worker.

    ``source`` is an SDGC benchmark name (``"144-24"``) or the sentinel
    ``"medium:<id>"`` for a trained medium-scale model.  Workers call
    :meth:`build` after spawn; the underlying generators are seeded, so
    every (re)build yields bitwise-identical weights.
    """

    name: str
    source: str
    threshold: int | None = None
    slo: str | None = None
    centroid_reuse: bool = False
    reuse_tolerance: float = 0.5
    #: arm the memo's measure-and-revise loop (see ``EngineSession``)
    revise_ratio: float | None = None
    #: path to a :mod:`repro.core.warmstore` artifact; workers then boot
    #: warm by loading it (fingerprint-checked) instead of baking, and a
    #: crash-restarted incarnation loads the same file — warmup is paid
    #: once, at save time, not once per incarnation
    warm_state: str | None = None
    #: QoS policy spec (``"interactive"``, ``"batch:w=2"``, ...); parsed by
    #: :meth:`repro.serve.qos.QosPolicy.parse` in every worker, so the whole
    #: fleet enforces one policy per tenant — scheduling class, DWRR weight,
    #: and rate limit are identical on every shard
    qos: str | None = None

    def build(self):
        """``(network, config)`` for this tenant, deterministic per spec."""
        if self.source.startswith("medium:"):
            from repro.harness.experiments.table4 import medium_config
            from repro.harness.medium import get_trained

            tm = get_trained(self.source.split(":", 1)[1])
            net, cfg = tm.stack.network, medium_config(tm.spec.sparse_layers)
        else:
            from repro.harness.experiments.common import sdgc_config
            from repro.harness.workloads import get_benchmark

            net = get_benchmark(self.source)
            cfg = sdgc_config(net.num_layers)
        if self.threshold is not None:
            import dataclasses

            cfg = dataclasses.replace(cfg, threshold_layer=self.threshold)
        return net, cfg


class FleetTicket:
    """Future-like handle for one fleet request, resolved by the collector.

    Mirrors :class:`~repro.serve.async_server.AsyncTicket`'s surface where
    it can: ``done`` / ``ready`` / ``failed`` / ``wait`` / ``result`` / ``y``
    / ``categories``.  The payload crossed a process boundary, so ``y`` is a
    dispatcher-side copy and the worker-side latency breakdown arrives as a
    plain dict under :attr:`info`.
    """

    __slots__ = (
        "req_id", "model", "stream", "index", "submitted_at", "resolved_at",
        "worker", "info", "rejected", "_y", "_categories", "_error", "_event",
    )

    def __init__(self, req_id: int, model: str, stream: str, index: int,
                 submitted_at: float):
        self.req_id = req_id
        self.model = model
        self.stream = stream
        #: submit order within this stream (0-based)
        self.index = index
        self.submitted_at = submitted_at
        self.resolved_at: float | None = None
        #: slot index of the worker that resolved it
        self.worker: int | None = None
        #: worker-side telemetry (latency breakdown, block id, batch fill)
        self.info: dict = {}
        #: True when the worker's lane turned the request away (backpressure
        #: or validation), as opposed to an execution failure
        self.rejected = False
        self._y: np.ndarray | None = None
        self._categories: np.ndarray | None = None
        self._error: str | None = None
        self._event = threading.Event()

    # -------------------------------------------------------------- producer
    @property
    def done(self) -> bool:
        return self._event.is_set()

    @property
    def ready(self) -> bool:
        return self.done and self._error is None

    @property
    def failed(self) -> bool:
        return self._error is not None

    @property
    def error(self) -> str | None:
        return self._error

    def wait(self, timeout: float | None = None) -> bool:
        return self._event.wait(timeout)

    def result(self, timeout: float | None = None) -> np.ndarray:
        if not self._event.wait(timeout):
            raise TimeoutError(f"fleet request {self.req_id} unresolved")
        if self._error is not None:
            raise WorkerCrashError(self._error) if not self.rejected else (
                ConfigError(self._error)
            )
        return self._y

    @property
    def y(self) -> np.ndarray:
        if not self.done:
            raise ServeClosedError("ticket not resolved yet; wait() on it")
        if self._error is not None:
            raise WorkerCrashError(self._error)
        return self._y

    @property
    def categories(self) -> np.ndarray:
        self.y  # raise on unresolved/failed, same contract as AsyncTicket
        return self._categories

    @property
    def latency_seconds(self) -> float | None:
        """Dispatcher-side submit-to-resolve wall time (IPC included)."""
        if self.resolved_at is None:
            return None
        return self.resolved_at - self.submitted_at

    # ------------------------------------------------------------- collector
    def _resolve(self, now: float, *, worker: int | None = None, y=None,
                 categories=None, info=None, error: str | None = None,
                 rejected: bool = False) -> bool:
        """First resolution wins; replayed duplicates return False."""
        if self._event.is_set():
            return False
        self.worker = worker
        self._y = y
        self._categories = categories
        self.info = info or {}
        self._error = error
        self.rejected = rejected
        self.resolved_at = now
        self._event.set()
        return True


# --------------------------------------------------------------------------
# worker process
# --------------------------------------------------------------------------

def _worker_main(worker_id, incarnation, specs, options, task_q, result_q,
                 heartbeat) -> None:
    """Spawn-safe worker entry point (module-level for picklability)."""
    try:
        _worker_run(
            worker_id, incarnation, specs, options, task_q, result_q, heartbeat
        )
    except BaseException as exc:  # surface the reason before dying
        try:
            result_q.put(("fatal", incarnation, f"{type(exc).__name__}: {exc}"))
        except Exception:
            pass
        raise


def _worker_run(worker_id, incarnation, specs, options, task_q, result_q,
                heartbeat) -> None:
    from repro.serve.router import AsyncRouter, ModelRegistry

    t_build = time.perf_counter()
    registry = ModelRegistry(
        memory_budget_bytes=options.get("memory_budget_bytes")
    )
    built = []
    for spec in specs:
        net, cfg = spec.build()
        net.drop_views()  # hand the session freshly-cold views to pin
        built.append((spec, net, cfg))
    build_seconds = time.perf_counter() - t_build
    # registry warmup is timed apart from the (unavoidable) network build:
    # it is the part a warm-state artifact eliminates, and the number the
    # warm-boot tests and bench compare across boot modes
    t_warm = time.perf_counter()
    warm_sources: dict[str, str] = {}
    for spec, net, cfg in built:
        session = registry.register(
            spec.name, net, config=cfg, warm=True, slo=spec.slo,
            warm_state=spec.warm_state,
            centroid_reuse=spec.centroid_reuse,
            reuse_tolerance=spec.reuse_tolerance,
            revise_ratio=spec.revise_ratio,
            qos=spec.qos,
        )
        warm_sources[spec.name] = session.warm_source
    warmup_seconds = time.perf_counter() - t_warm
    router = AsyncRouter(
        registry,
        max_batch=options.get("max_batch", 256),
        max_wait_s=options.get("max_wait_s", 60.0),
        queue_limit=options.get("queue_limit", 4096),
        on_full="reject",
        policy=options.get("policy", "qos"),
        queue_pressure_requests=options.get("queue_pressure_requests"),
        burn_threshold=options.get("burn_threshold"),
    )
    obs = None
    if options.get("worker_obs"):
        from repro.obs.http import ObsServer

        obs = ObsServer(
            registry.metrics, slo_provider=registry.slo_report_json, port=0
        )
    heartbeat.value = time.time()
    result_q.put(("ready", incarnation, {
        "pid": os.getpid(),
        "obs_port": obs.port if obs is not None else None,
        "build_seconds": build_seconds,
        "warmup_seconds": warmup_seconds,
        "warm_sources": warm_sources,
    }))

    inflight: deque = deque()  # (req_id, AsyncTicket), arrival order
    counts = {"requests": 0, "columns": 0, "rejected": 0, "failed": 0}
    streams: set[str] = set()
    cpu0 = time.process_time()
    wall0 = time.perf_counter()

    def ship_resolved() -> None:
        # lanes complete independently, so completion across the deque is
        # not FIFO — scan it, keep the unresolved
        still: deque = deque()
        for req_id, ticket in inflight:
            if not ticket.done:
                still.append((req_id, ticket))
                continue
            if ticket.failed:
                counts["failed"] += 1
                exc = ticket.exception
                result_q.put(("failed", incarnation, req_id,
                              f"{type(exc).__name__}: {exc}"))
            else:
                y = np.ascontiguousarray(ticket.y)
                counts["columns"] += int(y.shape[1])
                result_q.put(("result", incarnation, req_id, {
                    "y": y,
                    "categories": np.asarray(ticket.categories),
                    "latency_seconds": ticket.latency_seconds,
                    "breakdown": ticket.breakdown(),
                    "batch_columns": ticket.batch_columns,
                    "block_id": (
                        ticket.inner.block_id if ticket.inner is not None else None
                    ),
                }))
        inflight.clear()
        inflight.extend(still)

    while True:
        heartbeat.value = time.time()
        try:
            msg = task_q.get(timeout=0.05)
        except queue_mod.Empty:
            ship_resolved()
            continue
        kind = msg[0]
        if kind == "req":
            _, req_id, model, stream, y0 = msg
            counts["requests"] += 1
            streams.add(stream)
            try:
                ticket = router.submit(model, y0, stream=stream)
            except Exception as exc:
                counts["rejected"] += 1
                result_q.put(("reject", incarnation, req_id,
                              f"{type(exc).__name__}: {exc}"))
            else:
                inflight.append((req_id, ticket))
            ship_resolved()
        elif kind in ("drain", "abort"):
            router.close(drain=(kind == "drain"))
            ship_resolved()
            result_q.put(("report", incarnation, {
                "worker": worker_id,
                "incarnation": incarnation,
                "pid": os.getpid(),
                "build_seconds": build_seconds,
                "warmup_seconds": warmup_seconds,
                "warm_sources": warm_sources,
                **counts,
                "streams": sorted(streams),
                "cpu_seconds": time.process_time() - cpu0,
                "busy_seconds": router.exec_seconds,
                "wall_seconds": time.perf_counter() - wall0,
                "registry": json_safe(registry.stats()),
                "lanes": json_safe(router.stats()["lanes"]),
                "qos": json_safe(router.stats().get("qos")),
                "slo": registry.slo_report_json() or None,
                "metrics": json_safe(registry.metrics.snapshot()),
                "prometheus": registry.metrics.to_prometheus(),
            }))
            break
    if obs is not None:
        obs.close()


# --------------------------------------------------------------------------
# dispatcher
# --------------------------------------------------------------------------

def _discard_queue(q) -> None:
    """Abandon an mp.Queue whose peer is gone, without blocking exit.

    A SIGKILLed worker leaves its task queue with buffered data and no
    reader; the queue's feeder thread then blocks forever in ``send_bytes``
    on the full pipe, and multiprocessing's atexit handler joins that
    thread — hanging the whole interpreter at shutdown.
    ``cancel_join_thread`` drops that join (losing the buffered data, which
    is exactly what we want: replay re-sends it on a fresh queue).
    """
    if q is None:
        return
    try:
        q.cancel_join_thread()
        q.close()
    except Exception:
        pass


class _WorkerSlot:
    """Dispatcher-side state for one worker position in the fleet."""

    def __init__(self, index: int):
        self.index = index
        self.process = None
        self.task_q = None
        self.result_q = None
        self.heartbeat = None
        self.incarnation = 0
        self.restarts = 0
        self.replayed = 0
        self.ready = threading.Event()
        self.ready_info: dict = {}
        self.report: dict | None = None
        self.report_event = threading.Event()
        self.obs_port: int | None = None
        self.fatal: str | None = None
        #: buffered submits during a restart window — the replay scan covers
        #: them in stream order, so nothing is pushed directly while paused
        self.paused = False
        #: restart budget exhausted; streams hashed here fail fast
        self.dead = False

    @property
    def last_heartbeat_age(self) -> float | None:
        if self.heartbeat is None or self.heartbeat.value == 0.0:
            return None
        return time.time() - self.heartbeat.value


@dataclass
class FleetReport:
    """Merged outcome of one fleet serve: per-worker + fleet-wide views."""

    workers: int
    served: list[FleetTicket] = field(default_factory=list)
    rejected: list[tuple[int, str]] = field(default_factory=list)
    failed: list[tuple[int, str]] = field(default_factory=list)
    wall_seconds: float = 0.0
    #: restart count per worker slot (supervision outcome)
    restarts: list[int] = field(default_factory=list)
    #: requests re-enqueued to replacement workers, per slot
    replayed: list[int] = field(default_factory=list)
    #: final report dict of each slot's current incarnation (None if lost)
    worker_reports: list[dict | None] = field(default_factory=list)
    #: stream id -> tickets in submit order (resolved or not)
    streams: dict[str, list[FleetTicket]] = field(default_factory=dict)

    # ----------------------------------------------------------- aggregates
    @property
    def requests(self) -> int:
        return len(self.served) + len(self.rejected) + len(self.failed)

    @property
    def columns(self) -> int:
        return sum(int(t._y.shape[1]) for t in self.served if t._y is not None)

    @property
    def columns_per_second(self) -> float:
        return self.columns / self.wall_seconds if self.wall_seconds > 0 else 0.0

    @property
    def requests_per_second(self) -> float:
        return (
            len(self.served) / self.wall_seconds if self.wall_seconds > 0 else 0.0
        )

    @property
    def restart_total(self) -> int:
        return sum(self.restarts)

    @property
    def cpu_seconds(self) -> list[float | None]:
        """Steady-state CPU seconds each slot's final incarnation burned."""
        return [
            (rep or {}).get("cpu_seconds") if rep is not None else None
            for rep in self.worker_reports
        ]

    @property
    def critical_path_cpu_seconds(self) -> float | None:
        """Slowest worker's CPU seconds — the fleet's capacity bottleneck."""
        known = [c for c in self.cpu_seconds if c is not None]
        return max(known) if known else None

    @property
    def capacity_columns_per_second(self) -> float | None:
        """Aggregate throughput with >= 1 core per worker (see module doc)."""
        critical = self.critical_path_cpu_seconds
        if critical is None or critical <= 0:
            return None
        return self.columns / critical

    @property
    def status(self) -> str:
        if not self.requests:
            return "no_traffic"
        if not self.served:
            return "all_rejected"
        if self.rejected or self.failed or None in self.worker_reports:
            return "degraded"
        return "ok"

    def stream_output(self, stream: str) -> np.ndarray:
        """The stream's served columns, hstacked in submit order."""
        tickets = self.streams.get(stream, [])
        parts = [t.y for t in tickets if t.ready]
        if not parts:
            raise ConfigError(f"stream {stream!r} has no served output")
        return np.hstack(parts)

    def latency_quantiles(self, qs=(0.5, 0.95, 0.99, 1.0)) -> dict | None:
        lat = [t.latency_seconds for t in self.served if t.latency_seconds]
        if not lat:
            return None
        arr = np.array(lat)
        return {f"p{int(q * 100)}": float(np.quantile(arr, q)) for q in qs}

    def merged_metrics(self) -> dict:
        """One snapshot dict with per-worker ``worker=`` labels."""
        return merge_snapshots({
            str(i): (rep or {}).get("metrics") or {}
            for i, rep in enumerate(self.worker_reports)
        })

    def summary(self) -> dict:
        per_worker = []
        for i, rep in enumerate(self.worker_reports):
            entry = {
                "worker": i,
                "restarts": self.restarts[i] if i < len(self.restarts) else 0,
                "replayed": self.replayed[i] if i < len(self.replayed) else 0,
                "report": None,
            }
            if rep is not None:
                entry["report"] = {
                    k: rep.get(k)
                    for k in ("incarnation", "pid", "requests", "columns",
                              "rejected", "failed", "streams", "cpu_seconds",
                              "busy_seconds", "wall_seconds", "build_seconds",
                              "warmup_seconds", "warm_sources", "qos")
                }
            per_worker.append(entry)
        return {
            "status": self.status,
            "workers": self.workers,
            "requests": self.requests,
            "served": len(self.served),
            "rejected": len(self.rejected),
            "failed": len(self.failed),
            "columns": self.columns,
            "wall_seconds": self.wall_seconds,
            "columns_per_second": self.columns_per_second,
            "requests_per_second": self.requests_per_second,
            "capacity_columns_per_second": self.capacity_columns_per_second,
            "critical_path_cpu_seconds": self.critical_path_cpu_seconds,
            "latency_seconds": self.latency_quantiles(),
            "restarts": list(self.restarts),
            "restart_total": self.restart_total,
            "streams": {s: len(ts) for s, ts in sorted(self.streams.items())},
            "per_worker": per_worker,
        }

    def to_json(self) -> dict:
        return json_safe(self.summary())


class FleetDispatcher:
    """Front end of the worker fleet: shard, collect, supervise, merge.

    Lifecycle is one-shot, like the routers: construct (spawns and warms
    every worker, blocking until all are ready), ``submit`` any number of
    requests, then ``join()`` to drain and get the :class:`FleetReport` —
    or ``close()`` to abort.  ``submit`` routes by *stream*: all requests
    of one stream go to :func:`stream_shard`'s slot in submission order,
    which is what keeps per-stream outputs bitwise identical to a
    single-process serve (see the module docstring).

    Supervision: a daemon thread watches worker processes.  A dead process
    whose final report has not arrived is a crash — the slot respawns (same
    specs, fresh warmup), *replays every stream of its shard that still has
    unresolved requests from the first request on*, and bumps the slot's
    restart counter (surfaced in the report).  After ``max_restarts``
    failed incarnations the slot is marked dead and its streams' pending
    tickets fail with :class:`WorkerCrashError` instead of hanging.
    ``heartbeat_timeout`` optionally also restarts live-but-wedged workers
    whose heartbeat went stale; it defaults to off because a busy drain on
    an oversubscribed host is indistinguishable from a hang.

    Telemetry: per-worker metric snapshots and Prometheus expositions are
    merged under a ``worker="i"`` label (:mod:`repro.obs.merge`);
    :meth:`obs_endpoint` exposes the merged ``/metrics`` + ``/slo`` on one
    port, scraping live worker endpoints when ``worker_obs=True`` and
    falling back to the final drain reports otherwise.
    """

    def __init__(
        self,
        specs,
        workers: int = 2,
        *,
        max_batch: int = 256,
        max_wait_s: float = 60.0,
        queue_limit: int = 4096,
        memory_budget_bytes: int | None = None,
        worker_obs: bool = False,
        start_timeout: float = 120.0,
        heartbeat_timeout: float | None = None,
        max_restarts: int = 2,
        mp_context: str = "spawn",
        policy: str = "qos",
        queue_pressure_requests: int | None = None,
        burn_threshold: float | None = None,
    ):
        import multiprocessing as mp

        from repro.serve.qos import QosPolicy
        from repro.serve.router import _check_name

        self.specs = tuple(specs)
        if not self.specs:
            raise ConfigError("a fleet needs at least one TenantSpec")
        names = [s.name for s in self.specs]
        if len(set(names)) != len(names):
            raise ConfigError(f"duplicate tenant names in {names}")
        for spec in self.specs:
            _check_name("model", spec.name)
            QosPolicy.parse(spec.qos)  # fail fast here, not in every worker
        self.workers = int(workers)
        if self.workers < 1:
            raise ConfigError(f"need at least one worker, got {workers}")
        self.start_timeout = float(start_timeout)
        self.heartbeat_timeout = heartbeat_timeout
        self.max_restarts = int(max_restarts)
        self._names = set(names)
        self._ctx = mp.get_context(mp_context)
        self._options = {
            "max_batch": int(max_batch),
            "max_wait_s": float(max_wait_s),
            "queue_limit": int(queue_limit),
            "memory_budget_bytes": memory_budget_bytes,
            "worker_obs": bool(worker_obs),
            "policy": str(policy),
            "queue_pressure_requests": queue_pressure_requests,
            "burn_threshold": burn_threshold,
        }
        self._lock = threading.RLock()
        self._tickets: dict[int, FleetTicket] = {}
        self._requests: dict[int, tuple] = {}  # req_id -> (model, stream, y0)
        self._streams: dict[str, list[int]] = {}
        self._next_req = 0
        self._outstanding = 0
        self._all_done = threading.Event()
        self._all_done.set()
        self._first_submit: float | None = None
        self._last_resolve: float | None = None
        self._closed = False
        self._draining = False
        self._report: FleetReport | None = None
        self._stop = threading.Event()

        self._slots = [_WorkerSlot(i) for i in range(self.workers)]
        for slot in self._slots:
            self._spawn(slot)
        self._collector = threading.Thread(
            target=self._collect_loop, name="repro-fleet-collector", daemon=True
        )
        self._collector.start()
        deadline = time.monotonic() + self.start_timeout
        for slot in self._slots:
            remaining = deadline - time.monotonic()
            if remaining <= 0 or not slot.ready.wait(remaining):
                self._teardown_processes()
                raise ConfigError(
                    f"fleet worker {slot.index} not ready within "
                    f"{self.start_timeout:g}s"
                    + (f" ({slot.fatal})" if slot.fatal else "")
                )
        self._supervisor = threading.Thread(
            target=self._supervise_loop, name="repro-fleet-supervisor", daemon=True
        )
        self._supervisor.start()

    # ---------------------------------------------------------------- spawn
    def _spawn(self, slot: _WorkerSlot) -> None:
        """(Re)start one slot: fresh incarnation, fresh queues, fresh state."""
        _discard_queue(slot.task_q)   # a crashed reader strands its queues;
        _discard_queue(slot.result_q)  # stale messages are incarnation-gated
        slot.incarnation += 1
        slot.task_q = self._ctx.Queue()
        slot.result_q = self._ctx.Queue()
        slot.heartbeat = self._ctx.Value("d", 0.0, lock=False)
        slot.ready = threading.Event()
        slot.ready_info = {}
        slot.report = None
        slot.report_event = threading.Event()
        slot.obs_port = None
        slot.fatal = None
        slot.process = self._ctx.Process(
            target=_worker_main,
            args=(slot.index, slot.incarnation, self.specs, self._options,
                  slot.task_q, slot.result_q, slot.heartbeat),
            name=f"repro-fleet-w{slot.index}",
            daemon=True,
        )
        slot.process.start()

    # -------------------------------------------------------------- producer
    def worker_for(self, stream: str) -> int:
        """Slot index the stream is (and will always be) sharded to."""
        return stream_shard(stream, self.workers)

    def submit(self, model: str, y0, stream: str | None = None) -> FleetTicket:
        """Route one request to its stream's worker; returns a future ticket.

        ``stream`` defaults to the model name — single-stream tenants shard
        whole.  Input validation happens worker-side (the dispatcher holds
        no network), so a malformed request resolves as *rejected* rather
        than raising here.
        """
        if model not in self._names:
            raise ConfigError(
                f"unknown model {model!r}; fleet serves {sorted(self._names)}"
            )
        if stream is not None:
            from repro.serve.router import _check_name

            _check_name("stream", str(stream))
        stream = model if stream is None else str(stream)
        y0 = np.asarray(y0)
        with self._lock:
            if self._closed or self._draining:
                raise ServeClosedError("fleet is draining; request not accepted")
            req_id = self._next_req
            self._next_req += 1
            ids = self._streams.setdefault(stream, [])
            ticket = FleetTicket(
                req_id, model, stream, index=len(ids),
                submitted_at=time.perf_counter(),
            )
            if self._first_submit is None:
                self._first_submit = ticket.submitted_at
            self._tickets[req_id] = ticket
            self._requests[req_id] = (model, stream, y0)
            ids.append(req_id)
            self._outstanding += 1
            self._all_done.clear()
            slot = self._slots[self.worker_for(stream)]
            if slot.dead:
                self._resolve(
                    req_id, worker=slot.index,
                    error=f"worker {slot.index} exceeded its restart budget",
                )
            elif not slot.paused:
                slot.task_q.put(("req", req_id, model, stream, y0))
            # paused slots get this request through the restart replay scan
        return ticket

    def serve(self, requests) -> FleetReport:
        """Submit ``(model, y0)`` / ``(model, stream, y0)`` items and join."""
        from repro.serve.router import _unpack_request

        for item in requests:
            model, stream, y0 = _unpack_request(item)
            self.submit(model, y0, stream=stream)
        return self.join()

    # ------------------------------------------------------------- collector
    def _collect_loop(self) -> None:
        while not self._stop.is_set():
            got = False
            for slot in self._slots:
                q = slot.result_q
                if q is None:
                    continue
                try:
                    msg = q.get_nowait()
                except queue_mod.Empty:
                    continue
                except Exception:
                    # a SIGKILLed producer can leave a corrupt pipe; the
                    # supervisor replaces the queue with the worker
                    continue
                got = True
                try:
                    self._handle_message(slot, msg)
                except Exception:  # pragma: no cover - collector must survive
                    pass
            if not got:
                time.sleep(0.002)

    def _handle_message(self, slot: _WorkerSlot, msg: tuple) -> None:
        kind, incarnation = msg[0], msg[1]
        if incarnation != slot.incarnation:
            return  # stale message from a dead incarnation
        if kind == "ready":
            slot.ready_info = msg[2]
            slot.obs_port = msg[2].get("obs_port")
            slot.ready.set()
        elif kind == "result":
            payload = msg[3]
            self._resolve(
                msg[2], worker=slot.index, y=payload.pop("y"),
                categories=payload.pop("categories"), info=payload,
            )
        elif kind == "reject":
            self._resolve(msg[2], worker=slot.index, error=msg[3], rejected=True)
        elif kind == "failed":
            self._resolve(msg[2], worker=slot.index, error=msg[3])
        elif kind == "report":
            slot.report = msg[2]
            slot.report_event.set()
        elif kind == "fatal":
            slot.fatal = msg[2]

    def _resolve(self, req_id: int, **kwargs) -> None:
        with self._lock:
            ticket = self._tickets.get(req_id)
            if ticket is None:
                return
            if ticket._resolve(time.perf_counter(), **kwargs):
                self._last_resolve = ticket.resolved_at
                self._outstanding -= 1
                if self._outstanding == 0:
                    self._all_done.set()

    # ------------------------------------------------------------ supervisor
    def _supervise_loop(self) -> None:
        while not self._stop.is_set():
            time.sleep(0.05)
            for slot in self._slots:
                if self._stop.is_set():
                    return
                process = slot.process
                if process is None or slot.dead or slot.report is not None:
                    continue
                crashed = not process.is_alive()
                if not crashed and self.heartbeat_timeout is not None:
                    age = slot.last_heartbeat_age
                    if slot.ready.is_set() and age is not None \
                            and age > self.heartbeat_timeout:
                        process.kill()
                        process.join(timeout=5.0)
                        crashed = True
                if crashed:
                    self._handle_crash(slot)

    def _shard_streams(self, slot: _WorkerSlot) -> list[str]:
        """Streams hashed to this slot, in first-submission order."""
        return [
            stream for stream in self._streams
            if self.worker_for(stream) == slot.index
        ]

    def _handle_crash(self, slot: _WorkerSlot) -> None:
        with self._lock:
            if slot.dead or slot.report is not None:
                return
            slot.restarts += 1
            if slot.restarts > self.max_restarts:
                slot.dead = True
                slot.paused = False
                for stream in self._shard_streams(slot):
                    for req_id in self._streams[stream]:
                        self._resolve_locked(
                            req_id, worker=slot.index,
                            error=(
                                f"worker {slot.index} crashed "
                                f"{slot.restarts} times; restart budget "
                                f"({self.max_restarts}) exhausted"
                            ),
                        )
                return
            slot.paused = True
            self._spawn(slot)
        # ready-wait outside the lock: submits to this slot buffer via the
        # paused flag and will be picked up by the replay scan below
        if not slot.ready.wait(self.start_timeout):
            # replacement never came up; kill it and let the supervisor
            # loop route us back here, burning another restart
            if slot.process is not None:
                slot.process.kill()
                slot.process.join(timeout=5.0)
            return
        with self._lock:
            replayed = 0
            for stream in self._shard_streams(slot):
                ids = self._streams[stream]
                if all(self._tickets[r].done for r in ids):
                    continue  # fully banked; nothing to recover
                # replay the WHOLE stream: packing of the unresolved tail
                # depends on the resolved prefix (block composition), and
                # warm outputs are state-independent, so re-serving the
                # prefix yields duplicate — ignored — identical results
                for req_id in ids:
                    model, s, y0 = self._requests[req_id]
                    slot.task_q.put(("req", req_id, model, s, y0))
                    replayed += 1
            slot.replayed += replayed
            slot.paused = False
            if self._draining:
                slot.task_q.put(("drain",))

    def _resolve_locked(self, req_id: int, **kwargs) -> None:
        """_resolve body for callers already holding the lock."""
        ticket = self._tickets.get(req_id)
        if ticket is None:
            return
        if ticket._resolve(time.perf_counter(), **kwargs):
            self._last_resolve = ticket.resolved_at
            self._outstanding -= 1
            if self._outstanding == 0:
                self._all_done.set()

    # ------------------------------------------------------ crash injection
    def kill_worker(self, index: int, sig: int = signal.SIGKILL) -> int:
        """Send ``sig`` to a worker process (crash injection for tests).

        Returns the signalled pid.  The supervisor notices the death,
        respawns the slot, and replays its unfinished streams.
        """
        process = self._slots[index].process
        if process is None or process.pid is None:
            raise ConfigError(f"worker {index} has no live process")
        os.kill(process.pid, sig)
        return process.pid

    # ------------------------------------------------------------- shutdown
    def join(self, timeout: float | None = 300.0) -> FleetReport:
        """Drain every worker, collect reports, stop the fleet, and report."""
        with self._lock:
            if self._report is not None:
                return self._report
            self._draining = True
            for slot in self._slots:
                if not slot.dead and not slot.paused:
                    slot.task_q.put(("drain",))
        deadline = None if timeout is None else time.monotonic() + timeout
        self._wait(self._all_done, deadline)
        for slot in self._slots:
            if slot.dead:
                continue
            remaining = (
                None if deadline is None else max(deadline - time.monotonic(), 0.1)
            )
            slot.report_event.wait(remaining)
        return self._shutdown(abort=False)

    def close(self, drain: bool = False,
              timeout: float | None = 300.0) -> FleetReport:
        """Abort (default) or drain-and-stop; idempotent."""
        if drain:
            return self.join(timeout)
        with self._lock:
            if self._report is not None:
                return self._report
            self._draining = True
            for slot in self._slots:
                if not slot.dead and not slot.paused:
                    try:
                        slot.task_q.put(("abort",))
                    except Exception:
                        pass
        time.sleep(0.2)  # give workers a moment to ship abort reports
        return self._shutdown(abort=True)

    def _wait(self, event: threading.Event, deadline: float | None) -> bool:
        if deadline is None:
            event.wait()
            return event.is_set()
        return event.wait(max(deadline - time.monotonic(), 0.0))

    def _teardown_processes(self) -> None:
        for slot in self._slots:
            process = slot.process
            if process is None:
                continue
            process.join(timeout=2.0)
            if process.is_alive():
                process.kill()
                process.join(timeout=5.0)

    def _shutdown(self, abort: bool) -> FleetReport:
        self._stop.set()
        self._teardown_processes()
        if self._collector.is_alive():
            self._collector.join(timeout=5.0)
        for slot in self._slots:
            _discard_queue(slot.task_q)
            _discard_queue(slot.result_q)
            slot.task_q = None
            slot.result_q = None
        with self._lock:
            self._closed = True
            error = "fleet aborted before this request resolved"
            for ticket in self._tickets.values():
                if not ticket.done:
                    self._resolve_locked(ticket.req_id, error=error)
            report = FleetReport(workers=self.workers)
            report.restarts = [slot.restarts for slot in self._slots]
            report.replayed = [slot.replayed for slot in self._slots]
            report.worker_reports = [slot.report for slot in self._slots]
            for req_id in sorted(self._tickets):
                ticket = self._tickets[req_id]
                if ticket.ready:
                    report.served.append(ticket)
                elif ticket.rejected:
                    report.rejected.append((req_id, ticket.error))
                else:
                    report.failed.append((req_id, ticket.error))
                report.streams.setdefault(ticket.stream, []).append(ticket)
            if self._first_submit is not None and self._last_resolve is not None:
                report.wall_seconds = self._last_resolve - self._first_submit
            self._report = report
            return report

    def __enter__(self) -> "FleetDispatcher":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if self._report is None:
            if exc_type is None:
                self.join()
            else:
                self.close()

    # -------------------------------------------------------------- telemetry
    def _scrape_worker(self, slot: _WorkerSlot, path: str):
        if not slot.obs_port:
            return None
        import urllib.request

        try:
            with urllib.request.urlopen(
                f"http://127.0.0.1:{slot.obs_port}{path}", timeout=2.0
            ) as resp:
                return resp.read().decode("utf-8")
        except Exception:
            return None

    def render_merged_metrics(self) -> str:
        """One Prometheus exposition across the fleet (``worker=`` labeled).

        Live per-worker scrapes when ``worker_obs=True``; a crashed or
        already-drained worker falls back to its last shipped report.
        """
        texts: dict[str, str] = {}
        for slot in self._slots:
            text = self._scrape_worker(slot, "/metrics")
            if text is None and slot.report is not None:
                text = slot.report.get("prometheus")
            if text:
                texts[str(slot.index)] = text
        return merge_prometheus(texts)

    def merged_metrics_snapshot(self) -> dict:
        """Merged JSON metric snapshot from the workers' final reports."""
        return merge_snapshots({
            str(slot.index): (slot.report or {}).get("metrics") or {}
            for slot in self._slots
        })

    def merged_slo(self) -> dict:
        """Per-tenant-per-worker SLO blocks, keyed ``model@worker``."""
        import json as json_mod

        merged: dict = {}
        for slot in self._slots:
            payload = None
            text = self._scrape_worker(slot, "/slo")
            if text is not None:
                try:
                    payload = json_mod.loads(text)
                except ValueError:
                    payload = None
            if payload is None and slot.report is not None:
                payload = slot.report.get("slo")
            for model, block in (payload or {}).items():
                merged[f"{model}@{slot.index}"] = block
        return merged

    def health(self) -> dict:
        """Fleet health for ``/healthz``: degraded once any slot is dead.

        A slot goes *dead* when it crashes past ``max_restarts`` — from then
        on every stream hashed to it fails fast, so the process being alive
        is no longer the truth about serving capacity.  The dict's
        ``healthy`` flag drives the endpoint's status code (503 when False);
        the rest is diagnostic payload.
        """
        with self._lock:
            dead = [slot.index for slot in self._slots if slot.dead]
            alive = sum(
                1 for slot in self._slots
                if slot.process is not None and slot.process.is_alive()
            )
        return {
            "healthy": not dead,
            "status": "degraded" if dead else "ok",
            "workers": self.workers,
            "alive": alive,
            "dead_workers": dead,
        }

    def obs_endpoint(self, port: int = 0, host: str = "127.0.0.1"):
        """Start one merged ``/metrics`` + ``/slo`` endpoint for the fleet.

        ``/healthz`` on this endpoint reports *fleet* health (see
        :meth:`health`): 200 while every worker slot is serviceable, 503
        once any slot has exhausted its restart budget.
        """
        from repro.obs.http import ObsServer

        return ObsServer(
            None,
            slo_provider=self.merged_slo,
            metrics_provider=self.render_merged_metrics,
            health_provider=self.health,
            host=host,
            port=port,
        )

    def stats(self) -> dict:
        """Live dispatcher-side view (health, placement, restart counters)."""
        with self._lock:
            return {
                "workers": self.workers,
                "draining": self._draining,
                "closed": self._closed,
                "outstanding": self._outstanding,
                "streams": {
                    stream: self.worker_for(stream) for stream in self._streams
                },
                "slots": [
                    {
                        "index": slot.index,
                        "pid": (
                            slot.process.pid if slot.process is not None else None
                        ),
                        "alive": (
                            slot.process.is_alive()
                            if slot.process is not None else False
                        ),
                        "ready": slot.ready.is_set(),
                        "incarnation": slot.incarnation,
                        "restarts": slot.restarts,
                        "replayed": slot.replayed,
                        "dead": slot.dead,
                        "heartbeat_age_s": slot.last_heartbeat_age,
                        "obs_port": slot.obs_port,
                    }
                    for slot in self._slots
                ],
            }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FleetDispatcher(workers={self.workers}, "
            f"tenants={sorted(self._names)})"
        )
