"""Multi-network serving: a model registry, a router, and a memory budget.

One serving process, many warm networks.  Three pieces compose the story:

* :class:`ModelRegistry` owns named :class:`~repro.serve.session.
  EngineSession`\\ s — ``register``/``evict`` by name, lazy or eager warmup —
  all publishing into **one** :class:`~repro.obs.MetricsRegistry` through
  per-tenant ``{model="..."}`` labeled views, so a single scrape separates
  tenants instead of conflating them;
* :class:`Router` / :class:`AsyncRouter` front the registry with one
  :class:`~repro.serve.batcher.MicroBatcher` per lane and route
  ``submit(model, y0, stream=...)`` by name.  A lane is keyed by
  ``(model, stream)``: requests from different tenants — or from different
  *streams* of the same tenant — are never packed into one block, so
  isolation is structural, not statistical, and each stream's outputs are
  bitwise identical to a single-stream run of the same request sequence.
  Stream lanes are what lets the multi-process fleet
  (:mod:`repro.serve.fleet`) shard replicated tenants across workers
  without perturbing outputs: a stream's packing depends only on its own
  request order, never on which process serves it or what its neighbors
  do.  The sync router is the :class:`~repro.serve.server.
  InferenceServer` loop generalized; the async router keeps the threaded
  transport's shape — producers enqueue from any thread, **one worker
  drains all tenants** — with per-tenant intake bounds, so one tenant's
  burst rejects (or blocks) only its own lane;
* a :class:`~repro.gpu.memory.MemoryBudget` meters retained bytes across
  every tenant's warm state (scratch pool, pinned weight views, cached
  centroids).  When the sum exceeds the budget the registry demotes the
  least-recently-served sessions warm-to-cold
  (:meth:`~repro.serve.session.EngineSession.demote`) until it fits.
  Demotion drops only rebuildable state — pool contents are unspecified by
  contract, weight views rebuild bitwise identically from CSR, and a cold
  centroid cache merely re-pays one conversion — so eviction is a
  performance event, never a correctness one, and a demoted session keeps
  serving (re-warming lazily).
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigError, ServeClosedError, ServeOverflowError
from repro.gpu.memory import MemoryBudget
from repro.obs import MetricsRegistry
from repro.obs.export import json_safe
from repro.obs.slo import SloPolicy, SloTracker
from repro.serve.async_server import AsyncServeReport, AsyncTicket
from repro.serve.batcher import MicroBatcher, Ticket
from repro.serve.qos import AdmissionController, DeficitScheduler, QosPolicy
from repro.serve.server import ServeReport
from repro.serve.session import EngineSession

__all__ = ["ModelRegistry", "Router", "AsyncRouter", "RouterReport"]

#: Lane service policies: ``'qos'`` is class-priority + deficit-weighted
#: round robin with admission control; ``'fifo'`` is the legacy
#: registration-order service with no admission (the A/B control arm).
SCHEDULER_POLICIES = ("qos", "fifo")


def _unpack_request(item):
    """``(model, y0)`` or ``(model, stream, y0)`` -> ``(model, stream, y0)``."""
    if len(item) == 3:
        return item[0], item[1], item[2]
    model, y0 = item
    return model, None, y0


def _check_name(kind: str, name: str) -> str:
    """Reject ``@`` in model/stream names.

    Lane labels are ``model@stream`` and merged fleet SLO keys are
    ``model@worker`` — plain concatenation, so a tenant literally named
    ``"a@b"`` would alias another lane's stats and SLO block.  Refusing the
    character at register/submit time makes the collision impossible
    instead of merely unlikely.
    """
    if "@" in name:
        raise ConfigError(
            f"{kind} name {name!r} must not contain '@': it is the separator "
            f"in lane labels (model@stream) and fleet SLO keys (model@worker)"
        )
    return name


def _lane_label(model: str, stream: str | None) -> str:
    """Stable display key for a lane in stats dicts."""
    return model if stream is None else f"{model}@{stream}"


def _request_columns(y0) -> int:
    """Column count of a raw request, before full validation."""
    arr = np.asarray(y0)
    return int(arr.shape[1]) if arr.ndim >= 2 else 1


class ModelRegistry:
    """Named warm sessions behind one metrics registry and one byte budget.

    Parameters
    ----------
    metrics:
        The shared :class:`~repro.obs.MetricsRegistry` every tenant
        publishes into (labeled per model); private one by default.
    memory_budget_bytes:
        Retained-bytes ceiling across *all* tenants' warm state; ``None``
        meters without ever evicting.  Enforcement is LRU: the router calls
        :meth:`enforce` after serving activity, and the registry demotes
        least-recently-served sessions until the ledger fits.
    clock:
        Recency source for the LRU order (monotonic by default).
    """

    def __init__(
        self,
        metrics: MetricsRegistry | None = None,
        memory_budget_bytes: int | None = None,
        clock=time.monotonic,
    ):
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.budget = MemoryBudget(memory_budget_bytes).bind_metrics(self.metrics)
        self.clock = clock
        self._sessions: dict[str, EngineSession] = {}
        self._last_served: dict[str, float] = {}
        self._slo: dict[str, SloTracker] = {}
        self._qos: dict[str, QosPolicy] = {}
        #: model names demoted by budget enforcement, in eviction order
        self.demotions: list[str] = []

    # ------------------------------------------------------------ lifecycle
    def register(
        self,
        name: str,
        network=None,
        *,
        config=None,
        kind: str = "snicit",
        warm: bool = False,
        warm_state: str | None = None,
        session: EngineSession | None = None,
        slo: SloPolicy | str | None = None,
        qos: QosPolicy | str | None = None,
        **session_kwargs,
    ) -> EngineSession:
        """Add a named tenant; returns its session.

        Either pass a ``network`` (+ engine options) to build an
        :class:`~repro.serve.session.EngineSession` here — on the shared
        metrics registry, labeled ``model=name`` — or hand in a prebuilt
        ``session``.  ``warm=False`` registers cold (views build lazily on
        first use); ``warm=True`` pins them eagerly.  ``warm_state`` names a
        :mod:`repro.core.warmstore` artifact to boot from instead of baking:
        the session is built cold, then
        :meth:`~repro.serve.session.EngineSession.load_warm_state` restores
        views, plan, memo baselines, and cache fills (fingerprint-checked) —
        the path fleets use so every worker, including crash-restarted
        incarnations, skips warmup.  Duplicate names are a
        :class:`~repro.errors.ConfigError` — a name means one tenant.

        ``slo`` attaches a per-tenant service-level objective — an
        :class:`~repro.obs.slo.SloPolicy` or a compact spec string like
        ``'p99<50ms@60s/99%'`` — whose tracker the routers feed with every
        resolved request (see :meth:`set_slo`).

        ``qos`` declares the tenant's service class, DWRR weight, and
        optional column-rate limit — a :class:`~repro.serve.qos.QosPolicy`
        or a compact spec like ``'batch:w=2,rate=256'``.  Unset tenants
        default to interactive weight 1, which reproduces pre-QoS service
        exactly when every tenant is unset.
        """
        _check_name("model", name)
        if name in self._sessions:
            raise ConfigError(f"model {name!r} is already registered")
        if session is None:
            if network is None:
                raise ConfigError(f"model {name!r} needs a network or a session")
            session = EngineSession(
                network,
                config,
                kind=kind,
                warm=warm and warm_state is None,
                metrics=self.metrics,
                name=name,
                **session_kwargs,
            )
            if warm_state is not None:
                session.load_warm_state(warm_state)
        elif warm_state is not None:
            session.load_warm_state(warm_state)
        self._sessions[name] = session
        self._last_served[name] = self.clock()
        policy = QosPolicy.parse(qos)
        self._qos[name] = policy
        scoped = self.metrics.labeled(model=name)
        scoped.gauge(
            "qos_priority_rank",
            help="tenant service class rank (0=interactive, 1=batch)",
        ).set(policy.rank)
        scoped.gauge(
            "qos_weight", help="tenant deficit-round-robin weight"
        ).set(policy.weight)
        if slo is not None:
            self.set_slo(name, slo)
        # an eagerly-warmed tenant can push the ledger over budget the
        # moment it registers; enforce right away (protecting the newcomer)
        # so the highwater gauge only ever records post-enforcement state
        self.enforce(protect=(name,))
        return session

    def evict(self, name: str) -> EngineSession:
        """Remove a tenant entirely (its account leaves the ledger too)."""
        session = self.get(name)
        del self._sessions[name]
        del self._last_served[name]
        self._slo.pop(name, None)
        self._qos.pop(name, None)
        self.budget.drop(name)
        self.budget.publish()
        return session

    def get(self, name: str) -> EngineSession:
        try:
            return self._sessions[name]
        except KeyError:
            raise ConfigError(
                f"unknown model {name!r}; registered: {sorted(self._sessions)}"
            ) from None

    def names(self) -> list[str]:
        return list(self._sessions)

    # ------------------------------------------------------------------ SLO
    def set_slo(self, name: str, policy: SloPolicy | str) -> SloTracker:
        """Attach (or replace) a tenant's SLO policy; returns its tracker.

        The tracker publishes through the shared registry's per-tenant view
        (``slo_latency_seconds{model=name, quantile=...}`` etc.), and the
        routers feed it every resolved request for that tenant.  A spec
        string like ``'p99<50ms@60s/99%'`` is parsed via
        :meth:`~repro.obs.slo.SloPolicy.parse`.
        """
        self.get(name)  # unknown tenants fail loudly
        if isinstance(policy, str):
            policy = SloPolicy.parse(policy)
        tracker = SloTracker(
            policy, metrics=self.metrics.labeled(model=name), name=name
        )
        self._slo[name] = tracker
        return tracker

    def slo_tracker(self, name: str) -> SloTracker | None:
        """The tenant's tracker, or ``None`` when it has no SLO policy."""
        return self._slo.get(name)

    def slo_report(self) -> dict:
        """Live :class:`~repro.obs.slo.SloReport` per policied tenant."""
        return {name: tracker.report() for name, tracker in self._slo.items()}

    def slo_report_json(self) -> dict:
        """JSON-safe ``/slo`` payload: one report block per policied tenant."""
        return {
            name: report.to_json() for name, report in self.slo_report().items()
        }

    # ------------------------------------------------------------------ QoS
    def qos_policy(self, name: str) -> QosPolicy:
        """The tenant's QoS policy (default interactive weight 1 if unset)."""
        return self._qos.get(name) or QosPolicy()

    def max_interactive_burn(self) -> float | None:
        """Worst live SLO burn across interactive tenants (admission signal).

        ``None`` when no interactive tenant carries an SLO policy.  Reads
        the trackers' last evaluated burn instead of re-reading windows, so
        polling it on every submit is cheap.
        """
        burns = [
            tracker.last_burn
            for name, tracker in self._slo.items()
            if self.qos_policy(name).rank == 0
        ]
        return max(burns) if burns else None

    def __contains__(self, name: str) -> bool:
        return name in self._sessions

    def __len__(self) -> int:
        return len(self._sessions)

    # --------------------------------------------------------------- budget
    def touch(self, name: str) -> None:
        """Mark a tenant as just-served (moves it to the LRU tail)."""
        self._last_served[name] = self.clock()

    def refresh_accounts(self) -> int:
        """Re-read every session's retained footprint into the ledger."""
        for name, session in self._sessions.items():
            self.budget.update(name, session.retained_nbytes())
        return self.budget.retained_bytes

    def enforce(self, protect=()) -> list[str]:
        """Demote sessions until the ledger fits: batch class first, then LRU.

        ``protect`` names tenants exempt this round (typically the one that
        just served — demoting it would immediately re-warm).  Returns the
        names demoted in eviction order.  Candidates sort batch-class
        tenants ahead of interactive ones — shedding a bulk tenant's warm
        state is always preferred over evicting an interactive tenant's —
        and least-recently-served first within a class (pure LRU when every
        tenant shares a class).  The high-water gauge is published *after*
        enforcement, so a run that stays within budget certifies it via
        ``memory_budget_highwater_bytes <= memory_budget_limit_bytes``.
        """
        self.refresh_accounts()
        demoted: list[str] = []
        if self.budget.over_budget:
            candidates = sorted(
                (
                    name
                    for name, session in self._sessions.items()
                    if name not in protect and session.retained_nbytes() > 0
                ),
                key=lambda name: (
                    -self.qos_policy(name).rank,
                    self._last_served[name],
                ),
            )
            for name in candidates:
                if not self.budget.over_budget:
                    break
                session = self._sessions[name]
                session.demote()
                self.budget.update(name, session.retained_nbytes())
                self.budget.record_eviction()
                self.metrics.counter(
                    "memory_budget_demotions_total",
                    help="warm-to-cold demotions, per tenant",
                    model=name,
                ).inc()
                demoted.append(name)
                self.demotions.append(name)
        self.budget.publish()
        return demoted

    def stats(self) -> dict:
        out = {
            "models": {name: s.stats() for name, s in self._sessions.items()},
            "budget": self.budget.stats(),
            "demotions": list(self.demotions),
        }
        if self._qos:
            out["qos_policies"] = {
                name: policy.to_json() for name, policy in self._qos.items()
            }
        if self._slo:
            out["slo"] = self.slo_report_json()
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ModelRegistry(models={sorted(self._sessions)}, "
            f"retained={self.budget.retained_bytes})"
        )


@dataclass
class RouterReport:
    """Outcome of one mixed-traffic stream, per tenant plus merged.

    The merged view honors each tenant's own
    :attr:`~repro.serve.server.ServeReport.status` instead of judging
    globally: an idle tenant (``no_traffic``) does not drag a healthy run,
    and one fully-shed tenant does not hide behind another's successes —
    mixed outcomes merge to ``'degraded'``, not ``'ok'``.
    """

    per_model: dict[str, ServeReport] = field(default_factory=dict)
    wall_seconds: float = 0.0
    #: worker busy seconds (async transport only; 0.0 for the sync router)
    exec_seconds: float = 0.0
    #: tenants demoted warm-to-cold by budget enforcement during the stream
    demoted: list[str] = field(default_factory=list)
    #: per-tenant SLO evaluation (JSON blocks from the registry's trackers);
    #: ``None`` when no tenant carries a policy
    slo: dict[str, dict] | None = None

    # ----------------------------------------------------------- aggregates
    @property
    def requests(self) -> int:
        return sum(r.requests for r in self.per_model.values())

    @property
    def served(self) -> int:
        return sum(len(r.served) for r in self.per_model.values())

    @property
    def rejected(self) -> int:
        return sum(len(r.rejected) for r in self.per_model.values())

    @property
    def columns(self) -> int:
        return sum(r.columns for r in self.per_model.values())

    @property
    def columns_per_second(self) -> float:
        return self.columns / self.wall_seconds if self.wall_seconds > 0 else 0.0

    @property
    def status(self) -> str:
        """Merged health: per-tenant statuses folded without masking.

        ``no_traffic`` tenants are excluded from the judgment (idle is not
        unhealthy); among the active ones, all-ok merges to ``'ok'``, all
        turned-away (rejected or failed) to ``'all_rejected'``, and any mix
        to ``'degraded'``.  No active tenant at all is ``'no_traffic'``.
        """
        active = [
            r.status for r in self.per_model.values() if r.status != "no_traffic"
        ]
        if not active:
            return "no_traffic"
        if all(s == "ok" for s in active):
            return "ok"
        if all(s in ("all_rejected", "all_failed") for s in active):
            return "all_rejected"
        return "degraded"

    def latency_quantiles(self, qs=(0.5, 0.95, 0.99, 1.0)) -> dict[str, float] | None:
        """Pooled quantiles over every tenant that actually served.

        Pooling is the *merged* view only — a quiet fast tenant and a
        saturated slow one average into a number that describes neither, so
        anything judging tenant health must read
        :meth:`per_model_quantiles` instead.

        Tenants with nothing served contribute no samples (their ``None``
        is not coerced to zero); with no served request anywhere the merged
        view is ``None`` too, mirroring the single-tenant contract.
        """
        lat = [
            t.latency_seconds
            for report in self.per_model.values()
            for t in report.served
        ]
        if not lat:
            return None
        arr = np.array(lat)
        return {f"p{int(q * 100)}": float(np.quantile(arr, q)) for q in qs}

    def per_model_quantiles(
        self, qs=(0.5, 0.95, 0.99, 1.0)
    ) -> dict[str, dict[str, float] | None]:
        """Each tenant's own latency quantiles — the unmasked per-tail view."""
        return {
            name: report.latency_quantiles(qs)
            for name, report in self.per_model.items()
        }

    def summary(self) -> dict:
        out = {
            "status": self.status,
            "requests": self.requests,
            "served": self.served,
            "rejected": self.rejected,
            "columns": self.columns,
            "wall_seconds": self.wall_seconds,
            "columns_per_second": self.columns_per_second,
            "latency_seconds": self.latency_quantiles(),
            "latency_seconds_per_model": self.per_model_quantiles(),
            "demoted": list(self.demoted),
            "models": {
                name: report.summary() for name, report in self.per_model.items()
            },
        }
        if self.slo is not None:
            out["slo"] = self.slo
        return out

    def to_json(self) -> dict:
        """:meth:`summary` coerced JSON-serializable (numpy scalars included)."""
        return json_safe(self.summary())


class Router:
    """Synchronous multi-tenant front end: one batcher lane per model.

    The single-tenant :class:`~repro.serve.server.InferenceServer` loop,
    generalized: ``submit(model, y0)`` routes by name into the model's own
    :class:`~repro.serve.batcher.MicroBatcher` (created on first use), so
    blocks never mix tenants.  After every flush opportunity the registry's
    memory budget is enforced, protecting the tenant that just served.

    Which lane flushes next is decided by a
    :class:`~repro.serve.qos.DeficitScheduler` under ``policy='qos'``
    (strict interactive-before-batch priority, deficit-weighted round
    robin within a class) or by registration order under ``policy='fifo'``
    (the legacy arm).  The scheduler only reorders *between* lanes; FIFO
    packing inside each lane is untouched, so per-stream outputs stay
    bitwise identical either way.  Under ``'qos'`` an
    :class:`~repro.serve.qos.AdmissionController` sheds load before it
    enters a lane: per-tenant token-bucket rate limits, and pressure
    triggers (queued requests >= ``queue_pressure_requests``, interactive
    SLO burn >= ``burn_threshold``, memory budget over limit) that shed
    only batch-class tenants.
    """

    def __init__(
        self,
        registry: ModelRegistry,
        max_batch: int = 256,
        max_wait_s: float = 0.002,
        queue_limit: int = 1024,
        clock=time.monotonic,
        policy: str = "qos",
        queue_pressure_requests: int | None = None,
        burn_threshold: float | None = None,
    ):
        if policy not in SCHEDULER_POLICIES:
            raise ConfigError(
                f"unknown scheduler policy {policy!r}; known: {SCHEDULER_POLICIES}"
            )
        self.registry = registry
        self.max_batch = int(max_batch)
        self.max_wait_s = float(max_wait_s)
        self.queue_limit = int(queue_limit)
        self.clock = clock
        self.policy = policy
        self.scheduler = DeficitScheduler(quantum=float(max_batch))
        self.admission = (
            AdmissionController(
                metrics=registry.metrics,
                queue_pressure_requests=queue_pressure_requests,
                burn_threshold=burn_threshold,
                clock=clock,
            )
            if policy == "qos"
            else None
        )
        self._lanes: dict[tuple[str, str | None], MicroBatcher] = {}

    def lane(self, model: str, stream: str | None = None) -> MicroBatcher:
        """The ``(model, stream)`` batcher, created on first use.

        ``stream=None`` is the tenant's default lane (the pre-fleet
        behavior).  Distinct streams of one tenant get distinct batchers, so
        their blocks never mix — the structural invariant behind per-stream
        bitwise determinism.  Unknown model names raise, as do stream names
        containing ``@`` (they would alias lane labels).
        """
        if stream is not None:
            _check_name("stream", str(stream))
        key = (model, stream)
        batcher = self._lanes.get(key)
        if batcher is None:
            batcher = MicroBatcher(
                self.registry.get(model),
                max_batch=self.max_batch,
                max_wait_s=self.max_wait_s,
                max_pending=self.queue_limit,
                clock=self.clock,
            )
            # the tracker is looked up per resolution, not captured: a
            # policy set (or replaced) after the lane exists still applies
            def feed_slo(ticket, model=model):
                tracker = self.registry.slo_tracker(model)
                if tracker is not None:
                    tracker.record_ticket(ticket, model=model)

            batcher.on_resolve = feed_slo
            self._lanes[key] = batcher
            qos = self.registry.qos_policy(model)
            self.scheduler.register(
                key, qos.rank, qos.weight, label=_lane_label(model, stream)
            )
            if self.admission is not None:
                self.admission.register(model, qos)
        return batcher

    # ------------------------------------------------------------- serving
    def submit(self, model: str, y0: np.ndarray, stream: str | None = None) -> Ticket:
        """Route one request to its ``(model, stream)`` lane; may flush a block.

        Under ``policy='qos'`` the request first passes admission control —
        a shed raises :class:`~repro.errors.ServeShedError` (a
        :class:`~repro.errors.ServeOverflowError`) before the lane sees it.
        """
        lane = self.lane(model, stream)
        if self.admission is not None:
            self.admission.admit(
                model,
                _request_columns(y0),
                pending_requests=self.pending_requests(),
                interactive_burn=self.registry.max_interactive_burn(),
                over_budget=self.registry.budget.over_budget,
            )
        ticket = lane.enqueue(y0)
        self._service()
        self.registry.touch(model)
        self.registry.enforce(protect={model})
        return ticket

    def pending_requests(self) -> int:
        """Requests queued across every lane (admission pressure signal)."""
        return sum(b.pending_requests for b in self._lanes.values())

    def step(self) -> int:
        """Flush due lanes scheduler-ordered; returns blocks flushed."""
        return self._service(due=True)

    def drain(self) -> int:
        """Flush everything pending in every lane, scheduler-ordered."""
        return self._service(due=True, drain=True)

    def _pick(self, candidates: dict) -> tuple[str, str | None]:
        """Next lane to flush: DWRR under 'qos', registration order under 'fifo'."""
        if self.policy == "fifo":
            for key in self._lanes:
                if key in candidates:
                    return key
        return self.scheduler.pick(candidates)

    def _service(self, *, due: bool = False, drain: bool = False) -> int:
        """Flush runnable blocks one at a time in scheduler order.

        A lane is runnable when it holds a full block; with ``due`` also
        when its oldest request aged past ``max_wait_s``; with ``drain``
        whenever anything is pending.  One block flushes per pick, then
        candidates rebuild — so a higher-priority lane that became runnable
        preempts at block granularity.  Engine failures propagate after the
        batcher routes them to the failing block's tickets, matching the
        single-lane contract.
        """
        n = 0
        while True:
            candidates: dict[tuple[str, str | None], int] = {}
            reasons: dict[tuple[str, str | None], str] = {}
            for key, batcher in self._lanes.items():
                if not batcher.pending_requests:
                    self.scheduler.reset(key)
                    continue
                if batcher.pending_columns >= batcher.max_batch:
                    reasons[key] = "full"
                elif drain:
                    reasons[key] = "drain"
                elif due:
                    d = batcher.seconds_until_due()
                    if d is not None and d <= 0:
                        reasons[key] = "wait"
                if key in reasons:
                    candidates[key] = min(
                        batcher.pending_columns, batcher.max_batch
                    )
            if not candidates:
                return n
            key = self._pick(candidates)
            model, _stream = key
            batcher = self._lanes[key]
            flushed = batcher.flush_one(reason=reasons[key])
            if flushed:
                n += 1
                self.registry.touch(model)
                self.registry.enforce(protect={model})
            if not batcher.pending_requests:
                self.scheduler.reset(key)

    def serve(self, requests) -> RouterReport:
        """Run a mixed stream of ``(model, y0)`` or ``(model, stream, y0)``."""
        report = RouterReport()
        demotions_before = len(self.registry.demotions)
        t0 = time.perf_counter()
        for index, item in enumerate(requests):
            model, stream, y0 = _unpack_request(item)
            per = report.per_model.setdefault(model, ServeReport())
            try:
                per.served.append(self.submit(model, y0, stream=stream))
            except ServeOverflowError as exc:
                per.rejected.append((index, str(exc)))
            self.step()
        self.drain()
        report.wall_seconds = time.perf_counter() - t0
        for per in report.per_model.values():
            per.wall_seconds = report.wall_seconds
        report.demoted = self.registry.demotions[demotions_before:]
        report.slo = self.registry.slo_report_json() or None
        return report

    def stats(self) -> dict:
        return {
            "registry": self.registry.stats(),
            "qos": {
                "policy": self.policy,
                "scheduler": self.scheduler.stats(),
                "admission": (
                    self.admission.stats() if self.admission is not None else None
                ),
            },
            "lanes": {
                _lane_label(model, stream): b.stats()
                for (model, stream), b in self._lanes.items()
            },
        }


class _AsyncLane:
    """Per-``(model, stream)`` state of the async router."""

    __slots__ = ("model", "stream", "batcher", "intake", "inflight", "accepted")

    def __init__(self, model: str, stream: str | None, batcher: MicroBatcher):
        self.model = model
        self.stream = stream
        self.batcher = batcher
        self.intake: deque[AsyncTicket] = deque()
        self.inflight: deque[AsyncTicket] = deque()
        self.accepted = 0


class AsyncRouter:
    """Threaded multi-tenant front end: one worker drains all tenants.

    The :class:`~repro.serve.async_server.AsyncInferenceServer` transport
    generalized to many models: producers ``submit(model, y0)`` from any
    thread into that tenant's own bounded intake lane — backpressure is per
    tenant, so one tenant's burst rejects (``on_full='reject'``) or blocks
    (``'block'``) only its own producers — while a single consumer worker
    services the lanes one block at a time on each tenant's warm session.
    Which lane runs next is the :class:`~repro.serve.qos.DeficitScheduler`'s
    call under ``policy='qos'`` (interactive before batch, deficit-weighted
    within a class; new arrivals re-ingested between blocks, so an
    interactive burst preempts a bulk backlog at block granularity) or
    registration order under ``'fifo'``.  Admission control (rate limits +
    batch-first pressure shedding) runs inside ``submit`` under ``'qos'``.
    Blocks never mix tenants; the memory budget is enforced between
    blocks, protecting the tenant that just ran.
    """

    def __init__(
        self,
        registry: ModelRegistry,
        max_batch: int = 256,
        max_wait_s: float = 0.002,
        queue_limit: int = 1024,
        on_full: str = "reject",
        clock=time.monotonic,
        policy: str = "qos",
        queue_pressure_requests: int | None = None,
        burn_threshold: float | None = None,
    ):
        from repro.serve.async_server import BACKPRESSURE_POLICIES

        if on_full not in BACKPRESSURE_POLICIES:
            raise ConfigError(
                f"unknown backpressure policy {on_full!r}; known: {BACKPRESSURE_POLICIES}"
            )
        if policy not in SCHEDULER_POLICIES:
            raise ConfigError(
                f"unknown scheduler policy {policy!r}; known: {SCHEDULER_POLICIES}"
            )
        self.registry = registry
        self.max_batch = int(max_batch)
        self.max_wait_s = float(max_wait_s)
        self.queue_limit = int(queue_limit)
        self.on_full = on_full
        self.clock = clock
        self.policy = policy
        self.scheduler = DeficitScheduler(quantum=float(max_batch))
        self.admission = (
            AdmissionController(
                metrics=registry.metrics,
                queue_pressure_requests=queue_pressure_requests,
                burn_threshold=burn_threshold,
                clock=clock,
            )
            if policy == "qos"
            else None
        )
        self._lanes: dict[tuple[str, str | None], _AsyncLane] = {}
        self._lock = threading.Lock()
        self._arrived = threading.Condition(self._lock)
        self._space = threading.Condition(self._lock)
        self._closed = False
        self._abort = False
        self._exec_seconds = 0.0
        self._worker = threading.Thread(
            target=self._worker_loop, name="repro-router-worker", daemon=True
        )
        self._worker.start()

    def _lane(self, model: str, stream: str | None = None) -> _AsyncLane:
        """Lane for ``(model, stream)`` (lock held by the caller)."""
        if stream is not None:
            _check_name("stream", str(stream))
        key = (model, stream)
        lane = self._lanes.get(key)
        if lane is None:
            session = self.registry.get(model)
            lane = _AsyncLane(
                model,
                stream,
                MicroBatcher(
                    session,
                    max_batch=self.max_batch,
                    max_wait_s=self.max_wait_s,
                    max_pending=self.queue_limit + self.max_batch + 1,
                    clock=self.clock,
                ),
            )
            self._lanes[key] = lane
            qos = self.registry.qos_policy(model)
            self.scheduler.register(
                key, qos.rank, qos.weight, label=_lane_label(model, stream)
            )
            if self.admission is not None:
                self.admission.register(model, qos)
        return lane

    # ------------------------------------------------------------- producer
    def submit(
        self, model: str, y0: np.ndarray, stream: str | None = None
    ) -> AsyncTicket:
        """Enqueue into the ``(model, stream)`` lane; returns a future ticket.

        Thread-safe.  A full *lane* (not the whole router) rejects under
        ``'reject'`` or parks this producer under ``'block'`` — per-tenant
        (and per-stream) backpressure by construction.
        """
        session = self.registry.get(model)  # unknown names fail synchronously
        y0 = session.network.validate_input(np.asarray(y0))
        if y0.shape[1] < 1:
            from repro.errors import ShapeError

            raise ShapeError("a request needs at least one column")
        with self._lock:
            if self._closed:
                raise ServeClosedError("router is closed; request not accepted")
            lane = self._lane(model, stream)
            if self.admission is not None:
                pending = sum(
                    len(ln.intake) + ln.batcher.pending_requests
                    for ln in self._lanes.values()
                )
                self.admission.admit(
                    model,
                    y0.shape[1],
                    pending_requests=pending,
                    interactive_burn=self.registry.max_interactive_burn(),
                    over_budget=self.registry.budget.over_budget,
                )
            if len(lane.intake) >= self.queue_limit:
                if self.on_full == "reject":
                    raise ServeOverflowError(
                        f"lane {_lane_label(model, stream)!r} full "
                        f"({self.queue_limit} requests); request rejected"
                    )
                while len(lane.intake) >= self.queue_limit and not self._closed:
                    self._space.wait()
                if self._closed:
                    raise ServeClosedError("router closed while waiting for lane space")
            ticket = AsyncTicket(y0, self.clock(), index=lane.accepted)
            lane.accepted += 1
            lane.intake.append(ticket)
            self._arrived.notify()
        return ticket

    def close(self, drain: bool = True, timeout: float | None = None) -> bool:
        """Stop the worker; drain or abort, same contract as the transport."""
        with self._lock:
            self._closed = True
            if not drain:
                self._abort = True
            self._arrived.notify_all()
            self._space.notify_all()
        self._worker.join(timeout)
        return not self._worker.is_alive()

    def __enter__(self) -> "AsyncRouter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close(drain=exc_type is None)

    # ------------------------------------------------------------ streaming
    def serve(self, requests, interarrivals=None) -> RouterReport:
        """Submit a mixed open-loop stream, drain, and report per tenant."""
        report = RouterReport()
        demotions_before = len(self.registry.demotions)
        gaps = iter(interarrivals) if interarrivals is not None else None
        tickets: list[tuple[str, int, AsyncTicket]] = []
        t0 = time.perf_counter()
        for index, item in enumerate(requests):
            model, stream, y0 = _unpack_request(item)
            if gaps is not None:
                gap = float(next(gaps, 0.0))
                if gap > 0:
                    time.sleep(gap)
            per = report.per_model.setdefault(model, AsyncServeReport())
            try:
                tickets.append((model, index, self.submit(model, y0, stream=stream)))
            except (ServeOverflowError, ServeClosedError) as exc:
                per.rejected.append((index, str(exc)))
        self.close(drain=True)
        for model, index, ticket in tickets:
            per = report.per_model[model]
            if ticket.failed:
                per.failed.append((index, str(ticket.exception)))
            else:
                per.served.append(ticket)
        report.wall_seconds = time.perf_counter() - t0
        report.exec_seconds = self._exec_seconds
        for per in report.per_model.values():
            per.wall_seconds = report.wall_seconds
        report.demoted = self.registry.demotions[demotions_before:]
        report.slo = self.registry.slo_report_json() or None
        return report

    # -------------------------------------------------------------- worker
    def _due(self) -> float | None:
        """Earliest max-wait deadline across lanes (lock held)."""
        due = None
        for lane in self._lanes.values():
            d = lane.batcher.seconds_until_due()
            if d is not None and (due is None or d < due):
                due = d
        return due

    def _grab_locked(self) -> list[tuple[_AsyncLane, list[AsyncTicket]]]:
        """Take every lane's intake (lock held by the caller)."""
        grabbed: list[tuple[_AsyncLane, list[AsyncTicket]]] = []
        for lane in self._lanes.values():
            if lane.intake:
                items = list(lane.intake)
                lane.intake.clear()
                grabbed.append((lane, items))
        if grabbed:
            self._space.notify_all()
        return grabbed

    def _ingest(self, grabbed) -> None:
        """Move grabbed tickets into their lanes' batchers (worker thread).

        Enqueue-only: which blocks form is decided afterwards by the
        scheduler, one flush at a time.  Moving every ticket before any
        flush does not change packing — a block is always the longest FIFO
        prefix of its own lane that fits ``max_batch``, regardless of how
        many enqueues happened since the last flush.
        """
        now = self.clock()
        for lane, items in grabbed:
            for ticket in items:
                ticket.dequeued_at = now
                try:
                    ticket.inner = lane.batcher.enqueue(ticket.y0)
                except Exception as exc:
                    # cannot happen for validated requests under the
                    # sized batcher cap, but an accepted ticket must
                    # still resolve
                    ticket._resolve(self.clock(), error=exc)
                    continue
                lane.inflight.append(ticket)

    def _candidates(self, drain: bool) -> tuple[dict, dict]:
        """Runnable lanes: ``{key: block_cost}`` plus each lane's flush reason."""
        with self._lock:
            lanes = list(self._lanes.items())
        candidates: dict[tuple[str, str | None], int] = {}
        reasons: dict[tuple[str, str | None], str] = {}
        for key, lane in lanes:
            batcher = lane.batcher
            if not batcher.pending_requests:
                self.scheduler.reset(key)
                continue
            if batcher.pending_columns >= batcher.max_batch:
                reasons[key] = "full"
            elif drain:
                reasons[key] = "drain"
            else:
                d = batcher.seconds_until_due()
                if d is not None and d <= 0:
                    reasons[key] = "wait"
            if key in reasons:
                candidates[key] = min(batcher.pending_columns, batcher.max_batch)
        return candidates, reasons

    def _pick(self, candidates: dict) -> tuple[str, str | None]:
        """Next lane to flush: DWRR under 'qos', registration order under 'fifo'."""
        if self.policy == "fifo":
            with self._lock:
                order = list(self._lanes)
            for key in order:
                if key in candidates:
                    return key
        return self.scheduler.pick(candidates)

    def _worker_loop(self) -> None:
        while True:
            with self._lock:
                while (
                    not any(lane.intake for lane in self._lanes.values())
                    and not self._closed
                ):
                    due = self._due()
                    if due is not None and due <= 0:
                        break
                    self._arrived.wait(timeout=due)
                grabbed = self._grab_locked()
                closing = self._closed and not grabbed
                abort = self._abort
            if abort:
                self._abort_pending(grabbed)
                return
            self._ingest(grabbed)
            # service: one block per scheduler pick, re-grabbing new
            # arrivals between blocks so an interactive burst preempts a
            # bulk backlog at block granularity instead of waiting out a
            # whole registration-order sweep
            while True:
                candidates, reasons = self._candidates(drain=closing)
                if not candidates:
                    break
                key = self._pick(candidates)
                with self._lock:
                    lane = self._lanes[key]
                reason = reasons[key]
                self._run_guarded(
                    lane.model, lane, lambda: lane.batcher.flush_one(reason=reason)
                )
                if not lane.batcher.pending_requests:
                    self.scheduler.reset(key)
                with self._lock:
                    grabbed = self._grab_locked()
                    abort = self._abort
                if abort:
                    self._abort_pending(grabbed)
                    return
                self._ingest(grabbed)
            if closing:
                with self._lock:
                    abort = self._abort
                if abort:
                    self._abort_pending([])
                return

    def _run_guarded(self, model: str, lane: _AsyncLane, fn) -> None:
        """Execute blocks for one lane, then enforce the byte budget."""
        t0 = time.perf_counter()
        ran = False
        try:
            ran = bool(fn())
        except Exception:
            # the batcher routed the exception to the failing block's
            # tickets before re-raising; _sweep hands it to producers
            ran = True
        finally:
            self._exec_seconds += time.perf_counter() - t0
        self._sweep(lane)
        if ran:
            self.registry.touch(model)
            self.registry.enforce(protect={model})

    def _sweep(self, lane: _AsyncLane) -> None:
        """Resolve the lane's inflight prefix whose inner tickets are done."""
        now = self.clock()
        tracker = self.registry.slo_tracker(lane.model)
        while lane.inflight and lane.inflight[0].inner.done:
            ticket = lane.inflight.popleft()
            ticket._resolve(now, error=ticket.inner.error)
            # SLO accounting uses the outer ticket: its latency includes
            # the intake wait the inner (batcher) ticket cannot see
            if tracker is not None:
                try:
                    tracker.record_ticket(ticket, model=lane.model)
                except Exception:  # pragma: no cover - obs must not kill the worker
                    pass

    def _abort_pending(self, grabbed) -> None:
        """Fail everything unfinished across every lane."""
        now = self.clock()
        error = ServeClosedError("router aborted before this request executed")
        for lane, items in grabbed:
            self._sweep(lane)
            for ticket in items:
                ticket._resolve(now, error=error)
        with self._lock:
            leftovers = []
            for lane in self._lanes.values():
                self._sweep(lane)
                while lane.inflight:
                    lane.inflight.popleft()._resolve(now, error=error)
                leftovers.extend(lane.intake)
                lane.intake.clear()
            self._space.notify_all()
        for ticket in leftovers:
            ticket._resolve(now, error=error)

    # ------------------------------------------------------------- metrics
    @property
    def exec_seconds(self) -> float:
        return self._exec_seconds

    def stats(self) -> dict:
        return {
            "registry": self.registry.stats(),
            "on_full": self.on_full,
            "closed": self._closed,
            "exec_seconds": self._exec_seconds,
            "qos": {
                "policy": self.policy,
                "scheduler": self.scheduler.stats(),
                "admission": (
                    self.admission.stats() if self.admission is not None else None
                ),
            },
            "lanes": {
                _lane_label(model, stream): lane.batcher.stats()
                for (model, stream), lane in self._lanes.items()
            },
        }
