"""Persistent engine sessions (warm serving, SparseDNN-style).

A cold inference call pays for everything every time: engine construction,
lazy ELL/dense weight-view builds, per-layer strategy derivation, and fresh
``(N, B)`` output allocations on every layer.  :class:`EngineSession` keeps
all of that warm across calls — it owns one :class:`~repro.network.
SparseNetwork`, pre-builds and pins the per-layer weight views, memoizes the
champion strategy per (layer, live-fraction bucket), and recycles output
buffers through a :class:`~repro.gpu.memory.BufferPool` — so the conversion
cost SNICIT pays at inference time is amortized over a long request stream,
the regime where compression at inference time actually wins (PAPER §3).
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.config import SNICITConfig
from repro.core.plan import bake_plan
from repro.core.reuse import CentroidCache
from repro.gpu.device import VirtualDevice
from repro.gpu.memory import BufferPool
from repro.harness.runner import make_engine
from repro.inference import InferenceResult
from repro.kernels import DENSE_WEIGHT_THRESHOLD, StrategyMemo
from repro.network import SparseNetwork
from repro.obs import MetricsRegistry, as_tracer

__all__ = ["EngineSession"]


class EngineSession:
    """A warm, reusable engine bound to one network.

    Parameters
    ----------
    network:
        The sparse DNN to serve.
    config:
        SNICIT parameters (required for ``kind='snicit'``).
    kind:
        Engine name as accepted by :func:`repro.harness.runner.make_engine`.
    device:
        Shared virtual device; a fresh one by default so the session's cost
        ledger spans its whole lifetime.
    warm:
        Pre-build the per-layer ELL/dense weight views at construction
        (``warmup_seconds`` records the cost).  With ``False`` the views are
        still built lazily on first use, as before.
    memo_buckets:
        Live-fraction quantization of the strategy memo.
    tracer:
        Optional :class:`~repro.obs.Tracer`; every request the session runs
        then emits a request -> stage -> layer -> kernel span tree.  Default
        is the shared no-op tracer.
    metrics:
        Optional :class:`~repro.obs.MetricsRegistry` to share with other
        sessions or a server; a private registry is created by default.  The
        session's lifetime counters (calls, columns, busy/warmup seconds,
        per-stage seconds) live on the registry; ``self.calls`` etc. read
        through to it.
    name:
        Tenant identity for multi-model serving.  When set, every metric
        the session (and its memo/pool/cache/engine) publishes goes through
        ``metrics.labeled(model=name)`` — two sessions sharing one registry
        then scrape as ``memo_hits_total{model="a"}`` vs ``{model="b"}``
        instead of conflating into one unlabeled series (and stacking
        ``on_collect`` gauges where the last writer wins).  Unnamed
        sessions keep the legacy unlabeled series.
    centroid_reuse:
        Carry layer-``t`` centroids across consecutive blocks through a
        :class:`~repro.core.reuse.CentroidCache` (SNICIT engines only):
        same-mix blocks then convert assign-only, skipping sample pruning
        and the centroid feed-forward.  Off by default — reuse changes
        numerics whenever residue pruning is on, so it is an explicit
        serving-policy decision.
    reuse_tolerance:
        Staleness budget forwarded to the cache: a reused block is admitted
        while its assignment distance / residue density stay within
        ``baseline * (1 + tolerance)``.
    revise_ratio:
        Enable the memo's measure-and-revise loop: when a strategy bucket's
        observed cost EWMA drifts past ``baseline * revise_ratio``, the
        memoized choice is dropped and the champion tournament (or the baked
        plan's layer decision) re-runs.  ``None`` (default) keeps the legacy
        replay-first-decision behavior; costs are still recorded either way
        so :meth:`save_warm_state` persists the baselines.
    """

    def __init__(
        self,
        network: SparseNetwork,
        config: SNICITConfig | None = None,
        kind: str = "snicit",
        device: VirtualDevice | None = None,
        warm: bool = True,
        memo_buckets: int = 16,
        tracer=None,
        metrics: MetricsRegistry | None = None,
        centroid_reuse: bool = False,
        reuse_tolerance: float = 0.5,
        revise_ratio: float | None = None,
        name: str | None = None,
    ):
        self.network = network
        self.kind = kind
        self.name = name
        self.device = device or VirtualDevice()
        self.tracer = as_tracer(tracer)
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        #: the session's metric surface: a per-tenant labeled view when
        #: named, the raw registry otherwise (legacy unlabeled series)
        self.scoped = self.metrics.labeled(model=name) if name is not None else self.metrics
        self.memo = StrategyMemo(
            memo_buckets, revise_ratio=revise_ratio
        ).bind_metrics(self.scoped)
        self.scratch = BufferPool().bind_metrics(self.scoped)
        self.reuse = (
            CentroidCache(tolerance=reuse_tolerance).bind_metrics(self.scoped)
            if centroid_reuse and kind == "snicit"
            else None
        )
        self.engine = make_engine(
            kind,
            network,
            snicit_config=config,
            memo=self.memo,
            scratch=self.scratch,
            tracer=self.tracer,
            metrics=self.scoped,
            reuse=self.reuse,
        )
        self._c_calls = self.scoped.counter(
            "session_calls_total", help="inference calls served by this session"
        )
        self._c_columns = self.scoped.counter(
            "session_columns_total", help="input columns pushed through the engine"
        )
        self._c_busy = self.scoped.counter(
            "session_busy_seconds_total", help="wall seconds inside engine.infer"
        )
        self._c_warmup = self.scoped.counter(
            "session_warmup_seconds_total", help="wall seconds building weight views"
        )
        # streaming view of per-block engine time: "how slow are blocks right
        # now" for the scrape endpoint, next to the lifetime busy counter
        self._w_block = self.scoped.window(
            "session_block_seconds",
            help="sliding-window wall seconds per engine.infer call",
        )
        #: per-stage counters, resolved once per stage name instead of a
        #: labelled registry lookup on every call
        self._stage_counters: dict[str, object] = {}
        #: baked per-layer strategy plan (SNICIT engines, set by warmup)
        self.plan = None
        #: True while the session holds warm state (views pinned / warmup run)
        self.warmed = False
        #: how the warm state was obtained: 'baked' (warmup ran here),
        #: 'artifact' (restored via load_warm_state), or None while cold
        self.warm_source: str | None = None
        if warm:
            self.warmup()

    # ----------------------------------------------------- registry-backed
    @property
    def calls(self) -> int:
        return int(self._c_calls.value)

    @property
    def columns(self) -> int:
        return int(self._c_columns.value)

    @property
    def busy_seconds(self) -> float:
        return self._c_busy.value

    @property
    def warmup_seconds(self) -> float:
        return self._c_warmup.value

    @property
    def stage_seconds(self) -> dict[str, float]:
        """Cumulative engine seconds per stage, read from the registry."""
        return {
            labels["stage"]: metric.value
            for labels, metric in self.scoped.series("session_stage_seconds_total")
        }

    # ------------------------------------------------------------ lifecycle
    def warmup(self) -> float:
        """Bake the per-layer strategy plan and pin its weight views.

        For SNICIT engines the session bakes a
        :class:`~repro.core.plan.StrategyPlan` — each layer's kernel
        strategy and sparse format decided once, views pinned, metric
        counters pre-resolved — and hands it to the engine, so the per-block
        spMM path is a table lookup instead of a memo consult.  Other engine
        kinds keep the view-pinning half (build ELL/dense eagerly rather
        than charging the first request for the lazy conversion).
        """
        t0 = time.perf_counter()
        net = self.network
        with self.tracer.span("session.warmup", cat="serve", network=net.name):
            if self.kind == "snicit":
                self.plan = bake_plan(net, metrics=self.scoped)
                if self.memo.revise_ratio is not None:
                    self.plan.enable_revision(self.memo)
                self.engine.plan = self.plan
            else:
                for i, layer in enumerate(net.layers):
                    if layer.weight.density >= DENSE_WEIGHT_THRESHOLD:
                        net.dense(i)
                    else:
                        net.ell(i)
        self._c_warmup.inc(time.perf_counter() - t0)
        self.warmed = True
        self.warm_source = "baked"
        return self.warmup_seconds

    def save_warm_state(self, path: str) -> dict:
        """Persist this session's warm state as a fingerprint-keyed artifact.

        See :mod:`repro.core.warmstore` for the format and its invariants.
        Returns the save manifest (size, view/memo/cache entry counts).
        """
        from repro.core.warmstore import save_warm_state

        return save_warm_state(self, path)

    def load_warm_state(self, path: str) -> dict:
        """Boot warm from a saved artifact instead of running :meth:`warmup`.

        Restores pinned views, the baked plan, memo choices with their cost
        baselines, and centroid-cache fills — after verifying the artifact's
        network fingerprint, engine kind, and format version.  The load time
        lands on the same ``session_warmup_seconds_total`` counter a baked
        warmup uses, so ``warmup_seconds`` stays the honest "cost to get
        warm" number either way.  Returns the load manifest.
        """
        from repro.core.warmstore import load_warm_state

        t0 = time.perf_counter()
        with self.tracer.span(
            "session.load_warm_state", cat="serve", network=self.network.name
        ):
            manifest = load_warm_state(self, path)
        self._c_warmup.inc(time.perf_counter() - t0)
        self.warmed = True
        self.warm_source = "artifact"
        return manifest

    def retained_nbytes(self) -> int:
        """Warm-state footprint: scratch pool + pinned views + cached centroids.

        This is the number a :class:`~repro.gpu.memory.MemoryBudget` accounts
        for the session, and exactly what :meth:`demote` releases.
        """
        total = self.scratch.nbytes + self.network.view_nbytes()
        if self.reuse is not None:
            total += self.reuse.nbytes
        return total

    def demote(self) -> int:
        """Warm-to-cold demotion: release retained state, keep the session.

        Drops the scratch pool, the pinned weight views, and any cached
        conversions; returns the bytes freed.  Correctness is untouched —
        pool contents are unspecified by contract, views rebuild bitwise
        identically from the CSR source of truth, and a cold centroid cache
        just means the next block pays a full conversion again.  The session
        keeps serving (lazily re-warming on demand); call :meth:`warmup` to
        re-pin eagerly.
        """
        freed = self.scratch.clear()
        freed += self.network.drop_views()
        if self.reuse is not None and len(self.reuse):
            freed += self.reuse.nbytes
            self.reuse.invalidate(reason="evicted")
        # drop the baked plan too: its layer table points at the released
        # views, and a demoted session should re-decide at the next warmup
        self.plan = None
        if getattr(self.engine, "plan", None) is not None:
            self.engine.plan = None
        self.warmed = False
        self.warm_source = None
        return freed

    # ------------------------------------------------------------- serving
    def run(self, y0: np.ndarray) -> InferenceResult:
        """One inference call on the warm engine, with counter accounting."""
        t0 = time.perf_counter()
        result = self.engine.infer(y0)
        elapsed = time.perf_counter() - t0
        self._c_busy.inc(elapsed)
        self._w_block.observe(elapsed, columns=y0.shape[1])
        self._c_calls.inc()
        self._c_columns.inc(y0.shape[1])
        for stage, seconds in result.stage_seconds.items():
            counter = self._stage_counters.get(stage)
            if counter is None:
                counter = self._stage_counters[stage] = self.scoped.counter(
                    "session_stage_seconds_total",
                    help="cumulative engine seconds per pipeline stage",
                    stage=stage,
                )
            counter.inc(seconds)
        return result

    # ------------------------------------------------------------- metrics
    def stats(self) -> dict:
        """Lifetime counters: call/column throughput and per-stage seconds."""
        out = {
            "engine": self.kind,
            "network": self.network.name,
            "model": self.name,
            "warmed": self.warmed,
            "warm_source": self.warm_source,
            "retained_nbytes": self.retained_nbytes(),
            "calls": self.calls,
            "columns": self.columns,
            "warmup_seconds": self.warmup_seconds,
            "busy_seconds": self.busy_seconds,
            "columns_per_second": (
                self.columns / self.busy_seconds if self.busy_seconds > 0 else 0.0
            ),
            "stage_seconds": dict(self.stage_seconds),
            "plan": self.plan.stats() if self.plan is not None else None,
            "memo": self.memo.stats(),
            "scratch": self.scratch.stats(),
        }
        if self.reuse is not None:
            out["centroid_cache"] = self.reuse.stats()
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"EngineSession({self.kind!r}, {self.network.name!r}, "
            f"calls={self.calls}, columns={self.columns})"
        )
