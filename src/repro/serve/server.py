"""Synchronous inference server: bounded queue + micro-batched execution.

:class:`InferenceServer` is the single-threaded serving loop of the repo's
north star: requests enter a bounded queue, the :class:`~repro.serve.
batcher.MicroBatcher` packs them into blocks for a warm
:class:`~repro.serve.session.EngineSession`, and overflow is rejected with
:class:`~repro.errors.ServeOverflowError` — a client always learns its
request's fate.  ``serve`` runs a whole request stream and returns a report
with per-request latencies and throughput, which ``python -m repro serve``
prints and ``bench-serve`` records.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.errors import ServeOverflowError
from repro.obs.export import json_safe
from repro.serve.batcher import MicroBatcher, Ticket
from repro.serve.session import EngineSession

__all__ = ["InferenceServer", "ServeReport"]


@dataclass
class ServeReport:
    """Outcome of serving one request stream."""

    served: list[Ticket] = field(default_factory=list)
    #: (stream index, error message) per rejected request — never silent
    rejected: list[tuple[int, str]] = field(default_factory=list)
    wall_seconds: float = 0.0

    @property
    def requests(self) -> int:
        return len(self.served) + len(self.rejected)

    @property
    def columns(self) -> int:
        return sum(t.columns for t in self.served)

    @property
    def requests_per_second(self) -> float:
        return len(self.served) / self.wall_seconds if self.wall_seconds > 0 else 0.0

    @property
    def columns_per_second(self) -> float:
        return self.columns / self.wall_seconds if self.wall_seconds > 0 else 0.0

    @property
    def status(self) -> str:
        """``'ok'``, ``'all_rejected'``, or ``'no_traffic'``.

        A zero ``requests_per_second`` is ambiguous on its own: an idle
        stream and a stream shed entirely by backpressure both report 0.0.
        The status names which one happened, so dashboards and tests can
        tell "nothing arrived" from "everything was turned away".
        """
        if self.requests == 0:
            return "no_traffic"
        if not self.served:
            return "all_rejected"
        return "ok"

    def latency_quantiles(self, qs=(0.5, 0.95, 0.99, 1.0)) -> dict[str, float] | None:
        """Latency quantiles of served requests; ``None`` when none served
        (an all-rejected or idle stream has no latencies, not zero ones)."""
        if not self.served:
            return None
        lat = np.array([t.latency_seconds for t in self.served])
        return {f"p{int(q * 100)}": float(np.quantile(lat, q)) for q in qs}

    def summary(self) -> dict:
        return {
            "status": self.status,
            "requests": self.requests,
            "served": len(self.served),
            "rejected": len(self.rejected),
            "columns": self.columns,
            "wall_seconds": self.wall_seconds,
            "requests_per_second": self.requests_per_second,
            "columns_per_second": self.columns_per_second,
            "latency_seconds": self.latency_quantiles(),
        }

    def to_json(self) -> dict:
        """:meth:`summary` with every value coerced JSON-serializable.

        The quantiles come out of ``np.quantile`` as numpy scalars; this is
        the path report consumers (bench records, the ``/slo`` endpoint)
        must use before ``json.dumps``.
        """
        return json_safe(self.summary())


class InferenceServer:
    """Bounded-queue synchronous serving loop over one warm session."""

    def __init__(
        self,
        session: EngineSession,
        max_batch: int = 256,
        max_wait_s: float = 0.002,
        queue_limit: int = 1024,
        clock=time.monotonic,
    ):
        self.session = session
        self.tracer = session.tracer
        self.metrics = session.metrics
        # per-tenant labeled view when the session is named (multi-model)
        self.scoped = getattr(session, "scoped", None) or session.metrics
        self.batcher = MicroBatcher(
            session,
            max_batch=max_batch,
            max_wait_s=max_wait_s,
            max_pending=queue_limit,
            clock=clock,
        )
        self._c_overflow = self.scoped.counter(
            "server_overflow_total", help="requests the serve loop turned into rejections"
        )

    # ------------------------------------------------------------- serving
    def submit(self, y0: np.ndarray) -> Ticket:
        """Enqueue one request; raises on overflow (the queue is bounded)."""
        with self.tracer.span("request.submit", cat="serve"):
            return self.batcher.submit(y0)

    def step(self) -> int:
        """One loop iteration: flush if the oldest request waited too long."""
        return self.batcher.poll()

    def drain(self) -> int:
        """Flush every pending request (shutdown / end of stream)."""
        return self.batcher.drain()

    def serve(self, requests, interarrivals=None) -> ServeReport:
        """Run a request stream to completion.

        ``requests`` yields ``(input_dim, k)`` blocks.  Overflowing requests
        are recorded as rejections with their error message; everything else
        resolves by the time the report is returned.

        ``interarrivals`` (optional, one float per request) makes the stream
        open-loop: the loop sleeps that long *before* each submit, modeling
        client arrival gaps.  The synchronous loop cannot overlap those gaps
        with block execution — that is exactly what the async transport's
        A/B in ``bench-serve`` measures against.
        """
        report = ServeReport()
        gaps = iter(interarrivals) if interarrivals is not None else None
        t0 = time.perf_counter()
        with self.tracer.span("serve.stream", cat="serve") as stream_span:
            for index, y0 in enumerate(requests):
                if gaps is not None:
                    time.sleep(next(gaps, 0.0))
                try:
                    report.served.append(self.submit(y0))
                except ServeOverflowError as exc:
                    report.rejected.append((index, str(exc)))
                    self._c_overflow.inc()
                    self.tracer.event("request.rejected", index=index)
                self.step()
            self.drain()
            stream_span.set(
                requests=report.requests,
                served=len(report.served),
                rejected=len(report.rejected),
            )
        report.wall_seconds = time.perf_counter() - t0
        return report

    # ------------------------------------------------------------- metrics
    def stats(self) -> dict:
        return {
            "session": self.session.stats(),
            "batcher": self.batcher.stats(),
            "metrics": self.metrics.snapshot(),
        }
