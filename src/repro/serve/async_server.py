"""Asynchronous serving transport: arrivals overlap block execution.

:class:`~repro.serve.server.InferenceServer` is a single-threaded loop —
while a block runs, no new request can even enter the queue, so the
``max_wait_s`` deadline of the :class:`~repro.serve.batcher.MicroBatcher`
never fires and arrival time is pure dead time.  The paper's serving story
(and At-Scale 2020's transfer/compute stream overlap) wants the opposite:
the engine busy while the next block accumulates.

:class:`AsyncInferenceServer` splits the two sides across threads:

* **producers** call :meth:`~AsyncInferenceServer.submit` from any thread;
  it enqueues into a bounded intake queue and returns a future-like
  :class:`AsyncTicket` immediately.  A full queue either rejects with
  :class:`~repro.errors.ServeOverflowError` (``on_full='reject'``, the
  synchronous server's semantics) or blocks the producer until space frees
  (``on_full='block'``);
* **one consumer worker** drains the intake into the ``MicroBatcher``,
  which packs blocks and executes them on the warm
  :class:`~repro.serve.session.EngineSession`.  New arrivals land in the
  intake *while* a block runs — the max-wait flush path becomes
  load-bearing, and the overlap fraction (worker-busy seconds over wall
  seconds) is an explicit metric.

Failure routing: a block that raises mid-execution resolves exactly the
tickets that rode in it with that exception (the server stays serviceable);
:meth:`~AsyncInferenceServer.close` either drains every accepted ticket
(``drain=True``) or aborts, resolving the not-yet-run remainder with
:class:`~repro.errors.ServeClosedError` — accepted requests always resolve,
one way or the other.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigError, ServeClosedError, ServeOverflowError
from repro.inference import sdgc_categories
from repro.serve.batcher import MicroBatcher, Ticket
from repro.serve.server import ServeReport
from repro.serve.session import EngineSession

__all__ = [
    "AsyncInferenceServer",
    "AsyncServeReport",
    "AsyncTicket",
    "BACKPRESSURE_POLICIES",
]

#: what ``submit`` does on a full intake queue
BACKPRESSURE_POLICIES = ("reject", "block")


class AsyncTicket:
    """Future-like handle for one request accepted by the async server.

    Producers hold it; the worker thread resolves it exactly once — with the
    request's output slice, with the exception that killed its block, or
    with :class:`~repro.errors.ServeClosedError` on an aborted shutdown.
    """

    __slots__ = (
        "y0", "index", "submitted_at", "dequeued_at", "completed_at",
        "inner", "_error", "_done", "_resolutions",
    )

    def __init__(self, y0: np.ndarray, submitted_at: float, index: int = 0):
        self.y0 = y0
        #: arrival order within this server (0-based)
        self.index = index
        self.submitted_at = submitted_at
        #: when the worker pulled it off the intake queue
        self.dequeued_at: float | None = None
        self.completed_at: float | None = None
        #: the batcher's inner ticket, once the worker enqueued the request
        self.inner: Ticket | None = None
        self._error: BaseException | None = None
        self._done = threading.Event()
        #: times the worker resolved this ticket (the invariant is == 1)
        self._resolutions = 0

    # ------------------------------------------------------------ producer
    @property
    def columns(self) -> int:
        return self.y0.shape[1]

    @property
    def done(self) -> bool:
        return self._done.is_set()

    @property
    def ready(self) -> bool:
        return self.done and self._error is None

    @property
    def failed(self) -> bool:
        return self._error is not None

    @property
    def exception(self) -> BaseException | None:
        return self._error

    def wait(self, timeout: float | None = None) -> bool:
        """Block until resolved (or ``timeout`` seconds); True when done."""
        return self._done.wait(timeout)

    def result(self, timeout: float | None = None) -> np.ndarray:
        """Block for and return this request's output slice ``Y(l)``.

        Raises the block's exception if execution failed, TimeoutError if
        the ticket is still unresolved after ``timeout`` seconds.
        """
        if not self._done.wait(timeout):
            raise TimeoutError(f"request {self.index} unresolved after {timeout}s")
        if self._error is not None:
            raise self._error
        return self.inner.y

    @property
    def y(self) -> np.ndarray:
        """Non-blocking output access (same contract as the sync Ticket)."""
        if self._error is not None:
            raise self._error
        if not self.done:
            raise ServeOverflowError(
                "ticket not resolved yet; wait() on it or close(drain=True) the server"
            )
        return self.inner.y

    @property
    def categories(self) -> np.ndarray:
        return sdgc_categories(self.y)

    @property
    def batch_columns(self) -> int | None:
        return self.inner.batch_columns if self.inner is not None else None

    @property
    def latency_seconds(self) -> float:
        """Submit-to-resolve wall time (includes the intake-queue wait)."""
        if self.completed_at is None:
            raise ServeOverflowError("ticket not resolved yet")
        return self.completed_at - self.submitted_at

    @property
    def queue_wait_seconds(self) -> float:
        """Time spent in the intake queue before the worker picked it up."""
        if self.dequeued_at is None:
            raise ServeOverflowError("ticket not dequeued yet")
        return self.dequeued_at - self.submitted_at

    @property
    def aid(self) -> int | None:
        """The inner ticket's async-trace span id (None before enqueue)."""
        return self.inner.aid if self.inner is not None else None

    def breakdown(self) -> dict:
        """Latency attribution, intake wait included.

        The inner :class:`~repro.serve.batcher.Ticket` knows batch wait,
        block execute time, and per-stage seconds; this transport adds the
        producer-side component it alone can see — ``queue_wait_seconds``,
        the time between :meth:`~AsyncInferenceServer.submit` and the worker
        pulling the request off the intake queue.
        """
        out = self.inner.breakdown() if self.inner is not None else {}
        out["queue_wait_seconds"] = (
            self.dequeued_at - self.submitted_at
            if self.dequeued_at is not None else None
        )
        return out

    # -------------------------------------------------------------- worker
    def _resolve(self, now: float, error: BaseException | None = None) -> None:
        """Worker-side completion; must fire exactly once per ticket."""
        self._resolutions += 1
        if self._resolutions > 1:  # pragma: no cover - guarded invariant
            raise ServeClosedError(
                f"ticket {self.index} resolved {self._resolutions} times"
            )
        self._error = error
        self.completed_at = now
        self._done.set()


@dataclass
class AsyncServeReport(ServeReport):
    """Outcome of one open-loop stream through the async transport.

    Extends :class:`~repro.serve.server.ServeReport` with the overlap
    accounting: ``exec_seconds`` is the time the worker spent packing and
    executing blocks, ``arrival_seconds`` the injected interarrival sleep.
    ``overlap_fraction`` near 1.0 means the engine stayed busy for the whole
    stream — arrivals were fully hidden behind execution; near 0.0 means the
    worker mostly waited for traffic.
    """

    #: (stream index, error message) per accepted-then-failed request
    failed: list[tuple[int, str]] = field(default_factory=list)
    exec_seconds: float = 0.0
    arrival_seconds: float = 0.0

    @property
    def overlap_fraction(self) -> float:
        return self.exec_seconds / self.wall_seconds if self.wall_seconds > 0 else 0.0

    @property
    def status(self) -> str:
        if self.requests == 0:
            return "no_traffic"
        if not self.served:
            return "all_rejected" if not self.failed else "all_failed"
        return "ok"

    @property
    def requests(self) -> int:
        return len(self.served) + len(self.rejected) + len(self.failed)

    def summary(self) -> dict:
        out = super().summary()
        out["failed"] = len(self.failed)
        out["exec_seconds"] = self.exec_seconds
        out["arrival_seconds"] = self.arrival_seconds
        out["overlap_fraction"] = self.overlap_fraction
        return out


class AsyncInferenceServer:
    """Threaded serving front end over one warm session.

    Parameters
    ----------
    session:
        The warm :class:`~repro.serve.session.EngineSession` (or any object
        with ``network``/``run``/``tracer``/``metrics``) blocks execute on.
    max_batch / max_wait_s:
        Forwarded to the :class:`~repro.serve.batcher.MicroBatcher`.  Under
        this transport ``max_wait_s`` is load-bearing: a partial block
        flushes once its oldest request ages past the deadline, even when no
        further arrival ever comes.
    queue_limit:
        Bound of the producer-side intake queue (requests).
    on_full:
        ``'reject'`` raises :class:`~repro.errors.ServeOverflowError` on a
        full queue (the synchronous server's semantics); ``'block'`` parks
        the producer until the worker frees space or the server closes.
    clock:
        Timestamp source for ticket latencies (``time.monotonic`` default).
    """

    def __init__(
        self,
        session: EngineSession,
        max_batch: int = 256,
        max_wait_s: float = 0.002,
        queue_limit: int = 1024,
        on_full: str = "reject",
        clock=time.monotonic,
    ):
        if on_full not in BACKPRESSURE_POLICIES:
            raise ConfigError(
                f"unknown backpressure policy {on_full!r}; known: {BACKPRESSURE_POLICIES}"
            )
        self.session = session
        self.tracer = session.tracer
        self.metrics = session.metrics
        self.clock = clock
        self.queue_limit = int(queue_limit)
        self.on_full = on_full
        # the intake queue is the serving bound; the batcher's own cap only
        # backstops it (worker transfers then flushes, so its pending stays
        # around one block's worth of requests)
        self.batcher = MicroBatcher(
            session,
            max_batch=max_batch,
            max_wait_s=max_wait_s,
            max_pending=self.queue_limit + int(max_batch) + 1,
            clock=clock,
        )
        self._lock = threading.Lock()
        self._arrived = threading.Condition(self._lock)
        self._space = threading.Condition(self._lock)
        self._intake: deque[AsyncTicket] = deque()
        self._inflight: deque[AsyncTicket] = deque()  # worker-private
        self._closed = False
        self._abort = False
        self._accepted = 0
        self._exec_seconds = 0.0
        # per-tenant labeled view when the session is named (multi-model)
        metrics = getattr(session, "scoped", None) or self.metrics
        self._c_submitted = metrics.counter(
            "async_submitted_total", help="requests accepted into the intake queue"
        )
        self._c_rejected = metrics.counter(
            "async_rejected_total", help="requests rejected by intake backpressure"
        )
        self._c_failed = metrics.counter(
            "async_failed_total", help="accepted requests resolved with an exception"
        )
        self._c_resolved = metrics.counter(
            "async_resolved_total", help="tickets resolved back to their producers"
        )
        # sampled from both sides: producers set it on submit, the worker on
        # every intake transfer — either thread observing depth publishes it
        self._g_intake = metrics.gauge(
            "async_intake_depth", help="requests waiting in the intake queue"
        )
        self._g_overlap = metrics.gauge(
            "async_overlap_fraction",
            help="worker busy seconds / wall seconds since the server started",
        )
        self._started_at = time.perf_counter()
        self._worker = threading.Thread(
            target=self._worker_loop, name="repro-serve-worker", daemon=True
        )
        self._worker.start()

    # ------------------------------------------------------------- producer
    def submit(self, y0: np.ndarray) -> AsyncTicket:
        """Enqueue one ``(input_dim, k)`` request; returns immediately.

        Thread-safe.  Raises :class:`~repro.errors.ServeOverflowError` on a
        full queue under the ``'reject'`` policy and
        :class:`~repro.errors.ServeClosedError` once the server is closed
        (including producers woken from a ``'block'`` wait by shutdown).
        """
        # validate in the producer so shape errors surface synchronously,
        # before the request occupies queue space
        y0 = self.session.network.validate_input(np.asarray(y0))
        if y0.shape[1] < 1:
            from repro.errors import ShapeError

            raise ShapeError("a request needs at least one column")
        with self._lock:
            if self._closed:
                raise ServeClosedError("server is closed; request not accepted")
            if len(self._intake) >= self.queue_limit:
                if self.on_full == "reject":
                    self._c_rejected.inc()
                    self.tracer.event("async.rejected", depth=len(self._intake))
                    raise ServeOverflowError(
                        f"intake queue full ({self.queue_limit} requests); "
                        "request rejected"
                    )
                while len(self._intake) >= self.queue_limit and not self._closed:
                    self._space.wait()
                if self._closed:
                    raise ServeClosedError("server closed while waiting for queue space")
            ticket = AsyncTicket(y0, self.clock(), index=self._accepted)
            self._accepted += 1
            self._intake.append(ticket)
            self._g_intake.set(len(self._intake))
            self._c_submitted.inc()
            self.tracer.event(
                "async.submit", index=ticket.index, columns=ticket.columns,
                depth=len(self._intake),
            )
            self._arrived.notify()
        return ticket

    def close(self, drain: bool = True, timeout: float | None = None) -> bool:
        """Shut the transport down; returns True once the worker exited.

        ``drain=True`` runs every accepted request before stopping (no
        accepted ticket is lost); ``drain=False`` aborts — requests that
        have not started executing resolve with
        :class:`~repro.errors.ServeClosedError`.  Blocked producers are
        woken and raise.  Idempotent; an abort may follow a drain request
        but not the other way around.
        """
        with self._lock:
            self._closed = True
            if not drain:
                self._abort = True
            self._arrived.notify_all()
            self._space.notify_all()
        self._worker.join(timeout)
        self._publish_overlap()
        return not self._worker.is_alive()

    def __enter__(self) -> "AsyncInferenceServer":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close(drain=exc_type is None)

    # ------------------------------------------------------------ streaming
    def serve(self, requests, interarrivals=None) -> AsyncServeReport:
        """Submit an open-loop stream, drain, and report.

        ``interarrivals`` (one float per request, e.g. Poisson gaps from
        :func:`repro.serve.bench.poisson_interarrivals`) paces the stream:
        the submitting thread sleeps each gap while the worker keeps
        executing — the overlap the synchronous server cannot have.
        """
        report = AsyncServeReport()
        gaps = iter(interarrivals) if interarrivals is not None else None
        tickets: list[tuple[int, AsyncTicket]] = []
        t0 = time.perf_counter()
        for index, y0 in enumerate(requests):
            if gaps is not None:
                gap = float(next(gaps, 0.0))
                if gap > 0:
                    time.sleep(gap)
                report.arrival_seconds += gap
            try:
                tickets.append((index, self.submit(y0)))
            except (ServeOverflowError, ServeClosedError) as exc:
                report.rejected.append((index, str(exc)))
        self.close(drain=True)
        for index, ticket in tickets:
            if ticket.failed:
                report.failed.append((index, str(ticket.exception)))
            else:
                report.served.append(ticket)
        report.wall_seconds = time.perf_counter() - t0
        report.exec_seconds = self.exec_seconds
        return report

    # -------------------------------------------------------------- worker
    def _timed(self, fn) -> None:
        """Run one batcher operation, accounting its wall time as busy."""
        t0 = time.perf_counter()
        try:
            fn()
        finally:
            self._exec_seconds += time.perf_counter() - t0

    def _worker_loop(self) -> None:
        batcher = self.batcher
        while True:
            with self._lock:
                while not self._intake and not self._closed:
                    due = batcher.seconds_until_due()
                    if due is not None and due <= 0:
                        break
                    self._arrived.wait(timeout=due)
                items = list(self._intake)
                self._intake.clear()
                if items:
                    self._g_intake.set(0)
                    self._space.notify_all()
                closing = self._closed and not items
                abort = self._abort
            if abort:
                self._abort_pending(items)
                return
            now = self.clock()
            for ticket in items:
                ticket.dequeued_at = now
                try:
                    ticket.inner = batcher.enqueue(ticket.y0)
                except Exception as exc:
                    # cannot happen for validated requests under the sized
                    # batcher cap, but an accepted ticket must still resolve
                    ticket._resolve(self.clock(), error=exc)
                    self._c_failed.inc()
                    self._c_resolved.inc()
                    continue
                self._inflight.append(ticket)
                self._run_guarded(batcher.flush_full)
            self._run_guarded(batcher.poll)
            if closing:
                while batcher.pending_requests:
                    self._run_guarded(batcher.drain)
                with self._lock:
                    abort = self._abort
                if abort:
                    self._abort_pending([])
                self._sweep()
                return

    def _run_guarded(self, fn) -> None:
        """Execute blocks; exceptions are already routed to their tickets."""
        try:
            self._timed(fn)
        except Exception:
            # MicroBatcher marked every ticket of the failing block with the
            # exception before re-raising; _sweep below hands it to callers
            pass
        self._sweep()

    def _sweep(self) -> None:
        """Resolve every inflight ticket whose inner ticket is done.

        Blocks always pack the FIFO prefix of the pending queue, so
        done-ness is prefix-closed over ``_inflight``.
        """
        now = self.clock()
        while self._inflight and self._inflight[0].inner.done:
            ticket = self._inflight.popleft()
            error = ticket.inner.error
            ticket._resolve(now, error=error)
            self._c_resolved.inc()
            if error is not None:
                self._c_failed.inc()
            self.tracer.event(
                "async.resolve", index=ticket.index,
                outcome="failed" if error is not None else "served",
            )
        self._publish_overlap()

    def _abort_pending(self, items: list[AsyncTicket]) -> None:
        """Fail everything that has not finished: grabbed intake + inflight."""
        now = self.clock()
        error = ServeClosedError("server aborted before this request executed")
        self._sweep()  # anything that did finish still resolves normally
        for ticket in items:
            ticket._resolve(now, error=error)
            self._c_failed.inc()
            self._c_resolved.inc()
        while self._inflight:
            self._inflight.popleft()._resolve(now, error=error)
            self._c_failed.inc()
            self._c_resolved.inc()
        with self._lock:
            leftovers = list(self._intake)
            self._intake.clear()
            self._g_intake.set(0)
            self._space.notify_all()
        for ticket in leftovers:
            ticket._resolve(now, error=error)
            self._c_failed.inc()
            self._c_resolved.inc()

    # ------------------------------------------------------------- metrics
    @property
    def exec_seconds(self) -> float:
        """Worker seconds spent packing/executing blocks (the busy side)."""
        return self._exec_seconds

    @property
    def overlap_fraction(self) -> float:
        """Busy fraction of the server's lifetime so far."""
        wall = time.perf_counter() - self._started_at
        return self._exec_seconds / wall if wall > 0 else 0.0

    def _publish_overlap(self) -> None:
        self._g_overlap.set(self.overlap_fraction)

    def stats(self) -> dict:
        return {
            "accepted": self._accepted,
            "intake_depth": len(self._intake),
            "queue_limit": self.queue_limit,
            "on_full": self.on_full,
            "closed": self._closed,
            "exec_seconds": self.exec_seconds,
            "overlap_fraction": self.overlap_fraction,
            "session": self.session.stats() if hasattr(self.session, "stats") else {},
            "batcher": self.batcher.stats(),
        }
