"""Warm-session serving layer (toward the production north star).

Per-request engine construction wastes everything SNICIT amortizes: weight
views, strategy decisions, output buffers, and — above all — batch packing.
This package keeps one engine warm and feeds it well-packed blocks:

* :class:`~repro.serve.session.EngineSession` — a persistent engine wrapper
  pinning weight views, memoizing champion strategies, and recycling output
  buffers;
* :class:`~repro.serve.batcher.MicroBatcher` — bounded request packing with
  max-batch / max-wait flushing and per-request result splitting;
* :class:`~repro.serve.server.InferenceServer` — the synchronous serving
  loop with graceful overflow rejection;
* :class:`~repro.serve.async_server.AsyncInferenceServer` — the threaded
  transport: thread-safe ``submit`` returning a future-like
  :class:`~repro.serve.async_server.AsyncTicket`, a consumer worker that
  packs and executes blocks while new arrivals accumulate, reject/block
  backpressure, and drain/abort shutdown;
* :class:`~repro.serve.router.ModelRegistry` /
  :class:`~repro.serve.router.Router` / :class:`~repro.serve.router.
  AsyncRouter` — multi-network serving: named sessions behind one metrics
  registry (per-tenant ``{model=...}`` labels), per-tenant batcher lanes so
  blocks never mix tenants, per-tenant backpressure, and a process-wide
  :class:`~repro.gpu.memory.MemoryBudget` that demotes least-recently-served
  sessions warm-to-cold when the combined retained footprint exceeds it;
* :class:`~repro.serve.fleet.FleetDispatcher` — multi-process scale-out:
  N supervised worker processes (stdlib ``multiprocessing``, spawn-safe),
  each owning its own warm :class:`~repro.serve.router.ModelRegistry` behind
  an :class:`~repro.serve.router.AsyncRouter` loop; requests shard by
  *stream* (stable :func:`~repro.serve.fleet.stream_shard` hash) so every
  stream's packing order — and therefore its outputs, bitwise — matches a
  single process; crashed workers are restarted and their streams replayed,
  and per-worker reports/metrics/SLO merge into one
  :class:`~repro.serve.fleet.FleetReport` and one ``/metrics`` + ``/slo``
  scrape (``worker=`` label kept separable);
* :mod:`repro.serve.qos` — SLO-driven quality of service: per-tenant
  :class:`~repro.serve.qos.QosPolicy` (priority class + DWRR weight + token
  -bucket rate limit), the :class:`~repro.serve.qos.DeficitScheduler` both
  routers use to pick the next lane to flush (strict priority between
  classes, deficit-weighted round robin within one; FIFO *within* a lane is
  untouched, so per-stream outputs stay bitwise identical), and the
  :class:`~repro.serve.qos.AdmissionController` that sheds batch-class load
  (``ServeShedError``) under rate limits, queue pressure, SLO burn, or
  memory-budget pressure — before it can queue behind interactive traffic;
* :func:`~repro.serve.bench.bench_serve` — the tiered cold-vs-warm
  throughput benchmark behind ``python -m repro bench-serve``, including the
  centroid-reuse A/B pass, the open-loop sync-vs-async A/B, and the
  ``--scale-out`` fleet curve (wall + capacity speedups, crash-injection
  recovery record).

A session constructed with ``centroid_reuse=True`` additionally carries a
:class:`~repro.core.reuse.CentroidCache`, so consecutive same-mix blocks
skip sample pruning and the centroid feed-forward entirely (assign-only
conversion) until the staleness policy detects drift.

The whole stack is instrumented through :mod:`repro.obs`: the session owns a
:class:`~repro.obs.MetricsRegistry` (queue/batch/pool/memo/strategy series)
and an optional :class:`~repro.obs.Tracer` whose spans cover request
lifecycles, batch pack/execute/resolve, and every engine stage and kernel
underneath.
"""

from repro.serve.async_server import (
    BACKPRESSURE_POLICIES,
    AsyncInferenceServer,
    AsyncServeReport,
    AsyncTicket,
)
from repro.serve.batcher import MicroBatcher, Ticket
from repro.serve.bench import (
    DEFAULT_SCALE_OUT,
    DEFAULT_TIERS,
    MULTI_TIERS,
    STREAM_MODES,
    bench_serve,
    load_bench_records,
    poisson_interarrivals,
)
from repro.serve.fleet import (
    FleetDispatcher,
    FleetReport,
    FleetTicket,
    TenantSpec,
    WorkerCrashError,
    stream_shard,
)
from repro.serve.qos import (
    PRIORITY_CLASSES,
    AdmissionController,
    DeficitScheduler,
    QosPolicy,
    TokenBucket,
)
from repro.serve.router import AsyncRouter, ModelRegistry, Router, RouterReport
from repro.serve.server import InferenceServer, ServeReport
from repro.serve.session import EngineSession

__all__ = [
    "EngineSession",
    "ModelRegistry",
    "Router",
    "AsyncRouter",
    "RouterReport",
    "MicroBatcher",
    "Ticket",
    "InferenceServer",
    "ServeReport",
    "AsyncInferenceServer",
    "AsyncServeReport",
    "AsyncTicket",
    "BACKPRESSURE_POLICIES",
    "FleetDispatcher",
    "FleetReport",
    "FleetTicket",
    "TenantSpec",
    "WorkerCrashError",
    "stream_shard",
    "bench_serve",
    "load_bench_records",
    "poisson_interarrivals",
    "DEFAULT_SCALE_OUT",
    "DEFAULT_TIERS",
    "MULTI_TIERS",
    "STREAM_MODES",
    "QosPolicy",
    "TokenBucket",
    "DeficitScheduler",
    "AdmissionController",
    "PRIORITY_CLASSES",
]
