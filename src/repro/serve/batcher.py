"""Micro-batching: pack small requests into SNICIT-sized blocks.

SNICIT's compression stages amortize over the batch dimension — a lone
request of a few columns pays the full per-layer launch overhead that a
well-packed block shares across hundreds of columns.  :class:`MicroBatcher`
queues incoming requests, packs them into blocks of at most ``max_batch``
columns, runs each block through a warm :class:`~repro.serve.session.
EngineSession`, and splits the output back per request.

The batcher is synchronous and explicitly clocked: ``submit`` flushes as
soon as a full block is pending, ``poll`` flushes when the oldest request
has waited ``max_wait_s`` (callers drive it from their loop), and ``drain``
flushes everything.  The pending queue is bounded: past ``max_pending``
requests, ``submit`` raises :class:`~repro.errors.ServeOverflowError` —
rejected with an error, never dropped silently.

Packing is strictly FIFO: a block takes the longest *prefix* of the queue
that fits in ``max_batch`` columns, never skipping ahead to a narrower
request further back.  That is a deliberate head-of-line trade — reordering
would fill blocks better but break arrival-order latency fairness and make
per-request latency depend on *other* tenants' request widths.  The cost is
observable instead of hidden: when a block flushes under-filled while work
is still queued (the head did not fit), the batcher counts a ``hol_stall``
and the columns left empty, per tenant.
"""

from __future__ import annotations

import time
from collections import deque

import numpy as np

from repro.errors import ServeOverflowError, ShapeError
from repro.inference import InferenceResult, sdgc_categories
from repro.serve.session import EngineSession

__all__ = ["MicroBatcher", "Ticket"]


class Ticket:
    """Handle for one submitted request; resolves when its batch runs."""

    __slots__ = (
        "y0", "submitted_at", "completed_at", "batch_columns", "result", "_y", "aid",
        "error", "packed_at", "block_id", "execute_seconds", "stage_seconds",
    )

    def __init__(self, y0: np.ndarray, submitted_at: float, aid: int = 0):
        self.y0 = y0
        self.submitted_at = submitted_at
        self.completed_at: float | None = None
        #: total columns of the packed block this request rode in
        self.batch_columns: int | None = None
        #: the shared InferenceResult of that block
        self.result: InferenceResult | None = None
        self._y: np.ndarray | None = None
        #: async-trace id correlating this request's submit/resolve events
        self.aid = aid
        #: the exception that killed this request's block, if its run failed
        self.error: BaseException | None = None
        #: when this request was packed into a block (batch wait ends here)
        self.packed_at: float | None = None
        #: 1-based id of the block it rode in (matches the block's span args)
        self.block_id: int | None = None
        #: wall seconds the block spent inside ``session.run``
        self.execute_seconds: float | None = None
        #: the block's per-pipeline-stage seconds (shared across its tickets)
        self.stage_seconds: dict | None = None

    @property
    def columns(self) -> int:
        return self.y0.shape[1]

    @property
    def ready(self) -> bool:
        return self._y is not None

    @property
    def failed(self) -> bool:
        return self.error is not None

    @property
    def done(self) -> bool:
        """Resolved either way: output available or block execution failed."""
        return self.ready or self.failed

    @property
    def y(self) -> np.ndarray:
        """This request's slice of the block output ``Y(l)``."""
        if self.error is not None:
            raise self.error
        if self._y is None:
            raise ServeOverflowError("ticket not resolved yet; flush or drain the batcher")
        return self._y

    @property
    def categories(self) -> np.ndarray:
        return sdgc_categories(self.y)

    @property
    def latency_seconds(self) -> float:
        if self.completed_at is None:
            raise ServeOverflowError("ticket not resolved yet; flush or drain the batcher")
        return self.completed_at - self.submitted_at

    def breakdown(self) -> dict:
        """Where this request's latency went (tail-latency attribution).

        ``queue_wait_seconds`` is zero for the synchronous batcher — there
        is no intake queue in front of it; the async transport overrides it
        with the ticket's intake wait.  ``batch_wait_seconds`` is the time
        spent pending before a block packed it (the head-of-line component),
        ``execute_seconds`` the block's engine time, and ``stage_seconds``
        splits that by pipeline stage.
        """
        out: dict = {
            "queue_wait_seconds": 0.0,
            "batch_wait_seconds": (
                self.packed_at - self.submitted_at
                if self.packed_at is not None else None
            ),
            "execute_seconds": self.execute_seconds,
            "block_id": self.block_id,
            "batch_columns": self.batch_columns,
        }
        if self.stage_seconds is not None:
            out["stage_seconds"] = dict(self.stage_seconds)
        return out


class MicroBatcher:
    """Bounded synchronous request packer in front of an engine session."""

    def __init__(
        self,
        session: EngineSession,
        max_batch: int = 256,
        max_wait_s: float = 0.002,
        max_pending: int = 1024,
        clock=time.monotonic,
    ):
        if max_batch < 1:
            raise ShapeError(f"max_batch must be >= 1, got {max_batch}")
        if max_wait_s < 0:
            raise ShapeError(f"max_wait_s must be >= 0, got {max_wait_s}")
        if max_pending < 1:
            raise ShapeError(f"max_pending must be >= 1, got {max_pending}")
        self.session = session
        self.max_batch = int(max_batch)
        self.max_wait_s = float(max_wait_s)
        self.max_pending = int(max_pending)
        self.clock = clock
        self._pending: deque[Ticket] = deque()
        self._pending_cols = 0
        self._next_aid = 0
        self.counters = {
            "requests": 0,
            "rejected": 0,
            "failed": 0,
            "batches": 0,
            "batched_columns": 0,
            "wait_flushes": 0,
            "hol_stalls": 0,
            "hol_underfill_columns": 0,
            "timer_underfills": 0,
            "timer_underfill_columns": 0,
        }
        #: per-block centroid-reuse outcomes ('hit' / 'cold' / 'stale'),
        #: populated only when the session's engine carries a CentroidCache
        self.reuse_outcomes: dict[str, int] = {}
        # serving telemetry rides on the session's registry/tracer so one
        # scrape (or one trace file) covers queue, blocks, and kernels; a
        # named session hands back its per-tenant labeled view, so two
        # batchers over one registry stay separable per model
        self.tracer = session.tracer
        metrics = getattr(session, "scoped", None) or session.metrics
        self._c_requests = metrics.counter(
            "serve_requests_total", help="requests accepted into the pending queue"
        )
        self._c_rejected = metrics.counter(
            "serve_rejected_total", help="requests rejected on queue overflow"
        )
        self._c_failed = metrics.counter(
            "serve_failed_total", help="requests whose block raised during execution"
        )
        self._c_batches = metrics.counter(
            "serve_batches_total", help="blocks flushed to the engine session"
        )
        self._c_batched_columns = metrics.counter(
            "serve_batched_columns_total", help="columns packed into flushed blocks"
        )
        self._g_queue_depth = metrics.gauge(
            "serve_queue_depth", help="requests currently pending in the batcher"
        )
        self._g_queue_columns = metrics.gauge(
            "serve_queue_columns", help="columns currently pending in the batcher"
        )
        self._c_hol_stalls = metrics.counter(
            "serve_hol_stalls_total",
            help="under-filled blocks flushed because the FIFO head did not fit",
        )
        self._c_hol_underfill = metrics.counter(
            "serve_hol_underfill_columns_total",
            help="block columns left empty by FIFO head-of-line packing",
        )
        self._c_timer_underfill = metrics.counter(
            "serve_timer_underfill_columns_total",
            help="block columns left empty on latency-deadline flushes "
                 "(the head arrived late; nothing was refused)",
        )
        self._fill_buckets = (0.125, 0.25, 0.375, 0.5, 0.625, 0.75, 0.875, 1.0)
        self._metrics = metrics
        # per-flush handles, resolved once per label value instead of a
        # registry lookup on every block
        self._h_queue_wait = metrics.histogram(
            "serve_queue_wait_seconds",
            help="submit-to-resolve wait per request",
        )
        # streaming tail view: per-request latency over the last minute, so
        # a scrape reads "p99 right now" instead of a lifetime histogram
        self._w_latency = metrics.window(
            "serve_latency_seconds",
            help="sliding-window submit-to-resolve latency per request",
        )
        self._h_fill: dict[str, object] = {}
        self._c_reuse_blocks: dict[str, object] = {}
        #: optional per-ticket resolution hook (SLO trackers subscribe here);
        #: called with each resolved ticket, failures included.  Guarded —
        #: observability must never take the serving path down.
        self.on_resolve = None

    # -------------------------------------------------------------- intake
    @property
    def pending_requests(self) -> int:
        return len(self._pending)

    @property
    def pending_columns(self) -> int:
        return self._pending_cols

    def submit(self, y0: np.ndarray) -> Ticket:
        """Queue one request of shape ``(input_dim, k)``; may flush a block.

        Raises :class:`~repro.errors.ServeOverflowError` when the pending
        queue is full — the caller decides whether to retry, shed load, or
        surface the error to the client.
        """
        ticket = self.enqueue(y0)
        self.flush_full()
        return ticket

    def enqueue(self, y0: np.ndarray) -> Ticket:
        """:meth:`submit` minus the flush: queue the request, never run it.

        The async transport uses this to hold the ticket *before* any block
        executes, so a mid-block exception can still be routed to exactly
        the requests that rode in the failing block.
        """
        y0 = self.session.network.validate_input(np.asarray(y0))
        if y0.shape[1] < 1:
            raise ShapeError("a request needs at least one column")
        if len(self._pending) >= self.max_pending:
            self.counters["rejected"] += 1
            self._c_rejected.inc()
            raise ServeOverflowError(
                f"pending queue full ({self.max_pending} requests); request rejected"
            )
        self._next_aid += 1
        ticket = Ticket(y0, self.clock(), aid=self._next_aid)
        self._pending.append(ticket)
        self._pending_cols += ticket.columns
        self.counters["requests"] += 1
        self._c_requests.inc()
        self.tracer.begin_async("request", ticket.aid, columns=ticket.columns)
        self._update_queue_gauges()
        return ticket

    # ------------------------------------------------------------ flushing
    def flush_full(self) -> int:
        """Run blocks while a full ``max_batch`` of columns is pending."""
        n = 0
        while self._pending_cols >= self.max_batch:
            self._flush_batch(reason="full")
            n += 1
        return n
    def flush_one(self, reason: str = "full") -> int:
        """Run exactly one block; returns the columns it carried (0 if idle).

        The QoS lane scheduler flushes one block per pick so a
        higher-priority lane can preempt between blocks; ``reason`` labels
        the fill histogram exactly as :meth:`poll`/:meth:`drain` would.
        A ``'wait'`` flush counts toward ``wait_flushes`` per block.
        """
        if not self._pending:
            return 0
        if reason == "wait":
            self.counters["wait_flushes"] += 1
        before = self._pending_cols
        self._flush_batch(reason=reason)
        return before - self._pending_cols

    def seconds_until_due(self) -> float | None:
        """Seconds until the oldest pending request ages past ``max_wait_s``.

        ``None`` with nothing pending; zero or negative once a :meth:`poll`
        would flush.  The async worker sleeps at most this long between
        arrivals so the max-wait deadline holds without busy-polling.
        """
        if not self._pending:
            return None
        return self.max_wait_s - (self.clock() - self._pending[0].submitted_at)

    def poll(self) -> int:
        """Flush everything once the oldest request has waited long enough.

        Returns the number of blocks run.  Callers embed this in their
        serving loop; with a fake clock it is the max-wait unit test hook.
        """
        if not self._pending:
            return 0
        if self.clock() - self._pending[0].submitted_at < self.max_wait_s:
            return 0
        self.counters["wait_flushes"] += 1
        return self._drain(reason="wait")

    def drain(self) -> int:
        """Flush every pending request; returns the number of blocks run."""
        return self._drain(reason="drain")

    def _drain(self, reason: str) -> int:
        n = 0
        while self._pending:
            self._flush_batch(reason=reason)
            n += 1
        return n

    def _flush_batch(self, reason: str = "full") -> None:
        """Pack and run one block of at most ``max_batch`` columns.

        Always takes at least one request, so a single request wider than
        ``max_batch`` still runs (alone, as its own block).  ``reason`` is
        why the block flushed ('full', 'wait', or 'drain') and labels the
        occupancy histogram — a fleet of 'wait' flushes at low fill means
        the batcher is starved, 'full' at fill 1.0 means it is saturated.

        Packing takes the FIFO *prefix* that fits and stops at the first
        request that does not — it never searches past the head for a
        narrower request that would.  The forgone fill is head-of-line
        blocking, accepted for arrival-order fairness; each occurrence is
        counted (``hol_stalls``, ``hol_underfill_columns``) so mixed-width
        traffic can see what FIFO costs it.
        """
        tracer = self.tracer
        block_id = self.counters["batches"] + 1
        with tracer.span(
            "batch.pack", cat="serve", reason=reason, block_id=block_id
        ) as pack_span:
            take: list[Ticket] = [self._pending.popleft()]
            cols = take[0].columns
            while self._pending and cols + self._pending[0].columns <= self.max_batch:
                ticket = self._pending.popleft()
                take.append(ticket)
                cols += ticket.columns
            self._pending_cols -= cols
            packed_at = self.clock()
            for ticket in take:
                ticket.packed_at = packed_at
                ticket.block_id = block_id
            underfill = self.max_batch - cols
            if (
                self._pending
                and underfill > 0
                and cols + self._pending[0].columns > self.max_batch
            ):
                # under-filled with work still queued AND the head refused
                # to fit: that — and only that — is a head-of-line stall.
                # An under-filled deadline flush with an empty queue is the
                # head arriving late, not FIFO refusing anyone.
                self.counters["hol_stalls"] += 1
                self.counters["hol_underfill_columns"] += underfill
                self._c_hol_stalls.inc()
                self._c_hol_underfill.inc(underfill)
                pack_span.set(hol_underfill=underfill)
            elif reason == "wait" and underfill > 0 and not self._pending:
                # latency-flush underfill: the timer fired before traffic
                # filled the block — tracked separately so sparse traffic
                # does not inflate serve_hol_stalls_total
                self.counters["timer_underfills"] += 1
                self.counters["timer_underfill_columns"] += underfill
                self._c_timer_underfill.inc(underfill)
                pack_span.set(timer_underfill=underfill)
            block = take[0].y0 if len(take) == 1 else np.hstack([t.y0 for t in take])
            pack_span.set(requests=len(take), columns=cols)
        with tracer.span(
            "batch.execute", cat="serve", reason=reason, requests=len(take),
            columns=cols, block_id=block_id,
        ) as exec_span:
            exec_t0 = time.perf_counter()
            try:
                result = self.session.run(block)
            except Exception as exc:
                # the block died: its requests are already off the queue, so
                # route the failure to exactly these tickets and leave the
                # batcher serviceable for the next block
                execute_seconds = time.perf_counter() - exec_t0
                now = self.clock()
                for ticket in take:
                    ticket.error = exc
                    ticket.completed_at = now
                    ticket.execute_seconds = execute_seconds
                    tracer.end_async(
                        "request", ticket.aid, error=type(exc).__name__, reason=reason
                    )
                self.counters["failed"] += len(take)
                self._c_failed.inc(len(take))
                self._notify_resolved(take)
                self._update_queue_gauges()
                raise
            execute_seconds = time.perf_counter() - exec_t0
            reuse_info = result.stats.get("centroid_reuse") if result.stats else None
            if reuse_info is not None:
                outcome = "hit" if reuse_info.get("hit") else reuse_info.get("reason", "miss")
                self.reuse_outcomes[outcome] = self.reuse_outcomes.get(outcome, 0) + 1
                counter = self._c_reuse_blocks.get(outcome)
                if counter is None:
                    counter = self._c_reuse_blocks[outcome] = self._metrics.counter(
                        "serve_reuse_blocks_total",
                        help="blocks served by centroid-reuse outcome",
                        outcome=outcome,
                    )
                counter.inc()
                exec_span.set(centroid_reuse=outcome)
        with tracer.span("batch.resolve", cat="serve", requests=len(take)):
            now = self.clock()
            lo = 0
            for ticket in take:
                hi = lo + ticket.columns
                ticket._y = result.y[:, lo:hi]
                ticket.result = result
                ticket.batch_columns = cols
                ticket.completed_at = now
                ticket.execute_seconds = execute_seconds
                ticket.stage_seconds = result.stage_seconds
                tracer.end_async(
                    "request", ticket.aid, batch_columns=cols, reason=reason
                )
                lo = hi
        self.counters["batches"] += 1
        self.counters["batched_columns"] += cols
        self._c_batches.inc()
        self._c_batched_columns.inc(cols)
        fill_hist = self._h_fill.get(reason)
        if fill_hist is None:
            fill_hist = self._h_fill[reason] = self._metrics.histogram(
                "serve_batch_fill",
                buckets=self._fill_buckets,
                help="block occupancy as a fraction of max_batch, per flush reason",
                reason=reason,
            )
        fill_hist.observe(cols / self.max_batch)
        self._h_queue_wait.observe(now - take[0].submitted_at)
        for ticket in take:
            self._w_latency.observe(
                ticket.latency_seconds,
                columns=ticket.columns,
                exemplar={
                    "request_aid": ticket.aid,
                    "block_id": block_id,
                    "latency_seconds": ticket.latency_seconds,
                    "breakdown": ticket.breakdown(),
                },
            )
        self._notify_resolved(take)
        self._update_queue_gauges()

    def _notify_resolved(self, tickets: list[Ticket]) -> None:
        """Hand resolved tickets to the subscriber (SLO tracker), guarded."""
        if self.on_resolve is None:
            return
        for ticket in tickets:
            try:
                self.on_resolve(ticket)
            except Exception:  # pragma: no cover - observability must not break serving
                pass

    def _update_queue_gauges(self) -> None:
        self._g_queue_depth.set(len(self._pending))
        self._g_queue_columns.set(self._pending_cols)

    # ------------------------------------------------------------- metrics
    def stats(self) -> dict:
        """Packing counters plus the mean block fill against ``max_batch``."""
        batches = self.counters["batches"]
        mean_fill = (
            self.counters["batched_columns"] / (batches * self.max_batch)
            if batches
            else 0.0
        )
        out = {
            **self.counters,
            "pending_requests": self.pending_requests,
            "pending_columns": self.pending_columns,
            "max_batch": self.max_batch,
            "mean_fill": mean_fill,
        }
        if self.reuse_outcomes:
            out["reuse_blocks"] = dict(self.reuse_outcomes)
        return out
