"""Per-tenant QoS: priority classes, deficit-weighted service, admission control.

PR 7 landed the *measurement* half of per-tenant SLOs; this module is the
*control* half.  Three pieces compose, all deterministic (no wall-clock
reads beyond an injectable ``clock``) so schedulers built on them can be
driven by tests step-by-step:

* :class:`QosPolicy` — a tenant's declared class (``interactive`` beats
  ``batch``), its deficit-round-robin weight within the class, and an
  optional token-bucket rate limit in columns/second.
* :class:`TokenBucket` — the rate limiter.  ``rate_cols_per_s=0`` is a
  *hard quota*: the bucket starts with ``burst`` tokens and never refills,
  which gives benches a bit-exact admitted subsequence.
* :class:`DeficitScheduler` — deficit-weighted round robin over lanes with
  strict priority between classes: when any interactive lane has runnable
  work, no batch lane is picked.  Within the winning class, lanes are
  served in a rotating ring; a lane pays the block's column cost from its
  deficit and earns ``quantum * weight`` per grant round.  The scheduler
  only chooses *which lane flushes next* — FIFO order inside each lane is
  untouched, so per-stream block packing (and therefore per-stream
  outputs, bitwise) is identical to a solo run.
* :class:`AdmissionController` — sheds load *before* it enters a lane.
  Rate-limit sheds apply to the configured tenant regardless of class;
  pressure sheds (queue pressure, interactive SLO burn, memory budget)
  apply only to batch-class tenants — interactive traffic is never
  pressure-shed, it can only hit its own lane's hard overflow bound.
  Every shed raises :class:`~repro.errors.ServeShedError` (a
  :class:`~repro.errors.ServeOverflowError`), so existing reject handling
  counts it, and increments ``qos_shed_total{model=,reason=}``.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field

from repro.errors import ConfigError, ServeShedError

#: Priority classes in rank order — lower index is served first.
PRIORITY_CLASSES = ("interactive", "batch")

__all__ = [
    "PRIORITY_CLASSES",
    "QosPolicy",
    "TokenBucket",
    "DeficitScheduler",
    "AdmissionController",
]


@dataclass(frozen=True)
class QosPolicy:
    """A tenant's service class, DWRR weight, and optional rate limit.

    ``rate_cols_per_s=None`` means unlimited; ``0`` means a hard quota of
    ``burst_cols`` columns that never refills.  ``burst_cols`` defaults to
    one second of rate when a positive rate is set.
    """

    priority: str = "interactive"
    weight: float = 1.0
    rate_cols_per_s: float | None = None
    burst_cols: float | None = None

    def __post_init__(self) -> None:
        if self.priority not in PRIORITY_CLASSES:
            raise ConfigError(
                f"qos priority must be one of {PRIORITY_CLASSES}, "
                f"got {self.priority!r}"
            )
        if not (self.weight > 0.0) or not math.isfinite(self.weight):
            raise ConfigError(f"qos weight must be finite and > 0, got {self.weight}")
        if self.rate_cols_per_s is not None and not (self.rate_cols_per_s >= 0.0):
            raise ConfigError(
                f"qos rate_cols_per_s must be >= 0, got {self.rate_cols_per_s}"
            )
        if self.burst_cols is not None:
            if self.rate_cols_per_s is None:
                raise ConfigError("qos burst_cols requires rate_cols_per_s")
            if not (self.burst_cols > 0.0):
                raise ConfigError(f"qos burst_cols must be > 0, got {self.burst_cols}")
        if self.rate_cols_per_s == 0.0 and self.burst_cols is None:
            raise ConfigError(
                "qos rate_cols_per_s=0 is a hard quota and needs burst_cols"
            )

    @property
    def rank(self) -> int:
        """Priority rank; lower is served first."""
        return PRIORITY_CLASSES.index(self.priority)

    @property
    def effective_burst(self) -> float | None:
        if self.rate_cols_per_s is None:
            return None
        if self.burst_cols is not None:
            return self.burst_cols
        return self.rate_cols_per_s  # one second of burst

    @classmethod
    def parse(cls, spec: "QosPolicy | str | None", **overrides) -> "QosPolicy":
        """Build a policy from ``"class[:w=..,rate=..,burst=..]"`` (or pass through).

        Examples: ``"interactive"``, ``"batch:w=4"``,
        ``"batch:rate=256,burst=64"``.  ``None`` parses to the default
        interactive policy so unconfigured tenants keep today's behaviour.
        """
        if isinstance(spec, cls):
            return spec
        if spec is None:
            return cls(**overrides)
        text = str(spec).strip()
        head, _, tail = text.partition(":")
        kwargs: dict = {"priority": head.strip() or "interactive"}
        if tail.strip():
            for part in tail.split(","):
                key, sep, value = part.partition("=")
                key = key.strip()
                if not sep or not value.strip():
                    raise ConfigError(f"bad qos spec field {part!r} in {text!r}")
                try:
                    number = float(value)
                except ValueError as exc:
                    raise ConfigError(
                        f"bad qos spec value {value!r} in {text!r}"
                    ) from exc
                if key in ("w", "weight"):
                    kwargs["weight"] = number
                elif key == "rate":
                    kwargs["rate_cols_per_s"] = number
                elif key == "burst":
                    kwargs["burst_cols"] = number
                else:
                    raise ConfigError(f"unknown qos spec key {key!r} in {text!r}")
        kwargs.update(overrides)
        return cls(**kwargs)

    def describe(self) -> str:
        parts = [f"{self.priority} w={self.weight:g}"]
        if self.rate_cols_per_s is not None:
            parts.append(
                f"rate={self.rate_cols_per_s:g} cols/s burst={self.effective_burst:g}"
            )
        return " ".join(parts)

    def to_json(self) -> dict:
        return {
            "priority": self.priority,
            "weight": self.weight,
            "rate_cols_per_s": self.rate_cols_per_s,
            "burst_cols": self.effective_burst,
        }


class TokenBucket:
    """Column-rate token bucket; ``rate=0`` never refills (hard quota)."""

    __slots__ = ("rate", "burst", "tokens", "clock", "_last")

    def __init__(self, rate: float, burst: float, clock=time.monotonic) -> None:
        if rate < 0:
            raise ConfigError(f"token bucket rate must be >= 0, got {rate}")
        if burst <= 0:
            raise ConfigError(f"token bucket burst must be > 0, got {burst}")
        self.rate = float(rate)
        self.burst = float(burst)
        self.tokens = float(burst)
        self.clock = clock
        self._last = clock()

    def try_take(self, amount: float) -> bool:
        """Take ``amount`` tokens if available; False (no debt) otherwise."""
        now = self.clock()
        if self.rate > 0.0:
            elapsed = max(0.0, now - self._last)
            self.tokens = min(self.burst, self.tokens + elapsed * self.rate)
        self._last = now
        if self.tokens + 1e-9 >= amount:
            self.tokens -= amount
            return True
        return False


@dataclass
class _LaneState:
    rank: int
    weight: float
    label: str | None = None
    deficit: float = 0.0
    served_blocks: int = 0
    served_columns: float = 0.0
    grants: int = 0


@dataclass
class DeficitScheduler:
    """Deficit-weighted round robin with strict priority between classes.

    ``pick`` considers only the highest-priority class present among the
    candidate lanes, walks the registration-order ring from a rotating
    cursor, and serves the first lane whose deficit covers the offered
    block cost.  When nobody can pay, every eligible lane earns the
    minimal whole number of ``quantum * weight`` grants that lets at least
    one pay, so ``pick`` is O(lanes) and always terminates.  ``reset``
    zeroes an idle lane's deficit: an empty lane must not bank credit and
    burst ahead of lanes that stayed busy.
    """

    quantum: float
    _lanes: dict = field(default_factory=dict)
    _cursor: int = 0

    def __post_init__(self) -> None:
        if self.quantum <= 0:
            raise ConfigError(f"scheduler quantum must be > 0, got {self.quantum}")

    def register(self, key, rank: int, weight: float, label: str | None = None) -> None:
        if key not in self._lanes:
            self._lanes[key] = _LaneState(rank=rank, weight=float(weight), label=label)

    def reset(self, key) -> None:
        lane = self._lanes.get(key)
        if lane is not None:
            lane.deficit = 0.0

    def pick(self, candidates: dict) -> object | None:
        """Pick the next lane to flush from ``{lane_key: block_cost_cols}``."""
        eligible_keys = [k for k in candidates if k in self._lanes]
        if not eligible_keys:
            return None
        best_rank = min(self._lanes[k].rank for k in eligible_keys)
        order = [
            k
            for k in self._lanes
            if k in candidates and self._lanes[k].rank == best_rank
        ]
        ring = list(self._lanes)
        start = self._cursor % max(1, len(ring))
        rotated = [k for k in ring[start:] + ring[:start] if k in order]
        for _ in range(2):  # at most one grant round is ever needed
            for key in rotated:
                lane = self._lanes[key]
                cost = max(0.0, float(candidates[key]))
                if lane.deficit + 1e-9 >= cost:
                    lane.deficit = max(0.0, lane.deficit - cost)
                    lane.served_blocks += 1
                    lane.served_columns += cost
                    self._cursor = (ring.index(key) + 1) % len(ring)
                    return key
            # nobody can pay: grant the minimal rounds that unlock a lane
            rounds = min(
                math.ceil(
                    max(
                        0.0,
                        float(candidates[k]) - self._lanes[k].deficit,
                    )
                    / (self.quantum * self._lanes[k].weight)
                )
                for k in rotated
            )
            rounds = max(1, int(rounds))
            for key in rotated:
                lane = self._lanes[key]
                lane.deficit += rounds * self.quantum * lane.weight
                lane.grants += rounds
        raise AssertionError("deficit grant failed to unlock any lane")

    def stats(self) -> dict:
        return {
            "quantum": self.quantum,
            "lanes": {
                (lane.label or str(key)): {
                    "rank": lane.rank,
                    "weight": lane.weight,
                    "deficit": lane.deficit,
                    "served_blocks": lane.served_blocks,
                    "served_columns": lane.served_columns,
                    "grants": lane.grants,
                }
                for key, lane in self._lanes.items()
            },
        }


class AdmissionController:
    """Pre-lane load shedding: rate limits for anyone, pressure for batch.

    ``admit`` raises :class:`ServeShedError` (never returns a partial
    admit) so the caller's existing overflow handling records the reject.
    Pressure triggers — total queued requests at/over
    ``queue_pressure_requests``, any interactive tenant's SLO burn at/over
    ``burn_threshold``, or the memory budget over its limit — shed only
    batch-class tenants: shedding bulk is always preferred over letting it
    damage an interactive tenant's tail or evict its warm state.
    """

    def __init__(
        self,
        *,
        metrics=None,
        queue_pressure_requests: int | None = None,
        burn_threshold: float | None = 1.0,
        clock=time.monotonic,
    ) -> None:
        self.metrics = metrics
        self.queue_pressure_requests = queue_pressure_requests
        self.burn_threshold = burn_threshold
        self.clock = clock
        self._policies: dict[str, QosPolicy] = {}
        self._buckets: dict[str, TokenBucket] = {}
        self.shed: dict[str, dict[str, int]] = {}

    def register(self, model: str, policy: QosPolicy) -> None:
        """Attach a tenant's policy; idempotent (first registration wins,
        so re-creating a lane cannot silently refill a hard-quota bucket)."""
        if model in self._policies:
            return
        self._policies[model] = policy
        burst = policy.effective_burst
        if policy.rate_cols_per_s is not None and burst is not None:
            self._buckets[model] = TokenBucket(
                policy.rate_cols_per_s, burst, clock=self.clock
            )

    def policy(self, model: str) -> QosPolicy:
        return self._policies.get(model) or QosPolicy()

    def _shed(self, model: str, reason: str, detail: str) -> None:
        per_model = self.shed.setdefault(model, {})
        per_model[reason] = per_model.get(reason, 0) + 1
        if self.metrics is not None:
            self.metrics.counter(
                "qos_shed_total",
                help="requests shed by admission control",
                model=model,
                reason=reason,
            ).inc()
        raise ServeShedError(
            f"request for {model!r} shed by admission control ({detail})",
            reason=reason,
        )

    def admit(
        self,
        model: str,
        columns: int,
        *,
        pending_requests: int = 0,
        interactive_burn: float | None = None,
        over_budget: bool = False,
    ) -> None:
        """Raise :class:`ServeShedError` if this request must not enter a lane."""
        policy = self.policy(model)
        bucket = self._buckets.get(model)
        if bucket is not None and not bucket.try_take(columns):
            self._shed(
                model,
                "rate_limit",
                f"token bucket empty for {columns} columns at "
                f"{policy.rate_cols_per_s:g} cols/s",
            )
        if policy.rank == 0:
            return  # interactive is never pressure-shed
        if over_budget:
            self._shed(model, "memory_pressure", "memory budget over limit")
        if (
            self.burn_threshold is not None
            and interactive_burn is not None
            and interactive_burn >= self.burn_threshold
        ):
            self._shed(
                model,
                "slo_burn",
                f"interactive SLO burn {interactive_burn:.2f} >= "
                f"{self.burn_threshold:.2f}",
            )
        if (
            self.queue_pressure_requests is not None
            and pending_requests >= self.queue_pressure_requests
        ):
            self._shed(
                model,
                "queue_pressure",
                f"{pending_requests} requests queued >= "
                f"{self.queue_pressure_requests}",
            )

    def shed_total(self, model: str | None = None) -> int:
        if model is not None:
            return sum(self.shed.get(model, {}).values())
        return sum(sum(reasons.values()) for reasons in self.shed.values())

    def stats(self) -> dict:
        return {
            "policies": {
                name: policy.to_json() for name, policy in self._policies.items()
            },
            "queue_pressure_requests": self.queue_pressure_requests,
            "burn_threshold": self.burn_threshold,
            "shed": {name: dict(reasons) for name, reasons in self.shed.items()},
            "shed_total": self.shed_total(),
            "buckets": {
                name: {"rate": b.rate, "burst": b.burst, "tokens": b.tokens}
                for name, b in self._buckets.items()
            },
        }
