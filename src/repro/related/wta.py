"""DASNet-style dynamic winners-take-all inference (Yang et al. 2019).

After each layer's activation, only the ``keep_fraction`` largest entries of
every column survive; the rest are dropped to exact zero.  On activation-
driven kernels (work proportional to nnz) this directly cuts per-layer cost,
at an accuracy cost that grows as ``keep_fraction`` shrinks — the trade-off
SNICIT's residue representation avoids paying for converged batches.
"""

from __future__ import annotations

import time

import numpy as np

from repro.errors import ConfigError
from repro.gpu.device import VirtualDevice
from repro.inference import InferenceResult
from repro.kernels import baseline_spmm, charge_for
from repro.network import SparseNetwork

__all__ = ["WTAEngine", "winners_take_all"]


def winners_take_all(y: np.ndarray, keep_fraction: float) -> np.ndarray:
    """Zero all but the top ``keep_fraction`` entries of each column (in place).

    Ties at the cut-off magnitude are resolved toward keeping earlier rows
    (argpartition order), so exactly ``ceil(k * N)`` entries survive in any
    column that has that many nonzeros.
    """
    n = y.shape[0]
    keep = max(1, int(np.ceil(keep_fraction * n)))
    if keep >= n:
        return y
    # indices of the (n - keep) smallest |values| per column -> zeroed
    drop = np.argpartition(np.abs(y), n - keep, axis=0)[: n - keep, :]
    np.put_along_axis(y, drop, 0.0, axis=0)
    return y


class WTAEngine:
    """Feed-forward with per-layer winners-take-all activation dropout."""

    name = "DASNet-WTA"

    def __init__(
        self,
        network: SparseNetwork,
        keep_fraction: float = 0.5,
        device: VirtualDevice | None = None,
    ):
        if not 0.0 < keep_fraction <= 1.0:
            raise ConfigError("keep_fraction must be in (0, 1]")
        self.network = network
        self.keep_fraction = keep_fraction
        self.device = device or VirtualDevice()

    def infer(self, y0: np.ndarray) -> InferenceResult:
        net = self.network
        y = net.validate_input(y0).astype(np.float32, copy=True)
        layer_seconds = np.zeros(net.num_layers)
        mark = self.device.snapshot()
        wall0 = time.perf_counter()
        for i, layer in enumerate(net.layers):
            lt0 = time.perf_counter()
            z, work, strategy = baseline_spmm(net, i, y)
            z += layer.bias_column()
            y = net.activation(z)
            winners_take_all(y, self.keep_fraction)
            self.device.charge(
                charge_for(strategy, work, layer.n_out, y.shape[1], "wta_spmm")
            )
            layer_seconds[i] = time.perf_counter() - lt0
        total = time.perf_counter() - wall0
        return InferenceResult(
            y=y,
            stage_seconds={"inference": total},
            layer_seconds=layer_seconds,
            modeled={"inference": self.device.snapshot() - mark},
            stats={"keep_fraction": self.keep_fraction},
        )
