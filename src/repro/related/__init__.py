"""Inference-time data-compression related works (paper §2.2.2).

The paper positions SNICIT against earlier dense-DNN compression-at-
inference-time techniques.  This package implements the three families it
cites, adapted to the sparse-stack setting, so they can be compared head to
head with SNICIT on the medium-scale networks:

* :class:`~repro.related.wta.WTAEngine` — DASNet-style dynamic
  winners-take-all: after every layer only the top-k fraction of each
  column's activations survive, shrinking the work of activation-driven
  kernels at some accuracy cost.
* :class:`~repro.related.threshold.ThresholdEngine` — Kurtz et al.:
  boost activation sparsity by thresholding near-zero activations and
  computing on the compressed representation.
* :class:`~repro.related.cache_exit.CacheEarlyExit` — Kumar et al. / Li et
  al.: cache historical hidden-layer sketches with their labels; on a
  confident similarity hit, a query exits early with the cached label.
  As the paper notes, the per-layer cache lookups add overhead proportional
  to depth — the comparison experiment quantifies that.
"""

from repro.related.wta import WTAEngine
from repro.related.threshold import ThresholdEngine
from repro.related.cache_exit import CacheEarlyExit

__all__ = ["WTAEngine", "ThresholdEngine", "CacheEarlyExit"]
