"""Cache-based early exit (Kumar et al. HotCloud'19; Li et al. ACM MM'21).

Historical hidden-layer outputs are stored as downsampled sketches together
with their final labels.  At inference time, each still-running query
compares its sketch against the cache at every layer; a sufficiently
confident nearest-neighbor hit lets the query *exit early* with the cached
label.  The paper's critique (§2.2.2): the per-layer lookup overhead is
proportional to depth, and the technique yields labels, not activations —
it cannot feed downstream computation the way SNICIT's recovered ``Y(l)``
can.  This implementation makes both effects measurable.

Works on a :class:`~repro.nn.export.SparseStack` because early exit needs
the classification head to produce cached labels.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.core.sampling import sum_downsample
from repro.errors import ConfigError
from repro.kernels import baseline_spmm
from repro.nn.export import SparseStack

__all__ = ["CacheEarlyExit", "EarlyExitResult"]


@dataclass
class EarlyExitResult:
    """Outcome of a cached-inference run."""

    labels: np.ndarray
    exit_layer: np.ndarray  # per query; num_layers means "ran to the end"
    seconds: float
    #: fraction of queries that exited early
    hit_rate: float = 0.0
    stats: dict = field(default_factory=dict)


class CacheEarlyExit:
    """Sketch-cache early-exit inference over a trained sparse stack."""

    name = "Cache-EarlyExit"

    def __init__(
        self,
        stack: SparseStack,
        sketch_dim: int = 16,
        tolerance: float = 0.15,
        check_every: int = 1,
    ):
        if sketch_dim < 1:
            raise ConfigError("sketch_dim must be >= 1")
        if tolerance < 0:
            raise ConfigError("tolerance must be non-negative")
        if check_every < 1:
            raise ConfigError("check_every must be >= 1")
        self.stack = stack
        self.sketch_dim = sketch_dim
        self.tolerance = tolerance
        self.check_every = check_every
        #: per-layer caches: list of (sketches (d, m), labels (m,))
        self._cache: dict[int, tuple[np.ndarray, np.ndarray]] = {}

    # -- cache construction ---------------------------------------------
    def build_cache(self, images: np.ndarray) -> None:
        """Populate the per-layer sketch cache from reference images.

        Labels stored are the *model's own predictions* (the cache
        approximates the model, not the ground truth).
        """
        net = self.stack.network
        y = self.stack.head(images).astype(np.float32)
        sketches: dict[int, np.ndarray] = {}
        for i in range(net.num_layers):
            z, _, _ = baseline_spmm(net, i, y)
            z += net.layers[i].bias_column()
            y = net.activation(z)
            if (i + 1) % self.check_every == 0:
                sketches[i] = sum_downsample(y, self.sketch_dim)
        labels = self.stack.tail(y).argmax(axis=1)
        self._cache = {i: (s, labels) for i, s in sketches.items()}

    @property
    def cache_entries(self) -> int:
        return sum(s.shape[1] for s, _ in self._cache.values())

    # -- inference ---------------------------------------------------------
    def predict(self, images: np.ndarray) -> EarlyExitResult:
        """Classify images with per-layer cache lookups and early exit."""
        if not self._cache:
            raise ConfigError("call build_cache() before predict()")
        net = self.stack.network
        y = self.stack.head(images).astype(np.float32)
        batch = y.shape[1]
        labels = np.full(batch, -1, dtype=np.int64)
        exit_layer = np.full(batch, net.num_layers, dtype=np.int64)
        running = np.arange(batch)
        t0 = time.perf_counter()
        for i in range(net.num_layers):
            if len(running) == 0:
                break
            z, _, _ = baseline_spmm(net, i, y)
            z += net.layers[i].bias_column()
            y = net.activation(z)
            if i in self._cache:
                cache_sketch, cache_labels = self._cache[i]
                q = sum_downsample(y, self.sketch_dim)  # (d, running)
                # nearest cached sketch per running query (L1, normalized)
                d = np.abs(q[:, :, None] - cache_sketch[:, None, :]).mean(axis=0)
                scale = np.abs(cache_sketch).mean() + 1e-9
                best = d.argmin(axis=1)
                hit = d[np.arange(len(running)), best] <= self.tolerance * scale
                if hit.any():
                    hit_cols = np.flatnonzero(hit)
                    labels[running[hit_cols]] = cache_labels[best[hit_cols]]
                    exit_layer[running[hit_cols]] = i
                    keep = ~hit
                    running = running[keep]
                    y = np.ascontiguousarray(y[:, keep])
        if len(running):
            labels[running] = self.stack.tail(y).argmax(axis=1)
        seconds = time.perf_counter() - t0
        return EarlyExitResult(
            labels=labels,
            exit_layer=exit_layer,
            seconds=seconds,
            hit_rate=float((exit_layer < net.num_layers).mean()),
            stats={"cache_entries": self.cache_entries},
        )
