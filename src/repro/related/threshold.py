"""Activation thresholding (Kurtz et al., ICML 2020).

Boosts activation sparsity by zeroing entries below a magnitude threshold
after every layer, then computes on the compressed (sparser) representation.
Unlike winners-take-all the amount kept is data-dependent; unlike SNICIT the
thresholding is applied to the *raw activations*, so for converged batches
it keeps paying for the shared structure that residues would cancel.
"""

from __future__ import annotations

import time

import numpy as np

from repro.errors import ConfigError
from repro.gpu.device import VirtualDevice
from repro.inference import InferenceResult
from repro.kernels import baseline_spmm, charge_for
from repro.network import SparseNetwork

__all__ = ["ThresholdEngine"]


class ThresholdEngine:
    """Feed-forward with per-layer near-zero activation thresholding."""

    name = "Threshold-CSR"

    def __init__(
        self,
        network: SparseNetwork,
        threshold: float = 0.02,
        device: VirtualDevice | None = None,
    ):
        if threshold < 0:
            raise ConfigError("threshold must be non-negative")
        self.network = network
        self.threshold = threshold
        self.device = device or VirtualDevice()

    def infer(self, y0: np.ndarray) -> InferenceResult:
        net = self.network
        y = net.validate_input(y0).astype(np.float32, copy=True)
        layer_seconds = np.zeros(net.num_layers)
        sparsity_trace: list[float] = []
        mark = self.device.snapshot()
        wall0 = time.perf_counter()
        for i, layer in enumerate(net.layers):
            lt0 = time.perf_counter()
            z, work, strategy = baseline_spmm(net, i, y)
            z += layer.bias_column()
            y = net.activation(z)
            if self.threshold > 0:
                y[y < self.threshold] = 0.0  # activations are >= 0 post-ReLU
            sparsity_trace.append(float((y == 0).mean()))
            self.device.charge(
                charge_for(strategy, work, layer.n_out, y.shape[1], "thr_spmm")
            )
            layer_seconds[i] = time.perf_counter() - lt0
        total = time.perf_counter() - wall0
        return InferenceResult(
            y=y,
            stage_seconds={"inference": total},
            layer_seconds=layer_seconds,
            modeled={"inference": self.device.snapshot() - mark},
            stats={"threshold": self.threshold, "sparsity_trace": np.array(sparsity_trace)},
        )
