"""Cached workload construction (networks and input blocks).

Building a 1024-neuron, 120-layer Radix-Net takes a second or two and the
experiment suite reuses the same few networks dozens of times, so both
networks and rendered input batches are memoized per (name, seed) /
(name, batch, seed).
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from repro.network import SparseNetwork
from repro.radixnet.registry import benchmark_input, build_benchmark

__all__ = ["get_benchmark", "get_input", "get_labeled_input"]


@lru_cache(maxsize=32)
def get_benchmark(name: str, seed: int = 0) -> SparseNetwork:
    """Memoized scaled-SDGC network."""
    return build_benchmark(name, seed=seed)


@lru_cache(maxsize=64)
def _input_cache(name: str, batch: int, seed: int) -> tuple[np.ndarray, np.ndarray]:
    net = get_benchmark(name)
    y0, labels = benchmark_input(net, batch, seed=seed, labeled=True)
    y0.setflags(write=False)
    labels.setflags(write=False)
    return y0, labels


def get_input(name: str, batch: int, seed: int = 1) -> np.ndarray:
    """Memoized input block for a registry benchmark (read-only array)."""
    return _input_cache(name, batch, seed)[0]


def get_labeled_input(name: str, batch: int, seed: int = 1) -> tuple[np.ndarray, np.ndarray]:
    """Memoized (Y0, labels) pair."""
    return _input_cache(name, batch, seed)
