"""Table 3: overall runtime of SNICIT vs the previous champions.

Paper reference points (speed-up of SNICIT over each baseline):

=========  ======  =======  ======
benchmark  XY      SNIG     BF
=========  ======  =======  ======
smallest   1.11x   18.06x   37.16x
largest    6.31x   151.2x   443.5x
=========  ======  =======  ======

The shape to reproduce: SNICIT wins everywhere at work-dominated batch
sizes, and the margin grows with both neuron count and depth.  Wall-clock
and modeled latency are reported side by side (the champion ordering among
themselves is a GPU-implementation artifact that only the modeled numbers
preserve — see EXPERIMENTS.md).
"""

from __future__ import annotations

from repro.harness.experiments.common import ExperimentReport, scaled_batch, sdgc_config
from repro.harness.report import TextTable
from repro.harness.runner import bench_scale, run_comparison
from repro.harness.workloads import get_benchmark, get_input
from repro.radixnet.registry import list_benchmarks

#: Paper Table 3 speed-ups of SNICIT over XY-2021, keyed by paper name.
PAPER_XY_SPEEDUP = {
    "1024-120": 1.11, "1024-480": 1.63, "1024-1920": 1.97,
    "4096-120": 1.20, "4096-480": 2.12, "4096-1920": 3.51,
    "16384-120": 1.27, "16384-480": 2.65, "16384-1920": 6.10,
    "65536-120": 1.21, "65536-480": 2.60, "65536-1920": 6.31,
}


def run(scale: float | None = None, benchmarks: list[str] | None = None) -> ExperimentReport:
    scale = bench_scale() if scale is None else scale
    table = TextTable(
        [
            "bench", "paper", "SNICIT ms", "XY ms", "xXY", "paper xXY",
            "SNIG ms", "xSNIG", "BF ms", "xBF", "modeled xXY",
        ],
        title="Table 3 — overall runtime vs previous champions",
    )
    data = {}
    specs = list_benchmarks()
    if benchmarks:
        specs = [s for s in specs if s.name in benchmarks]
    for spec in specs:
        net = get_benchmark(spec.name)
        batch = scaled_batch(spec.batch_default, scale)
        y0 = get_input(spec.name, batch)
        runs = run_comparison(net, y0, sdgc_config(spec.layers))
        sn = runs["snicit"]
        xy, sg, bf = runs["xy2021"], runs["snig2020"], runs["bf2019"]
        row = {
            "snicit_ms": sn.wall_ms,
            "xy_ms": xy.wall_ms,
            "snig_ms": sg.wall_ms,
            "bf_ms": bf.wall_ms,
            "x_xy": xy.wall_ms / sn.wall_ms,
            "x_snig": sg.wall_ms / sn.wall_ms,
            "x_bf": bf.wall_ms / sn.wall_ms,
            "modeled_x_xy": xy.modeled_ms / sn.modeled_ms,
            "modeled_x_snig": sg.modeled_ms / sn.modeled_ms,
            "modeled_x_bf": bf.modeled_ms / sn.modeled_ms,
            "paper_x_xy": PAPER_XY_SPEEDUP[spec.paper_name],
            "batch": batch,
        }
        data[spec.name] = row
        table.add(
            spec.name, spec.paper_name, row["snicit_ms"], row["xy_ms"], row["x_xy"],
            row["paper_x_xy"], row["snig_ms"], row["x_snig"], row["bf_ms"], row["x_bf"],
            row["modeled_x_xy"],
        )
    return ExperimentReport(
        experiment="table3",
        title="overall runtime comparison (SDGC)",
        table=table,
        notes=["all engines verified to agree on SDGC categories for every row"],
        data=data,
    )
