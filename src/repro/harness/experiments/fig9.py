"""Figure 9: runtime vs batch size B, SNICIT vs XY-2021 (deepest nets).

Paper: SNICIT's speed-up over XY grows with B — the centroid population
stays basically constant while XY's work grows linearly.
"""

from __future__ import annotations

from repro.baselines import XY2021
from repro.core import SNICIT
from repro.harness.experiments.common import ExperimentReport, sdgc_config
from repro.harness.report import TextTable, format_series
from repro.harness.runner import bench_scale
from repro.harness.workloads import get_benchmark, get_input

DEFAULT_BENCHMARKS = ("144-120", "256-120", "576-120", "1024-120")
DEFAULT_BATCHES = (250, 500, 1000, 2000)


def run(
    scale: float | None = None,
    benchmarks=DEFAULT_BENCHMARKS,
    batches=DEFAULT_BATCHES,
) -> ExperimentReport:
    scale = bench_scale() if scale is None else scale
    batches = [max(32, int(b * scale)) for b in batches]
    series = []
    data = {}
    table = TextTable(
        ["bench", "B", "SNICIT ms", "XY ms", "speed-up"],
        title="Figure 9 — runtime vs batch size",
    )
    for name in benchmarks:
        net = get_benchmark(name)
        sn_times, xy_times = [], []
        for b in batches:
            y0 = get_input(name, b)
            sn = SNICIT(net, sdgc_config(net.num_layers)).infer(y0).total_seconds * 1e3
            xy = XY2021(net).infer(y0).total_seconds * 1e3
            sn_times.append(sn)
            xy_times.append(xy)
            table.add(name, b, sn, xy, xy / sn)
        series.append(format_series(f"{name} SNICIT ms vs B", batches, sn_times))
        series.append(format_series(f"{name} XY ms vs B", batches, xy_times))
        data[name] = {"batches": batches, "snicit_ms": sn_times, "xy_ms": xy_times}
    return ExperimentReport(
        experiment="fig9",
        title="runtime vs batch size (SNICIT vs XY-2021)",
        table=table,
        series=series,
        notes=["speed-up should grow with B"],
        data=data,
    )
