"""Figure 6: average latency per post-convergence layer, SNICIT vs XY-2021.

Paper: SNICIT's post-convergence layers are up to 18.69x faster than
XY-2021's, with the gap growing with benchmark size.
"""

from __future__ import annotations

from repro.baselines import XY2021
from repro.core import SNICIT
from repro.harness.experiments.common import (
    ExperimentReport,
    scaled_batch,
    sdgc_config,
    sdgc_threshold,
)
from repro.harness.report import TextTable
from repro.harness.runner import bench_scale
from repro.harness.workloads import get_benchmark, get_input
from repro.radixnet.registry import list_benchmarks


def run(scale: float | None = None, benchmarks: list[str] | None = None) -> ExperimentReport:
    scale = bench_scale() if scale is None else scale
    table = TextTable(
        ["bench", "paper", "SNICIT ms/layer", "XY ms/layer", "reduction",
         "modeled reduction"],
        title="Figure 6 — average post-convergence layer latency",
    )
    data = {}
    specs = list_benchmarks()
    if benchmarks:
        specs = [s for s in specs if s.name in benchmarks]
    for spec in specs:
        net = get_benchmark(spec.name)
        y0 = get_input(spec.name, scaled_batch(spec.batch_default, scale))
        t = sdgc_threshold(spec.layers)
        sn = SNICIT(net, sdgc_config(spec.layers)).infer(y0)
        xy = XY2021(net).infer(y0)
        sn_ms = float(sn.layer_seconds[t:].mean() * 1e3)
        xy_ms = float(xy.layer_seconds[t:].mean() * 1e3)
        post_layers = spec.layers - t
        sn_modeled = sn.modeled["post_convergence"].modeled_seconds / post_layers
        # XY's modeled time over the same layer range, prorated by work share
        xy_modeled = xy.modeled["inference"].modeled_seconds * (post_layers / spec.layers)
        xy_modeled /= post_layers
        table.add(spec.name, spec.paper_name, sn_ms, xy_ms, xy_ms / sn_ms,
                  xy_modeled / sn_modeled)
        data[spec.name] = {
            "snicit_ms_per_layer": sn_ms,
            "xy_ms_per_layer": xy_ms,
            "reduction": xy_ms / sn_ms,
            "modeled_reduction": xy_modeled / sn_modeled,
        }
    return ExperimentReport(
        experiment="fig6",
        title="post-convergence per-layer latency vs XY-2021",
        table=table,
        data=data,
    )
