"""Figure 8: runtime vs threshold layer t.

Paper: SNICIT is fastest for t between 20 and 40 (of 120 layers); small t
produces too many centroids (longer post-convergence), large t wastes time
in pre-convergence.  Scaled equivalently here: the optimum should sit in the
interior of [0, l], not at either end.
"""

from __future__ import annotations

from repro.core import SNICIT
from repro.harness.experiments.common import ExperimentReport, scaled_batch, sdgc_config
from repro.harness.report import TextTable, format_series
from repro.harness.runner import bench_scale
from repro.harness.workloads import get_benchmark, get_input

DEFAULT_BENCHMARKS = ("144-120", "256-120", "576-120")


def run(scale: float | None = None, benchmarks=DEFAULT_BENCHMARKS, step: int = 10) -> ExperimentReport:
    scale = bench_scale() if scale is None else scale
    series = []
    data = {}
    table = TextTable(["bench", "best t", "best ms", "t=0 ms", "t=max ms"],
                      title="Figure 8 — runtime vs threshold layer t")
    for name in benchmarks:
        net = get_benchmark(name)
        y0 = get_input(name, scaled_batch(1000, scale))
        ts = list(range(0, net.num_layers, step))
        times = []
        for t in ts:
            cfg = sdgc_config(net.num_layers, threshold_layer=t)
            times.append(SNICIT(net, cfg).infer(y0).total_seconds * 1e3)
        series.append(format_series(f"{name} runtime(ms) vs t", ts, times))
        best = int(times.index(min(times)))
        table.add(name, ts[best], times[best], times[0], times[-1])
        data[name] = {"t": ts, "ms": times}
    return ExperimentReport(
        experiment="fig8",
        title="runtime vs threshold layer",
        table=table,
        series=series,
        data=data,
    )
