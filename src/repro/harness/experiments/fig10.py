"""Figure 10: runtime breakdown for medium DNNs A and D.

Paper: pre-convergence dominates (62 % / 69 %), recovery is tiny
(4.3 % / 0.3 %).
"""

from __future__ import annotations

from repro.core import SNICIT
from repro.harness.experiments.common import ExperimentReport
from repro.harness.experiments.fig7 import STAGES
from repro.harness.experiments.table4 import medium_config
from repro.harness.medium import get_trained
from repro.harness.report import TextTable
from repro.harness.runner import bench_scale


def run(scale: float | None = None, dnn_ids=("A", "D")) -> ExperimentReport:
    scale = bench_scale() if scale is None else scale
    table = TextTable(
        ["DNN", "pre %", "conversion %", "post %", "recovery %", "total ms"],
        title="Figure 10 — stage breakdown, medium DNNs",
    )
    data = {}
    for dnn_id in dnn_ids:
        tm = get_trained(dnn_id)
        n_test = len(tm.test.images) if scale >= 1 else max(64, int(800 * scale))
        y0 = tm.stack.head(tm.test.images[:n_test])
        res = SNICIT(tm.stack.network, medium_config(tm.spec.sparse_layers)).infer(y0)
        total = res.total_seconds
        shares = {s: 100.0 * res.stage_seconds[s] / total for s in STAGES}
        table.add(dnn_id, shares["pre_convergence"], shares["conversion"],
                  shares["post_convergence"], shares["recovery"], total * 1e3)
        data[dnn_id] = {**shares, "total_ms": total * 1e3}
    return ExperimentReport(
        experiment="fig10",
        title="stage breakdown (medium DNNs)",
        table=table,
        data=data,
    )
