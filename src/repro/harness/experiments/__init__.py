"""Per-table / per-figure experiment modules.

Each module exposes ``run(scale=None) -> ExperimentReport``; ``scale``
multiplies batch sizes (default from ``REPRO_BENCH_SCALE``).  The reports
print the same rows/series the paper reports, with wall-clock and modeled
latency side by side.

==========  ==========================================================
module      reproduces
==========  ==========================================================
table1      Table 1 (benchmark statistics)
table3      Table 3 (overall runtime vs champions, 12 benchmarks)
table4      Table 4 (medium-scale DNNs: accuracy loss + speed-ups)
fig1        Figure 1 (convergence/centralization + intensity curve)
fig6        Figure 6 (avg post-convergence layer latency vs XY-2021)
fig7        Figure 7 (runtime breakdown, four SDGC nets)
fig8        Figure 8 (runtime vs threshold layer t)
fig9        Figure 9 (runtime vs batch size B)
fig10       Figure 10 (runtime breakdown, medium DNNs A and D)
fig11       Figure 11 (post-convergence latency, medium DNNs)
fig12       Figure 12 ((t, B) grid: speed-up + accuracy loss)
ablations   design-choice ablations called out in DESIGN.md
==========  ==========================================================
"""

from repro.harness.experiments.common import (
    ExperimentReport,
    sdgc_config,
    sdgc_threshold,
)

__all__ = ["ExperimentReport", "sdgc_config", "sdgc_threshold"]
