"""Figure 12: (threshold t, batch B) grid — speed-up over SNIG-2020 and
accuracy loss, per medium DNN.

Paper: larger B -> larger speed-ups; speed-up peaks at t slightly below
l/2; accuracy loss generally decreases with t (non-monotonic at small t
because more centroids represent the batch better).
"""

from __future__ import annotations

import numpy as np

from repro.baselines import SNIG2020
from repro.core import SNICIT
from repro.harness.experiments.common import ExperimentReport
from repro.harness.experiments.table4 import medium_config
from repro.harness.medium import get_trained
from repro.harness.report import TextTable, render_heatmap
from repro.harness.runner import bench_scale
from repro.nn.model import accuracy

DEFAULT_BATCHES = (200, 400, 800)


def run(
    scale: float | None = None,
    dnn_ids=("A", "B", "C", "D"),
    batches=DEFAULT_BATCHES,
    t_step: int = 4,
) -> ExperimentReport:
    scale = bench_scale() if scale is None else scale
    batches = [max(32, int(b * scale)) for b in batches]
    table = TextTable(
        ["DNN", "t", "B", "speed-up vs SNIG", "acc loss %"],
        title="Figure 12 — (t, B) grid search",
    )
    heatmaps: list[str] = []
    data = {}
    for dnn_id in dnn_ids:
        tm = get_trained(dnn_id)
        stack = tm.stack
        net = stack.network
        grid = {}
        for b in batches:
            images = tm.test.images[:b]
            labels = tm.test.labels[:b]
            y0 = stack.head(images)
            snig = SNIG2020(net).infer(y0)
            base_acc = accuracy(stack.tail(snig.y), labels)
            for t in range(0, net.num_layers, t_step):
                cfg = medium_config(tm.spec.sparse_layers, threshold_layer=t)
                res = SNICIT(net, cfg).infer(y0)
                speedup = snig.total_seconds / res.total_seconds
                loss = (base_acc - accuracy(stack.tail(res.y), labels)) * 100
                grid[(t, b)] = (speedup, loss)
                table.add(dnn_id, t, b, speedup, loss)
        data[dnn_id] = {f"{t},{b}": v for (t, b), v in grid.items()}
        # headline checks per network
        speedups_by_b = {
            b: np.mean([v[0] for (t, bb), v in grid.items() if bb == b]) for b in batches
        }
        data[dnn_id]["mean_speedup_by_batch"] = {str(k): float(v) for k, v in speedups_by_b.items()}
        # the paper's heatmap panels (rows = t, cols = B); brackets mark the
        # red "actual speed-up" contour (> 1x)
        ts = sorted({t for t, _ in grid})
        heatmaps.append(render_heatmap(
            f"DNN {dnn_id}: speed-up over SNIG (rows t, cols B)",
            ts, batches,
            [[grid[(t, b)][0] for b in batches] for t in ts],
            mark_above=1.0,
        ))
        heatmaps.append(render_heatmap(
            f"DNN {dnn_id}: accuracy loss % (rows t, cols B)",
            ts, batches,
            [[grid[(t, b)][1] for b in batches] for t in ts],
        ))
    return ExperimentReport(
        experiment="fig12",
        title="(t, B) grid: speed-up over SNIG + accuracy loss",
        table=table,
        series=heatmaps,
        notes=["mean speed-up should increase with B (paper Figs. 12a/c/e/g)"],
        data=data,
    )
