"""Design-choice ablations called out in DESIGN.md.

1. ``ne_idx`` refresh interval (paper §3.3.2 uses 200 layers for SDGC): how
   much does stale column tracking cost?
2. Near-zero pruning threshold (paper §3.3.1): empty-column yield vs
   accuracy loss on a medium DNN.
3. Sum downsampling on/off (paper disables it for medium nets): conversion
   latency vs centroid quality.
4. spGEMM on the residue matrix vs the paper's dense-column load-reduced
   spMM (§3.3.1's argument for *not* using spGEMM).
"""

from __future__ import annotations

import time

import numpy as np

from repro.baselines import SNIG2020
from repro.core import SNICIT
from repro.harness.experiments.common import ExperimentReport, scaled_batch, sdgc_config
from repro.harness.experiments.table4 import medium_config
from repro.harness.medium import get_trained
from repro.harness.report import TextTable
from repro.harness.runner import bench_scale
from repro.harness.workloads import get_benchmark, get_input
from repro.nn.model import accuracy
from repro.sparse.convert import to_csr
from repro.sparse.spgemm import spgemm
from repro.sparse.spmm import spmm_reduceat


def run_ne_interval(scale: float, name: str = "256-120") -> TextTable:
    net = get_benchmark(name)
    y0 = get_input(name, scaled_batch(1000, scale))
    table = TextTable(["ne_idx interval", "runtime ms", "mean active cols"],
                      title=f"Ablation 1 — ne_idx refresh interval ({name})")
    rows = {}
    for interval in (1, 5, 20, 1000):
        cfg = sdgc_config(net.num_layers, ne_idx_interval=interval)
        res = SNICIT(net, cfg).infer(y0)
        mean_active = float(res.stats["active_columns_trace"].mean())
        table.add(interval, res.total_seconds * 1e3, mean_active)
        rows[interval] = (res.total_seconds, mean_active)
    return table


def run_prune_threshold(scale: float, dnn_id: str = "C") -> TextTable:
    tm = get_trained(dnn_id)
    stack = tm.stack
    y0 = stack.head(tm.test.images)
    labels = tm.test.labels
    snig = SNIG2020(stack.network).infer(y0)
    base_acc = accuracy(stack.tail(snig.y), labels)
    table = TextTable(
        ["prune threshold", "runtime ms", "acc loss %", "mean active cols"],
        title=f"Ablation 2 — near-zero pruning threshold (DNN {dnn_id})",
    )
    for thr in (0.0, 0.01, 0.03, 0.05, 0.1, 0.2):
        cfg = medium_config(tm.spec.sparse_layers, prune_threshold=thr)
        res = SNICIT(stack.network, cfg).infer(y0)
        loss = (base_acc - accuracy(stack.tail(res.y), labels)) * 100
        table.add(thr, res.total_seconds * 1e3, loss,
                  float(res.stats["active_columns_trace"].mean()))
    return table


def run_downsampling(scale: float, name: str = "576-48") -> TextTable:
    net = get_benchmark(name)
    y0 = get_input(name, scaled_batch(1000, scale))
    table = TextTable(
        ["downsample n", "conversion ms", "total ms", "centroids"],
        title=f"Ablation 3 — sum downsampling ({name})",
    )
    for n in (None, 8, 16, 64):
        cfg = sdgc_config(net.num_layers, downsample_dim=n)
        res = SNICIT(net, cfg).infer(y0)
        table.add(
            "off" if n is None else n,
            res.stage_seconds["conversion"] * 1e3,
            res.total_seconds * 1e3,
            res.stats["n_centroids"],
        )
    return table


def run_spgemm_comparison(scale: float, name: str = "256-24") -> TextTable:
    """Multiply one post-convergence layer both ways: the paper's dense-column
    load-reduced spMM vs compressing Ŷ to CSR and running spGEMM."""
    net = get_benchmark(name)
    y0 = get_input(name, scaled_batch(500, scale))
    cfg = sdgc_config(net.num_layers)
    engine = SNICIT(net, cfg)
    res = engine.infer(y0)  # warm run to obtain a converged Ŷ via stats
    # rebuild the converged representation at the threshold layer
    from repro.core.conversion import convert
    from repro.core.pruning import prune_samples, select_centroids
    from repro.core.sampling import sample_columns, sum_downsample
    from repro.kernels import champion_spmm

    y = y0.astype(np.float32)
    for i in range(cfg.for_network(net.num_layers).threshold_layer):
        z, _, _ = champion_spmm(net, i, y)
        z += net.layers[i].bias_column()
        y = net.activation(z)
    f = sum_downsample(sample_columns(y, cfg.sample_size), cfg.downsample_dim)
    cents = select_centroids(prune_samples(f, cfg.eta, cfg.eps))
    yhat, m, ne_rec = convert(y, cents, cfg.prune_threshold)
    w = net.layers[cfg.for_network(net.num_layers).threshold_layer].weight

    t0 = time.perf_counter()
    spmm_reduceat(w, yhat[:, ne_rec])
    dense_ms = (time.perf_counter() - t0) * 1e3

    t0 = time.perf_counter()
    yhat_csr = to_csr(yhat)  # per-layer recompression the paper warns about
    spgemm(w, yhat_csr)
    spgemm_ms = (time.perf_counter() - t0) * 1e3

    table = TextTable(
        ["strategy", "one-layer ms"],
        title=f"Ablation 4 — load-reduced spMM vs spGEMM on Ŷ ({name})",
    )
    table.add("load-reduced spMM (paper)", dense_ms)
    table.add("spGEMM + recompression", spgemm_ms)
    return table


def run(scale: float | None = None) -> ExperimentReport:
    scale = bench_scale() if scale is None else scale
    tables = [
        run_ne_interval(scale),
        run_prune_threshold(scale),
        run_downsampling(scale),
        run_spgemm_comparison(scale),
    ]
    report = ExperimentReport(
        experiment="ablations",
        title="design-choice ablations",
        table=tables[0],
        series=[t.render() for t in tables[1:]],
    )
    return report
