"""Shared experiment plumbing."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.config import SNICITConfig
from repro.harness.report import TextTable

__all__ = ["ExperimentReport", "sdgc_threshold", "sdgc_config", "scaled_batch"]


@dataclass
class ExperimentReport:
    """Rendered result of one experiment."""

    experiment: str
    title: str
    table: TextTable | None = None
    series: list[str] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)
    #: machine-readable rows for tests/EXPERIMENTS.md generation
    data: dict = field(default_factory=dict)

    def render(self) -> str:
        parts = [f"== {self.experiment}: {self.title} =="]
        if self.table is not None:
            parts.append(self.table.render())
        parts.extend(self.series)
        for note in self.notes:
            parts.append(f"note: {note}")
        return "\n".join(parts)


def sdgc_threshold(num_layers: int) -> int:
    """The paper's SDGC threshold (t = 30) mapped to scaled depths."""
    return min(30, num_layers // 2)


def sdgc_config(num_layers: int, **overrides) -> SNICITConfig:
    """Paper §4.1 SDGC parameters: s = 32, n = 16, eps = eta = 0.03.

    ``ne_idx_interval`` maps the paper's 200-of-1920 layers to the scaled
    depths (~1 refresh per 10 % of the depth).
    """
    defaults = dict(
        threshold_layer=sdgc_threshold(num_layers),
        sample_size=32,
        downsample_dim=16,
        eta=0.03,
        eps=0.03,
        prune_threshold=0.04,
        ne_idx_interval=max(1, num_layers // 10),
    )
    defaults.update(overrides)
    return SNICITConfig(**defaults)


def scaled_batch(base: int, scale: float) -> int:
    """Apply the harness batch multiplier with a sane floor."""
    return max(32, int(round(base * scale)))
