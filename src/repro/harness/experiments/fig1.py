"""Figure 1: convergence/centralization of intermediate results + the
computational-intensity drop SNICIT's representation buys.

The paper's figure t-SNE-embeds a batch's intermediate results at layers 2,
4 and 8, showing the ten classes centralizing, and plots per-layer
computational intensity with and without SNICIT's strategy.  We reproduce
both: 2-D t-SNE embeddings (exact algorithm, repro.analysis.tsne) with a
cluster-separation score per layer, and the intensity curve from a real
SNICIT run's active-column trace.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.metrics import cluster_separation, column_convergence_curve
from repro.analysis.tsne import tsne
from repro.core import SNICIT
from repro.harness.experiments.common import ExperimentReport
from repro.harness.experiments.table4 import medium_config
from repro.harness.medium import get_trained
from repro.harness.report import TextTable, format_series
from repro.harness.runner import bench_scale
from repro.kernels import champion_spmm


def run(scale: float | None = None, dnn_id: str = "B", tsne_samples: int = 150) -> ExperimentReport:
    scale = bench_scale() if scale is None else scale
    tm = get_trained(dnn_id)
    stack = tm.stack
    net = stack.network
    images = tm.test.images[: max(64, int(400 * scale))]
    labels = tm.test.labels[: len(images)]
    y = stack.head(images).astype(np.float32)

    probe_layers = sorted({2, 4, 8, net.num_layers - 1} & set(range(net.num_layers)))
    separations: dict[int, float] = {}
    embeddings: dict[int, np.ndarray] = {}
    snapshots = [y.copy()]
    for i in range(net.num_layers):
        z, _, _ = champion_spmm(net, i, y)
        z += net.layers[i].bias_column()
        y = net.activation(z)
        snapshots.append(y.copy())
        if i in probe_layers:
            separations[i] = cluster_separation(y, labels, tol=0.03)
            embeddings[i] = tsne(y[:, :tsne_samples].T, n_iter=250, seed=0)
    convergence = column_convergence_curve(snapshots, tol=0.01)

    # computational intensity: dense vs SNICIT active columns.  Column-level
    # compression is the SDGC mechanism, so the intensity curve runs on an
    # SDGC benchmark (the paper's Fig. 1 line chart shows the same cliff).
    from repro.harness.experiments.common import sdgc_config
    from repro.harness.workloads import get_benchmark, get_input

    sdgc_net = get_benchmark("256-24")
    sdgc_y0 = get_input("256-24", max(200, int(1000 * scale)))
    res = SNICIT(sdgc_net, sdgc_config(sdgc_net.num_layers)).infer(sdgc_y0)
    trace = res.stats["active_columns_trace"]
    t = res.stats["threshold_layer"]
    batch = sdgc_y0.shape[1]
    nnz = sdgc_net.layers[0].weight.nnz
    dense_curve = [float(nnz * batch)] * sdgc_net.num_layers
    snicit_curve = [float(nnz * batch)] * t + [float(nnz * a) for a in trace]

    table = TextTable(
        ["layer", "cluster separation (inter/intra)"],
        title="Figure 1 — centralization of intermediate results over layers",
    )
    for i in probe_layers:
        table.add(i, separations[i])
    series = [
        format_series("convergence (frac entries changing)", range(len(convergence)), convergence),
        format_series("intensity dense", range(len(dense_curve)), dense_curve),
        format_series("intensity SNICIT", range(len(snicit_curve)), snicit_curve),
    ]
    return ExperimentReport(
        experiment="fig1",
        title="intermediate-result convergence and computational intensity",
        table=table,
        series=series,
        notes=[
            "cluster separation should grow with depth (classes centralize)",
            "t-SNE embeddings computed per probe layer; separation is the "
            "quantitative stand-in for the paper's scatter plots",
        ],
        data={
            "separations": separations,
            "convergence": convergence.tolist(),
            "embeddings": {k: v.tolist() for k, v in embeddings.items()},
            "intensity_dense": dense_curve,
            "intensity_snicit": snicit_curve,
        },
    )
