"""Table 1: SDGC benchmark statistics (scaled registry vs paper)."""

from __future__ import annotations

from repro.harness.experiments.common import ExperimentReport
from repro.harness.report import TextTable
from repro.radixnet.registry import list_benchmarks

#: Paper Table 1 connection counts, keyed by paper benchmark name.
PAPER_CONNECTIONS = {
    "1024-120": 3_932_160,
    "1024-480": 15_728_640,
    "1024-1920": 62_914_560,
    "4096-120": 15_728_640,
    "4096-480": 62_914_560,
    "4096-1920": 251_658_240,
    "16384-120": 62_914_560,
    "16384-480": 251_658_240,
    "16384-1920": 1_006_632_960,
    "65536-120": 251_658_240,
    "65536-480": 1_006_632_960,
    "65536-1920": 4_026_531_840,
}


def run(scale: float | None = None) -> ExperimentReport:
    table = TextTable(
        ["paper bench", "scaled bench", "bias", "fan-in", "connections", "paper connections"],
        title="Table 1 — SDGC benchmark statistics (scaled registry)",
    )
    data = {}
    for spec in list_benchmarks():
        table.add(
            spec.paper_name,
            spec.name,
            spec.bias,
            spec.fanin,
            spec.connections,
            PAPER_CONNECTIONS[spec.paper_name],
        )
        data[spec.name] = {
            "connections": spec.connections,
            "paper_connections": PAPER_CONNECTIONS[spec.paper_name],
            "bias": spec.bias,
        }
    return ExperimentReport(
        experiment="table1",
        title="benchmark statistics",
        table=table,
        notes=[
            "scaled sizes keep the x4 neuron / x4-ish layer tier ratios and the "
            "bias ladder of the paper's Table 1",
        ],
        data=data,
    )
