"""Table 4: medium-scale sparse DNNs — accuracy loss and speed-ups.

Paper reference points:

==  ======  =======  ========  =========  =======
ID  N-l     DS       acc loss  x SNIG     x BF
==  ======  =======  ========  =========  =======
A   128-18  MNIST    0.24 %    1.38x      1.58x
B   256-18  MNIST    1.43 %    1.83x      1.95x
C   256-12  MNIST    0.06 %    1.36x      1.40x
D   256-12  CIFAR    0.45 %    1.48x      1.53x
==  ======  =======  ========  =========  =======

Shape to reproduce: SNICIT beats SNIG-2020 and BF-2019 on every network with
a small (sub-percent-ish) accuracy loss, and the deeper/larger nets win more.
"""

from __future__ import annotations

import numpy as np

from repro.baselines import BF2019, SNIG2020
from repro.core import SNICIT
from repro.core.config import SNICITConfig
from repro.harness.experiments.common import ExperimentReport
from repro.harness.medium import MEDIUM_DNNS, get_trained
from repro.harness.report import TextTable
from repro.harness.runner import bench_scale
from repro.nn.model import accuracy

#: Paper Table 4 reference numbers.
PAPER = {
    "A": {"acc": 94.94, "loss": 0.24, "x_snig": 1.38, "x_bf": 1.58},
    "B": {"acc": 96.88, "loss": 1.43, "x_snig": 1.83, "x_bf": 1.95},
    "C": {"acc": 95.61, "loss": 0.06, "x_snig": 1.36, "x_bf": 1.40},
    "D": {"acc": 75.86, "loss": 0.45, "x_snig": 1.48, "x_bf": 1.53},
}


def medium_config(sparse_layers: int, **overrides) -> SNICITConfig:
    """Paper §4.2.1: t = largest even int <= l/2, s = 128, no downsampling,
    ne_idx refreshed every layer."""
    t = (sparse_layers // 2) // 2 * 2
    defaults = dict(
        threshold_layer=max(2, t),
        sample_size=128,
        downsample_dim=None,
        eta=0.03,
        eps=0.03,
        prune_threshold=0.05,
        ne_idx_interval=1,
    )
    defaults.update(overrides)
    return SNICITConfig(**defaults)


def run_one(dnn_id: str, batch: int | None = None, seed: int = 0) -> dict:
    """Measure one network; returns the Table-4 row as a dict."""
    tm = get_trained(dnn_id, seed=seed)
    stack = tm.stack
    images = tm.test.images if batch is None else tm.test.images[:batch]
    labels = tm.test.labels if batch is None else tm.test.labels[:batch]
    y0 = stack.head(images)
    net = stack.network

    snig = SNIG2020(net).infer(y0)
    bf = BF2019(net).infer(y0)
    sn = SNICIT(net, medium_config(tm.spec.sparse_layers)).infer(y0)

    base_acc = accuracy(stack.tail(snig.y), labels)
    sn_acc = accuracy(stack.tail(sn.y), labels)
    return {
        "id": dnn_id,
        "name": tm.spec.name,
        "dataset": tm.spec.dataset,
        "dnn_acc": base_acc * 100,
        "acc_loss": (base_acc - sn_acc) * 100,
        "snicit_ms": sn.total_seconds * 1e3,
        "snig_ms": snig.total_seconds * 1e3,
        "bf_ms": bf.total_seconds * 1e3,
        "x_snig": snig.total_seconds / sn.total_seconds,
        "x_bf": bf.total_seconds / sn.total_seconds,
        "runs": {"snicit": sn, "snig": snig, "bf": bf},
    }


def run(scale: float | None = None) -> ExperimentReport:
    scale = bench_scale() if scale is None else scale
    table = TextTable(
        ["ID", "N-l", "DS", "DNN acc %", "loss %", "paper loss %",
         "x SNIG", "paper", "x BF", "paper"],
        title="Table 4 — medium-scale sparse DNNs",
    )
    data = {}
    for dnn_id in MEDIUM_DNNS:
        row = run_one(dnn_id, batch=None if scale >= 1 else int(800 * scale))
        p = PAPER[dnn_id]
        table.add(
            dnn_id, row["name"], row["dataset"], row["dnn_acc"], row["acc_loss"],
            p["loss"], row["x_snig"], p["x_snig"], row["x_bf"], p["x_bf"],
        )
        row.pop("runs")
        data[dnn_id] = row
    return ExperimentReport(
        experiment="table4",
        title="medium-scale DNN accuracy and speed-ups",
        table=table,
        notes=[
            "networks trained on the synthetic datasets; absolute accuracies "
            "differ from the paper's real-MNIST/CIFAR numbers",
        ],
        data=data,
    )
