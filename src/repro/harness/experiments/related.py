"""Related-work comparison (paper §2.2.2 positioning, quantified).

Compares SNICIT against the inference-time compression families the paper
cites — DASNet winners-take-all, Kurtz-style activation thresholding, and
cache-based early exit — on a medium-scale network, reporting latency and
end-to-end accuracy loss for each.  This is the quantitative version of the
paper's argument that prior activation-compression techniques either pay
accuracy (WTA, thresholding) or pay per-layer overhead and lose the
activations entirely (cache early exit).
"""

from __future__ import annotations

from repro.baselines import SNIG2020
from repro.core import SNICIT
from repro.harness.experiments.common import ExperimentReport
from repro.harness.experiments.table4 import medium_config
from repro.harness.medium import get_trained
from repro.harness.report import TextTable
from repro.harness.runner import bench_scale
from repro.nn.model import accuracy
from repro.related import CacheEarlyExit, ThresholdEngine, WTAEngine


def run(scale: float | None = None, dnn_id: str = "C") -> ExperimentReport:
    scale = bench_scale() if scale is None else scale
    tm = get_trained(dnn_id)
    stack = tm.stack
    net = stack.network
    n_test = len(tm.test.images) if scale >= 1 else max(128, int(800 * scale))
    images = tm.test.images[:n_test]
    labels = tm.test.labels[:n_test]
    y0 = stack.head(images)

    base = SNIG2020(net).infer(y0)
    base_acc = accuracy(stack.tail(base.y), labels)

    rows: dict[str, dict] = {}

    def add_engine(name: str, result, acc: float) -> None:
        rows[name] = {
            "ms": result.total_seconds * 1e3,
            "x_base": base.total_seconds / result.total_seconds,
            "acc_loss": (base_acc - acc) * 100,
        }

    sn = SNICIT(net, medium_config(tm.spec.sparse_layers)).infer(y0)
    add_engine("SNICIT", sn, accuracy(stack.tail(sn.y), labels))

    wta = WTAEngine(net, keep_fraction=0.3).infer(y0)
    add_engine("DASNet-WTA (k=0.3)", wta, accuracy(stack.tail(wta.y), labels))

    thr = ThresholdEngine(net, threshold=0.05).infer(y0)
    add_engine("Threshold (0.05)", thr, accuracy(stack.tail(thr.y), labels))

    cache = CacheEarlyExit(stack, tolerance=0.1)
    cache.build_cache(tm.train.images[: min(400, len(tm.train.images))])
    ee = cache.predict(images)
    rows["Cache-EarlyExit"] = {
        "ms": ee.seconds * 1e3,
        "x_base": base.total_seconds / ee.seconds,
        "acc_loss": (base_acc - float((ee.labels == labels).mean())) * 100,
        "hit_rate": ee.hit_rate,
    }

    table = TextTable(
        ["method", "ms", "x SNIG-2020", "acc loss %"],
        title=f"Related-work comparison on DNN {dnn_id} (SNIG-2020 = 1x, "
              f"{base.total_seconds * 1e3:.0f} ms)",
    )
    for name, row in rows.items():
        table.add(name, row["ms"], row["x_base"], row["acc_loss"])
    return ExperimentReport(
        experiment="related",
        title="inference-time compression related works (§2.2.2)",
        table=table,
        notes=[
            f"cache early-exit hit rate: {rows['Cache-EarlyExit']['hit_rate']:.2f} "
            f"(labels only — no recovered activations, unlike SNICIT)",
        ],
        data=rows,
    )
