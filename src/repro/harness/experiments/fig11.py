"""Figure 11: average post-convergence layer latency on the medium DNNs,
SNICIT vs SNIG-2020 and BF-2019.

Paper: SNICIT has the lowest per-layer latency on all four networks, with
far smaller variance across networks than the baselines.
"""

from __future__ import annotations

import numpy as np

from repro.baselines import BF2019, SNIG2020
from repro.core import SNICIT
from repro.harness.experiments.common import ExperimentReport
from repro.harness.experiments.table4 import medium_config
from repro.harness.medium import MEDIUM_DNNS, get_trained
from repro.harness.report import TextTable
from repro.harness.runner import bench_scale


def run(scale: float | None = None) -> ExperimentReport:
    scale = bench_scale() if scale is None else scale
    table = TextTable(
        ["DNN", "SNICIT ms/layer", "SNIG ms/layer", "BF ms/layer"],
        title="Figure 11 — post-convergence per-layer latency (medium DNNs)",
    )
    data = {}
    per_engine: dict[str, list[float]] = {"snicit": [], "snig": [], "bf": []}
    for dnn_id in MEDIUM_DNNS:
        tm = get_trained(dnn_id)
        n_test = len(tm.test.images) if scale >= 1 else max(64, int(800 * scale))
        y0 = tm.stack.head(tm.test.images[:n_test])
        net = tm.stack.network
        cfg = medium_config(tm.spec.sparse_layers)
        t = cfg.threshold_layer
        sn = SNICIT(net, cfg).infer(y0)
        sg = SNIG2020(net).infer(y0)
        bf = BF2019(net).infer(y0)
        row = {
            "snicit": float(sn.layer_seconds[t:].mean() * 1e3),
            "snig": float(sg.layer_seconds[t:].mean() * 1e3),
            "bf": float(bf.layer_seconds[t:].mean() * 1e3),
        }
        for k, v in row.items():
            per_engine[k].append(v)
        table.add(dnn_id, row["snicit"], row["snig"], row["bf"])
        data[dnn_id] = row
    data["variance"] = {k: float(np.var(v)) for k, v in per_engine.items()}
    return ExperimentReport(
        experiment="fig11",
        title="medium-DNN post-convergence latency",
        table=table,
        notes=[
            f"cross-network latency variance: {data['variance']}",
            "SNICIT's variance should be the smallest (paper §4.2.2)",
        ],
        data=data,
    )
