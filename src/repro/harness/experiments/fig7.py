"""Figure 7: runtime breakdown of the four stages on the *-120-class nets.

Paper percentages (pre-convergence / conversion / post-convergence /
recovery): 58/10/32/0.4 on the smallest up to 79/16/5/0.25 on the largest —
pre-convergence dominates more as neurons grow, recovery is negligible.
"""

from __future__ import annotations

from repro.core import SNICIT
from repro.harness.experiments.common import ExperimentReport, scaled_batch, sdgc_config
from repro.harness.report import TextTable
from repro.harness.runner import bench_scale
from repro.harness.workloads import get_benchmark, get_input

#: Stand-ins for the paper's four *-120 nets (our 24-layer tier).
DEFAULT_BENCHMARKS = ("144-24", "256-24", "576-24", "1024-24")

STAGES = ("pre_convergence", "conversion", "post_convergence", "recovery")


def run(scale: float | None = None, benchmarks=DEFAULT_BENCHMARKS) -> ExperimentReport:
    scale = bench_scale() if scale is None else scale
    table = TextTable(
        ["bench", "pre %", "conversion %", "post %", "recovery %", "total ms"],
        title="Figure 7 — runtime breakdown per stage",
    )
    data = {}
    for name in benchmarks:
        net = get_benchmark(name)
        spec_batch = 2000 if net.input_dim < 1024 else 1000
        y0 = get_input(name, scaled_batch(spec_batch, scale))
        res = SNICIT(net, sdgc_config(net.num_layers)).infer(y0)
        total = res.total_seconds
        shares = {s: 100.0 * res.stage_seconds[s] / total for s in STAGES}
        table.add(name, shares["pre_convergence"], shares["conversion"],
                  shares["post_convergence"], shares["recovery"], total * 1e3)
        data[name] = {**shares, "total_ms": total * 1e3}
    return ExperimentReport(
        experiment="fig7",
        title="stage breakdown (SDGC)",
        table=table,
        notes=["recovery should be negligible; conversion share grows with neurons"],
        data=data,
    )
