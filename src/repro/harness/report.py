"""Plain-text tables shaped like the paper's tables and figure series."""

from __future__ import annotations

from typing import Any, Sequence

__all__ = ["TextTable", "format_series", "render_heatmap"]


class TextTable:
    """Fixed-width text table builder."""

    def __init__(self, columns: Sequence[str], title: str = ""):
        self.columns = list(columns)
        self.title = title
        self.rows: list[list[str]] = []

    def add(self, *cells: Any) -> None:
        if len(cells) != len(self.columns):
            raise ValueError(f"expected {len(self.columns)} cells, got {len(cells)}")
        self.rows.append([_fmt(c) for c in cells])

    def render(self) -> str:
        widths = [
            max(len(self.columns[i]), *(len(r[i]) for r in self.rows)) if self.rows
            else len(self.columns[i])
            for i in range(len(self.columns))
        ]
        lines = []
        if self.title:
            lines.append(self.title)
        header = " | ".join(c.ljust(w) for c, w in zip(self.columns, widths))
        lines.append(header)
        lines.append("-+-".join("-" * w for w in widths))
        for row in self.rows:
            lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.render()


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.01:
            return f"{value:.3g}"
        return f"{value:.2f}"
    return str(value)


def format_series(name: str, xs: Sequence[Any], ys: Sequence[Any]) -> str:
    """One figure series as 'name: (x1, y1) (x2, y2) ...'."""
    pts = " ".join(f"({_fmt(x)}, {_fmt(y)})" for x, y in zip(xs, ys))
    return f"{name}: {pts}"


_SHADES = " .:-=+*#%@"


def render_heatmap(
    title: str,
    row_labels: Sequence[Any],
    col_labels: Sequence[Any],
    values: Sequence[Sequence[float]],
    mark_above: float | None = None,
) -> str:
    """ASCII heatmap for the paper's Fig. 12-style grids.

    Darker glyph = larger value.  ``mark_above`` draws the paper's red
    contour analogue: cells strictly above it are bracketed, e.g. ``[#]``.
    """
    flat = [v for row in values for v in row]
    if not flat:
        return title
    lo, hi = min(flat), max(flat)
    span = (hi - lo) or 1.0
    col_width = max(3, *(len(str(c)) for c in col_labels))
    lines = [title]
    header = " " * 8 + " ".join(str(c).rjust(col_width) for c in col_labels)
    lines.append(header)
    for label, row in zip(row_labels, values):
        cells = []
        for v in row:
            shade = _SHADES[int((v - lo) / span * (len(_SHADES) - 1))]
            cell = f"[{shade}]" if (mark_above is not None and v > mark_above) else f" {shade} "
            cells.append(cell.rjust(col_width))
        lines.append(f"{str(label):>7s} " + " ".join(cells))
    lines.append(f"        scale: {_fmt(lo)} (' ') .. {_fmt(hi)} ('@')"
                 + (f", [x] marks > {_fmt(mark_above)}" if mark_above is not None else ""))
    return "\n".join(lines)
