"""Engine execution and comparison utilities."""

from __future__ import annotations

import os
from dataclasses import dataclass

import numpy as np

from repro.core.config import SNICITConfig
from repro.core.pipeline import SNICIT
from repro.baselines import BF2019, DenseReference, SNIG2020, XY2021
from repro.errors import ConfigError
from repro.inference import InferenceResult
from repro.network import SparseNetwork

__all__ = ["EngineRun", "run_engine", "run_comparison", "bench_scale", "make_engine"]

_ENGINES = {
    "dense": DenseReference,
    "bf2019": BF2019,
    "snig2020": SNIG2020,
    "xy2021": XY2021,
}


def bench_scale(default: float = 1.0) -> float:
    """Batch-size multiplier from the ``REPRO_BENCH_SCALE`` env variable."""
    raw = os.environ.get("REPRO_BENCH_SCALE", "")
    if not raw:
        return default
    try:
        value = float(raw)
    except ValueError as exc:
        raise ConfigError(f"REPRO_BENCH_SCALE={raw!r} is not a number") from exc
    if value <= 0:
        raise ConfigError("REPRO_BENCH_SCALE must be positive")
    return value


@dataclass
class EngineRun:
    """One engine's result on one workload."""

    engine: str
    result: InferenceResult

    @property
    def wall_ms(self) -> float:
        return self.result.total_seconds * 1e3

    @property
    def modeled_ms(self) -> float:
        return self.result.modeled_seconds * 1e3


def make_engine(
    kind: str,
    net: SparseNetwork,
    snicit_config: SNICITConfig | None = None,
    memo=None,
    scratch=None,
    tracer=None,
    metrics=None,
    reuse=None,
):
    """Instantiate an engine by name ('snicit', 'dense', 'bf2019', ...).

    ``memo``/``scratch``/``reuse`` are forwarded to SNICIT so warm sessions
    (:class:`repro.serve.EngineSession`) can share strategy decisions,
    output buffers, and cached conversions across calls; ``tracer``/
    ``metrics`` hook the engine into :mod:`repro.obs`.  The stateless
    baselines ignore all five.
    """
    if kind == "snicit":
        if snicit_config is None:
            raise ConfigError("snicit engine needs a SNICITConfig")
        return SNICIT(
            net, snicit_config, memo=memo, scratch=scratch,
            tracer=tracer, metrics=metrics, reuse=reuse,
        )
    try:
        return _ENGINES[kind](net)
    except KeyError:
        raise ConfigError(f"unknown engine {kind!r}; known: snicit, {sorted(_ENGINES)}") from None


def run_engine(
    kind: str,
    net: SparseNetwork,
    y0: np.ndarray,
    snicit_config: SNICITConfig | None = None,
    engine=None,
    tracer=None,
    metrics=None,
) -> EngineRun:
    """Run one engine on one input block.

    Pass ``engine`` to reuse a prebuilt (warm) engine instead of
    constructing a fresh one per call — the cold-vs-warm distinction
    ``bench-serve`` measures.  ``tracer``/``metrics`` apply to freshly
    constructed engines only; a prebuilt engine keeps its own hooks.
    """
    if engine is None:
        engine = make_engine(kind, net, snicit_config, tracer=tracer, metrics=metrics)
    return EngineRun(engine=kind, result=engine.infer(y0))


def run_comparison(
    net: SparseNetwork,
    y0: np.ndarray,
    snicit_config: SNICITConfig,
    engines: tuple[str, ...] = ("snicit", "xy2021", "snig2020", "bf2019"),
    check_categories: bool = True,
) -> dict[str, EngineRun]:
    """Run several engines on the same workload; verify category agreement.

    Category agreement is the SDGC correctness criterion ("all the results
    match the golden reference", Table 3 caption).
    """
    runs = {
        kind: run_engine(kind, net, y0, snicit_config=snicit_config) for kind in engines
    }
    if check_categories and len(runs) > 1:
        kinds = list(runs)
        base = runs[kinds[0]].result.categories
        for other in kinds[1:]:
            cats = runs[other].result.categories
            if not (cats == base).all():
                raise AssertionError(
                    f"engines {kinds[0]} and {other} disagree on "
                    f"{int((cats != base).sum())} categories"
                )
    return runs
