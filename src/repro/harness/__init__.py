"""Experiment harness: regenerates every table and figure of the paper.

* :mod:`repro.harness.workloads` — cached construction of the scaled SDGC
  benchmarks and their input blocks;
* :mod:`repro.harness.medium` — the four medium-scale DNNs A-D (build, train,
  cache, export);
* :mod:`repro.harness.runner` — run engines on a workload and collect
  comparable timings;
* :mod:`repro.harness.report` — plain-text tables matching the paper's rows;
* :mod:`repro.harness.experiments` — one module per table/figure.

Scaling: every experiment accepts a ``scale`` multiplier on batch sizes and
reads the ``REPRO_BENCH_SCALE`` environment variable by default, so the full
suite can be made faster/slower without code changes.
"""

from repro.harness.runner import EngineRun, run_engine, run_comparison, bench_scale
from repro.harness.report import TextTable
from repro.harness.workloads import get_benchmark, get_input

__all__ = [
    "EngineRun",
    "run_engine",
    "run_comparison",
    "bench_scale",
    "TextTable",
    "get_benchmark",
    "get_input",
]
