"""The four medium-scale sparse DNNs of paper §4.2 (Table 4).

=====  ========  =========  ========================================
ID     N - l     dataset    architecture
=====  ========  =========  ========================================
A      128-18    MNIST      784 dense -> 18 sparse N x N -> 10 dense
B      256-18    MNIST      as A with N = 256
C      256-12    MNIST      as B with l = 12
D      256-12    CIFAR-10   3-stage conv feature extractor -> dense
                            calibration -> 12 sparse -> 10 dense
=====  ========  =========  ========================================

All sparse layers have 50-60 % density and the bounded-ReLU activation with
ymax = 1.  Networks are trained on the synthetic datasets (the paper trains
on the real ones for 150 epochs at lr 6e-5; our scaled sets converge in ~10
epochs at lr 1e-3 — DESIGN.md records the substitution) and cached on disk
so experiment reruns are cheap.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.data.loader import Dataset, train_test_split
from repro.data.synth_cifar import synth_cifar
from repro.data.synth_mnist import synth_mnist
from repro.errors import ConfigError
from repro.nn.export import SparseStack, export_sparse_stack
from repro.nn.layers import BoundedReLU, Conv2d, Dense, Flatten, MaxPool2d, SparseLinear
from repro.nn.model import Sequential

__all__ = ["MediumSpec", "MEDIUM_DNNS", "build_model", "get_trained", "TrainedMedium"]


@dataclass(frozen=True)
class MediumSpec:
    """Configuration of one medium-scale network."""

    id: str
    neurons: int
    sparse_layers: int
    dataset: str  # 'mnist' | 'cifar'
    density: float = 0.55
    train_n: int = 2400
    test_n: int = 800
    epochs: int = 10
    lr: float = 1e-3

    @property
    def name(self) -> str:
        return f"{self.neurons}-{self.sparse_layers}"


MEDIUM_DNNS: dict[str, MediumSpec] = {
    "A": MediumSpec("A", 128, 18, "mnist"),
    "B": MediumSpec("B", 256, 18, "mnist"),
    "C": MediumSpec("C", 256, 12, "mnist"),
    "D": MediumSpec("D", 256, 12, "cifar", train_n=1600, test_n=600, epochs=12),
}


def build_model(spec: MediumSpec, rng: np.random.Generator) -> Sequential:
    """Construct the untrained model for a spec (§4.2 architectures)."""
    n = spec.neurons
    layers: list = []
    if spec.dataset == "mnist":
        layers += [Flatten(), Dense(28 * 28, n, rng, name="embed"), BoundedReLU(1.0)]
    elif spec.dataset == "cifar":
        for stage, (c_in, c_out) in enumerate([(3, 8), (8, 16), (16, 16)]):
            layers += [
                Conv2d(c_in, c_out, 3, rng, padding=1, name=f"conv{stage}a"),
                BoundedReLU(1.0),
                Conv2d(c_out, c_out, 3, rng, padding=1, name=f"conv{stage}b"),
                BoundedReLU(1.0),
                MaxPool2d(),
            ]
        layers += [Flatten(), Dense(4 * 4 * 16, n, rng, name="calib"), BoundedReLU(1.0)]
    else:
        raise ConfigError(f"unknown dataset {spec.dataset!r}")
    for i in range(spec.sparse_layers):
        layers += [SparseLinear(n, n, spec.density, rng, name=f"sparse{i}"), BoundedReLU(1.0)]
    layers += [Dense(n, 10, rng, name="out")]
    return Sequential(layers, name=f"DNN-{spec.id}")


def _make_data(spec: MediumSpec, seed: int) -> tuple[Dataset, Dataset]:
    rng = np.random.default_rng(10_000 + seed)
    total = spec.train_n + spec.test_n
    if spec.dataset == "mnist":
        images, labels = synth_mnist(total, rng)
    else:
        images, labels = synth_cifar(total, rng)
    full = Dataset(images, labels)
    return train_test_split(full, spec.test_n / total, rng)


@dataclass
class TrainedMedium:
    """A trained medium network with its data and exported sparse stack."""

    spec: MediumSpec
    model: Sequential
    stack: SparseStack
    train: Dataset
    test: Dataset
    test_accuracy: float


_memory_cache: dict[tuple[str, int], TrainedMedium] = {}


def _cache_path(spec: MediumSpec, seed: int, cache_dir: Path) -> Path:
    return cache_dir / f"medium_{spec.id}_seed{seed}.npz"


def get_trained(
    dnn_id: str,
    seed: int = 0,
    cache_dir: str | Path | None = None,
    verbose: bool = False,
) -> TrainedMedium:
    """Build + train (or load from cache) one of the four networks."""
    try:
        spec = MEDIUM_DNNS[dnn_id]
    except KeyError:
        raise ConfigError(f"unknown medium DNN {dnn_id!r}; known: {sorted(MEDIUM_DNNS)}") from None
    key = (dnn_id, seed)
    if key in _memory_cache:
        return _memory_cache[key]

    rng = np.random.default_rng(20_000 + seed)
    model = build_model(spec, rng)
    train, test = _make_data(spec, seed)

    cache_dir = Path(cache_dir) if cache_dir else Path(__file__).resolve().parents[3] / ".cache"
    path = _cache_path(spec, seed, cache_dir)
    loaded = False
    if path.exists():
        data = np.load(path)
        params = model.params()
        if len(data.files) == len(params):
            for i, p in enumerate(params):
                saved = data[f"p{i}"]
                if saved.shape != p.value.shape:
                    break
                p.value[...] = saved
            else:
                loaded = True
    if not loaded:
        model.fit(
            train,
            epochs=spec.epochs,
            rng=np.random.default_rng(30_000 + seed),
            lr=spec.lr,
            verbose=verbose,
        )
        cache_dir.mkdir(parents=True, exist_ok=True)
        np.savez_compressed(path, **{f"p{i}": p.value for i, p in enumerate(model.params())})

    stack = export_sparse_stack(model, name=f"DNN-{spec.id}")
    acc = model.evaluate(test)
    trained = TrainedMedium(
        spec=spec, model=model, stack=stack, train=train, test=test, test_accuracy=acc
    )
    _memory_cache[key] = trained
    return trained
