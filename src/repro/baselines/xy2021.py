"""XY-2021 baseline (Xin et al., SDGC 2021 champion).

Published idea: generalize spMM kernels into a universal form, build an
*optimization space* of strategies, and select the performance-optimal point
with a cost model.  XY's kernels exploit the element-level sparsity of the
activations (dead neurons) but keep the full batch resident — no column
compaction — which is exactly the redundancy SNICIT removes after
convergence.

Reproduction: per layer, the engine chooses between the strategies in
:mod:`repro.kernels` (column-masked CSR for activation-sparse blocks, ELL
otherwise) either by the live-fraction cost model (the default) or by
exhaustive measurement over the space (``explore='measure'``), mirroring
XY's offline search.
"""

from __future__ import annotations

import time

import numpy as np

from repro.errors import ConfigError
from repro.gpu.device import VirtualDevice
from repro.inference import InferenceResult
from repro.kernels import champion_spmm, charge_for
from repro.network import SparseNetwork
from repro.sparse.spmm import (
    spmm_colwise,
    spmm_ell,
    spmm_masked,
    spmm_reduceat,
    spmm_tiled,
)

__all__ = ["XY2021"]

_STRATEGIES = ("masked", "ell", "reduceat", "tiled", "colwise")


class XY2021:
    """Optimization-space spMM feed-forward over the full batch."""

    name = "XY-2021"

    def __init__(
        self,
        network: SparseNetwork,
        device: VirtualDevice | None = None,
        explore: str = "model",
    ):
        if explore not in ("model", "measure"):
            raise ConfigError("explore must be 'model' or 'measure'")
        self.network = network
        self.device = device or VirtualDevice()
        self.explore = explore
        #: strategy chosen per layer on the last run (exposed for inspection)
        self.chosen: list[str] = []

    def _run_strategy(self, strategy: str, i: int, y: np.ndarray) -> tuple[np.ndarray, int]:
        layer = self.network.layers[i]
        if strategy == "masked":
            live = (y != 0).any(axis=1)
            return spmm_masked(layer.weight, y, live)
        if strategy == "ell":
            return spmm_ell(self.network.ell(i), y), layer.weight.nnz
        if strategy == "colwise":
            return spmm_colwise(self.network.dense(i), y)
        if strategy == "tiled":
            return spmm_tiled(layer.weight, y), layer.weight.nnz
        return spmm_reduceat(layer.weight, y), layer.weight.nnz

    def _candidates(self, i: int) -> tuple[str, ...]:
        # materializing a dense W only pays off for the medium-scale layers;
        # for SDGC-sparse weights the colwise point of the space is pruned
        if self.network.layers[i].weight.density >= 0.2:
            return _STRATEGIES
        return tuple(s for s in _STRATEGIES if s != "colwise")

    def _measure_best(self, i: int, y: np.ndarray) -> str:
        best, best_t = "ell", float("inf")
        for strategy in self._candidates(i):
            t0 = time.perf_counter()
            self._run_strategy(strategy, i, y)
            dt = time.perf_counter() - t0
            if dt < best_t:
                best, best_t = strategy, dt
        return best

    def infer(self, y0: np.ndarray) -> InferenceResult:
        net = self.network
        y = net.validate_input(y0).astype(np.float32, copy=True)
        layer_seconds = np.zeros(net.num_layers)
        self.chosen = []
        mark = self.device.snapshot()
        wall0 = time.perf_counter()
        for i, layer in enumerate(net.layers):
            lt0 = time.perf_counter()
            if self.explore == "measure":
                strategy = self._measure_best(i, y)
                z, work = self._run_strategy(strategy, i, y)
            else:
                z, work, strategy = champion_spmm(net, i, y)
            self.chosen.append(strategy)
            z += layer.bias_column()
            y = net.activation(z)
            self.device.charge(
                charge_for(strategy, work, layer.n_out, y.shape[1], f"xy_{strategy}")
            )
            layer_seconds[i] = time.perf_counter() - lt0
        total = time.perf_counter() - wall0
        return InferenceResult(
            y=y,
            stage_seconds={"inference": total},
            layer_seconds=layer_seconds,
            modeled={"inference": self.device.snapshot() - mark},
            stats={"strategies": list(self.chosen)},
        )
