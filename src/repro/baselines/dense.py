"""Plain feed-forward reference engine.

No compression, no compaction, no kernel tricks: every layer multiplies the
full weight matrix with the full activation block.  This is the correctness
oracle every other engine is checked against, and the stand-in for the
official SDGC CPU baseline in Table 3's "speed-up over baseline" column.
"""

from __future__ import annotations

import time

import numpy as np

from repro.gpu.device import VirtualDevice
from repro.inference import InferenceResult
from repro.network import SparseNetwork
from repro.sparse.spmm import spmm_charge, spmm_reduceat

__all__ = ["DenseReference"]


class DenseReference:
    """Layer-by-layer sparse feed-forward over the full batch."""

    name = "DenseReference"

    def __init__(self, network: SparseNetwork, device: VirtualDevice | None = None):
        self.network = network
        self.device = device or VirtualDevice()

    def infer(self, y0: np.ndarray) -> InferenceResult:
        net = self.network
        y = net.validate_input(y0).astype(np.float32, copy=True)
        layer_seconds = np.zeros(net.num_layers)
        mark = self.device.snapshot()
        wall0 = time.perf_counter()
        for i, layer in enumerate(net.layers):
            lt0 = time.perf_counter()
            z = spmm_reduceat(layer.weight, y)
            z += layer.bias_column()
            y = net.activation(z)
            self.device.charge(
                spmm_charge(layer.weight.nnz, y.shape[1], layer.n_out, name="dense_spmm")
            )
            layer_seconds[i] = time.perf_counter() - lt0
        total = time.perf_counter() - wall0
        return InferenceResult(
            y=y,
            stage_seconds={"inference": total},
            layer_seconds=layer_seconds,
            modeled={"inference": self.device.snapshot() - mark},
        )
