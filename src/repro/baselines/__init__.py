"""Reimplementations of the SDGC champions used as baselines (paper §4.1.1).

Each baseline captures the published algorithmic idea of its champion:

* :class:`~repro.baselines.dense.DenseReference` — the straightforward
  per-layer feed-forward (the correctness oracle; analogous to the official
  SDGC serial baseline, vectorized so experiments finish).
* :class:`~repro.baselines.bf2019.BF2019` — Bisson & Fatica 2019: the input
  batch is partitioned across (simulated) GPUs and *dead columns are
  compacted away* after every layer, so work tracks the surviving inputs.
* :class:`~repro.baselines.snig2020.SNIG2020` — Lin & Huang 2020: inference
  as a task graph over batch partitions; per-partition dead-column elision
  plus stream-level overlap (modeled via the virtual device's task-graph
  scheduler).
* :class:`~repro.baselines.xy2021.XY2021` — Xin et al. 2021: a kernel
  optimization space (ELL / row-split CSR / scatter) searched with a cost
  model, picking the best spMM strategy per layer; no column compaction —
  which is exactly the redundancy SNICIT removes post-convergence.

All baselines produce output equal to :class:`DenseReference` (tested) and
share the :class:`~repro.inference.InferenceResult` interface.
"""

from repro.baselines.dense import DenseReference
from repro.baselines.bf2019 import BF2019
from repro.baselines.snig2020 import SNIG2020
from repro.baselines.xy2021 import XY2021

__all__ = ["DenseReference", "BF2019", "SNIG2020", "XY2021"]
