"""SNIG-2020 baseline (Lin & Huang, SDGC 2020 champion).

Published idea: express the whole inference as a *GPU task graph* — the
batch is split into partitions, each partition's per-layer kernels become
graph nodes, and the CUDA-graph scheduler overlaps partitions across
streams, eliminating the per-layer CPU-GPU synchronization that BF-2019
pays.  A partition whose inputs have all died is retired early.

Fidelity note: SNIG's published kernels keep each live partition's full
column block resident (the win is overlap and the removal of host
synchronization); per-column compaction is BF's device-side trick and
element-level sparsity exploitation is XY's — so this reimplementation
grants SNIG *partition-level* dead-input elision only.  DESIGN.md records
the interpretation.

Modeled latency = cost-model kernel durations scheduled over ``n_streams``
streams via the task-graph list scheduler (overlap), replacing the serial
sum a single-stream engine would pay.
"""

from __future__ import annotations

import time

import numpy as np

from repro.errors import ConfigError
from repro.gpu.costmodel import CostSnapshot
from repro.gpu.device import VirtualDevice
from repro.gpu.stream import TaskGraph, simulate_schedule
from repro.inference import InferenceResult
from repro.kernels import baseline_spmm, charge_for
from repro.network import SparseNetwork

__all__ = ["SNIG2020"]


class SNIG2020:
    """Task-graph pipelined feed-forward over batch partitions."""

    name = "SNIG-2020"

    def __init__(
        self,
        network: SparseNetwork,
        device: VirtualDevice | None = None,
        n_partitions: int = 4,
        n_streams: int = 4,
    ):
        if n_partitions < 1 or n_streams < 1:
            raise ConfigError("n_partitions and n_streams must be >= 1")
        self.network = network
        self.device = device or VirtualDevice()
        self.n_partitions = n_partitions
        self.n_streams = n_streams

    def infer(self, y0: np.ndarray) -> InferenceResult:
        net = self.network
        y_full = net.validate_input(y0).astype(np.float32, copy=True)
        batch = y_full.shape[1]
        n_parts = min(self.n_partitions, batch) or 1
        bounds = np.linspace(0, batch, n_parts + 1).astype(np.int64)
        layer_seconds = np.zeros(net.num_layers)
        mark = self.device.snapshot()
        wall0 = time.perf_counter()

        graph = TaskGraph()
        durations: dict[str, float] = {}
        out = np.zeros((net.output_dim, batch), dtype=np.float32)
        retired_at: list[int] = []

        for p in range(n_parts):
            lo, hi = bounds[p], bounds[p + 1]
            y = np.ascontiguousarray(y_full[:, lo:hi])
            prev_task: str | None = None
            retired = net.num_layers
            for i, layer in enumerate(net.layers):
                lt0 = time.perf_counter()
                if not (y != 0).any():
                    # the whole partition died: retire it (SNIG's early exit)
                    y = np.zeros((layer.n_out, y.shape[1]), dtype=np.float32)
                    retired = min(retired, i)
                    layer_seconds[i] += time.perf_counter() - lt0
                    continue
                z, work, strategy = baseline_spmm(net, i, y)
                z += layer.bias_column()
                y = net.activation(z)
                charge = charge_for(
                    strategy, work, layer.n_out, y.shape[1], f"snig_p{p}_l{i}"
                )
                modeled = self.device.charge(charge)
                task_name = f"p{p}/l{i}"
                graph.task(task_name, deps=[prev_task] if prev_task else [])
                durations[task_name] = modeled
                prev_task = task_name
                layer_seconds[i] += time.perf_counter() - lt0
            out[:, lo:hi] = y
            retired_at.append(retired)
        total = time.perf_counter() - wall0

        # Modeled makespan over streams: the ledger summed everything
        # serially; replace the spMM portion with the overlapped schedule.
        makespan, _ = simulate_schedule(graph, durations, n_streams=self.n_streams)
        serial = sum(durations.values())
        ledger = self.device.snapshot() - mark
        overlapped = CostSnapshot(
            launches=ledger.launches,
            flops=ledger.flops,
            bytes_read=ledger.bytes_read,
            bytes_written=ledger.bytes_written,
            atomics=ledger.atomics,
            barriers=ledger.barriers,
            h2d_bytes=ledger.h2d_bytes,
            d2h_bytes=ledger.d2h_bytes,
            modeled_seconds=ledger.modeled_seconds - serial + makespan,
        )
        return InferenceResult(
            y=out,
            stage_seconds={"inference": total},
            layer_seconds=layer_seconds,
            modeled={"inference": overlapped},
            stats={
                "n_partitions": n_parts,
                "n_streams": self.n_streams,
                "makespan": makespan,
                "serial_kernel_time": serial,
                "retired_at": retired_at,
            },
        )
