"""BF-2019 baseline (Bisson & Fatica, SDGC 2019 champion).

Published idea: partition the input batch across GPUs, and after every layer
*compact away the inputs whose activations are entirely zero*, so downstream
layers only touch surviving columns.  On the SDGC dynamics (most inputs die,
§4.1 of the paper and our calibrated Radix-Net regime) this removes most of
the work in deep layers — but unlike SNICIT it cannot exploit similarity
among the *surviving* columns.

We reproduce: batch partitioning over ``n_partitions`` simulated GPUs (the
modeled latency of a layer is the slowest partition, plus the all-gather
that BF performs between layers), per-layer dead-column compaction, and the
ELL kernel for the regular Radix-Net fan-in.
"""

from __future__ import annotations

import time

import numpy as np

from repro.errors import ConfigError
from repro.gpu.device import VirtualDevice
from repro.inference import InferenceResult
from repro.kernels import baseline_spmm, charge_for
from repro.network import SparseNetwork

__all__ = ["BF2019"]


class BF2019:
    """Batch-partitioned feed-forward with dead-column compaction."""

    name = "BF-2019"

    def __init__(
        self,
        network: SparseNetwork,
        device: VirtualDevice | None = None,
        n_partitions: int = 4,
    ):
        if n_partitions < 1:
            raise ConfigError("n_partitions must be >= 1")
        self.network = network
        self.device = device or VirtualDevice()
        self.n_partitions = n_partitions

    def infer(self, y0: np.ndarray) -> InferenceResult:
        net = self.network
        y_full = net.validate_input(y0).astype(np.float32, copy=True)
        batch = y_full.shape[1]
        layer_seconds = np.zeros(net.num_layers)
        mark = self.device.snapshot()
        wall0 = time.perf_counter()

        # active column bookkeeping: engine computes only surviving columns
        active = np.flatnonzero((y_full != 0).any(axis=0)).astype(np.int64)
        y = np.ascontiguousarray(y_full[:, active])
        part_bounds = np.linspace(0, batch, self.n_partitions + 1).astype(np.int64)
        alive_trace: list[int] = []
        for i, layer in enumerate(net.layers):
            lt0 = time.perf_counter()
            z, work, strategy = baseline_spmm(net, i, y)
            z += layer.bias_column()
            y = net.activation(z)
            keep = (y != 0).any(axis=0)
            active = active[keep]
            y = np.ascontiguousarray(y[:, keep])
            alive_trace.append(len(active))
            # modeled: each partition multiplies its share of surviving
            # columns; the layer costs as much as the busiest partition
            per_part = np.histogram(active, bins=part_bounds)[0]
            worst = int(per_part.max()) if len(per_part) else 0
            if strategy == "colwise":  # activation pairs split across partitions
                work = int(work * worst / max(1, len(active)))
            self.device.charge(charge_for(strategy, work, layer.n_out, worst, "bf_spmm"))
            # BF's documented per-layer host synchronization: the surviving
            # activation block round-trips through the host for compaction
            # and redistribution across GPUs (the overhead SNIG-2020 was
            # built to remove)
            nbytes = float(len(active)) * layer.n_out * 4
            self.device.cost.charge_d2h(nbytes)
            self.device.cost.charge_h2d(nbytes)
            layer_seconds[i] = time.perf_counter() - lt0
        total = time.perf_counter() - wall0

        out = np.zeros((net.output_dim, batch), dtype=np.float32)
        out[:, active] = y
        return InferenceResult(
            y=out,
            stage_seconds={"inference": total},
            layer_seconds=layer_seconds,
            modeled={"inference": self.device.snapshot() - mark},
            stats={"alive_trace": np.array(alive_trace), "n_partitions": self.n_partitions},
        )
