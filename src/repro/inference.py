"""Common interface shared by SNICIT and the baseline engines.

Every engine takes a :class:`~repro.network.SparseNetwork` (plus a
:class:`~repro.gpu.device.VirtualDevice` for cost accounting) and exposes
``infer(y0) -> InferenceResult``.  Results carry the dense output ``Y(l)``,
wall-clock stage/layer timings, and cost-model snapshots, so the harness can
compare engines on equal terms.

The SDGC correctness check is :func:`sdgc_categories`: the contest's golden
reference marks which *inputs* still have any nonzero activation at the last
layer; two engines agree iff their category vectors match.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Protocol

import numpy as np

from repro.gpu.costmodel import CostSnapshot

__all__ = ["InferenceResult", "Engine", "sdgc_categories"]


def sdgc_categories(y_last: np.ndarray) -> np.ndarray:
    """Boolean vector over inputs: True where the column has any nonzero."""
    return (y_last != 0).any(axis=0)


@dataclass
class InferenceResult:
    """Output of one engine run."""

    y: np.ndarray
    #: wall-clock seconds per named stage (engine-specific stage names;
    #: SNICIT uses the paper's four: pre_convergence, conversion,
    #: post_convergence, recovery)
    stage_seconds: dict[str, float]
    #: wall-clock seconds per layer, length = network depth
    layer_seconds: np.ndarray
    #: cost-model snapshot *deltas* per stage (same keys as stage_seconds)
    modeled: dict[str, CostSnapshot] = field(default_factory=dict)
    #: engine-specific extras (centroid counts, empty-column traces, ...)
    stats: dict[str, Any] = field(default_factory=dict)

    @property
    def categories(self) -> np.ndarray:
        """SDGC golden-reference categories (inputs alive at the last layer)."""
        return sdgc_categories(self.y)

    @property
    def total_seconds(self) -> float:
        return float(sum(self.stage_seconds.values()))

    @property
    def modeled_seconds(self) -> float:
        return float(sum(s.modeled_seconds for s in self.modeled.values()))

    def to_json(self, include_output: bool = False) -> dict[str, Any]:
        """A ``json.dumps``-able view of the run.

        ``stats`` holds NumPy arrays (``centroid_cols``,
        ``active_columns_trace``, ``empty_columns_trace``) that crash a
        naive ``json.dumps``; everything is converted here.  The dense
        output block is excluded unless ``include_output`` — reports want
        telemetry, not megabytes of activations.
        """
        from repro.obs import json_safe

        out: dict[str, Any] = {
            "stage_seconds": json_safe(self.stage_seconds),
            "layer_seconds": json_safe(self.layer_seconds),
            "modeled": json_safe(self.modeled),
            "stats": json_safe(self.stats),
            "total_seconds": self.total_seconds,
            "modeled_seconds": self.modeled_seconds,
        }
        if include_output:
            out["y"] = json_safe(self.y)
        return out


class Engine(Protocol):
    """Structural type implemented by SNICIT and every baseline."""

    name: str

    def infer(self, y0: np.ndarray) -> InferenceResult:  # pragma: no cover - protocol
        ...
