"""Network (de)serialization.

Stores a :class:`~repro.network.SparseNetwork` in a single ``.npz``: per
layer the CSR triplet plus bias, and the network-level metadata as JSON.
This complements the SDGC ``.tsv`` interchange format
(:mod:`repro.radixnet.io`), which stores one layer per text file.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.errors import FormatError
from repro.network import LayerSpec, SparseNetwork
from repro.sparse.csr import CSRMatrix

__all__ = ["save_network", "load_network"]

_FORMAT_VERSION = 1


def save_network(path: str | Path, net: SparseNetwork) -> None:
    """Write the network to ``path`` (.npz)."""
    arrays: dict[str, np.ndarray] = {}
    header = {
        "format_version": _FORMAT_VERSION,
        "name": net.name,
        "ymax": net.ymax,
        "num_layers": net.num_layers,
        "meta": net.meta,
        "layer_names": [layer.name for layer in net.layers],
    }
    for i, layer in enumerate(net.layers):
        w = layer.weight
        arrays[f"l{i}_indptr"] = w.indptr
        arrays[f"l{i}_indices"] = w.indices
        arrays[f"l{i}_data"] = w.data
        arrays[f"l{i}_shape"] = np.array(w.shape, dtype=np.int64)
        if isinstance(layer.bias, np.ndarray):
            arrays[f"l{i}_bias"] = layer.bias
        else:
            arrays[f"l{i}_bias"] = np.array(float(layer.bias), dtype=np.float64)
    arrays["header"] = np.frombuffer(json.dumps(header).encode(), dtype=np.uint8)
    np.savez_compressed(path, **arrays)


def load_network(path: str | Path) -> SparseNetwork:
    """Read a network written by :func:`save_network`."""
    data = np.load(path)
    if "header" not in data:
        raise FormatError(f"{path}: not a repro network file (missing header)")
    header = json.loads(bytes(data["header"]).decode())
    if header.get("format_version") != _FORMAT_VERSION:
        raise FormatError(
            f"{path}: unsupported format version {header.get('format_version')}"
        )
    layers: list[LayerSpec] = []
    for i in range(header["num_layers"]):
        shape = tuple(int(x) for x in data[f"l{i}_shape"])
        weight = CSRMatrix(
            data[f"l{i}_indptr"], data[f"l{i}_indices"], data[f"l{i}_data"], shape
        )
        bias_arr = data[f"l{i}_bias"]
        bias = bias_arr if bias_arr.ndim else float(bias_arr)
        layers.append(LayerSpec(weight, bias=bias, name=header["layer_names"][i]))
    return SparseNetwork(
        layers, ymax=header["ymax"], name=header["name"], meta=header["meta"]
    )
