"""Analysis utilities: t-SNE, cluster metrics, convergence diagnostics.

These support the paper's motivating Figure 1 (t-SNE of intermediate results
at layers 2/4/8 plus the computational-intensity curve) and the convergence
analysis behind the threshold-layer choice.
"""

from repro.analysis.tsne import tsne
from repro.analysis.metrics import (
    cluster_separation,
    column_convergence_curve,
    computational_intensity,
    intra_inter_distances,
)

__all__ = [
    "tsne",
    "cluster_separation",
    "intra_inter_distances",
    "column_convergence_curve",
    "computational_intensity",
]
