"""Cluster and convergence metrics over intermediate results.

These quantify the two phenomena SNICIT relies on (paper Fig. 1):

* *centralization* — columns of the same class drawing together over layers
  (:func:`intra_inter_distances`, :func:`cluster_separation`);
* *convergence* — layer-to-layer change of each column dying out
  (:func:`column_convergence_curve`), which justifies a threshold layer;
* the resulting drop in *computational intensity* once the sparse
  representation kicks in (:func:`computational_intensity`, the Fig. 1 line
  chart).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError

__all__ = [
    "intra_inter_distances",
    "cluster_separation",
    "column_convergence_curve",
    "computational_intensity",
]


def intra_inter_distances(
    y: np.ndarray, labels: np.ndarray, tol: float = 0.0
) -> tuple[float, float]:
    """Mean within-class and between-class column L0 distance fractions.

    Distance between two columns is the fraction of entries differing by
    more than ``tol``.  Returns ``(intra, inter)``.
    """
    if y.ndim != 2 or labels.shape != (y.shape[1],):
        raise ShapeError("y must be (N, B) with one label per column")
    n = y.shape[0]
    intra_parts: list[float] = []
    for c in np.unique(labels):
        cols = y[:, labels == c]
        if cols.shape[1] < 2:
            continue
        diffs = np.abs(cols[:, 1:] - cols[:, :1]) > tol
        intra_parts.append(float(diffs.mean()))
    rng = np.random.default_rng(0)
    perm = rng.permutation(y.shape[1])
    inter = float((np.abs(y - y[:, perm]) > tol).mean())
    intra = float(np.mean(intra_parts)) if intra_parts else 0.0
    return intra, inter


def cluster_separation(y: np.ndarray, labels: np.ndarray, tol: float = 0.0) -> float:
    """``inter / max(intra, 1/N)`` — larger means tighter class clusters."""
    intra, inter = intra_inter_distances(y, labels, tol)
    return inter / max(intra, 1.0 / y.shape[0])


def column_convergence_curve(
    snapshots: list[np.ndarray], tol: float = 1e-6
) -> np.ndarray:
    """Fraction of entries changing between consecutive layer snapshots."""
    if len(snapshots) < 2:
        raise ShapeError("need at least two snapshots")
    out = np.empty(len(snapshots) - 1)
    for i in range(1, len(snapshots)):
        out[i - 1] = float((np.abs(snapshots[i] - snapshots[i - 1]) > tol).mean())
    return out


def computational_intensity(
    nnz_per_layer: int, active_columns_trace: np.ndarray, batch: int, threshold_layer: int
) -> np.ndarray:
    """Per-layer multiply-accumulate counts with and without compression.

    Returns an array of length ``threshold_layer + len(trace)``: before the
    threshold layer the full batch is processed; after it, only the active
    columns — the Fig. 1 "computational intensity" curve.
    """
    pre = np.full(threshold_layer, float(nnz_per_layer) * batch)
    post = nnz_per_layer * active_columns_trace.astype(np.float64)
    return np.concatenate([pre, post])
