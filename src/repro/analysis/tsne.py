"""Exact t-SNE (van der Maaten & Hinton, 2008).

Used to regenerate the scatter plots of paper Figure 1: intermediate results
of a batch embedded in 2-D, showing class clusters centralizing across
layers.  This is the exact O(n^2) algorithm (no Barnes-Hut) with the
standard refinements: perplexity calibration by bisection, early
exaggeration, and momentum gradient descent.  Sample counts in the
experiments are a few hundred, for which exact t-SNE is the right tool.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError, ShapeError

__all__ = ["tsne"]


def _pairwise_sq_dists(x: np.ndarray) -> np.ndarray:
    sq = (x * x).sum(axis=1)
    d2 = sq[:, None] + sq[None, :] - 2.0 * (x @ x.T)
    np.maximum(d2, 0.0, out=d2)
    np.fill_diagonal(d2, 0.0)
    return d2


def _calibrate_p(d2: np.ndarray, perplexity: float, tol: float = 1e-4, max_iter: int = 64):
    """Per-point bisection on the Gaussian bandwidth to hit the perplexity."""
    n = d2.shape[0]
    target = np.log(perplexity)
    p = np.zeros((n, n))
    for i in range(n):
        beta_lo, beta_hi = 0.0, np.inf
        beta = 1.0
        di = np.delete(d2[i], i)
        for _ in range(max_iter):
            w = np.exp(-di * beta)
            s = w.sum()
            if s <= 0:
                h = 0.0
                pi = np.zeros_like(w)
            else:
                pi = w / s
                # Shannon entropy of the conditional distribution
                nz = pi > 0
                h = float(-(pi[nz] * np.log(pi[nz])).sum())
            if abs(h - target) < tol:
                break
            if h > target:  # too flat -> narrow the kernel
                beta_lo = beta
                beta = beta * 2 if beta_hi == np.inf else (beta + beta_hi) / 2
            else:
                beta_hi = beta
                beta = beta / 2 if beta_lo == 0.0 else (beta + beta_lo) / 2
        p[i, np.arange(n) != i] = pi
    return p


def tsne(
    x: np.ndarray,
    n_components: int = 2,
    perplexity: float = 30.0,
    n_iter: int = 500,
    learning_rate: float = 200.0,
    seed: int = 0,
    early_exaggeration: float = 12.0,
) -> np.ndarray:
    """Embed rows of ``x`` into ``n_components`` dimensions.

    Returns an ``(n, n_components)`` array.  Deterministic for a fixed seed.
    """
    x = np.asarray(x, dtype=np.float64)
    if x.ndim != 2:
        raise ShapeError("tsne expects a 2-D (samples, features) array")
    n = x.shape[0]
    if n < 4:
        raise ConfigError("tsne needs at least 4 samples")
    perplexity = min(perplexity, (n - 1) / 3.0)
    if perplexity < 1:
        raise ConfigError("perplexity too small for the sample count")

    p_cond = _calibrate_p(_pairwise_sq_dists(x), perplexity)
    p = (p_cond + p_cond.T) / (2.0 * n)
    np.maximum(p, 1e-12, out=p)

    rng = np.random.default_rng(seed)
    y = rng.normal(0.0, 1e-4, size=(n, n_components))
    velocity = np.zeros_like(y)
    gains = np.ones_like(y)
    exaggeration_end = min(250, n_iter // 2)
    for it in range(n_iter):
        d2 = _pairwise_sq_dists(y)
        num = 1.0 / (1.0 + d2)
        np.fill_diagonal(num, 0.0)
        q = num / num.sum()
        np.maximum(q, 1e-12, out=q)
        p_eff = p * early_exaggeration if it < exaggeration_end else p
        pq = (p_eff - q) * num
        grad = 4.0 * ((np.diag(pq.sum(axis=1)) - pq) @ y)
        momentum = 0.5 if it < exaggeration_end else 0.8
        sign_agree = np.sign(grad) == np.sign(velocity)
        gains = np.where(sign_agree, gains * 0.8, gains + 0.2)
        np.maximum(gains, 0.01, out=gains)
        velocity = momentum * velocity - learning_rate * gains * grad
        y = y + velocity
        y -= y.mean(axis=0)
    return y
