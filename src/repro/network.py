"""Shared inference-network representation.

Every engine in this repo (SNICIT and the three champion baselines) consumes
a :class:`SparseNetwork`: an ordered stack of sparse linear layers with a
shared bounded-ReLU activation

    sigma(x) = min(max(x + bias, 0), ymax)

which is the SDGC contest activation (ymax = 32) and, with ymax = 1, the
activation used for the paper's medium-scale DNNs (§4.2).

Layer weights are stored as CSR; ELL and CSC views are derived lazily and
cached because different engines prefer different layouts (ELL for the
fixed-fan-in Radix-Net kernels, CSC for active-column gathering).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.errors import ConfigError, ShapeError
from repro.sparse.csc import CSCMatrix
from repro.sparse.csr import CSRMatrix
from repro.sparse.ell import ELLMatrix
from repro.sparse.convert import csr_to_csc

__all__ = ["LayerSpec", "SparseNetwork", "clamped_relu"]


def clamped_relu(x: np.ndarray, ymax: float) -> np.ndarray:
    """The SDGC activation: ReLU with an upper bound, applied in place."""
    np.clip(x, 0.0, ymax, out=x)
    return x


@dataclass
class LayerSpec:
    """One sparse linear layer: ``y = sigma(W @ x + bias)``.

    ``bias`` may be a scalar (SDGC uses one constant per benchmark) or a
    per-output-neuron vector (trained medium-scale DNNs).
    """

    weight: CSRMatrix
    bias: float | np.ndarray = 0.0
    name: str = ""

    def __post_init__(self) -> None:
        if isinstance(self.bias, np.ndarray) and self.bias.shape != (self.weight.shape[0],):
            raise ShapeError(
                f"bias vector {self.bias.shape} does not match {self.weight.shape[0]} outputs"
            )

    @property
    def n_out(self) -> int:
        return self.weight.shape[0]

    @property
    def n_in(self) -> int:
        return self.weight.shape[1]

    def bias_column(self) -> np.ndarray:
        """Bias as an ``(n_out, 1)`` column for broadcasting over a batch."""
        if isinstance(self.bias, np.ndarray):
            return self.bias[:, None]
        return np.full((self.n_out, 1), self.bias, dtype=np.float32)


class SparseNetwork:
    """An immutable stack of sparse layers with a bounded-ReLU activation."""

    def __init__(
        self,
        layers: list[LayerSpec],
        ymax: float = 32.0,
        name: str = "network",
        meta: dict[str, Any] | None = None,
    ):
        if not layers:
            raise ConfigError("a network needs at least one layer")
        if ymax <= 0:
            raise ConfigError(f"ymax must be positive, got {ymax}")
        for prev, nxt in zip(layers, layers[1:]):
            if prev.n_out != nxt.n_in:
                raise ShapeError(
                    f"layer {prev.name or '?'} outputs {prev.n_out} but "
                    f"{nxt.name or '?'} expects {nxt.n_in}"
                )
        self.layers = list(layers)
        self.ymax = float(ymax)
        self.name = name
        self.meta: dict[str, Any] = dict(meta or {})
        self._ell_cache: dict[int, ELLMatrix] = {}
        self._csc_cache: dict[int, CSCMatrix] = {}
        self._dense_cache: dict[int, np.ndarray] = {}
        self._fingerprint: str | None = None

    @property
    def num_layers(self) -> int:
        return len(self.layers)

    @property
    def input_dim(self) -> int:
        return self.layers[0].n_in

    @property
    def output_dim(self) -> int:
        return self.layers[-1].n_out

    @property
    def total_nnz(self) -> int:
        return sum(layer.weight.nnz for layer in self.layers)

    def activation(self, x: np.ndarray) -> np.ndarray:
        """Apply the network's clamped ReLU in place and return ``x``."""
        return clamped_relu(x, self.ymax)

    def ell(self, i: int) -> ELLMatrix:
        """Layer ``i``'s weight in ELL format (cached)."""
        if i not in self._ell_cache:
            self._ell_cache[i] = ELLMatrix.from_csr(self.layers[i].weight)
        return self._ell_cache[i]

    def csc(self, i: int) -> CSCMatrix:
        """Layer ``i``'s weight in CSC format (cached)."""
        if i not in self._csc_cache:
            self._csc_cache[i] = csr_to_csc(self.layers[i].weight)
        return self._csc_cache[i]

    def dense(self, i: int) -> np.ndarray:
        """Layer ``i``'s weight as a dense array (cached).

        Only sensible for the medium-scale networks whose layers are 50-60 %
        dense; SDGC layers (density < 1 %) should stay in ELL/CSR.
        """
        if i not in self._dense_cache:
            self._dense_cache[i] = self.layers[i].weight.to_dense().astype(np.float32)
        return self._dense_cache[i]

    @property
    def fingerprint(self) -> str:
        """Stable identity of this network: name, topology, and weight digest.

        Caches that outlive a single network — a shared
        :class:`~repro.kernels.StrategyMemo` or
        :class:`~repro.core.reuse.CentroidCache` in a multi-model server —
        key their entries by this, so two networks that happen to share a
        layer index can never replay each other's state.  Shape and nnz
        alone do not separate same-topology networks built from different
        seeds, so the per-layer weight sums are folded in too.  Computed
        once (O(total nnz)) and cached; layers are immutable after
        construction.
        """
        if self._fingerprint is None:
            digest = hashlib.blake2b(digest_size=8)
            digest.update(self.name.encode())
            digest.update(np.float64(self.ymax).tobytes())
            for layer in self.layers:
                digest.update(
                    np.array(
                        [layer.n_in, layer.n_out, layer.weight.nnz], dtype=np.int64
                    ).tobytes()
                )
                digest.update(np.float64(layer.weight.data.sum()).tobytes())
                bias = layer.bias
                bias_sum = bias.sum() if isinstance(bias, np.ndarray) else bias
                digest.update(np.float64(bias_sum).tobytes())
            self._fingerprint = digest.hexdigest()
        return self._fingerprint

    # ------------------------------------------------- view-cache accounting
    def view_nbytes(self) -> int:
        """Bytes retained by the cached ELL/CSC/dense weight views.

        This is the "pinned weight views" share of a warm serving session's
        footprint — what a :class:`~repro.gpu.memory.MemoryBudget` meters
        and :meth:`drop_views` releases on warm-to-cold demotion.
        """
        total = 0
        for ell in self._ell_cache.values():
            total += ell.idx.nbytes + ell.val.nbytes
        for csc in self._csc_cache.values():
            total += csc.indptr.nbytes + csc.indices.nbytes + csc.data.nbytes
        for dense in self._dense_cache.values():
            total += dense.nbytes
        return total

    def drop_views(self) -> int:
        """Release every cached weight view; returns the bytes freed.

        The CSR source of truth is untouched, so views rebuild lazily (and
        identically) on next use — demotion is a perf event, never a
        correctness one.  Note the caches live on the network object: if two
        sessions share one network instance, dropping views cools both.
        """
        freed = self.view_nbytes()
        self._ell_cache.clear()
        self._csc_cache.clear()
        self._dense_cache.clear()
        return freed

    def validate_input(self, y0: np.ndarray) -> np.ndarray:
        y0 = np.asarray(y0)
        if y0.ndim != 2 or y0.shape[0] != self.input_dim:
            raise ShapeError(
                f"input must be ({self.input_dim}, B), got {y0.shape}"
            )
        return y0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SparseNetwork({self.name!r}, layers={self.num_layers}, "
            f"neurons={self.input_dim}, nnz={self.total_nnz})"
        )
