"""The SNICIT inference engine (paper Fig. 2, §3).

Orchestrates the four stages — pre-convergence feed-forward, cluster-based
conversion, post-convergence update, final recovery — with per-stage and
per-layer wall-clock timing plus cost-model accounting on the virtual
device, so every experiment of §4 can be regenerated.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.config import SNICITConfig
from repro.core.conversion import convert
from repro.core.pruning import prune_samples, select_centroids
from repro.core.recovery import recover_compact
from repro.core.reuse import CentroidCache, degenerate_fill_baselines
from repro.core.sampling import sample_columns, sum_downsample
from repro.core.postconv import update_compact, update_residues_external
from repro.gpu.costmodel import KernelCharge
from repro.gpu.device import VirtualDevice
from repro.gpu.memory import BufferPool
from repro.inference import InferenceResult
from repro.kernels import (
    StrategyMemo,
    assign_cached_centroids,
    assign_charge,
    champion_spmm,
    charge_for,
)
from repro.network import SparseNetwork
from repro.obs import as_tracer

__all__ = ["SNICIT"]


class SNICIT:
    """Compression-at-inference-time engine.

    Parameters
    ----------
    network:
        The sparse DNN to run.
    config:
        Pipeline parameters; ``config.threshold_layer`` is clamped to the
        network depth.
    device:
        Virtual device for cost accounting (a fresh one per engine by
        default).
    memo:
        Optional :class:`~repro.kernels.StrategyMemo`.  A warm session passes
        one so champion strategy decisions are replayed across calls instead
        of re-derived per layer.
    scratch:
        Optional :class:`~repro.gpu.memory.BufferPool`.  When given, the
        pre-convergence layers ping-pong between pooled output buffers via
        the kernels' ``out=`` parameters instead of allocating a fresh
        ``(N, B)`` block per layer — the allocation amortization a
        persistent :class:`~repro.serve.EngineSession` relies on.
    tracer:
        Optional :class:`~repro.obs.Tracer`.  When given, every run emits a
        request -> stage -> layer -> kernel span tree, with each kernel span
        carrying its :class:`~repro.gpu.costmodel.KernelCharge` (modeled
        flops/bytes next to wall time).  ``None`` means the shared no-op
        tracer — the hot path pays nothing.
    metrics:
        Optional :class:`~repro.obs.MetricsRegistry` for strategy-decision
        counters (``spmm_strategy_total``).
    reuse:
        Optional :class:`~repro.core.reuse.CentroidCache`.  A warm session
        passes one so the layer-``t`` centroids (and their post-convergence
        evolution) carry across consecutive blocks: stage 2 then becomes
        *assign-only* on a cache hit — new columns are matched against the
        cached centroids and only their residues are computed, skipping
        sample pruning and the centroid feed-forward entirely.  The cache's
        staleness policy forces a full re-conversion (which refills the
        entry) when the block's assignment distance or residue density
        drifts past the configured budget.
    plan:
        Optional :class:`~repro.core.plan.StrategyPlan` baked at session
        warmup.  When set, every spMM dispatch goes through the plan's
        frozen per-layer decision instead of the memoized champion — a tuple
        index instead of a memo lookup per layer.  Strategy choice never
        changes results (all spMM kernels accumulate identically), so a
        planned engine stays bitwise identical to an unplanned one.
    """

    name = "SNICIT"

    def __init__(
        self,
        network: SparseNetwork,
        config: SNICITConfig,
        device: VirtualDevice | None = None,
        memo: StrategyMemo | None = None,
        scratch: BufferPool | None = None,
        tracer=None,
        metrics=None,
        reuse: CentroidCache | None = None,
        plan=None,
    ):
        self.network = network
        self.config = config.for_network(network.num_layers)
        self.device = device or VirtualDevice()
        self.memo = memo
        self.scratch = scratch
        self.tracer = as_tracer(tracer)
        self.metrics = metrics
        self.reuse = reuse
        self.plan = plan
        # residue arithmetic (Eq. 4-6) needs a fixed activation width from the
        # threshold layer onward; reject shape-changing post-convergence
        # layers up front rather than failing mid-inference.  With
        # auto_threshold the detector may fire anywhere, so all layers must
        # be square.
        first_checked = 0 if self.config.auto_threshold else self.config.threshold_layer
        for i in range(first_checked, network.num_layers):
            layer = network.layers[i]
            if layer.n_out != layer.n_in:
                from repro.errors import ConfigError

                raise ConfigError(
                    f"post-convergence layer {i} is {layer.n_out}x{layer.n_in}; "
                    "SNICIT's residue representation requires square layers "
                    "after the threshold"
                )
        # ELL views for the fixed-fan-in fast path are built lazily and cached
        # on the network itself, shared across engines.

    # ------------------------------------------------------------------ run
    def infer(self, y0: np.ndarray) -> InferenceResult:
        """Run the full pipeline on input block ``Y(0)`` of shape (N, B)."""
        net = self.network
        cfg = self.config
        tracer = self.tracer
        y0 = net.validate_input(y0).astype(np.float32, copy=True)
        t = cfg.threshold_layer
        batch = y0.shape[1]
        with tracer.span(
            "snicit.infer", cat="request", engine=self.name,
            benchmark=net.name, batch=batch,
        ) as req_span:
            result = self._infer_traced(y0, t, batch, req_span)
        return result

    def _infer_traced(self, y0, t: int, batch: int, req_span) -> InferenceResult:
        net = self.network
        cfg = self.config
        tracer = self.tracer
        layer_seconds = np.zeros(net.num_layers)
        stage_seconds: dict[str, float] = {}
        modeled: dict[str, object] = {}
        dev = self.device
        mark = dev.snapshot()

        # ---- stage 1: pre-convergence sparse matrix multiplication -------
        wall0 = time.perf_counter()
        y = y0
        detector = None
        if cfg.auto_threshold:
            from repro.core.convergence import ConvergenceDetector

            detector = ConvergenceDetector(
                tolerance=cfg.auto_tolerance,
                patience=cfg.auto_patience,
                probe_columns=cfg.sample_size,
                probe_dim=cfg.downsample_dim or cfg.sample_size,
            )
            detector.observe(y)
        with tracer.span("pre_convergence", cat="stage") as stage_span:
            for i in range(t):
                lt0 = time.perf_counter()
                with tracer.span(f"layer {i}", cat="layer", layer=i):
                    y = self._feedforward_layer(i, y)
                layer_seconds[i] = time.perf_counter() - lt0
                if detector is not None and detector.observe(y):
                    t = i + 1  # converged early: convert here (paper §5 extension)
                    break
            stage_span.set(layers=t, threshold_layer=t)
        stage_seconds["pre_convergence"] = time.perf_counter() - wall0
        modeled["pre_convergence"] = dev.snapshot() - mark
        mark = dev.snapshot()

        # Degenerate threshold: conversion never fires before the last layer
        # (explicit t == num_layers, or the auto detector staying quiet), so
        # there is nothing to compress.  Skip stages 2-4 entirely — sampling,
        # pruning, converting and then discarding the result would charge
        # conversion/recovery kernels to the cost model and pollute the stage
        # timings of what is really a pure feed-forward run.
        if t >= net.num_layers:
            for name in ("conversion", "post_convergence", "recovery"):
                # zero wall clock, zero modeled delta — but still advance the
                # mark per stage so the ledger and the span tree agree on
                # stage boundaries (each entry is its own empty window, not a
                # cumulative diff against the pre-convergence mark)
                with tracer.span(name, cat="stage", skipped=True):
                    stage_seconds[name] = 0.0
                    modeled[name] = dev.snapshot() - mark
                    mark = dev.snapshot()
            # pooled buffers are recycled by the next call; detach the result
            if self.scratch is not None and self.scratch.owns(y):
                y = y.copy()
            stats = {
                "threshold_layer": t,
                "auto_detected": False,
                "convergence_trace": list(detector.trace) if detector is not None else [],
                "n_centroids": 0,
                "centroid_cols": np.empty(0, np.int64),
                "active_columns_trace": np.array([]),
                "empty_columns_trace": np.array([]),
            }
            req_span.set(threshold_layer=t, n_centroids=0, degenerate_threshold=True)
            return InferenceResult(
                y=y,
                stage_seconds=stage_seconds,
                layer_seconds=layer_seconds,
                modeled=modeled,
                stats=stats,
            )

        # ---- stage 2: cluster-based conversion ---------------------------
        # With a centroid cache, try the cross-block assign-only path first:
        # match the block against a previous conversion's centroids and keep
        # only the residues, skipping sampling/pruning/centroid feed-forward.
        wall0 = time.perf_counter()
        reused = None
        reuse_info: dict | None = None
        capture = False
        with tracer.span("conversion", cat="stage") as stage_span:
            if self.reuse is not None:
                reused, reuse_info = self._try_reuse(y, t, stage_span)
            if reused is None:
                f0 = sample_columns(y, cfg.sample_size)
                if cfg.downsample_dim is not None:
                    f = sum_downsample(f0, cfg.downsample_dim)
                else:
                    f = f0
                col_idx = prune_samples(f, cfg.eta, cfg.eps)
                cent_cols = select_centroids(col_idx)
                if len(cent_cols) == 0:  # degenerate but possible with eta=inf-like configs
                    cent_cols = np.array([0], dtype=np.int64)
                with tracer.span("conversion_kernel", cat="kernel") as kernel_span:
                    yhat, m, ne_rec = convert(y, cent_cols, cfg.prune_threshold)
                    ne_idx = self._refresh_ne_idx(ne_rec, m)
                    charge = KernelCharge(
                        name="conversion",
                        flops=float(f.size * f.shape[1] + y.size * len(cent_cols)),
                        bytes_read=float(y.nbytes * 2),
                        bytes_written=float(yhat.nbytes),
                    )
                    kernel_span.charge(charge, dev.charge(charge))
                capture = (
                    self.reuse is not None
                    and len(cent_cols) <= self.reuse.max_centroids
                )
                if capture:
                    # fill-time staleness baseline: how far the block's own
                    # columns sit from their chosen centroids (pre-prune L0)
                    # and how dense their residues are post-prune
                    nc_mask = m != -1
                    if nc_mask.any():
                        baseline_distance = float(
                            (y[:, nc_mask] != y[:, m[nc_mask]]).mean()
                        )
                        baseline_density = float((yhat[:, nc_mask] != 0).mean())
                    else:
                        # degenerate conversion (every column its own
                        # centroid): no residue columns to baseline against,
                        # so fall back to the centroid set's own spacing —
                        # zero baselines would mark every later mix block
                        # stale and churn the cache
                        baseline_distance, baseline_density = (
                            degenerate_fill_baselines(
                                y[:, cent_cols], cfg.prune_threshold
                            )
                        )
                stage_span.set(
                    n_centroids=int(len(cent_cols)),
                    sampled_columns=int(f0.shape[1]),
                    active_columns=int(len(ne_idx)),
                )
        stage_seconds["conversion"] = time.perf_counter() - wall0
        modeled["conversion"] = dev.snapshot() - mark
        mark = dev.snapshot()

        if reused is not None:
            assign, residues, cached = reused
            return self._finish_reused(
                assign, residues, cached, t, batch, detector,
                layer_seconds, stage_seconds, modeled, mark, req_span, reuse_info,
            )

        # ---- stage 3: post-convergence update -----------------------------
        # The representation is kept *compacted*: only the ne_idx columns of
        # Ŷ are materialized, exactly as the paper launches size(ne_idx)
        # blocks.  Emptiness of residue columns is monotone, so columns are
        # only ever dropped (at ne_idx refreshes), never re-added; centroids
        # are pinned.
        wall0 = time.perf_counter()
        empties: list[int] = []
        active_trace: list[int] = []
        trajectory: list[np.ndarray] = []
        with tracer.span("post_convergence", cat="stage") as stage_span:
            sub = yhat[:, ne_idx]
            is_cent = m[ne_idx] == -1
            cent_pos = np.searchsorted(ne_idx, m[ne_idx[~is_cent]])
            ne_rec_sub = np.ones(len(ne_idx), dtype=bool)
            for i in range(t, net.num_layers):
                lt0 = time.perf_counter()
                layer = net.layers[i]
                with tracer.span(
                    f"layer {i}", cat="layer", layer=i, active_columns=int(len(ne_idx))
                ) as layer_span:
                    with tracer.span("load_reduced_spmm", cat="kernel", layer=i) as ks:
                        z_sub, work, strategy = self._spmm(i, sub)
                        charge = charge_for(
                            strategy, work, layer.n_out, len(ne_idx), "load_reduced_spmm"
                        )
                        ks.set(strategy=strategy, work=int(work))
                        ks.charge(charge, dev.charge(charge))
                    if capture:
                        # centroid evolution for cross-block reuse: the spMM
                        # output of the centroid columns, in sorted-centroid
                        # order (the mask indexing copies)
                        trajectory.append(z_sub[:, is_cent])
                    bias = layer.bias if isinstance(layer.bias, np.ndarray) else float(layer.bias)
                    with tracer.span("update_centroids_residues", cat="kernel", layer=i) as ku:
                        sub, ne_rec_sub = update_compact(
                            z_sub, bias, is_cent, cent_pos, net.ymax, cfg.prune_threshold
                        )
                        charge = KernelCharge(
                            name="update_centroids_residues",
                            flops=float(4 * layer.n_out * len(ne_idx)),
                            bytes_read=float(2 * layer.n_out * len(ne_idx) * 4),
                            bytes_written=float(layer.n_out * len(ne_idx) * 4),
                        )
                        ku.charge(charge, dev.charge(charge))
                    active_trace.append(len(ne_idx))
                    empties.append(batch - int(ne_rec_sub.sum()))
                    if (i - t) % cfg.ne_idx_interval == cfg.ne_idx_interval - 1:
                        keep = ne_rec_sub | is_cent
                        if not keep.all():
                            ne_idx = ne_idx[keep]
                            sub = sub[:, keep]
                            is_cent = is_cent[keep]
                            cent_pos = np.searchsorted(ne_idx, m[ne_idx[~is_cent]])
                    layer_span.set(empty_columns=empties[-1])
                layer_seconds[i] = time.perf_counter() - lt0
            stage_span.set(
                active_columns_start=active_trace[0] if active_trace else 0,
                active_columns_end=int(len(ne_idx)),
                residues_pruned=empties[-1] if empties else 0,
            )
        stage_seconds["post_convergence"] = time.perf_counter() - wall0
        modeled["post_convergence"] = dev.snapshot() - mark
        mark = dev.snapshot()

        if capture:
            # the next same-mix block can now convert assign-only
            self.reuse.fill(
                t,
                cent_y=y[:, cent_cols],
                z_cent=trajectory,
                cent_final=sub[:, is_cent],
                baseline_distance=baseline_distance,
                baseline_density=baseline_density,
                network=net,
            )

        # ---- stage 4: final results recovery ------------------------------
        wall0 = time.perf_counter()
        with tracer.span("recovery", cat="stage") as stage_span:
            with tracer.span("recovery_kernel", cat="kernel") as kernel_span:
                # scatter + centroid add-back in one pass: the full-width
                # Ŷ(L) never materializes separately from the result
                y_final = recover_compact(sub, ne_idx, m, net.output_dim)
                charge = KernelCharge(
                    name="recovery",
                    flops=float(y_final.size),
                    bytes_read=float(y_final.nbytes),
                    bytes_written=float(y_final.nbytes),
                )
                kernel_span.charge(charge, dev.charge(charge))
        stage_seconds["recovery"] = time.perf_counter() - wall0
        modeled["recovery"] = dev.snapshot() - mark

        stats = {
            "threshold_layer": t,
            "auto_detected": detector is not None and t < cfg.threshold_layer,
            "convergence_trace": list(detector.trace) if detector is not None else [],
            "n_centroids": int(len(cent_cols)),
            "centroid_cols": cent_cols,
            "active_columns_trace": np.array(active_trace),
            "empty_columns_trace": np.array(empties),
        }
        if reuse_info is not None:
            stats["centroid_reuse"] = reuse_info
        req_span.set(
            threshold_layer=t,
            n_centroids=int(len(cent_cols)),
            active_columns_end=int(len(ne_idx)),
            residues_pruned=empties[-1] if empties else 0,
        )
        return InferenceResult(
            y=y_final,
            stage_seconds=stage_seconds,
            layer_seconds=layer_seconds,
            modeled=modeled,
            stats=stats,
        )

    # ------------------------------------------------- cross-block reuse
    def _try_reuse(self, y: np.ndarray, t: int, stage_span):
        """Attempt assign-only conversion against the centroid cache.

        Returns ``((assign, residues, entry), info)`` on a hit or
        ``(None, info)`` when the cache is cold or the staleness policy
        rejects the block; ``info`` is the JSON-safe record that lands in
        ``result.stats['centroid_reuse']`` either way.
        """
        cfg = self.config
        dev = self.device
        tracer = self.tracer
        cached = self.reuse.lookup(t, y.shape[0], network=self.network)
        if cached is None:
            stage_span.set(reuse="miss")
            return None, {"enabled": True, "hit": False, "reason": "cold"}
        with tracer.span(
            "assign_cached_kernel", cat="kernel", n_centroids=cached.n_centroids
        ) as ks:
            assign, dist = assign_cached_centroids(y, cached.cent_y)
            charge = assign_charge(y.shape[0], y.shape[1], cached.n_centroids)
            ks.charge(charge, dev.charge(charge))
        with tracer.span("reuse_residues_kernel", cat="kernel") as kr:
            residues = y - cached.cent_y[:, assign]
            if cfg.prune_threshold > 0:
                residues[np.abs(residues) < cfg.prune_threshold] = 0
            charge = KernelCharge(
                name="reuse_residues",
                flops=float(residues.size),
                bytes_read=float(y.nbytes) * 2,
                bytes_written=float(residues.nbytes),
            )
            kr.charge(charge, dev.charge(charge))
        mean_distance = float(dist.mean()) / y.shape[0] if dist.size else 0.0
        density = float((residues != 0).mean()) if residues.size else 0.0
        info = {
            "enabled": True,
            "n_centroids": cached.n_centroids,
            "assignment_distance": mean_distance,
            "residue_density": density,
        }
        if not self.reuse.admit(cached, mean_distance, density):
            stage_span.set(reuse="invalidated")
            info.update(hit=False, reason="stale")
            return None, info
        info["hit"] = True
        stage_span.set(reuse="hit", n_centroids=cached.n_centroids)
        return (assign, residues, cached), info

    def _finish_reused(
        self, assign, residues, cached, t: int, batch: int, detector,
        layer_seconds, stage_seconds, modeled, mark, req_span, reuse_info,
    ) -> InferenceResult:
        """Stages 3-4 of the assign-only path.

        Every block column is a residue against an external cached centroid:
        the post-convergence loop feeds only residues through the
        load-reduced spMM and takes the centroid side of Eq. 5 from the
        cached trajectory; recovery gathers the cached final centroids and
        adds the surviving residues back.  With no in-block centroids there
        is nothing to pin, so the active set can shrink all the way to
        empty — the remaining layers then cost nothing.
        """
        net = self.network
        cfg = self.config
        tracer = self.tracer
        dev = self.device

        # ---- stage 3: post-convergence update (residues only) ------------
        wall0 = time.perf_counter()
        empties: list[int] = []
        active_trace: list[int] = []
        ne_idx = np.flatnonzero((residues != 0).any(axis=0)).astype(np.int64)
        with tracer.span("post_convergence", cat="stage", reuse="hit") as stage_span:
            sub = residues[:, ne_idx]
            asg = assign[ne_idx]
            for i in range(t, net.num_layers):
                lt0 = time.perf_counter()
                layer = net.layers[i]
                with tracer.span(
                    f"layer {i}", cat="layer", layer=i, active_columns=int(len(ne_idx))
                ) as layer_span:
                    if len(ne_idx):
                        with tracer.span("load_reduced_spmm", cat="kernel", layer=i) as ks:
                            z_sub, work, strategy = self._spmm(i, sub)
                            charge = charge_for(
                                strategy, work, layer.n_out, len(ne_idx),
                                "load_reduced_spmm",
                            )
                            ks.set(strategy=strategy, work=int(work))
                            ks.charge(charge, dev.charge(charge))
                        bias = (
                            layer.bias if isinstance(layer.bias, np.ndarray)
                            else float(layer.bias)
                        )
                        with tracer.span(
                            "update_residues_external", cat="kernel", layer=i
                        ) as ku:
                            z_cent = cached.z_cent[i - t][:, asg]
                            sub, ne_rec_sub = update_residues_external(
                                z_sub, z_cent, bias, net.ymax, cfg.prune_threshold
                            )
                            charge = KernelCharge(
                                name="update_residues_external",
                                flops=float(4 * layer.n_out * len(ne_idx)),
                                bytes_read=float(3 * layer.n_out * len(ne_idx) * 4),
                                bytes_written=float(layer.n_out * len(ne_idx) * 4),
                            )
                            ku.charge(charge, dev.charge(charge))
                        empty_now = batch - int(ne_rec_sub.sum())
                        active_trace.append(len(ne_idx))
                        empties.append(empty_now)
                        if (i - t) % cfg.ne_idx_interval == cfg.ne_idx_interval - 1:
                            if not ne_rec_sub.all():
                                ne_idx = ne_idx[ne_rec_sub]
                                sub = sub[:, ne_rec_sub]
                                asg = asg[ne_rec_sub]
                    else:
                        empty_now = batch  # everything resolved to a centroid
                        active_trace.append(0)
                        empties.append(empty_now)
                    layer_span.set(empty_columns=empty_now)
                layer_seconds[i] = time.perf_counter() - lt0
            stage_span.set(
                active_columns_start=active_trace[0] if active_trace else 0,
                active_columns_end=int(len(ne_idx)),
                residues_pruned=empties[-1] if empties else 0,
            )
        stage_seconds["post_convergence"] = time.perf_counter() - wall0
        modeled["post_convergence"] = dev.snapshot() - mark
        mark = dev.snapshot()

        # ---- stage 4: recovery from the cached final centroids -----------
        wall0 = time.perf_counter()
        with tracer.span("recovery", cat="stage", reuse="hit"):
            with tracer.span("recovery_kernel", cat="kernel") as kernel_span:
                y_final = cached.cent_final[:, assign]  # gather copies
                if len(ne_idx):
                    y_final[:, ne_idx] += sub
                charge = KernelCharge(
                    name="recovery",
                    flops=float(y_final.size),
                    bytes_read=float(y_final.nbytes) * 2,
                    bytes_written=float(y_final.nbytes),
                )
                kernel_span.charge(charge, dev.charge(charge))
        stage_seconds["recovery"] = time.perf_counter() - wall0
        modeled["recovery"] = dev.snapshot() - mark

        stats = {
            "threshold_layer": t,
            "auto_detected": detector is not None and t < cfg.threshold_layer,
            "convergence_trace": list(detector.trace) if detector is not None else [],
            "n_centroids": cached.n_centroids,
            # centroids live in the cache, not the block
            "centroid_cols": np.empty(0, np.int64),
            "active_columns_trace": np.array(active_trace),
            "empty_columns_trace": np.array(empties),
            "centroid_reuse": reuse_info,
        }
        req_span.set(
            threshold_layer=t,
            n_centroids=cached.n_centroids,
            active_columns_end=int(len(ne_idx)),
            residues_pruned=empties[-1] if empties else 0,
            centroid_reuse="hit",
        )
        return InferenceResult(
            y=y_final,
            stage_seconds=stage_seconds,
            layer_seconds=layer_seconds,
            modeled=modeled,
            stats=stats,
        )

    # ------------------------------------------------------------- helpers
    def _spmm(self, i: int, y: np.ndarray, out: np.ndarray | None = None):
        """One spMM dispatch: baked plan when present, champion otherwise."""
        if self.plan is not None:
            return self.plan.dispatch(self.network, i, y, out=out)
        return champion_spmm(
            self.network, i, y, memo=self.memo, out=out, metrics=self.metrics
        )

    def _feedforward_layer(self, i: int, y: np.ndarray) -> np.ndarray:
        """One pre-convergence layer.

        Uses the shared champion kernel (§3.1: "The implementation of any
        previous SDGC champion can be easily incorporated here"), which is
        exactly what the XY-2021 baseline runs — so pre-convergence latency
        matches XY's per-layer latency, as the paper reports (§4.1).
        """
        net = self.network
        layer = net.layers[i]
        out = None
        if self.scratch is not None:
            # ping-pong: never hand the kernel its own input as the output
            out = self.scratch.take((layer.n_out, y.shape[1]), y.dtype, avoid=y)
        with self.tracer.span("pre_spmm", cat="kernel", layer=i) as ks:
            z, work, strategy = self._spmm(i, y, out=out)
            z += layer.bias_column()
            charge = charge_for(strategy, work, layer.n_out, y.shape[1], "pre_spmm")
            ks.set(strategy=strategy, work=int(work))
            ks.charge(charge, self.device.charge(charge))
        return net.activation(z)

    def _refresh_ne_idx(self, ne_rec: np.ndarray, m: np.ndarray) -> np.ndarray:
        """Rebuild ``ne_idx`` from ``ne_rec``; centroids are always kept."""
        keep = ne_rec | (m == -1)
        return np.flatnonzero(keep).astype(np.int64)
