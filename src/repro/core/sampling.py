"""Column sampling and sum downsampling (paper §3.2.1, Fig. 3a).

Centroid selection needs only a coarse sketch of ``Y(t)``.  Column sampling
takes the first ``s`` columns (the dataset is shuffled, so the first ``s``
columns are a uniform sample — the paper's argument via threshold-separated
clustering [36] requires ``s >> k`` classes).  Sum downsampling then
compresses each sampled column from ``N`` to ``n`` values by summing
``N / n``-element segments, which a GPU does with one parallel reduction per
segment.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError, ShapeError

__all__ = ["sample_columns", "sum_downsample"]


def sample_columns(y: np.ndarray, s: int) -> np.ndarray:
    """First ``s`` columns of ``Y(t)`` (clamped to the batch size)."""
    if y.ndim != 2:
        raise ShapeError(f"Y must be 2-D, got {y.ndim}-D")
    if s < 1:
        raise ConfigError("sample size must be >= 1")
    return y[:, : min(s, y.shape[1])]


def sum_downsample(f0: np.ndarray, n: int) -> np.ndarray:
    """Reduce ``(N, s)`` samples to ``(n, s)`` segment sums.

    Segments are as equal as possible: the first ``N % n`` segments get one
    extra element (the paper assumes ``n | N``; we generalize so scaled
    benchmarks with any N work).
    """
    if f0.ndim != 2:
        raise ShapeError(f"F must be 2-D, got {f0.ndim}-D")
    big_n = f0.shape[0]
    if n < 1:
        raise ConfigError("downsample dim must be >= 1")
    if n >= big_n:
        return f0.copy()
    base = big_n // n
    sizes = np.full(n, base, dtype=np.int64)
    sizes[: big_n % n] += 1
    starts = np.zeros(n, dtype=np.int64)
    np.cumsum(sizes[:-1], out=starts[1:])
    return np.add.reduceat(f0, starts, axis=0)
