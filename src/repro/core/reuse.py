"""Cross-block centroid reuse (the warm conversion cache).

Under micro-batched serving every block pays the full SNICIT conversion —
sampling, sum downsampling, sample pruning (Algorithm 1), closest-centroid
residues (Algorithm 2) — even when consecutive blocks come from the same
traffic mix and would produce near-identical centroids.  Caching structure
across requests is the trick SNICIT itself plays *within* one inference;
:class:`CentroidCache` extends it *across* inferences, the way cache-based
early exit (:mod:`repro.related.cache_exit`) reuses historical activations
and SparseDNN-style engines specialize to the observed sparsity pattern.

One :class:`CachedConversion` entry stores, for a threshold layer ``t``:

* the centroid activations ``Y*(t)`` fixed at conversion time,
* their whole post-convergence evolution — the per-layer spMM outputs
  ``z* = W(i) @ Y*(i)`` that residue columns need for Eq. 5, and the final
  centroid activations ``Y*(l)`` that recovery (Eq. 6) adds back,
* the fill-time quality baseline (mean assignment L0 distance and mean
  post-prune residue density).

A warm hit turns stage 2 into *assign-only*: new columns are matched
against the cached centroids (the downsample-F / L0-distance machinery of
Algorithms 1-2, batched in :func:`repro.kernels.assign_cached_centroids`)
and only their residues are computed — sample pruning and the centroid
feed-forward are skipped entirely.  Because the residue algebra of Eq. 4-6
telescopes exactly for *any* centroid (``W(y* + r) = Wy* + Wr``), the
assign-only path is lossless whenever residue pruning is off, and matches
the paper's approximation quality otherwise.

Quality is guarded by an explicit staleness policy: each reused block's
mean assignment distance and residue density are compared against the
fill-time baseline scaled by ``1 + tolerance``; drifting past either budget
invalidates the entry and forces a full re-conversion (which refills the
cache with the new mix).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigError

__all__ = ["CachedConversion", "CentroidCache", "degenerate_fill_baselines"]

#: Cap (elements) on the pairwise scratch in degenerate_fill_baselines.
_PAIRWISE_ELEMENTS = 2_000_000


def degenerate_fill_baselines(
    cent_y: np.ndarray, prune_threshold: float = 0.0
) -> tuple[float, float]:
    """Staleness baselines for a *degenerate* fill (every column a centroid).

    The natural fill-time baseline — how far the block's residue columns sit
    from their centroids — does not exist when sample pruning kept every
    column: there are no residue columns, so the naive baselines are 0.0 and
    the ``baseline * (1 + tolerance)`` budget admits nothing.  Every
    same-mix block then invalidates the entry as "stale" and refills it,
    block after block, which is exactly the medium-tier mix-stream churn
    this helper fixes.

    The self-consistent scale for such an entry is the centroid set's own
    spacing: each centroid's L0 distance to its nearest *other* centroid
    (and the post-prune density of that nearest-neighbour residue) is what a
    same-mix column's assignment cost looks like.  Returns
    ``(baseline_distance, baseline_density)`` — distance as a fraction of N,
    matching :meth:`CentroidCache.admit`'s units.
    """
    n, c = cent_y.shape
    if n == 0 or c < 2:
        return 0.0, 0.0
    nn = np.empty(c, dtype=np.int64)
    nn_dist = np.empty(c, dtype=np.int64)
    chunk = max(1, _PAIRWISE_ELEMENTS // max(1, n * c))
    for lo in range(0, c, chunk):
        hi = min(c, lo + chunk)
        # (N, chunk, C) inequality count -> (chunk, C); mask self-distances
        d = (cent_y[:, lo:hi, None] != cent_y[:, None, :]).sum(axis=0)
        d[np.arange(hi - lo), np.arange(lo, hi)] = n + 1
        best = d.argmin(axis=1)
        nn[lo:hi] = best
        nn_dist[lo:hi] = d[np.arange(hi - lo), best]
    residues = cent_y - cent_y[:, nn]
    if prune_threshold > 0:
        residues[np.abs(residues) < prune_threshold] = 0
    return (
        float(nn_dist.mean()) / n,
        float((residues != 0).mean()),
    )


@dataclass
class CachedConversion:
    """One cached conversion: centroids, their evolution, and the baseline."""

    #: threshold layer the entry was filled at
    threshold_layer: int
    #: centroid activations at the threshold layer, shape ``(N, C)``
    cent_y: np.ndarray
    #: per post-convergence layer: spMM output of the centroid columns
    #: (``W(i) @ Y*(i)``, *without* bias), each shape ``(n_out, C)``
    z_cent: list[np.ndarray] = field(default_factory=list)
    #: centroid activations after the last layer, shape ``(N, C)``
    cent_final: np.ndarray | None = None
    #: fill-time mean L0 assignment distance (fraction of N) of the
    #: non-centroid columns to their centroids
    baseline_distance: float = 0.0
    #: fill-time mean post-prune residue density of the non-centroid columns
    baseline_density: float = 0.0
    #: how many blocks this entry has served assign-only
    served_blocks: int = 0
    #: scope of the filling network (its fingerprint); ``None`` for the
    #: legacy unscoped cache — see :meth:`CentroidCache.lookup`
    network_key: str | None = None

    @property
    def n_centroids(self) -> int:
        return self.cent_y.shape[1]

    @property
    def nbytes(self) -> int:
        """Retained bytes: centroids, their trajectory, and the final state."""
        total = self.cent_y.nbytes
        total += sum(z.nbytes for z in self.z_cent)
        if self.cent_final is not None:
            total += self.cent_final.nbytes
        return total


class CentroidCache:
    """Warm conversion state shared across consecutive blocks of a session.

    Parameters
    ----------
    tolerance:
        Staleness budget.  A reused block is admitted while its mean
        assignment distance and residue density stay within
        ``baseline * (1 + tolerance)``; ``0`` admits only blocks that are at
        least as close to the cached centroids as the fill block was to its
        own (so an identical repeated stream still hits, but any drift
        forces re-conversion).
    max_centroids:
        Entries with more centroids than this are not cached — assignment
        against a huge centroid set costs more than it saves, and a
        conversion that barely clustered has no structure worth reusing.
    """

    def __init__(self, tolerance: float = 0.5, max_centroids: int = 512):
        if tolerance < 0:
            raise ConfigError(f"reuse tolerance must be >= 0, got {tolerance}")
        if max_centroids < 1:
            raise ConfigError(f"max_centroids must be >= 1, got {max_centroids}")
        self.tolerance = float(tolerance)
        self.max_centroids = int(max_centroids)
        #: (network scope, threshold layer) -> entry.  The network scope is
        #: part of the key on purpose: a cache visible to two tenants with
        #: the same threshold layer must never serve one network's centroids
        #: to the other (the residue algebra would silently be computed
        #: against foreign centroids).
        self._entries: dict[tuple[str | None, int], CachedConversion] = {}
        self.hits = 0
        self.misses = 0
        self.fills = 0
        self.skipped_fills = 0
        self.invalidations: dict[str, int] = {}
        #: last observed per-block quality (None until the first reuse attempt)
        self.last_distance: float | None = None
        self.last_density: float | None = None
        self._c_hits = None
        self._c_misses = None
        self._c_fills = None
        self._c_invalidations = None
        self._registry = None

    # ----------------------------------------------------------- metrics
    def bind_metrics(self, registry) -> "CentroidCache":
        """Mirror cache activity onto a :class:`~repro.obs.MetricsRegistry`.

        Publishes ``centroid_cache_{hits,misses,fills}_total``, per-reason
        ``centroid_cache_invalidations_total{reason=...}``, an ``entries``
        gauge, and gauges for the last observed assignment distance and
        residue density (the staleness signals).
        """
        self._registry = registry
        self._c_hits = registry.counter(
            "centroid_cache_hits_total", help="blocks converted assign-only"
        )
        self._c_misses = registry.counter(
            "centroid_cache_misses_total", help="blocks with no cached conversion"
        )
        self._c_fills = registry.counter(
            "centroid_cache_fills_total", help="full conversions captured into the cache"
        )
        gauge = registry.gauge("centroid_cache_entries", help="cached conversions held")
        registry.on_collect(lambda _reg: gauge.set(len(self._entries)))
        return self

    def _observe_quality(self, distance: float, density: float) -> None:
        self.last_distance = float(distance)
        self.last_density = float(density)
        if self._registry is not None:
            self._registry.gauge(
                "centroid_reuse_assignment_distance",
                help="mean L0 assignment distance (fraction of N) of the last reused block",
            ).set(self.last_distance)
            self._registry.gauge(
                "centroid_reuse_residue_density",
                help="mean residue density of the last reused block",
            ).set(self.last_density)

    # ------------------------------------------------------------ lookups
    @staticmethod
    def _scope(network) -> str | None:
        """Cache scope for a network: its fingerprint (or a raw string key)."""
        if network is None:
            return None
        return getattr(network, "fingerprint", network)

    def lookup(
        self, threshold_layer: int, n_rows: int, network=None
    ) -> CachedConversion | None:
        """Entry for ``(network, threshold_layer)``, or ``None`` (a miss).

        ``network`` scopes the entry to one network identity (pass the
        :class:`~repro.network.SparseNetwork`, or its fingerprint string);
        ``None`` is the legacy single-network scope.  An entry filled under
        one scope is invisible to every other — cross-tenant isolation is a
        property of the key, not of caller discipline.
        """
        entry = self._entries.get((self._scope(network), threshold_layer))
        if entry is not None and entry.cent_y.shape[0] != n_rows:
            # network width changed under us (defensive; scopes are keyed by
            # network identity so this should not happen in practice)
            self._invalidate_entry(entry, reason="shape")
            entry = None
        if entry is None:
            self.misses += 1
            if self._c_misses is not None:
                self._c_misses.inc()
        return entry

    def admit(
        self, entry: CachedConversion, distance: float, density: float
    ) -> bool:
        """Staleness policy: admit the block or invalidate the entry.

        ``distance`` is the block's mean L0 assignment distance as a
        fraction of N; ``density`` its mean post-prune residue density.
        Both are compared against the entry's fill-time baseline scaled by
        ``1 + tolerance``.  Returns True on a hit; on a drift the entry is
        dropped (counted under the drifting signal's reason) and the caller
        falls back to a full conversion, which refills the cache.
        """
        self._observe_quality(distance, density)
        slack = 1.0 + self.tolerance
        if distance > entry.baseline_distance * slack + 1e-12:
            self._invalidate_entry(entry, reason="distance")
            return False
        if density > entry.baseline_density * slack + 1e-12:
            self._invalidate_entry(entry, reason="density")
            return False
        entry.served_blocks += 1
        self.hits += 1
        if self._c_hits is not None:
            self._c_hits.inc()
        return True

    # ----------------------------------------------------------- mutation
    def fill(
        self,
        threshold_layer: int,
        cent_y: np.ndarray,
        z_cent: list[np.ndarray],
        cent_final: np.ndarray,
        baseline_distance: float,
        baseline_density: float,
        network=None,
    ) -> bool:
        """Capture a full conversion; returns False when it is not cacheable.

        ``network`` scopes the entry exactly as in :meth:`lookup`.
        """
        if cent_y.shape[1] > self.max_centroids:
            self.skipped_fills += 1
            return False
        scope = self._scope(network)
        self._entries[(scope, threshold_layer)] = CachedConversion(
            threshold_layer=threshold_layer,
            network_key=scope,
            cent_y=cent_y,
            z_cent=z_cent,
            cent_final=cent_final,
            baseline_distance=float(baseline_distance),
            baseline_density=float(baseline_density),
        )
        self.fills += 1
        if self._c_fills is not None:
            self._c_fills.inc()
        return True

    def export_entries(self) -> list[CachedConversion]:
        """Every cached conversion, in deterministic key order (for warmstore)."""
        return [
            self._entries[key]
            for key in sorted(self._entries, key=lambda k: (k[0] or "", k[1]))
        ]

    def adopt(self, entry: CachedConversion) -> None:
        """Insert a restored entry under its own scope without counting a fill.

        The warmstore load path uses this so a resumed session's ``fills``
        counter reflects conversions *it* performed, not history replay; the
        entry keeps its fill-time baselines and ``served_blocks`` tally.
        """
        self._entries[(entry.network_key, entry.threshold_layer)] = entry

    def _count_invalidations(self, dropped: int, reason: str) -> None:
        self.invalidations[reason] = self.invalidations.get(reason, 0) + dropped
        if self._registry is not None:
            self._registry.counter(
                "centroid_cache_invalidations_total",
                help="cache entries dropped, by staleness reason",
                reason=reason,
            ).inc(dropped)

    def _invalidate_entry(self, entry: CachedConversion, reason: str) -> None:
        """Drop exactly one entry by its own key (scope-safe)."""
        if self._entries.pop((entry.network_key, entry.threshold_layer), None) is not None:
            self._count_invalidations(1, reason)

    def invalidate(self, threshold_layer: int | None = None, reason: str = "manual") -> int:
        """Drop entries (all, or every scope's entry at one threshold layer),
        counting the reason.  Returns the number of drops."""
        if threshold_layer is None:
            dropped = len(self._entries)
            self._entries.clear()
        else:
            keys = [key for key in self._entries if key[1] == threshold_layer]
            for key in keys:
                del self._entries[key]
            dropped = len(keys)
        if dropped:
            self._count_invalidations(dropped, reason)
        return dropped

    # ------------------------------------------------------------ metrics
    def __len__(self) -> int:
        return len(self._entries)

    @property
    def nbytes(self) -> int:
        """Bytes retained across every cached conversion (all scopes)."""
        return sum(entry.nbytes for entry in self._entries.values())

    def stats(self) -> dict:
        """Lifetime counters plus the last observed staleness signals."""
        return {
            "entries": len(self._entries),
            "nbytes": self.nbytes,
            "hits": self.hits,
            "misses": self.misses,
            "fills": self.fills,
            "skipped_fills": self.skipped_fills,
            "invalidations": dict(self.invalidations),
            "tolerance": self.tolerance,
            "last_distance": self.last_distance,
            "last_density": self.last_density,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CentroidCache(entries={len(self._entries)}, hits={self.hits}, "
            f"misses={self.misses}, tolerance={self.tolerance})"
        )
