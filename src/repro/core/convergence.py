"""Dynamic threshold-layer detection (the paper's stated future work, §5).

The published SNICIT takes the threshold layer ``t`` as a hyper-parameter
("we plan to develop a dynamic data-driven approach for determining
threshold t").  This module implements that extension: a cheap online
detector that watches a sampled sketch of the activations during
pre-convergence and fires when the layer-to-layer change rate stays below a
tolerance for a few consecutive layers.

The sketch reuses the machinery of §3.2.1: the first ``probe_columns``
columns, sum-downsampled to ``probe_dim`` values, so the per-layer overhead
is O(N x probe_columns) — negligible next to the spMM.
"""

from __future__ import annotations

import numpy as np

from repro.core.sampling import sample_columns, sum_downsample
from repro.errors import ConfigError

__all__ = ["ConvergenceDetector"]


class ConvergenceDetector:
    """Online convergence detection over a downsampled activation sketch.

    Parameters
    ----------
    tolerance:
        Mean relative change of the sketch below which a layer counts as
        "converged".
    patience:
        Number of consecutive converged layers required before firing.
    probe_columns / probe_dim:
        Sketch size (columns sampled, rows after sum downsampling).
    min_layer:
        Never fire before this layer (the early transient always moves).
    """

    def __init__(
        self,
        tolerance: float = 0.1,
        patience: int = 3,
        probe_columns: int = 32,
        probe_dim: int = 16,
        min_layer: int = 2,
    ):
        if tolerance < 0:
            raise ConfigError("tolerance must be non-negative")
        if patience < 1:
            raise ConfigError("patience must be >= 1")
        if probe_columns < 1 or probe_dim < 1:
            raise ConfigError("probe sizes must be >= 1")
        self.tolerance = tolerance
        self.patience = patience
        self.probe_columns = probe_columns
        self.probe_dim = probe_dim
        self.min_layer = min_layer
        self._prev: np.ndarray | None = None
        self._streak = 0
        self._layer = -1
        #: change-rate trace, one entry per observed layer (for diagnostics)
        self.trace: list[float] = []

    def _sketch(self, y: np.ndarray) -> np.ndarray:
        return sum_downsample(sample_columns(y, self.probe_columns), self.probe_dim)

    def observe(self, y: np.ndarray) -> bool:
        """Feed the activations of the next layer; returns True when
        convergence is detected (and keeps returning True afterwards)."""
        self._layer += 1
        sketch = self._sketch(y)
        if self._prev is None or self._prev.shape != sketch.shape:
            self._prev = sketch
            self.trace.append(float("inf"))
            return False
        denom = np.abs(self._prev).mean() + 1e-12
        change = float(np.abs(sketch - self._prev).mean() / denom)
        self.trace.append(change)
        self._prev = sketch
        if self._layer < self.min_layer:
            self._streak = 0
            return False
        if change <= self.tolerance:
            self._streak += 1
        else:
            self._streak = 0
        return self._streak >= self.patience

    def reset(self) -> None:
        self._prev = None
        self._streak = 0
        self._layer = -1
        self.trace.clear()
