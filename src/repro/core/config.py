"""SNICIT configuration (the paper's tunables, Table 2 and §4)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError

__all__ = ["SNICITConfig"]


@dataclass
class SNICITConfig:
    """Parameters of the SNICIT pipeline.

    Parameters
    ----------
    threshold_layer:
        ``t`` — the layer at which intermediate results are assumed converged
        and conversion happens.  The paper uses 30 for SDGC and the largest
        even integer <= l/2 for medium DNNs.
    sample_size:
        ``s`` — number of columns sampled for centroid selection (32 for
        SDGC, 128 for medium DNNs).
    downsample_dim:
        ``n`` — rows of the sample matrix F after sum downsampling (16 for
        SDGC).  ``None`` disables downsampling (the paper disables it for
        medium DNNs, §4.2.1) and F is the raw sampled columns.
    eta:
        per-element similarity tolerance in sample pruning (Eq. 2).
    eps:
        column similarity fraction: columns closer than ``n * eps`` differing
        elements are merged during sample pruning.
    prune_threshold:
        near-zero residue pruning bound (§3.3.1 "we prune elements that are
        close to zero").  0 disables pruning and makes SNICIT exactly
        lossless.
    ne_idx_interval:
        refresh period (in layers) of the non-empty column index list
        ``ne_idx``; ``ne_rec`` itself is updated every layer.  The paper uses
        200 for SDGC and 1 for medium DNNs.
    auto_threshold:
        enable the dynamic data-driven threshold detector (the paper's §5
        future work, :mod:`repro.core.convergence`).  ``threshold_layer``
        then acts as the *upper bound*: conversion happens at the detected
        layer or at ``threshold_layer``, whichever comes first.
    auto_tolerance / auto_patience:
        detector parameters (mean relative sketch change; consecutive
        converged layers required).
    """

    threshold_layer: int
    sample_size: int = 32
    downsample_dim: int | None = 16
    eta: float = 0.03
    eps: float = 0.03
    prune_threshold: float = 0.04
    ne_idx_interval: int = 1
    auto_threshold: bool = False
    auto_tolerance: float = 0.1
    auto_patience: int = 3

    def __post_init__(self) -> None:
        if self.threshold_layer < 0:
            raise ConfigError(f"threshold_layer must be >= 0, got {self.threshold_layer}")
        if self.sample_size < 1:
            raise ConfigError("sample_size must be >= 1")
        if self.downsample_dim is not None and self.downsample_dim < 1:
            raise ConfigError("downsample_dim must be >= 1 or None")
        if self.eta < 0 or self.eps < 0:
            raise ConfigError("eta and eps must be non-negative")
        if self.prune_threshold < 0:
            raise ConfigError("prune_threshold must be non-negative")
        if self.ne_idx_interval < 1:
            raise ConfigError("ne_idx_interval must be >= 1")
        if self.auto_tolerance < 0:
            raise ConfigError("auto_tolerance must be non-negative")
        if self.auto_patience < 1:
            raise ConfigError("auto_patience must be >= 1")

    def for_network(self, num_layers: int) -> "SNICITConfig":
        """Clamp the threshold layer into ``[0, num_layers]``."""
        t = min(self.threshold_layer, num_layers)
        if t == self.threshold_layer:
            return self
        return SNICITConfig(
            threshold_layer=t,
            sample_size=self.sample_size,
            downsample_dim=self.downsample_dim,
            eta=self.eta,
            eps=self.eps,
            prune_threshold=self.prune_threshold,
            ne_idx_interval=self.ne_idx_interval,
            auto_threshold=self.auto_threshold,
            auto_tolerance=self.auto_tolerance,
            auto_patience=self.auto_patience,
        )
