"""Final results recovery (paper §3.4, Eq. 6).

The inverse of conversion: every residue column gets its centroid column
added back; centroid columns pass through.  The mapper ``M`` is the one
fixed at conversion time.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError

__all__ = ["recover"]


def recover(yhat: np.ndarray, m: np.ndarray) -> np.ndarray:
    """Restore ``Y(l)`` from ``Ŷ(l)`` (Eq. 6)."""
    if yhat.ndim != 2:
        raise ShapeError("Ŷ must be 2-D")
    if m.shape != (yhat.shape[1],):
        raise ShapeError("mapper M must have one entry per column")
    y = yhat.copy()
    nc = m != -1
    y[:, nc] += yhat[:, m[nc]]
    return y
