"""Final results recovery (paper §3.4, Eq. 6).

The inverse of conversion: every residue column gets its centroid column
added back; centroid columns pass through.  The mapper ``M`` is the one
fixed at conversion time.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError

__all__ = ["recover", "recover_compact"]


def recover(yhat: np.ndarray, m: np.ndarray) -> np.ndarray:
    """Restore ``Y(l)`` from ``Ŷ(l)`` (Eq. 6)."""
    if yhat.ndim != 2:
        raise ShapeError("Ŷ must be 2-D")
    if m.shape != (yhat.shape[1],):
        raise ShapeError("mapper M must have one entry per column")
    y = yhat.copy()
    nc = m != -1
    y[:, nc] += yhat[:, m[nc]]
    return y


def recover_compact(
    sub: np.ndarray, ne_idx: np.ndarray, m: np.ndarray, n_rows: int
) -> np.ndarray:
    """Eq. 6 straight from the compacted post-convergence state.

    ``sub`` holds only the ``ne_idx`` columns of ``Ŷ(L)`` (the paper's
    size(ne_idx) launch); the full-width matrix exists only as this
    function's output.  Equivalent to scattering ``sub`` into a zero
    ``(n_rows, B)`` block and calling :func:`recover`, minus the extra
    full-width copy that materializing ``Ŷ(L)`` first would cost.  Centroid
    columns (``m == -1``) are disjoint from residue columns, and the
    centroid gather copies before the add, so the in-place update is exact.
    """
    if sub.ndim != 2:
        raise ShapeError("compacted Ŷ must be 2-D")
    if sub.shape[1] != len(ne_idx):
        raise ShapeError("ne_idx must have one entry per compacted column")
    y = np.zeros((n_rows, len(m)), dtype=sub.dtype)
    y[:, ne_idx] = sub
    nc = m != -1
    y[:, nc] += y[:, m[nc]]
    return y
