"""Warmup-time per-layer spMM strategy plans.

A warm :class:`~repro.serve.EngineSession` runs the same network block after
block, yet the per-block path re-derived each layer's kernel strategy through
:class:`~repro.kernels.StrategyMemo` lookups (hash + bucket per layer per
call) and re-resolved metric counters by label.  SparseDNN's code-generated
engines show the fix shape: decide everything that depends only on the
*network* once, at warmup, and leave only the activation-dependent part of
the decision in the hot path.

:func:`bake_plan` walks the network once and freezes, per layer:

* the **strategy class** — ``'colwise'`` for dense-ish layers (the decision
  depends only on weight density, so it is fully static), ``'dynamic'`` for
  sparse layers (masked-vs-batch-parallel still depends on the block's
  live-row fraction, so the plan keeps the threshold rule but nothing else);
* the **sparse format** backing the batch-parallel branch — ELL when the
  row fan-in is near-uniform, CSR when ELL padding would waste gather work
  (:func:`repro.sparse.convert.preferred_spmm_format`);
* the **pinned view** for that choice (dense or ELL), so the first hot block
  never pays a lazy conversion.

Strategy choice is purely a performance decision: every spMM kernel in
:mod:`repro.sparse.spmm` accumulates in the same per-element order, so a
planned engine is bitwise identical to the memo/champion engine (tested).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.errors import ConfigError
from repro.kernels import DENSE_WEIGHT_THRESHOLD, LIVE_ROW_THRESHOLD, planned_spmm
from repro.network import SparseNetwork
from repro.sparse.convert import preferred_spmm_format

__all__ = ["LayerPlan", "StrategyPlan", "bake_plan", "plan_layer"]


@dataclass(frozen=True)
class LayerPlan:
    """Frozen per-layer kernel decision.

    ``strategy`` is ``'colwise'`` (static, activation-independent) or
    ``'dynamic'`` (live-fraction rule evaluated per block against
    ``live_threshold``).  ``format`` names the storage backing the
    batch-parallel branch: ``'dense'`` for colwise, ``'ell'`` or ``'csr'``
    for dynamic layers.
    """

    index: int
    strategy: str
    format: str
    live_threshold: float = LIVE_ROW_THRESHOLD


class StrategyPlan:
    """A baked per-layer plan plus pre-resolved observability handles.

    The hot path calls :meth:`dispatch`, which is a tuple index into
    :attr:`layers` followed by the kernel call — no memo hashing, no
    density re-check, no counter-label resolution.
    """

    __slots__ = (
        "network_fingerprint",
        "layers",
        "baked_seconds",
        "calls",
        "revisions",
        "_counters",
        "_memo",
    )

    def __init__(
        self,
        network_fingerprint: str,
        layers: tuple[LayerPlan, ...],
        baked_seconds: float = 0.0,
    ):
        self.network_fingerprint = network_fingerprint
        self.layers = tuple(layers)
        self.baked_seconds = float(baked_seconds)
        self.calls = 0
        self.revisions = 0
        self._counters: dict[str, object] = {}
        self._memo = None

    def bind_metrics(self, registry) -> "StrategyPlan":
        """Pre-resolve the ``spmm_strategy_total`` counters once.

        The planned path then pays one ``inc`` per layer instead of a
        labelled registry lookup — the same counters the champion path
        increments, so dashboards see no difference between a planned and an
        unplanned engine.
        """
        for strategy in ("colwise", "masked", "ell", "csr"):
            self._counters[strategy] = registry.counter(
                "spmm_strategy_total", strategy=strategy
            )
        return self

    def enable_revision(self, memo) -> "StrategyPlan":
        """Attach a measure-and-revise :class:`~repro.kernels.StrategyMemo`.

        Every :meth:`dispatch` then reports its wall time to the memo; when
        the memo signals cost drift for a layer's bucket, the layer's plan is
        re-derived from the same static champion rules :func:`bake_plan`
        used (re-pinning its view), and :attr:`revisions` counts the event.
        Re-derivation is deterministic in the network alone, so a revision
        can refresh a decision but never change outputs — the bitwise
        guarantee survives the autotune loop.
        """
        self._memo = memo
        return self

    def dispatch(self, net: SparseNetwork, i: int, y, out=None):
        """``W(i) @ y`` via the baked decision; mirrors ``champion_spmm``."""
        self.calls += 1
        memo = self._memo
        if memo is None:
            z, work, strategy, _ = planned_spmm(net, self.layers[i], y, out=out)
        else:
            t0 = time.perf_counter()
            z, work, strategy, frac = planned_spmm(net, self.layers[i], y, out=out)
            if memo.observe(
                i, frac, strategy, time.perf_counter() - t0, network=net
            ):
                revised = plan_layer(net, i, self.layers[i].live_threshold)
                self.layers = self.layers[:i] + (revised,) + self.layers[i + 1:]
                self.revisions += 1
        counter = self._counters.get(strategy)
        if counter is not None:
            counter.inc()
        return z, work, strategy

    def stats(self) -> dict:
        """JSON-safe summary for session stats / bench records."""
        strategies: dict[str, int] = {}
        for lp in self.layers:
            key = lp.strategy if lp.strategy == "colwise" else f"dynamic/{lp.format}"
            strategies[key] = strategies.get(key, 0) + 1
        return {
            "layers": len(self.layers),
            "calls": self.calls,
            "baked_seconds": self.baked_seconds,
            "revisions": self.revisions,
            "strategies": strategies,
        }

    # ------------------------------------------------------------ persistence
    def to_state(self) -> dict:
        """JSON-safe layer table (for the warmstore header)."""
        return {
            "network_fingerprint": self.network_fingerprint,
            "baked_seconds": self.baked_seconds,
            "layers": [
                [lp.index, lp.strategy, lp.format, lp.live_threshold]
                for lp in self.layers
            ],
        }

    @classmethod
    def from_state(cls, state: dict) -> "StrategyPlan":
        """Rebuild a plan from :meth:`to_state` (views re-pinned by caller)."""
        layers = tuple(
            LayerPlan(int(index), str(strategy), str(fmt), float(thr))
            for index, strategy, fmt, thr in state["layers"]
        )
        return cls(
            state["network_fingerprint"],
            layers,
            baked_seconds=float(state.get("baked_seconds", 0.0)),
        )


def plan_layer(
    net: SparseNetwork, i: int, live_threshold: float = LIVE_ROW_THRESHOLD
) -> LayerPlan:
    """Derive (and pin the view for) one layer's champion decision.

    The single source of truth for the static half of the champion rules:
    :func:`bake_plan` calls it per layer at warmup, and
    :meth:`StrategyPlan.dispatch` calls it again when the measure-and-revise
    memo reports cost drift.  Deterministic in the network alone, so a
    re-derivation after drift lands on a decision the original bake could
    have made — never on new numerics.
    """
    if net.layers[i].weight.density >= DENSE_WEIGHT_THRESHOLD:
        net.dense(i)  # pin
        return LayerPlan(i, "colwise", "dense", live_threshold)
    fmt = preferred_spmm_format(net.layers[i].weight)
    if fmt == "ell":
        net.ell(i)  # pin
    return LayerPlan(i, "dynamic", fmt, live_threshold)


def bake_plan(
    net: SparseNetwork,
    live_threshold: float = LIVE_ROW_THRESHOLD,
    metrics=None,
) -> StrategyPlan:
    """Derive and freeze every layer's kernel decision, pinning its view.

    Baking pins exactly the views the plan will use (``net.dense(i)`` for
    colwise layers, ``net.ell(i)`` for ELL-format dynamic layers; CSR-format
    layers run straight off the weights) so the first warm block pays no
    lazy conversions.  Mirrors the champion rules, so a planned engine makes
    the same strategy choices the memoized champion would — the plan just
    stops re-deriving them per block.
    """
    if not 0.0 <= live_threshold <= 1.0:
        raise ConfigError(f"live_threshold must be in [0, 1], got {live_threshold}")
    t0 = time.perf_counter()
    layers = [plan_layer(net, i, live_threshold) for i in range(len(net.layers))]
    plan = StrategyPlan(
        getattr(net, "fingerprint", net.name),
        tuple(layers),
        baked_seconds=time.perf_counter() - t0,
    )
    if metrics is not None:
        plan.bind_metrics(metrics)
    return plan
