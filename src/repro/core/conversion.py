"""Cluster-based conversion (paper §3.2.2, Algorithm 2, Eq. 3-4, Fig. 4).

Given the converged activations ``Y(t)`` and the centroid column set ``y*``
(from sample pruning), every non-centroid column picks its nearest centroid
in L0 distance (exact element inequality count, Eq. 3) and is replaced by
the residue to that centroid (Eq. 4).  The centroid mapper ``M`` is fixed
from here on.  Near-zero residues are pruned (§3.3.1) to induce more empty
columns; ``ne_rec`` records which columns of the converted matrix are
non-empty.

``construct_kernel`` is the faithful per-thread Algorithm 2 on the virtual
GPU (one thread per batch column, centroid tiles staged through shared
memory); ``convert`` / ``assign_centroids`` / ``build_residues`` are the
vectorized twins.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError, ShapeError
from repro.gpu.costmodel import KernelCharge
from repro.gpu.device import VirtualDevice
from repro.gpu.kernel import SYNC, BlockDim, GridDim, KernelContext, launch_kernel

__all__ = ["assign_centroids", "build_residues", "convert", "construct_kernel"]


def assign_centroids(
    y: np.ndarray, cent_cols: np.ndarray, chunk: int | None = None
) -> np.ndarray:
    """The centroid mapper ``M`` (Eq. 3): nearest centroid by L0 distance.

    Centroid columns map to -1.  Ties resolve to the first (lowest-index)
    centroid, matching Algorithm 2's strict-less update.  The distance work
    runs through :func:`repro.kernels.l0_nearest`, which picks a cache-sized
    column chunk automatically (``chunk`` overrides it).
    """
    from repro.kernels import l0_nearest

    if y.ndim != 2:
        raise ShapeError(f"Y must be 2-D, got {y.ndim}-D")
    cent_cols = np.asarray(cent_cols, dtype=np.int64)
    if len(cent_cols) == 0:
        raise ConfigError("need at least one centroid")
    idx, _ = l0_nearest(y, y[:, cent_cols], chunk=chunk)
    m = cent_cols[idx]
    m[cent_cols] = -1
    return m


def build_residues(
    y: np.ndarray, m: np.ndarray, prune_threshold: float = 0.0
) -> tuple[np.ndarray, np.ndarray]:
    """Converted matrix ``Ŷ(t)`` and ``ne_rec`` (Eq. 4 + near-zero pruning).

    Residue entries with ``|v| < prune_threshold`` are zeroed (centroid
    columns are never pruned — they are needed intact for recovery).
    """
    if m.shape != (y.shape[1],):
        raise ShapeError("mapper M must have one entry per column")
    yhat = y.copy()
    nc = m != -1
    yhat[:, nc] = y[:, nc] - y[:, m[nc]]
    if prune_threshold > 0:
        res = yhat[:, nc]
        res[np.abs(res) < prune_threshold] = 0
        yhat[:, nc] = res
    ne_rec = (yhat != 0).any(axis=0)
    return yhat, ne_rec


def convert(
    y: np.ndarray, cent_cols: np.ndarray, prune_threshold: float = 0.0
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Full conversion: returns ``(Ŷ(t), M, ne_rec)``."""
    m = assign_centroids(y, cent_cols)
    yhat, ne_rec = build_residues(y, m, prune_threshold)
    return yhat, m, ne_rec


def _construct_body(
    ctx: KernelContext,
    y0: np.ndarray,
    cent_col: np.ndarray,
    m: np.ndarray,
    y1: np.ndarray,
    ne_rec: np.ndarray,
    tile: int,
):
    """Per-thread Algorithm 2 body (one thread per batch column)."""
    n, b = y0.shape
    tid = ctx.tx + ctx.bx * ctx.block_dim.x  # global column index
    cent = ctx.shared("cent", tile)
    dist = n + 1  # line 3
    cluster = -1
    n_tiles = (n + tile - 1) // tile
    for i in range(len(cent_col)):  # line 4
        this_dist = 0  # line 5
        for r in range(n_tiles):  # line 6 (generalized to any N)
            lo = r * tile
            span = min(tile, n - lo)
            if ctx.tx < span:  # line 7
                cent[ctx.tx] = y0[lo + ctx.tx, cent_col[i]]
            yield SYNC  # line 8
            if tid < b:  # lines 9-12
                for k in range(span):
                    if cent[k] != y0[lo + k, tid]:
                        this_dist += 1
            yield SYNC  # line 13
        if this_dist < dist:  # lines 14-16
            dist = this_dist
            cluster = i
    if tid < b:  # lines 17-22
        if m[tid] != -1:
            for r in range(n):
                y1[r, tid] = y0[r, tid] - y0[r, cent_col[cluster]]
        else:
            for r in range(n):
                y1[r, tid] = y0[r, tid]
    if tid < b:  # lines 23-29
        if m[tid] != -1:
            m[tid] = cent_col[cluster]
            ne_rec[tid] = dist != 0
        else:
            # centroid column: non-empty iff it has any nonzero entry (a dead
            # cluster's centroid is the zero column and is safely skippable)
            ne_rec[tid] = bool((y0[:, tid] != 0).any())


def construct_kernel(
    device: VirtualDevice,
    y0: np.ndarray,
    cent_cols: np.ndarray,
    tile: int = 1024,
    block: int = 1024,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Run Algorithm 2 on the virtual GPU.

    Launch geometry is the paper's ``<<<ceil(B / block), block>>>``.  ``M``
    is pre-initialized to -1 at centroid positions (as the paper requires
    before the call).  Returns ``(Ŷ(t), M, ne_rec)``.
    """
    if y0.ndim != 2:
        raise ShapeError("Y0 must be 2-D")
    if tile > block:
        # one thread loads one tile element (Algorithm 2 line 7), so the tile
        # can never exceed the block; the paper uses tile == block == 1024
        raise ConfigError(f"tile ({tile}) must not exceed block size ({block})")
    n, b = y0.shape
    cent_cols = np.asarray(cent_cols, dtype=np.int64)
    if len(cent_cols) == 0:
        raise ConfigError("need at least one centroid")
    m = np.zeros(b, dtype=np.int64)
    m[cent_cols] = -1
    y1 = np.zeros_like(y0)
    ne_rec = np.zeros(b, dtype=bool)
    charge = KernelCharge(
        name="construct_yhat",
        flops=float(n) * b * len(cent_cols),
        bytes_read=float(y0.nbytes) * (len(cent_cols) + 1),
        bytes_written=float(y1.nbytes),
    )
    launch_kernel(
        device,
        _construct_body,
        grid=GridDim((b + block - 1) // block, 1),
        block=BlockDim(block, 1),
        args=(y0, cent_cols, m, y1, ne_rec, tile),
        name="construct_yhat",
        charge=charge,
    )
    return y1, m, ne_rec
