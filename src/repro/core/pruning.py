"""Sample pruning (paper Algorithm 1, Fig. 3b).

Greedy duplicate elimination over the downsampled sample matrix ``F``:
iterate columns; each still-alive column becomes the *base* once, and every
other alive column within tolerance of the base is discarded.  Survivors are
the centroid columns.

Faithfulness note: the paper's Eq. (2) and surrounding text define
``diff[i]`` as the number of elements whose difference from the base
*exceeds* eta, with column ``i`` pruned when ``diff[i] < n * eps`` (few
dissimilar elements -> same cluster).  Algorithm 1 line 13 as printed counts
elements *within* eta instead, which contradicts line 16's prune condition;
we follow Eq. (2) (count dissimilar), keeping everything else verbatim.

``prune_samples_kernel`` executes the algorithm on the virtual GPU with the
paper's launch geometry ``<<<1, (n, s)>>>`` — one block, an (n, s) thread
plane, shared ``base`` / ``diff`` / ``tmp_idx`` arrays, atomics and
barriers.  ``prune_samples`` is the vectorized twin.  Tests assert equality.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError, ShapeError
from repro.gpu.costmodel import KernelCharge
from repro.gpu.device import VirtualDevice
from repro.gpu.kernel import SYNC, BlockDim, GridDim, KernelContext, launch_kernel

__all__ = ["prune_samples", "prune_samples_kernel", "select_centroids"]


def _check_f(f: np.ndarray) -> tuple[int, int]:
    if f.ndim != 2:
        raise ShapeError(f"F must be 2-D, got {f.ndim}-D")
    return f.shape


#: Cap (elements) on the (chunk_n, s, s) pairwise scratch in prune_samples.
_PAIRWISE_ELEMENTS = 4_000_000


def prune_samples(f: np.ndarray, eta: float, eps: float) -> np.ndarray:
    """Vectorized Algorithm 1.  Returns ``col_idx`` with pruned entries = -1.

    The greedy sweep needs every base column's dissimilarity count against
    every other column, and the base set is data-dependent — but the counts
    themselves are not: ``D[i, j] = #{r : |f[r, j] - f[r, i]| >= eta}`` is a
    fixed pairwise matrix.  Computing ``D`` once (chunked over rows so the
    ``(chunk, s, s)`` scratch stays bounded) turns the per-base O(n*s) numpy
    pass of the reference loop into an O(s) row read; the sweep itself is
    unchanged, so the survivors are bitwise identical to
    :func:`_prune_samples_loop` (tested).
    """
    n, s = _check_f(f)
    if eta < 0 or eps < 0:
        raise ConfigError("eta and eps must be non-negative")
    d = np.zeros((s, s), dtype=np.int64)
    chunk = max(1, _PAIRWISE_ELEMENTS // max(1, s * s))
    for lo in range(0, n, chunk):
        hi = min(n, lo + chunk)
        # (chunk, s, s): |f[r, j] - f[r, i]| per base i, column j
        d += (np.abs(f[lo:hi, None, :] - f[lo:hi, :, None]) >= eta).sum(axis=0)
    alive = np.ones(s, dtype=bool)
    threshold = n * eps
    for cmp in range(s):
        if not alive[cmp]:
            continue
        to_prune = alive & (d[cmp] < threshold)
        to_prune[cmp] = False
        alive[to_prune] = False
    col_idx = np.where(alive, np.arange(s, dtype=np.int64), -1)
    return col_idx


def _prune_samples_loop(f: np.ndarray, eta: float, eps: float) -> np.ndarray:
    """Reference per-base implementation of Algorithm 1 (pre-vectorization).

    Kept as the equivalence oracle: tests assert :func:`prune_samples`
    returns bitwise-identical survivors on random inputs.
    """
    n, s = _check_f(f)
    if eta < 0 or eps < 0:
        raise ConfigError("eta and eps must be non-negative")
    alive = np.ones(s, dtype=bool)
    for cmp in range(s):
        if not alive[cmp]:
            continue
        base = f[:, cmp]
        diff = (np.abs(f - base[:, None]) >= eta).sum(axis=0)
        to_prune = alive & (diff < n * eps)
        to_prune[cmp] = False
        alive[to_prune] = False
    col_idx = np.where(alive, np.arange(s, dtype=np.int64), -1)
    return col_idx


def _prune_body(ctx: KernelContext, f: np.ndarray, col_idx: np.ndarray, eta: float, eps: float):
    """Per-thread Algorithm 1 body (block = (n, s) threads)."""
    n, s = f.shape
    tid = ctx.tid
    base = ctx.shared("base", n)
    diff = ctx.shared("diff", s, dtype=np.int64)
    tmp_idx = ctx.shared("tmp_idx", s, dtype=np.int64)
    if ctx.tx == 0:  # lines 3-4
        tmp_idx[ctx.ty] = col_idx[ctx.ty]
    yield SYNC  # line 5
    for cmp in range(s):  # line 6
        if tmp_idx[cmp] != -1:  # line 7
            if tid < n:  # lines 8-9
                base[tid] = f[tid, tmp_idx[cmp]]
            if tid < s:  # lines 10-11
                diff[tid] = 0
            yield SYNC  # line 12
            # line 13 per the Eq. (2) semantics: count DISSIMILAR elements
            if tmp_idx[ctx.ty] != -1 and abs(f[ctx.tx, ctx.ty] - base[ctx.tx]) >= eta:
                ctx.atomic_add(diff, ctx.ty, 1)  # line 14
            yield SYNC  # line 15
            if ctx.tx == 0 and ctx.ty != cmp and diff[ctx.ty] < n * eps:  # line 16
                tmp_idx[ctx.ty] = -1  # line 17
            yield SYNC  # line 18
    if tid < s:  # lines 19-20
        col_idx[tid] = tmp_idx[tid]


def prune_samples_kernel(
    device: VirtualDevice, f: np.ndarray, eta: float, eps: float
) -> np.ndarray:
    """Run Algorithm 1 on the virtual GPU; returns the updated ``col_idx``."""
    n, s = _check_f(f)
    if n * s > device.spec.max_threads_per_block:
        raise ConfigError(
            f"(n={n}, s={s}) exceeds one block ({device.spec.max_threads_per_block} threads); "
            "the paper launches Algorithm 1 as a single block"
        )
    col_idx = np.arange(s, dtype=np.int64)
    charge = KernelCharge(
        name="prune_samples",
        flops=float(2 * n * s * s),
        bytes_read=float(f.nbytes * s),
        bytes_written=float(col_idx.nbytes),
    )
    launch_kernel(
        device,
        _prune_body,
        grid=GridDim(1, 1),
        block=BlockDim(n, s),
        args=(f, col_idx, eta, eps),
        name="prune_samples",
        charge=charge,
    )
    return col_idx


def select_centroids(col_idx: np.ndarray) -> np.ndarray:
    """Sorted surviving indices (the paper's ``y*`` set)."""
    return np.sort(col_idx[col_idx != -1])
