"""Post-convergence update (paper §3.3, Eq. 5, Algorithm 3, Fig. 5).

Each post-convergence layer applies two kernels:

1. **Load-reduced spMM** (§3.3.1): ``W(i+1) · Ŷ(i)`` restricted to the
   non-empty columns listed in ``ne_idx``.  Empty columns contribute a zero
   product, so skipping them is exact; the work saved is the whole point of
   the sparse representation.
2. **Centroid / residue update** (§3.3.2, Algorithm 3): centroid columns
   take the ordinary feed-forward step; residue columns take the difference
   form of Eq. 5, with near-zero pruning applied to induce more empty
   columns.  ``ne_rec`` is refreshed every layer.

``ne_idx`` is rebuilt from ``ne_rec`` only every ``ne_idx_interval`` layers
(200 for SDGC in the paper).  Staleness is safe because emptiness is
monotone for residue columns: an empty residue stays empty under Eq. 5
(``sigma(z_M + 0 + b) - sigma(z_M + b) = 0``).  Centroid columns are always
kept in ``ne_idx`` — with a vector bias, ``sigma(b)`` can revive even an
all-zero centroid, so they may never be dropped.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError
from repro.gpu.costmodel import KernelCharge
from repro.gpu.device import VirtualDevice
from repro.gpu.kernel import BlockDim, GridDim, KernelContext, SyncCount, launch_kernel
from repro.network import LayerSpec, clamped_relu
from repro.sparse.csr import CSRMatrix
from repro.sparse.ell import ELLMatrix
from repro.sparse.spmm import spmm_ell, spmm_reduceat

__all__ = [
    "load_reduced_spmm",
    "update_centroids_residues",
    "update_compact",
    "update_residues_external",
    "postconv_update",
    "update_kernel",
]


def load_reduced_spmm(
    weight: CSRMatrix | ELLMatrix,
    yhat: np.ndarray,
    ne_idx: np.ndarray,
    net=None,
    layer_index: int | None = None,
) -> np.ndarray:
    """``Z = W @ Ŷ`` computed only over the non-empty columns.

    Returns a dense ``(n_out, B)`` matrix whose skipped columns are zero —
    exactly the product's value there, since those Ŷ columns are empty.

    When ``net``/``layer_index`` are given, the compacted sub-block is
    multiplied with the shared champion kernel (§3.3.1: "we leverage
    off-the-shelf kernels [4, 38] from SDGC champions for our spMM
    problem"), so SNICIT and XY-2021 use identical kernels.
    """
    if yhat.ndim != 2:
        raise ShapeError("Ŷ must be 2-D")
    n_out = weight.shape[0]
    z = np.zeros((n_out, yhat.shape[1]), dtype=yhat.dtype)
    if len(ne_idx) == 0:
        return z
    sub = np.ascontiguousarray(yhat[:, ne_idx])
    if net is not None and layer_index is not None:
        from repro.kernels import champion_spmm

        z[:, ne_idx], _, _ = champion_spmm(net, layer_index, sub)
    elif isinstance(weight, ELLMatrix):
        z[:, ne_idx] = spmm_ell(weight, sub)
    else:
        z[:, ne_idx] = spmm_reduceat(weight, sub)
    return z


def update_centroids_residues(
    z: np.ndarray,
    bias: np.ndarray | float,
    m: np.ndarray,
    ne_idx: np.ndarray,
    ymax: float,
    prune_threshold: float = 0.0,
    out: np.ndarray | None = None,
    ne_rec: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Vectorized Algorithm 3: derive ``Ŷ(i+1)`` columns from ``Z``.

    Only the columns in ``ne_idx`` are written (all others are empty and
    stay empty).  Returns ``(Ŷ(i+1), ne_rec)``.
    """
    n, b = z.shape
    if out is None:
        out = np.zeros_like(z)
    else:
        out[...] = 0
    if ne_rec is None:
        ne_rec = np.zeros(b, dtype=bool)
    else:
        ne_rec[...] = False
    if len(ne_idx) == 0:
        return out, ne_rec
    bias_col = bias[:, None] if isinstance(bias, np.ndarray) else bias
    is_cent = m[ne_idx] == -1
    cent_cols = ne_idx[is_cent]
    res_cols = ne_idx[~is_cent]
    if len(cent_cols):
        out[:, cent_cols] = clamped_relu(z[:, cent_cols] + bias_col, ymax)
        ne_rec[cent_cols] = (out[:, cent_cols] != 0).any(axis=0)
    if len(res_cols):
        z_cent = z[:, m[res_cols]] + bias_col  # sigma argument of the mapped centroid
        v = clamped_relu(z_cent + z[:, res_cols], ymax)
        v -= clamped_relu(z_cent, ymax)  # z_cent is dead after this, clamp in place
        if prune_threshold > 0:
            v[np.abs(v) < prune_threshold] = 0
        out[:, res_cols] = v
        ne_rec[res_cols] = (v != 0).any(axis=0)
    return out, ne_rec


def update_compact(
    z_sub: np.ndarray,
    bias: np.ndarray | float,
    is_cent: np.ndarray,
    cent_pos: np.ndarray,
    ymax: float,
    prune_threshold: float = 0.0,
) -> tuple[np.ndarray, np.ndarray]:
    """Algorithm 3 over a *compacted* block (only the non-empty columns).

    ``z_sub`` is the spMM output over the ``ne_idx`` columns; ``is_cent``
    marks which of those columns are centroids; ``cent_pos[j]`` gives, for
    each residue column ``j`` (positions where ``is_cent`` is False), the
    position of its centroid *within the compacted block*.  Returns
    ``(Ŷ_sub(i+1), ne_rec_sub)``.

    This is the production path: it never materializes full-width ``(N, B)``
    temporaries, mirroring how the paper's kernel launches exactly
    ``size(ne_idx)`` blocks.
    """
    out = np.empty_like(z_sub)
    bias_col = bias[:, None] if isinstance(bias, np.ndarray) else bias
    if is_cent.any():
        out[:, is_cent] = clamped_relu(z_sub[:, is_cent] + bias_col, ymax)
    res = ~is_cent
    if res.any():
        z_cent = z_sub[:, cent_pos] + bias_col
        v = clamped_relu(z_cent + z_sub[:, res], ymax)
        v -= clamped_relu(z_cent, ymax)  # z_cent is dead after this, clamp in place
        if prune_threshold > 0:
            v[np.abs(v) < prune_threshold] = 0
        out[:, res] = v
    ne_rec_sub = (out != 0).any(axis=0)
    return out, ne_rec_sub


def update_residues_external(
    z_sub: np.ndarray,
    z_cent: np.ndarray,
    bias: np.ndarray | float,
    ymax: float,
    prune_threshold: float = 0.0,
) -> tuple[np.ndarray, np.ndarray]:
    """Algorithm 3's residue branch against *externally cached* centroids.

    The cross-block reuse path: every column of the block is a residue
    against a centroid that lives in the :class:`~repro.core.reuse.
    CentroidCache`, not in the block, so its spMM output ``z_cent``
    (``W(i) @ Y*(i)``, one cached column gathered per block column, without
    bias) is supplied instead of computed.  The arithmetic matches
    :func:`update_compact`'s residue branch operation-for-operation, so a
    block identical to the cache's fill block updates bitwise-identically.

    Returns ``(Ŷ_sub(i+1), ne_rec_sub)``.
    """
    if z_sub.shape != z_cent.shape:
        raise ShapeError(
            f"residue block {z_sub.shape} and centroid block {z_cent.shape} disagree"
        )
    bias_col = bias[:, None] if isinstance(bias, np.ndarray) else bias
    zc = z_cent + bias_col  # fresh array: the cached trajectory stays intact
    out = clamped_relu(zc + z_sub, ymax)
    out -= clamped_relu(zc, ymax)  # zc is dead after this, clamp in place
    if prune_threshold > 0:
        out[np.abs(out) < prune_threshold] = 0
    ne_rec_sub = (out != 0).any(axis=0)
    return out, ne_rec_sub


def postconv_update(
    layer: LayerSpec,
    weight_ell: ELLMatrix | None,
    yhat: np.ndarray,
    m: np.ndarray,
    ne_idx: np.ndarray,
    ymax: float,
    prune_threshold: float = 0.0,
    out: np.ndarray | None = None,
    ne_rec: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray, int]:
    """One full post-convergence layer (spMM + update).

    Returns ``(Ŷ(i+1), ne_rec, active_columns)`` where ``active_columns`` is
    the spMM workload actually processed (for cost accounting).  ``out`` and
    ``ne_rec`` are optional reuse buffers forwarded to
    :func:`update_centroids_residues`; warm sessions pass them to avoid
    re-allocating ``(N, B)`` blocks every layer.
    """
    w = weight_ell if weight_ell is not None else layer.weight
    z = load_reduced_spmm(w, yhat, ne_idx)
    out, ne_rec = update_centroids_residues(
        z, layer.bias if isinstance(layer.bias, np.ndarray) else float(layer.bias),
        m, ne_idx, ymax, prune_threshold, out=out, ne_rec=ne_rec,
    )
    return out, ne_rec, len(ne_idx)


def _update_body(
    ctx: KernelContext,
    y0: np.ndarray,
    m: np.ndarray,
    ne_idx: np.ndarray,
    bias,
    y1: np.ndarray,
    ne_rec: np.ndarray,
    ymax: float,
    prune_threshold: float,
):
    """Per-thread Algorithm 3 body (one block per non-empty column).

    The paper's grid-stride loop assumes N is a multiple of the block size;
    we iterate a fixed tile count with masked work so every thread reaches
    the same number of ``__syncthreads_count`` barriers for any N.
    """
    n = y0.shape[0]
    bd = ctx.block_dim.x
    r = ne_idx[ctx.bx]  # line 1

    def sigma(x: float) -> float:
        return min(max(x, 0.0), ymax)

    def bias_at(j: int) -> float:
        return float(bias[j]) if isinstance(bias, np.ndarray) else float(bias)

    if m[r] == -1:  # lines 2-6: centroid column
        any_nonzero = 0
        n_iters = (n + bd - 1) // bd
        for it in range(n_iters):
            j = ctx.tx + it * bd
            pred = False
            if j < n:
                v = sigma(y0[j, r] + bias_at(j))
                y1[j, r] = v
                pred = v != 0
            got = yield SyncCount(pred)
            any_nonzero += got
        if ctx.tx == 0:
            ne_rec[r] = any_nonzero != 0
        return
    count = 0  # line 7
    n_iters = (n + bd - 1) // bd
    for it in range(n_iters):  # line 8
        j = ctx.tx + it * bd
        pred = False
        if j < n:
            zc = y0[j, m[r]] + bias_at(j)
            v = sigma(zc + y0[j, r]) - sigma(zc)  # line 9
            if prune_threshold > 0 and abs(v) < prune_threshold:
                v = 0.0
            pred = v != 0
            y1[j, r] = v  # line 11
        got = yield SyncCount(pred)  # line 10
        count += got
    if ctx.tx == 0:  # lines 12-13
        ne_rec[r] = count != 0


def update_kernel(
    device: VirtualDevice,
    z: np.ndarray,
    bias,
    m: np.ndarray,
    ne_idx: np.ndarray,
    ymax: float,
    prune_threshold: float = 0.0,
    block: int = 1024,
) -> tuple[np.ndarray, np.ndarray]:
    """Run Algorithm 3 on the virtual GPU.

    ``z`` is the load-reduced spMM output ``W(i+1) · Ŷ(i)``.  Launch geometry
    is the paper's ``<<<size(ne_idx), block>>>``.  Returns ``(Ŷ(i+1),
    ne_rec)`` with untouched columns zero/False.
    """
    n, b = z.shape
    y1 = np.zeros_like(z)
    ne_rec = np.zeros(b, dtype=bool)
    if len(ne_idx) == 0:
        return y1, ne_rec
    charge = KernelCharge(
        name="update_centroids_residues",
        flops=float(4 * n * len(ne_idx)),
        bytes_read=float(2 * n * len(ne_idx) * z.itemsize),
        bytes_written=float(n * len(ne_idx) * z.itemsize),
    )
    launch_kernel(
        device,
        _update_body,
        grid=GridDim(len(ne_idx), 1),
        block=BlockDim(block, 1),
        args=(z, m, ne_idx, bias, y1, ne_rec, ymax, prune_threshold),
        name="update_centroids_residues",
        charge=charge,
    )
    return y1, ne_rec
