"""SNICIT: the paper's primary contribution.

The pipeline (paper Fig. 2) has four stages:

1. :mod:`pre-convergence <repro.core.pipeline>` sparse feed-forward up to the
   threshold layer ``t`` (any champion spMM kernel; we use the ELL kernel);
2. :mod:`cluster-based conversion <repro.core.conversion>` — column sampling
   + sum downsampling (:mod:`repro.core.sampling`), sample pruning
   (:mod:`repro.core.pruning`, paper Algorithm 1), centroid assignment and
   residue construction (paper Algorithm 2, Eq. 3-4);
3. :mod:`post-convergence update <repro.core.postconv>` — load-reduced spMM
   over non-empty columns plus the centroid/residue update kernel (paper
   Algorithm 3, Eq. 5), with near-zero residue pruning and periodic
   ``ne_idx`` refresh;
4. :mod:`final results recovery <repro.core.recovery>` (Eq. 6).

Each kernel exists twice: a faithful per-thread virtual-GPU implementation
(suffix ``_kernel``) that follows the paper's CUDA pseudocode line by line,
and a fast vectorized twin used by the production pipeline.  Unit tests
assert the two agree.
"""

from repro.core.config import SNICITConfig
from repro.core.sampling import sample_columns, sum_downsample
from repro.core.pruning import prune_samples, prune_samples_kernel, select_centroids
from repro.core.conversion import (
    assign_centroids,
    build_residues,
    convert,
    construct_kernel,
)
from repro.core.postconv import postconv_update, update_kernel
from repro.core.recovery import recover
from repro.core.reuse import CachedConversion, CentroidCache
from repro.core.warmstore import WARMSTORE_VERSION, load_warm_state, save_warm_state
from repro.core.pipeline import SNICIT

__all__ = [
    "SNICITConfig",
    "SNICIT",
    "CachedConversion",
    "CentroidCache",
    "WARMSTORE_VERSION",
    "save_warm_state",
    "load_warm_state",
    "sample_columns",
    "sum_downsample",
    "prune_samples",
    "prune_samples_kernel",
    "select_centroids",
    "assign_centroids",
    "build_residues",
    "convert",
    "construct_kernel",
    "postconv_update",
    "update_kernel",
    "recover",
]
