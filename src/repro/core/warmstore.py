"""Persistent warm-state artifacts (fingerprint-keyed warmup snapshots).

Everything a warm :class:`~repro.serve.EngineSession` knows was *learned* at
runtime — pinned weight views, the baked :class:`~repro.core.plan.
StrategyPlan`, :class:`~repro.kernels.StrategyMemo` choices and their
measured cost baselines, :class:`~repro.core.reuse.CentroidCache` fills with
their staleness baselines — and all of it dies with the process.  At fleet
scale that is the dominant cold-start cost: every worker re-pays registry
warmup on boot and on every crash-restart, then re-learns the same state
from its first blocks of traffic.  SparseDNN's ahead-of-time specialization
and XY-2021's measured kernel selection both point at the fix: serialize the
warm state once, key it by network fingerprint, and let every worker load it.

The artifact mirrors :mod:`repro.serialize`: a NumPy ``.npz`` container
whose ``header`` member is a JSON document (encoded as a ``uint8`` array)
describing the payload — format version, network fingerprint, engine kind,
the memo snapshot, the plan's layer table, and offset tables into the flat
array members.  Dense views are concatenated into one flat ``float32``
member (three zip members load measurably faster than one per layer); ELL
and cache arrays keep their own members because their dtypes vary.  The
container is deliberately **uncompressed**: load time is the entire point,
and warm state is a few MB.

Safety invariants (see DESIGN.md "Warm-state artifacts"):

* **Fingerprint scoping.**  The artifact binds to one
  :attr:`~repro.network.SparseNetwork.fingerprint`.  Loading against any
  other network raises :class:`~repro.errors.ConfigError` — stale or
  foreign warm state must fail loudly, never silently corrupt outputs.
* **Version refusal.**  A header with a different ``format_version`` (or a
  corrupt/truncated container) raises :class:`~repro.errors.FormatError`.
* **Bitwise identity.**  Everything restored is either a verbatim copy of
  derived state (views rebuild bitwise-identically from CSR anyway) or a
  pure performance decision (strategy choices, cost baselines, cache
  baselines) — so a loaded session's outputs are bitwise identical to a
  freshly warmed session's, which are bitwise identical to a cold engine's.
"""

from __future__ import annotations

import json
import os
import time
import zipfile

import numpy as np

from repro.core.plan import StrategyPlan
from repro.core.reuse import CachedConversion
from repro.errors import ConfigError, FormatError
from repro.sparse.ell import ELLMatrix

__all__ = ["WARMSTORE_VERSION", "save_warm_state", "load_warm_state", "peek_header"]

WARMSTORE_VERSION = 1
_MAGIC = "repro-warmstore"


def _network_fingerprint(network) -> str:
    return getattr(network, "fingerprint", network.name)


def save_warm_state(session, path: str) -> dict:
    """Snapshot a session's warm state to ``path``; returns a manifest.

    Captures whatever the session actually holds: pinned dense/ELL views,
    the baked plan (SNICIT engines), the strategy memo's choices and cost
    baselines, and — when centroid reuse is on — every cached conversion
    with its fill-time staleness baselines.  A session that has not been
    warmed has nothing worth persisting, so this raises
    :class:`~repro.errors.ConfigError` instead of writing an artifact that
    would silently boot peers cold.
    """
    if not getattr(session, "warmed", False):
        raise ConfigError(
            "session holds no warm state to save — call warmup() first"
        )
    net = session.network
    fingerprint = _network_fingerprint(net)
    arrays: dict[str, np.ndarray] = {}

    # ---- pinned views: dense concatenated flat, ELL per layer (dtype varies)
    dense_meta: list[dict] = []
    dense_parts: list[np.ndarray] = []
    offset = 0
    for i in sorted(net._dense_cache):
        view = net._dense_cache[i]
        dense_meta.append(
            {"index": i, "rows": view.shape[0], "cols": view.shape[1], "offset": offset}
        )
        dense_parts.append(np.ascontiguousarray(view, dtype=np.float32).ravel())
        offset += view.size
    arrays["dense_data"] = (
        np.concatenate(dense_parts) if dense_parts else np.empty(0, dtype=np.float32)
    )
    ell_meta: list[dict] = []
    for i in sorted(net._ell_cache):
        view = net._ell_cache[i]
        ell_meta.append(
            {
                "index": i,
                "rows": view.shape[0],
                "cols": view.shape[1],
                "width": view.width,
            }
        )
        arrays[f"ell_idx_{i}"] = view.idx
        arrays[f"ell_val_{i}"] = view.val

    # ---- centroid cache fills (entries carry their own scope key)
    cache_meta: list[dict] = []
    reuse = getattr(session, "reuse", None)
    if reuse is not None:
        for j, entry in enumerate(reuse.export_entries()):
            cache_meta.append(
                {
                    "threshold_layer": entry.threshold_layer,
                    "network_key": entry.network_key,
                    "n_z": len(entry.z_cent),
                    "has_final": entry.cent_final is not None,
                    "baseline_distance": entry.baseline_distance,
                    "baseline_density": entry.baseline_density,
                    "served_blocks": entry.served_blocks,
                }
            )
            arrays[f"cache{j}_cent_y"] = entry.cent_y
            for k, z in enumerate(entry.z_cent):
                arrays[f"cache{j}_z{k}"] = z
            if entry.cent_final is not None:
                arrays[f"cache{j}_final"] = entry.cent_final

    header = {
        "format": _MAGIC,
        "format_version": WARMSTORE_VERSION,
        "saved_unix": time.time(),
        "network": {
            "fingerprint": fingerprint,
            "name": net.name,
            "layers": len(net.layers),
        },
        "engine_kind": session.kind,
        "memo": session.memo.export_state(),
        "plan": session.plan.to_state() if session.plan is not None else None,
        "views": {"dense": dense_meta, "ell": ell_meta},
        "cache": cache_meta,
    }
    arrays["header"] = np.frombuffer(
        json.dumps(header, sort_keys=True).encode("utf-8"), dtype=np.uint8
    )
    # exact-path write (np.savez appends '.npz' to suffixless paths otherwise);
    # uncompressed on purpose — load latency is the artifact's reason to exist
    with open(path, "wb") as fh:
        np.savez(fh, **arrays)
    return {
        "path": str(path),
        "size_bytes": os.path.getsize(path),
        "fingerprint": fingerprint,
        "dense_views": len(dense_meta),
        "ell_views": len(ell_meta),
        "plan_layers": len(header["plan"]["layers"]) if header["plan"] else 0,
        "memo_choices": len(header["memo"]["choices"]),
        "memo_costs": len(header["memo"]["costs"]),
        "cache_entries": len(cache_meta),
    }


def _read_artifact(path: str) -> tuple[dict, dict[str, np.ndarray]]:
    """Parse header + materialize every member, with FormatError semantics."""
    try:
        with np.load(path, allow_pickle=False) as data:
            if "header" not in data.files:
                raise FormatError(
                    f"{path}: not a repro warmstore artifact (missing header)"
                )
            header = json.loads(bytes(data["header"]).decode("utf-8"))
            arrays = {name: data[name] for name in data.files if name != "header"}
    except FileNotFoundError:
        raise
    except FormatError:
        raise
    except (zipfile.BadZipFile, ValueError, KeyError, EOFError, OSError) as exc:
        raise FormatError(
            f"{path}: corrupt or truncated warmstore artifact ({exc})"
        ) from exc
    if header.get("format") != _MAGIC:
        raise FormatError(f"{path}: not a repro warmstore artifact")
    version = header.get("format_version")
    if version != WARMSTORE_VERSION:
        raise FormatError(
            f"{path}: warmstore format version {version} is not supported "
            f"(this build reads version {WARMSTORE_VERSION})"
        )
    return header, arrays


def peek_header(path: str) -> dict:
    """The artifact's JSON header alone (validated), without restoring state."""
    header, _ = _read_artifact(path)
    return header


def load_warm_state(session, path: str) -> dict:
    """Restore a saved warm state into ``session``; returns a manifest.

    The artifact must match the session's network fingerprint and engine
    kind (:class:`~repro.errors.ConfigError` otherwise — a wrong artifact is
    a deployment mistake, not a file-format problem).  Restores pinned
    views, the baked plan (metric counters re-bound to the session's scoped
    registry, revision re-attached to the session memo), the memo snapshot,
    and cache fills.  Cache entries are skipped — and counted in the
    manifest — when the session has centroid reuse disabled or the entry
    belongs to a different scope.
    """
    header, arrays = _read_artifact(path)
    net = session.network
    fingerprint = _network_fingerprint(net)
    saved = header.get("network", {})
    if saved.get("fingerprint") != fingerprint:
        raise ConfigError(
            f"{path}: artifact was saved for network "
            f"{saved.get('name')!r} (fingerprint {saved.get('fingerprint')}) "
            f"but this session serves {net.name!r} (fingerprint {fingerprint})"
        )
    if header.get("engine_kind") != session.kind:
        raise ConfigError(
            f"{path}: artifact was saved from a {header.get('engine_kind')!r} "
            f"engine but this session runs {session.kind!r}"
        )
    if saved.get("layers") != len(net.layers):
        raise ConfigError(
            f"{path}: artifact expects {saved.get('layers')} layers, "
            f"network has {len(net.layers)}"
        )

    # ---- views (verbatim copies of what bake would derive from CSR)
    views = header.get("views", {})
    dense_flat = arrays.get("dense_data")
    for meta in views.get("dense", []):
        rows, cols, off = meta["rows"], meta["cols"], meta["offset"]
        net._dense_cache[meta["index"]] = dense_flat[off:off + rows * cols].reshape(
            rows, cols
        )
    for meta in views.get("ell", []):
        i = meta["index"]
        net._ell_cache[i] = ELLMatrix(
            arrays[f"ell_idx_{i}"],
            arrays[f"ell_val_{i}"],
            (meta["rows"], meta["cols"]),
        )

    # ---- memo choices + cost baselines
    memo_state = header.get("memo") or {"choices": [], "costs": []}
    session.memo.import_state(memo_state)

    # ---- baked plan (SNICIT engines)
    plan_state = header.get("plan")
    if plan_state is not None:
        plan = StrategyPlan.from_state(plan_state).bind_metrics(session.scoped)
        if session.memo.revise_ratio is not None:
            plan.enable_revision(session.memo)
        session.plan = plan
        if hasattr(session.engine, "plan"):
            session.engine.plan = plan

    # ---- centroid cache fills
    adopted = skipped = 0
    reuse = getattr(session, "reuse", None)
    for j, meta in enumerate(header.get("cache", [])):
        if reuse is None or meta["network_key"] not in (None, fingerprint):
            skipped += 1
            continue
        reuse.adopt(
            CachedConversion(
                threshold_layer=int(meta["threshold_layer"]),
                network_key=meta["network_key"],
                cent_y=arrays[f"cache{j}_cent_y"],
                z_cent=[arrays[f"cache{j}_z{k}"] for k in range(meta["n_z"])],
                cent_final=(
                    arrays[f"cache{j}_final"] if meta["has_final"] else None
                ),
                baseline_distance=float(meta["baseline_distance"]),
                baseline_density=float(meta["baseline_density"]),
                served_blocks=int(meta["served_blocks"]),
            )
        )
        adopted += 1
    return {
        "path": str(path),
        "size_bytes": os.path.getsize(path),
        "fingerprint": fingerprint,
        "dense_views": len(views.get("dense", [])),
        "ell_views": len(views.get("ell", [])),
        "plan_layers": len(plan_state["layers"]) if plan_state else 0,
        "memo_choices": len(memo_state.get("choices", [])),
        "memo_costs": len(memo_state.get("costs", [])),
        "cache_entries": adopted,
        "cache_skipped": skipped,
    }
