"""Scaled SDGC benchmark registry (paper Table 1).

Python-on-CPU cannot hold the full SDGC sizes (up to 4x10^9 edges), so the
registry maps each of the paper's 12 benchmarks to a scaled twin that keeps
the structure intact: square neuron counts (inputs are resized images),
exactly 32-edge fan-in, the SDGC bias ladder, and the same x2 neuron / layer
tier ratios.  ``meta['paper_name']`` records which paper benchmark each entry
stands in for; EXPERIMENTS.md reports paper-vs-measured per pair.

================  =================  =======
paper benchmark   scaled benchmark   bias
================  =================  =======
1024-{120..1920}  144-{24,48,120}    -0.30
4096-{...}        256-{24,48,120}    -0.35
16384-{...}       576-{24,48,120}    -0.40
65536-{...}       1024-{24,48,120}   -0.45
================  =================  =======
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.data.loader import binarize, images_to_columns
from repro.data.resize import bilinear_resize
from repro.data.synth_mnist import prototype_digit_batch
from repro.errors import ConfigError
from repro.network import LayerSpec, SparseNetwork
from repro.radixnet.generator import radixnet_topology
from repro.radixnet.weights import WeightScale, assign_weights

__all__ = [
    "BenchmarkSpec",
    "BENCHMARKS",
    "list_benchmarks",
    "build_benchmark",
    "benchmark_input",
]

#: SDGC activation upper bound (paper §2.1).
SDGC_YMAX = 32.0


@dataclass(frozen=True)
class BenchmarkSpec:
    """One scaled SDGC benchmark."""

    name: str
    neurons: int
    layers: int
    bias: float
    paper_name: str
    fanin: int = 32
    batch_default: int = 2000

    @property
    def image_side(self) -> int:
        side = int(round(math.sqrt(self.neurons)))
        if side * side != self.neurons:
            raise ConfigError(f"benchmark neurons {self.neurons} is not a perfect square")
        return side

    @property
    def connections(self) -> int:
        """Total edge count (Table 1 'Connections' analogue)."""
        return self.neurons * self.fanin * self.layers


#: Per-tier (self_weight, pos) calibrated so every tier lands in the SDGC
#: regime: the vast majority of input columns go completely dead over the
#: first ~12-24 layers (the contest's "category" structure) and the few
#: survivors settle into a handful of railed patterns.  The smallest tier
#: (bias -0.3) barely dies — matching the paper's observation that SNICIT's
#: edge is smallest there (Table 3: 1.11x on 1024-120).  The more negative
#: the tier's bias, the more positive drive the mixture needs.
_TIER_SCALE = {
    144: (1.35, 0.15),
    256: (1.35, 0.35),
    576: (1.35, 0.70),
    1024: (1.35, 0.85),
}


def tier_weight_scale(neurons: int) -> WeightScale:
    """The calibrated weight distribution for a registry tier."""
    self_weight, pos = _TIER_SCALE.get(neurons, (1.35, 0.35))
    return WeightScale(pos=pos, self_weight=self_weight)


def _make_registry() -> dict[str, BenchmarkSpec]:
    tiers = [
        (144, -0.30, 1024, 2000),
        (256, -0.35, 4096, 2000),
        (576, -0.40, 16384, 2000),
        (1024, -0.45, 65536, 1000),
    ]
    layer_map = [(24, 120), (48, 480), (120, 1920)]
    registry: dict[str, BenchmarkSpec] = {}
    for neurons, bias, paper_n, batch in tiers:
        for layers, paper_l in layer_map:
            name = f"{neurons}-{layers}"
            registry[name] = BenchmarkSpec(
                name=name,
                neurons=neurons,
                layers=layers,
                bias=bias,
                paper_name=f"{paper_n}-{paper_l}",
                batch_default=batch,
            )
    return registry


BENCHMARKS: dict[str, BenchmarkSpec] = _make_registry()


def list_benchmarks() -> list[BenchmarkSpec]:
    """All registry entries in Table-1 order (neurons major, layers minor)."""
    return sorted(BENCHMARKS.values(), key=lambda s: (s.neurons, s.layers))


def build_benchmark(
    spec: str | BenchmarkSpec,
    seed: int = 0,
    permute: bool = False,
    scale: WeightScale | None = None,
) -> SparseNetwork:
    """Generate the network for a registry entry (or custom spec).

    ``permute`` defaults to False: the calibrated SDGC-like dynamics rely on
    the butterfly self edge staying on the diagonal (see
    :mod:`repro.radixnet.weights`); permuted variants remain available for
    topology experiments.
    """
    if isinstance(spec, str):
        try:
            spec = BENCHMARKS[spec]
        except KeyError:
            raise ConfigError(
                f"unknown benchmark {spec!r}; known: {sorted(BENCHMARKS)}"
            ) from None
    rng = np.random.default_rng(seed)
    topo = radixnet_topology(
        spec.neurons, spec.layers, fanin=min(spec.fanin, spec.neurons), rng=rng, permute=permute
    )
    if scale is None:
        scale = tier_weight_scale(spec.neurons)
    weights = assign_weights(topo, spec.neurons, rng, scale=scale)
    layers = [
        LayerSpec(weight=w, bias=spec.bias, name=f"L{i}") for i, w in enumerate(weights)
    ]
    return SparseNetwork(
        layers,
        ymax=SDGC_YMAX,
        name=spec.name,
        meta={
            "kind": "sdgc",
            "paper_name": spec.paper_name,
            "bias": spec.bias,
            "fanin": spec.fanin,
            "neurons": spec.neurons,
            "image_side": spec.image_side,
        },
    )


def benchmark_input(
    net: SparseNetwork,
    batch: int,
    seed: int = 1,
    labeled: bool = False,
    binarized: bool = True,
):
    """SDGC-style input block ``Y(0)`` of shape ``(neurons, batch)``.

    Renders synthetic MNIST digits, bilinearly resizes 28x28 to the
    benchmark's image side (§2.1), flattens to feature columns, and (by
    default) binarizes like the contest inputs.  With ``labeled=True``
    returns ``(Y0, labels)``.
    """
    side = net.meta.get("image_side")
    if side is None:
        side = int(round(math.sqrt(net.input_dim)))
        if side * side != net.input_dim:
            raise ConfigError(
                f"network input dim {net.input_dim} is not a square; pass SDGC nets"
            )
    rng = np.random.default_rng(seed)
    images, labels = prototype_digit_batch(batch, rng, size=28)
    resized = bilinear_resize(images, side)
    y0 = images_to_columns(resized)
    if binarized:
        y0 = binarize(y0, threshold=0.5)
    return (y0, labels) if labeled else y0
