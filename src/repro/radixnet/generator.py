"""Radix-Net butterfly topology construction.

A Radix-Net layer with radix ``r`` and stride ``p`` connects output neuron
``j`` to the ``r`` input neurons ``(j + k * p) mod N`` for ``k in 0..r-1``.
Stacking layers whose strides cycle through ``r**0, r**1, ...`` yields the
mixed-radix butterfly of the original generator: after ``ceil(log_r N)``
stages the union of paths from any input reaches every output.  An optional
per-layer random permutation of output neurons reproduces the permuted
Kronecker variants used for the published SDGC networks.

Every output neuron has exactly ``r`` in-edges (SDGC §2.1: "Each neuron in
all architectures has 32 edge connections with neurons in adjacent layers").
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import ConfigError

__all__ = ["butterfly_indices", "radixnet_topology", "effective_stride"]


def effective_stride(n: int, stride: int, fanin: int) -> int:
    """Smallest stride >= the requested one whose multiples are distinct.

    ``(j + k * p) mod n`` visits ``n / gcd(p, n)`` distinct offsets; when n is
    not a power of the radix the nominal butterfly stride can alias (e.g.
    n=144, p=32 gives only 9 distinct in-neighbors).  We bump the stride until
    the first ``fanin`` multiples are distinct, preserving exact fan-in for
    every n.
    """
    p = max(1, stride % n) if n > 1 else 1
    while n // math.gcd(p, n) < fanin:
        p += 1
    return p


def butterfly_indices(n: int, radix: int, stride: int) -> np.ndarray:
    """Index matrix ``(n, radix)``: in-neighbors of each output neuron."""
    if n <= 0:
        raise ConfigError("n must be positive")
    if not 1 <= radix <= n:
        raise ConfigError(f"radix must be in [1, n]; got radix={radix}, n={n}")
    j = np.arange(n, dtype=np.int64)[:, None]
    k = np.arange(radix, dtype=np.int64)[None, :]
    return (j + k * stride) % n


def radixnet_topology(
    n: int,
    n_layers: int,
    fanin: int = 32,
    rng: np.random.Generator | None = None,
    permute: bool = True,
) -> list[np.ndarray]:
    """Per-layer index matrices for an ``n``-neuron, ``n_layers``-deep net.

    Strides cycle through ``fanin**0 .. fanin**(d-1)`` (``d = ceil(log_fanin
    n)``) so consecutive layers form complete butterflies.  If ``permute`` is
    true, each layer's rows are additionally routed through a random output
    permutation (requires ``rng``).
    """
    if fanin > n:
        raise ConfigError(f"fanin {fanin} exceeds neuron count {n}")
    if permute and rng is None:
        raise ConfigError("permute=True requires an rng")
    depth = max(1, math.ceil(math.log(n, fanin))) if n > 1 else 1
    layers: list[np.ndarray] = []
    for layer in range(n_layers):
        stride = effective_stride(n, fanin ** (layer % depth), fanin)
        idx = butterfly_indices(n, fanin, stride)
        if permute:
            perm = rng.permutation(n)
            idx = idx[perm]
        layers.append(idx)
    return layers
