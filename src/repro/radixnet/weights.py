"""Weight and bias assignment for Radix-Net topologies.

SDGC sets all biases to a per-benchmark constant (Table 1) and draws nonzero
weights randomly.  The exact distribution is not specified in the paper; what
matters for reproducing SNICIT is the *dynamical regime* it induces: with the
two-sided clamp sigma(x) = min(max(x, 0), ymax), intermediate results must
(a) stay alive over hundreds of layers and (b) contract so that columns of
the same class become nearly identical — many entries pinned at 0 or at
``ymax`` — which is exactly what makes SNICIT's residues sparse (§3.2).

The mechanism that produces this regime (calibrated empirically; see
``tests/test_radixnet.py::test_dynamics_regime``):

* The butterfly's ``k = 0`` slot is a **self edge** (stride x 0); it gets a
  fixed super-unit weight ``self_weight`` = 1.4, making every neuron bistable
  under the clamp: a railed state (0 or ymax) tends to persist.
* The remaining 31 edges carry a weak, negatively-skewed random mixture
  ``U(-amp, 0.4 * amp)`` with ``amp = base / fanin`` (base = 2.5), so weak
  input columns *die out completely* over the first tens of layers while
  strong ones saturate, and near-identical columns are gradually quantized
  onto the *same* rail pattern.

The result matches the published SDGC phenomenology: a shrinking active
input set, deep-layer activations pinned at the clamp, and — the property
SNICIT monetizes — most columns' residues against a handful of centroids
being exactly empty after near-zero pruning (measured: ~44% empty at t=30,
mean residue density ~1.3% on the 256-neuron tier).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError
from repro.sparse.csr import CSRMatrix
from repro.sparse.ell import ELLMatrix

__all__ = ["assign_weights", "sdgc_bias", "WeightScale"]


#: SDGC Table 1 bias constants, keyed by the *paper's* neuron counts.
_PAPER_BIAS = {1024: -0.3, 4096: -0.35, 16384: -0.4, 65536: -0.45}


def sdgc_bias(paper_neurons: int) -> float:
    """The SDGC bias constant for a paper-scale neuron count."""
    try:
        return _PAPER_BIAS[paper_neurons]
    except KeyError:
        raise ConfigError(
            f"no SDGC bias for {paper_neurons} neurons; known: {sorted(_PAPER_BIAS)}"
        ) from None


class WeightScale:
    """Weight-distribution parameters.

    Mixture edges (slots 1..fanin-1) get ``w ~ U(-neg * amp, pos * amp)``
    with ``amp = base / fanin``; slot 0 (the butterfly self edge) gets the
    constant ``self_weight``.
    """

    def __init__(
        self,
        base: float = 2.5,
        pos: float = 0.4,
        neg: float = 1.0,
        self_weight: float = 1.4,
    ):
        self.base = base
        self.pos = pos
        self.neg = neg
        self.self_weight = self_weight


def assign_weights(
    index_layers: list[np.ndarray],
    n: int,
    rng: np.random.Generator,
    scale: WeightScale | None = None,
    dtype=np.float32,
) -> list[CSRMatrix]:
    """Turn topology index matrices into CSR weight matrices.

    ``index_layers[i]`` has shape ``(n, fanin)``: the in-neighbors of each
    output neuron of layer ``i``.  Slot 0 of each row is assumed to be the
    self edge (as produced by :func:`~repro.radixnet.generator.
    butterfly_indices`) and receives ``scale.self_weight``.
    """
    scale = scale or WeightScale()
    weights: list[CSRMatrix] = []
    for idx in index_layers:
        n_out, fanin = idx.shape
        amp = scale.base / fanin
        vals = rng.uniform(-scale.neg * amp, scale.pos * amp, size=idx.shape).astype(dtype)
        # exact zeros would silently reduce fan-in; nudge them
        vals[vals == 0] = dtype(amp * 1e-3)
        vals[:, 0] = dtype(scale.self_weight)
        ell = ELLMatrix(idx, vals, (n_out, n))
        weights.append(ell.to_csr())
    return weights
