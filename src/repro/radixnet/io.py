"""SDGC tab-separated interchange format.

The official Graph Challenge distributes each layer as a ``.tsv`` of
1-indexed ``row<TAB>col<TAB>value`` triplets.  These helpers read and write
that format so networks generated here can be exchanged with SDGC tooling
(and so the registry can optionally persist generated benchmarks).
"""

from __future__ import annotations

import io
from pathlib import Path

import numpy as np

from repro.errors import FormatError
from repro.sparse.coo import COOMatrix
from repro.sparse.csr import CSRMatrix

__all__ = ["save_layer_tsv", "load_layer_tsv", "save_categories", "load_categories"]


def save_layer_tsv(path: str | Path, layer: CSRMatrix) -> None:
    """Write one layer's weights as 1-indexed SDGC triplets."""
    coo = layer.to_coo().sorted()
    with open(path, "w", encoding="ascii") as fh:
        for r, c, v in zip(coo.row, coo.col, coo.data):
            fh.write(f"{r + 1}\t{c + 1}\t{v:.9g}\n")


def load_layer_tsv(path: str | Path, shape: tuple[int, int], dtype=np.float32) -> CSRMatrix:
    """Read one layer from SDGC 1-indexed triplets."""
    rows: list[int] = []
    cols: list[int] = []
    vals: list[float] = []
    text = Path(path).read_text(encoding="ascii")
    for lineno, line in enumerate(io.StringIO(text), start=1):
        line = line.strip()
        if not line:
            continue
        parts = line.split("\t")
        if len(parts) != 3:
            raise FormatError(f"{path}:{lineno}: expected 3 tab-separated fields")
        try:
            r, c, v = int(parts[0]), int(parts[1]), float(parts[2])
        except ValueError as exc:
            raise FormatError(f"{path}:{lineno}: {exc}") from exc
        if r < 1 or c < 1:
            raise FormatError(f"{path}:{lineno}: SDGC indices are 1-based")
        rows.append(r - 1)
        cols.append(c - 1)
        vals.append(v)
    coo = COOMatrix(
        np.array(rows, dtype=np.int64),
        np.array(cols, dtype=np.int64),
        np.array(vals, dtype=dtype),
        shape,
    )
    return CSRMatrix.from_coo(coo)


def save_categories(path: str | Path, categories: np.ndarray) -> None:
    """Write a golden-reference category file: 1-indexed surviving inputs.

    The contest's truth files list the indices of the inputs that still have
    nonzero activations at the last layer, one per line.
    """
    categories = np.asarray(categories)
    if categories.dtype == bool:
        indices = np.flatnonzero(categories)
    else:
        indices = categories.astype(np.int64)
    with open(path, "w", encoding="ascii") as fh:
        for idx in indices:
            fh.write(f"{idx + 1}\n")


def load_categories(path: str | Path, batch: int) -> np.ndarray:
    """Read a golden-reference category file into a boolean vector."""
    out = np.zeros(batch, dtype=bool)
    for lineno, line in enumerate(Path(path).read_text(encoding="ascii").splitlines(), 1):
        line = line.strip()
        if not line:
            continue
        try:
            idx = int(line)
        except ValueError as exc:
            raise FormatError(f"{path}:{lineno}: {exc}") from exc
        if not 1 <= idx <= batch:
            raise FormatError(f"{path}:{lineno}: category {idx} out of range [1, {batch}]")
        out[idx - 1] = True
    return out
