"""Radix-Net synthetic sparse DNN generation (SDGC substrate).

The SDGC benchmarks are generated with the Radix-Net structured-sparse
topology generator (Kepner & Robinett, IPDPSW 2019): every neuron has exactly
``fanin`` connections to the previous layer, arranged as mixed-radix
butterfly stages so that after ``ceil(log_fanin N)`` layers every input can
influence every output.  This package reproduces the family at configurable
scale:

* :mod:`repro.radixnet.generator` — butterfly topology construction,
* :mod:`repro.radixnet.weights` — random weight / constant bias assignment
  calibrated so activations saturate against the SDGC clamp the way the real
  benchmarks do (the property SNICIT's residue cancellation exploits),
* :mod:`repro.radixnet.io` — SDGC ``.tsv`` interchange format,
* :mod:`repro.radixnet.registry` — the scaled Table-1 benchmark registry and
  input generation.
"""

from repro.radixnet.generator import butterfly_indices, radixnet_topology
from repro.radixnet.weights import assign_weights, sdgc_bias
from repro.radixnet.registry import (
    BENCHMARKS,
    BenchmarkSpec,
    benchmark_input,
    build_benchmark,
    list_benchmarks,
)
from repro.radixnet.io import load_layer_tsv, save_layer_tsv

__all__ = [
    "butterfly_indices",
    "radixnet_topology",
    "assign_weights",
    "sdgc_bias",
    "BENCHMARKS",
    "BenchmarkSpec",
    "build_benchmark",
    "benchmark_input",
    "list_benchmarks",
    "load_layer_tsv",
    "save_layer_tsv",
]
